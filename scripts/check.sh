#!/bin/sh
# Repo-wide check: project lint (always) + ruff (when available) + the
# tier-1 test suite.  This is what CI and `make check` run; keep it in
# sync with ROADMAP.md.
set -eu

cd "$(dirname "$0")/.."

echo "== repro.devtools.lint (project rules) =="
PYTHONPATH=src python -m repro.devtools.lint src

echo "== repro.devtools flow analyses (whole-program) =="
PYTHONPATH=src python -m repro.devtools.lint src --flow \
    --baseline analysis-baseline.json --sarif analysis.sarif

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping generic lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q
