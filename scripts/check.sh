#!/bin/sh
# Repo-wide check: lint (when ruff is available) + the tier-1 test suite.
# This is what CI and `make check` run; keep it in sync with ROADMAP.md.
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q
