"""Tests of the phase-5 triangular-solve engines (`repro.core.tsolve`,
`repro.runtime.threaded.tsolve_threaded`, `repro.runtime.distributed
.tsolve_distributed`) and the factor-once/solve-many `Factorization`
handle.

The executable solve DAG totally orders the writers of every RHS
segment, so all three engines must produce *bit-identical* solutions —
equal to the legacy sequential sweeps, not merely close.  The race
detector must stay silent on clean runs and name both parties when a
double writer is injected on an RHS segment.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.core import block_partition, build_dag, factorize
from repro.core.mapping import ProcessGrid
from repro.core.solver import Factorization, PanguLU, SolverOptions
from repro.core.tsolve import block_backward, block_forward, tsolve_sequential
from repro.core.tsolve_dag import TSolveDAG, TSolveTaskType, build_tsolve_dag
from repro.devtools.racecheck import ConcurrencyViolation, RaceChecker
from repro.runtime import tsolve_distributed, tsolve_threaded
from repro.runtime.engines import available_tsolve_engines, get_tsolve_engine
from repro.runtime.transports import LoopbackTransport
from repro.sparse import grid_laplacian_2d, random_sparse
from repro.symbolic import symbolic_symmetric


def _factored(n=72, bs=13, seed=0):
    """A numerically factorized BlockMatrix (L\\U in place)."""
    a = random_sparse(n, 0.07, seed=seed)
    filled = symbolic_symmetric(a).filled
    bm = block_partition(filled, bs)
    factorize(bm, build_dag(bm))
    return bm


def _rhs(n, nrhs, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n if nrhs == 1 else (n, nrhs))


# ----------------------------------------------------------------------
# engines agree, bit-identically
# ----------------------------------------------------------------------

class TestEnginesAgree:
    @pytest.mark.parametrize("nrhs", [1, 3])
    def test_bit_identical_across_engines(self, nrhs):
        f = _factored()
        b = _rhs(f.n, nrhs)
        ref = block_backward(f, block_forward(f, b))

        tdag = build_tsolve_dag(f, lambda bi, bj: 0, executable=True)
        xs, ss = tsolve_sequential(f, b, tdag=tdag)
        xt, st = tsolve_threaded(f, tdag, b, n_workers=4)

        grid_dag = build_tsolve_dag(
            f, ProcessGrid.square(2).owner, executable=True
        )
        xd, sd = tsolve_distributed(
            f, grid_dag, b, 2, transport=LoopbackTransport(), validate=True
        )

        assert np.array_equal(xs, ref)  # scheduler path == legacy sweeps
        assert np.array_equal(xt, xs)
        assert np.array_equal(xd, xs)
        assert ss.tasks_executed == st.tasks_executed == len(tdag)
        assert sd.tasks_executed == len(grid_dag)
        assert sd.n_procs == 2
        assert sd.messages_sent > 0 and sd.seg_bytes_sent > 0

    def test_distributed_three_ranks_multi_rhs(self):
        f = _factored(seed=4)
        b = _rhs(f.n, 2, seed=1)
        ref, _ = tsolve_sequential(f, b)
        tdag = build_tsolve_dag(
            f, ProcessGrid.square(3).owner, executable=True
        )
        x, stats = tsolve_distributed(
            f, tdag, b, 3, transport=LoopbackTransport(), validate=True
        )
        assert np.array_equal(x, ref)
        assert stats.nrhs == 2

    def test_engines_need_executable_dag(self):
        f = _factored()
        loose = build_tsolve_dag(f, lambda bi, bj: 0)  # simulator build
        with pytest.raises(ValueError, match="executable"):
            tsolve_threaded(f, loose, np.ones(f.n))
        with pytest.raises(ValueError, match="executable"):
            tsolve_distributed(
                f, loose, np.ones(f.n), 2, transport=LoopbackTransport()
            )


# ----------------------------------------------------------------------
# facade dispatch: SolverOptions.engine governs phase 5
# ----------------------------------------------------------------------

class TestFacadeDispatch:
    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_engine_option_governs_solve(self, engine):
        a = grid_laplacian_2d(9, 9)
        s = PanguLU(a, SolverOptions(engine=engine, n_workers=3))
        x = s.solve(np.ones(a.nrows))
        assert float(np.linalg.norm(a.matvec(x) - np.ones(a.nrows))) < 1e-8
        fact = s.factorize()
        assert fact.last_tsolve_stats is not None
        assert fact.last_tsolve_stats.engine == engine

    def test_facade_engines_give_identical_solutions(self):
        a = grid_laplacian_2d(8, 8)
        b = _rhs(a.nrows, 1, seed=7)
        x_seq = PanguLU(a, SolverOptions(engine="sequential")).solve(b)
        x_thr = PanguLU(
            a, SolverOptions(engine="threaded", n_workers=4)
        ).solve(b)
        assert np.array_equal(x_seq, x_thr)

    def test_registry(self):
        assert set(available_tsolve_engines()) >= {
            "sequential", "threaded", "distributed",
        }
        with pytest.raises(ValueError, match="unknown tsolve engine"):
            get_tsolve_engine("warp-drive")


# ----------------------------------------------------------------------
# race detection over RHS segments
# ----------------------------------------------------------------------

class _NoopLock:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def acquire(self):
        pass

    def release(self):
        pass


def test_threaded_detector_catches_rhs_double_writer(monkeypatch):
    f = _factored()
    # two independent root UPD_F tasks writing the SAME y segment
    tdag = TSolveDAG(
        kinds=np.array([TSolveTaskType.UPD_F, TSolveTaskType.UPD_F]),
        k_of=np.array([0, 1]),
        target=np.array([2, 2]),
        flops=np.zeros(2),
        out_bytes=np.zeros(2),
        n_deps=np.array([0, 0]),
        successors=[[], []],
        owner=np.zeros(2, dtype=np.int64),
        total_flops=0.0,
        seq_y=np.array([0, 1]),
        seq_x=np.array([-1, -1]),
    )

    collided = threading.Event()
    checker = RaceChecker(label="tsolve-threaded")
    orig_begin = checker.begin_write

    def signalling_begin(slot, tid, worker):
        try:
            orig_begin(slot, tid, worker)
        except ConcurrencyViolation:
            collided.set()  # release the first writer
            raise

    checker.begin_write = signalling_begin

    def fake_execute(f, tdag, tid, y, x, plans):
        # hold the segment until the second writer collides (bounded
        # wait so a regression fails the test instead of hanging it)
        collided.wait(timeout=10)

    monkeypatch.setattr(
        "repro.runtime.threaded._make_segment_locks",
        lambda n: [_NoopLock() for _ in range(n)],
    )
    monkeypatch.setattr(
        "repro.runtime.threaded.execute_tsolve_task", fake_execute
    )

    with pytest.raises(ConcurrencyViolation) as exc:
        tsolve_threaded(f, tdag, np.ones(f.n), n_workers=2, checker=checker)
    msg = str(exc.value)
    assert "double writer" in msg
    assert "task 0" in msg and "task 1" in msg  # both tasks named
    assert "slot 2" in msg                      # the shared y segment
    assert collided.is_set()


def test_threaded_clean_run_with_checker():
    f = _factored(seed=2)
    tdag = build_tsolve_dag(f, lambda bi, bj: 0, executable=True)
    checker = RaceChecker(label="tsolve-threaded")
    b = _rhs(f.n, 2, seed=3)
    x, _ = tsolve_threaded(f, tdag, b, n_workers=4, checker=checker)
    assert checker.violations == []
    ref, _ = tsolve_sequential(f, b, checker=RaceChecker(label="seq"))
    assert np.array_equal(x, ref)


# ----------------------------------------------------------------------
# the Factorization handle: factor once, solve many, pickle, trace
# ----------------------------------------------------------------------

class TestFactorizationHandle:
    def test_factorize_returns_cached_handle(self):
        a = grid_laplacian_2d(7, 7)
        s = PanguLU(a, SolverOptions())
        fact = s.factorize()
        assert isinstance(fact, Factorization)
        assert s.factorize() is fact

    def test_pickle_roundtrip_solves_fresh_rhs(self):
        a = grid_laplacian_2d(8, 8)
        fact = PanguLU(a, SolverOptions()).factorize()
        fact2 = pickle.loads(pickle.dumps(fact))
        b = _rhs(a.nrows, 1, seed=11)  # RHS the original never saw
        x1 = fact.solve(b)
        x2 = fact2.solve(b)
        assert np.array_equal(x1, x2)
        assert float(np.linalg.norm(a.matvec(x2) - b)) < 1e-8
        assert fact2.solve_count == 1  # solved without refactorizing

    def test_solve_timing_accumulates(self):
        a = grid_laplacian_2d(7, 7)
        s = PanguLU(a, SolverOptions())
        b = np.ones(a.nrows)
        for _ in range(3):
            s.solve(b)
        fact = s.factorize()
        assert s.solve_count == fact.solve_count == 3
        assert s.phase_seconds["solve"] == fact.total_solve_seconds
        assert 0.0 < fact.last_solve_seconds <= fact.total_solve_seconds

    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_trace_records_solve_lanes(self, engine):
        a = grid_laplacian_2d(7, 7)
        s = PanguLU(
            a,
            SolverOptions(engine=engine, n_workers=2, trace_events=True),
        )
        s.factorize()
        n_factor_events = len(s.recorder.task_events)
        s.solve(np.ones(a.nrows))
        solve_events = s.recorder.task_events[n_factor_events:]
        cats = {e.cat for e in solve_events}
        assert {"DIAG_F", "DIAG_B"} <= cats
        assert all(e.tid >= 0 for e in solve_events)
