"""Tests for the analysis/report helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    DENSITY_BIN_LABELS,
    format_table,
    gemm_density_histogram,
    geometric_mean,
    speedup_summary,
)
from repro.baseline.supernodal import GEMMRecord


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_matches_paper_style_aggregate(self):
        speedups = [1.10, 11.70, 2.0, 3.0]
        gm = geometric_mean(speedups)
        assert np.exp(np.mean(np.log(speedups))) == pytest.approx(gm)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestDensityHistogram:
    def _rec(self, da, db, dc):
        return GEMMRecord(m=4, n=4, k=4, density_a=da, density_b=db, density_c=dc)

    def test_bins_sum_to_100(self):
        gemms = [self._rec(0.05, 0.5, 0.95), self._rec(0.15, 0.55, 1.0)]
        hist = gemm_density_histogram(gemms)
        for key in ("A", "B", "C"):
            assert hist[key].sum() == pytest.approx(100.0)
            assert hist[key].shape == (10,)

    def test_bin_placement(self):
        gemms = [self._rec(0.05, 0.5, 1.0)]
        hist = gemm_density_histogram(gemms)
        assert hist["A"][0] == 100.0
        assert hist["B"][5] == 100.0
        assert hist["C"][9] == 100.0  # density exactly 1.0 → last bin

    def test_empty(self):
        hist = gemm_density_histogram([])
        for key in ("A", "B", "C"):
            np.testing.assert_array_equal(hist[key], np.zeros(10))

    def test_labels(self):
        assert len(DENSITY_BIN_LABELS) == 10
        assert DENSITY_BIN_LABELS[0] == "[0,10)"


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["name", "x"], [["a", 1.5], ["long-name", 20.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]
        assert "1.50" in lines[2]

    def test_empty_rows(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out

    def test_speedup_summary(self):
        s = speedup_summary({"a": 2.0, "b": 8.0})
        assert "geomean 4.00x" in s
        assert "range 2.00x" in s and "8.00x" in s


class TestGantt:
    def _result(self):
        from repro.runtime import CPU_PLATFORM, SimSpec, simulate

        spec = SimSpec(
            durations=np.asarray([1.0, 2.0, 1.0]),
            owner=np.asarray([0, 1, 0]),
            out_bytes=np.zeros(3),
            n_deps=np.asarray([0, 0, 1]),
            successors=[[2], [], []],
            priority=np.arange(3, dtype=float),
            nprocs=2,
        )
        return simulate(spec, CPU_PLATFORM), spec

    def test_render_shape(self):
        from repro.analysis import render_gantt

        res, spec = self._result()
        out = render_gantt(res, spec.owner, width=40)
        lines = out.splitlines()
        assert len(lines) == 3  # 2 procs + time legend
        assert lines[0].startswith("p0")
        assert "busy" in lines[0]

    def test_kinds_glyphs(self):
        from repro.analysis import render_gantt

        res, spec = self._result()
        out = render_gantt(
            res, spec.owner, kinds=np.asarray([0, 1, 2]), width=40
        )
        assert "F" in out and "L" in out and "U" in out

    def test_max_procs_truncation(self):
        from repro.analysis import render_gantt

        res, spec = self._result()
        out = render_gantt(res, spec.owner, width=20, max_procs=1)
        assert "more processes not shown" in out
