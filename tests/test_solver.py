"""End-to-end tests for the PanguLU solver facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU, SolverOptions
from repro.core import NumericOptions
from repro.kernels import SelectorPolicy
from repro.sparse import (
    CSCMatrix,
    generate,
    grid_laplacian_2d,
    paper_matrix_names,
    random_sparse,
)


class TestSolve:
    @pytest.mark.parametrize("ordering", ["nd", "amd", "rcm", "natural"])
    def test_residual_small(self, ordering):
        a = random_sparse(120, 0.05, seed=1)
        s = PanguLU(a, SolverOptions(ordering=ordering))
        b = np.arange(1.0, 121.0)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-9

    def test_lu_product(self):
        a = random_sparse(100, 0.05, seed=2)
        s = PanguLU(a)
        s.factorize()
        assert s.lu_product_error() < 1e-10

    def test_without_mc64(self):
        a = grid_laplacian_2d(10, 10)  # already dominant
        s = PanguLU(a, SolverOptions(use_mc64=False))
        b = np.ones(100)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10

    def test_explicit_block_size(self):
        a = random_sparse(90, 0.06, seed=3)
        s = PanguLU(a, SolverOptions(block_size=13))
        s.preprocess()
        assert s.blocks.bs == 13
        x = s.solve(np.ones(90))
        assert s.residual_norm(x, np.ones(90)) < 1e-9

    def test_fixed_kernel_policy(self):
        a = random_sparse(80, 0.06, seed=4)
        s = PanguLU(
            a,
            SolverOptions(numeric=NumericOptions(selector=SelectorPolicy.fixed())),
        )
        x = s.solve(np.ones(80))
        assert s.residual_norm(x, np.ones(80)) < 1e-9

    def test_multiple_rhs_sequential(self):
        a = random_sparse(60, 0.07, seed=5)
        s = PanguLU(a)
        for seed in range(3):
            b = np.random.default_rng(seed).standard_normal(60)
            x = s.solve(b)
            assert s.residual_norm(x, b) < 1e-9

    def test_factorize_idempotent(self):
        a = random_sparse(50, 0.08, seed=6)
        s = PanguLU(a)
        st1 = s.factorize()
        st2 = s.factorize()
        assert st1 is st2

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            PanguLU(CSCMatrix.empty((3, 4)))

    def test_rejects_bad_ordering(self):
        a = random_sparse(10, 0.2, seed=0)
        with pytest.raises(ValueError, match="ordering"):
            PanguLU(a, SolverOptions(ordering="metis")).reorder()

    def test_rhs_shape_check(self):
        a = random_sparse(10, 0.2, seed=0)
        s = PanguLU(a)
        with pytest.raises(ValueError, match="shape"):
            s.solve(np.ones(4))

    def test_phase_seconds_recorded(self):
        a = random_sparse(60, 0.06, seed=7)
        s = PanguLU(a)
        s.solve(np.ones(60))
        assert set(s.phase_seconds) == {
            "reorder",
            "symbolic",
            "preprocess",
            "numeric",
            "solve",
        }
        assert all(v >= 0 for v in s.phase_seconds.values())

    def test_nprocs_option_assignment(self):
        a = random_sparse(80, 0.06, seed=8)
        s = PanguLU(a, SolverOptions(nprocs=4))
        s.preprocess()
        assert s.assignment is not None
        assert s.assignment.max() < 4
        # distributed mapping never changes local numeric correctness
        x = s.solve(np.ones(80))
        assert s.residual_norm(x, np.ones(80)) < 1e-9


class TestPaperMatrices:
    @pytest.mark.parametrize("name", paper_matrix_names())
    def test_solves_every_analogue(self, name):
        a = generate(name, scale=0.08, seed=0)
        s = PanguLU(a)
        b = np.ones(a.nrows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-6, name


class TestNumericalStability:
    def test_badly_scaled_matrix(self):
        # rows scaled over 12 orders of magnitude — MC64 + iterative
        # refinement must reach the floating-point backward-error floor
        # (a fixed relative tolerance is unattainable here: the residual
        # of the *exact* solution already costs eps·‖A‖·‖x‖ per row).
        a = random_sparse(60, 0.08, seed=9)
        scale = np.logspace(-6, 6, 60)
        bad = a.scale(scale, None)
        s = PanguLU(bad)
        b = np.ones(60)
        x = s.solve(b)
        d = bad.to_dense()
        floor = np.finfo(float).eps * (
            np.abs(d).sum(axis=1).max() * np.linalg.norm(x) + np.linalg.norm(b)
        )
        assert s.residual_norm(x, b) * np.linalg.norm(b) < 100 * floor
        # and the factorisation itself is exact to machine precision
        assert s.lu_product_error() < 1e-12

    def test_zero_diagonal_entries(self):
        # structurally missing diagonal: MC64 permutes entries onto it
        d = np.array(
            [
                [0.0, 2.0, 0.0],
                [3.0, 0.0, 1.0],
                [1.0, 1.0, 0.0],
            ]
        )
        a = CSCMatrix.from_dense(d)
        s = PanguLU(a)
        b = np.array([1.0, 2.0, 3.0])
        x = s.solve(b)
        np.testing.assert_allclose(d @ x, b, atol=1e-10)


class TestInputValidation:
    def test_rejects_nan(self):
        a = random_sparse(20, 0.2, seed=1)
        a.data[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            PanguLU(a)

    def test_rejects_inf(self):
        a = random_sparse(20, 0.2, seed=2)
        a.data[3] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            PanguLU(a)

    def test_structurally_singular_raises(self):
        from repro.ordering import StructurallySingularError

        d = np.zeros((4, 4))
        d[:, 0] = 1.0  # only one independent column
        d[1, 1] = 0.0
        a = CSCMatrix.from_dense(d)
        with pytest.raises(StructurallySingularError):
            PanguLU(a).reorder()

    def test_baseline_rejects_nan(self):
        from repro.baseline import SuperLUBaseline

        a = random_sparse(15, 0.2, seed=3)
        a.data[1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            SuperLUBaseline(a)


class TestBestOrdering:
    def test_best_picks_minimum_fill(self):
        from repro.ordering import amd, nested_dissection
        from repro.symbolic import symbolic_symmetric as sym

        a = random_sparse(70, 0.06, seed=13)
        s = PanguLU(a, SolverOptions(ordering="best"))
        s.symbolic_factorize()
        # recompute the candidates the same way the facade does
        work = a.scale(s.row_scale, s.col_scale).permute(
            np.argsort(np.argsort(s.row_perm)) * 0 + s.row_perm, None
        )
        # simpler: the chosen fill must be <= both candidates' fills on
        # the mc64-scaled matrix
        from repro.ordering import mc64

        r = mc64(a)
        base = a.scale(r.row_scale, r.col_scale).permute(r.row_perm, None)
        fills = []
        for fn in (nested_dissection, amd):
            q = fn(base)
            fills.append(sym(base.permute(q, q)).nnz_lu)
        assert s.symbolic.nnz_lu <= min(fills) + 1  # diagonal insertion slack

    def test_best_solves(self):
        a = random_sparse(50, 0.08, seed=14)
        s = PanguLU(a, SolverOptions(ordering="best"))
        x = s.solve(np.ones(50))
        assert s.residual_norm(x, np.ones(50)) < 1e-9
