"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSCMatrix, random_sparse
from repro.symbolic import symbolic_symmetric


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix() -> CSCMatrix:
    """An 80×80 diagonally dominant random sparse matrix."""
    return random_sparse(80, 0.06, seed=7)


@pytest.fixture
def filled_blocks(small_matrix):
    """A 2×2 block split of the symbolic fill of ``small_matrix``:
    ``(D, B, R, C)`` = diagonal block, U-side block, L-side block, Schur
    target — all patterns closed under fill by construction."""
    f = symbolic_symmetric(small_matrix).filled
    m = 40
    rows_top = np.arange(0, m)
    rows_bot = np.arange(m, 80)
    d = f.extract_submatrix(rows_top, range(0, m))
    b = f.extract_submatrix(rows_top, range(m, 80))
    r = f.extract_submatrix(rows_bot, range(0, m))
    c = f.extract_submatrix(rows_bot, range(m, 80))
    return d, b, r, c


def dense_lu_nopivot(d: np.ndarray) -> np.ndarray:
    """Reference dense LU without pivoting, packed L\\U."""
    d = d.copy()
    n = d.shape[0]
    for k in range(n):
        assert d[k, k] != 0, "reference LU hit a zero pivot"
        d[k + 1 :, k] /= d[k, k]
        d[k + 1 :, k + 1 :] -= np.outer(d[k + 1 :, k], d[k, k + 1 :])
    return d


@pytest.fixture
def dense_lu():
    return dense_lu_nopivot
