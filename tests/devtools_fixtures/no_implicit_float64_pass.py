"""Should-pass fixture for the `no-implicit-float64` rule."""

import numpy as np


def scratch_in_factor_dtype(blk):
    return np.zeros(blk.nnz, dtype=blk.data.dtype)


def deliberately_double(n):
    return np.zeros(n, dtype=np.float64)  # double on purpose, and says so


def positional_dtype(n):
    return np.empty(n, np.float32)        # positional dtype argument


def full_with_dtype(n):
    return np.full(n, 1.0, dtype=np.float32)


def like_constructors_inherit(x):
    a = np.zeros_like(x)                  # *_like inherits the dtype
    b = np.empty_like(x)
    return a, b


def integer_workspaces(n):
    return np.zeros(n, dtype=np.int64)    # non-float dtypes equally explicit


def splatted_args_unknowable(shape_and_dtype):
    return np.zeros(*shape_and_dtype)     # arity unknowable — not flagged


def suppressed_scratch(n):
    return np.ones(n)                     # repro: noqa[no-implicit-float64]
