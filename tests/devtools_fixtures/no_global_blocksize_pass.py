"""Clean fixture for ``no-global-blocksize``: block dims come from the
partition's boundary-derived accessors."""


def forward_sweep(f, y):
    for k in range(f.nb):
        seg = f.block_slice(k)
        y[seg] *= 2.0
    return y


def run_panel(blocks, out):
    order = blocks.block_order(0)
    out[:order] = 0.0
    return out


def presize_workspace(ws, f):
    ws.presize(f.max_block_order)
    return ws
