"""Should-pass fixture for the `lock-discipline` rule."""

import threading

__guarded_by__ = {
    "cond": ("core.pop", "errors"),
}

cond = threading.Condition()


def worker(core, errors):
    with cond:
        tid = core.pop()
        if tid is None and not errors:
            errors.append(RuntimeError("starved"))
    return tid
