"""Should-pass: every path acquires the two locks in the same order.

Same shapes as the flag fixture — nested ``with`` blocks, an
acquisition through a call, even a lock *family* acquired while another
lock is held — but the global order (``lock_a`` before ``lock_b``) is
consistent, so the acquisition graph is acyclic.
"""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()
slot_locks = [threading.Lock() for _ in range(4)]


def work() -> None:
    pass


def helper() -> None:
    with lock_b:
        work()


def forward() -> None:
    with lock_a:
        helper()  # a -> b, matching the direct nesting below


def also_forward(slot: int) -> None:
    with lock_a:
        with lock_b:
            work()
        with slot_locks[slot]:  # a -> family, never family -> a
            work()
