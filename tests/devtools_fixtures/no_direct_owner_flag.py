"""Should-flag fixture for ``no-direct-owner``: direct grid ownership
queries and inline block-cyclic arithmetic."""


def scatter_blocks(f, grid):
    owners = {}
    for bi in range(f.nb):
        for bj in range(f.nb):
            owners[(bi, bj)] = grid.owner(bi, bj)  # flagged: grid receiver
    return owners


def owner_of(bi, bj, nprocs):
    from repro.core.mapping import ProcessGrid

    return ProcessGrid.square(nprocs).owner(bi, bj)  # flagged: grid call


def inline_rule(bi, bj, p, q):
    return (bi % p) * q + (bj % q)  # flagged: inline cyclic formula
