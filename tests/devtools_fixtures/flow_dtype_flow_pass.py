"""Should-pass: the same call shapes with explicit dtypes throughout.

Mixing float32 with *explicit* float64 is deliberate (iterative
refinement does exactly that) and is not flagged; neither are
dtype-parameterised allocations, nor implicit-float64 arrays that never
meet float32 data.
"""

import numpy as np


def axpy_f32(dst, work):
    scale = np.zeros(4, dtype=np.float32)
    dst[:] = work + scale


def driver(n):
    scratch = np.zeros(n, dtype=np.float32)  # stays in working precision
    out = np.zeros(n, dtype=np.float32)
    axpy_f32(out, scratch)
    return out


def refine(n):
    # explicit f64 against f32: the deliberate mixed-precision recipe
    residual = np.zeros(n, dtype=np.float64)
    correction = np.zeros(n, dtype=np.float32)
    return residual + correction


def generic(n, dtype):
    # dtype-parameterised: explicit, just not statically known
    work = np.zeros(n, dtype=dtype)
    f64_only = np.zeros(n)  # implicit, but never meets float32 data
    return work, f64_only
