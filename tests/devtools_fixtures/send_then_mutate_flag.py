"""Should-flag fixture for the `send-then-mutate` rule."""


def broadcast(endpoint, dests, blk, tid):
    payload = (tid, blk.indptr, blk.indices, blk.data)
    for dst in dests:
        endpoint.send(dst, payload)
    blk.data[0] = 0.0   # the receiver may still be reading this array
