"""Should-pass: payloads are copies or plain per-task data.

Copying calls (``np.array``, ``.copy()``, ``int``, ``list``) break
aliasing before the send; block views like ``target.indptr`` are final
when sent under the counter protocol (that invariant is
``send-then-mutate``'s job, from the sender's side).
"""

import numpy as np

__guarded_by__ = {
    "state_lock": ("pending",),
}

pending = []


def broadcast(endpoint, core, f, target):
    payload = (
        7,
        np.array(core.counters),   # a copy: safe to ship
        f.arena.data.copy(),       # ditto
        target.indptr,             # block view, final once sent
        target.data,
    )
    endpoint.send(1, payload)


def report(endpoint, core):
    endpoint.post_result((int(core.remaining), list(pending)))
