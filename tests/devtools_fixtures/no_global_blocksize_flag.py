"""Should-flag fixture for ``no-global-blocksize``: scalar block-size
uses below the partition layer."""


def forward_sweep(f, y):
    bs = f.bs  # flagged: .bs attribute read
    for k in range(f.nb):
        seg = slice(k * bs, k * bs + f.block_order(k))
        y[seg] *= 2.0
    return y


def run_panel(blocks, bs, out):  # flagged: `bs` parameter
    out[:bs] = 0.0
    return out


def launch(view, *, block_size=64):  # flagged: `block_size` keyword param
    return view, block_size
