"""Should-pass fixture for the `picklable-messages` rule."""

import threading


class RankReport:
    __transport_message__ = True

    kind = "report"  # plain class-level constants are fine

    def __init__(self, rank, payload):
        self.rank = rank
        self.payload = payload


class LocalScratch:
    """Not marked as a transport message — locks are fine here."""

    def __init__(self):
        self.lock = threading.Lock()
