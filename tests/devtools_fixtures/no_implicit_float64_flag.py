"""Should-flag fixture for the `no-implicit-float64` rule."""

import numpy as np
import numpy


def scratch_defaults_to_double(n):
    w = np.zeros(n)                       # silently float64
    return w


def panel_defaults_to_double(rows, cols):
    return np.empty((rows, cols))         # shape tuple, still no dtype


def unit_diag_defaults_to_double(n):
    return np.ones(n)


def fill_value_defaults(n, v):
    return np.full(n, v)                  # value dtype inferred, not stated


def qualified_import_counts_too(n):
    return numpy.zeros(n)
