"""Should-pass fixture for the `no-bare-except-in-runtime` rule."""

import logging

logger = logging.getLogger(__name__)


def worker_loop(endpoint, core, rank):
    try:
        endpoint.post_result(("ok", core.executed))
    except (OSError, ValueError) as exc:  # specific channel errors
        logger.error("rank %d could not report: %r", rank, exc)

    try:
        return core.pop()
    except Exception as exc:
        logger.exception("pop failed: %r", exc)  # broad but *reported*
        raise
