"""Should-flag fixture for the `kernel-purity` rule."""

import time  # clocks are banned in kernel modules

import numpy as np

_scratch = {}  # hidden module-level mutable state


def ssssm_bad(c, a, b, ws):
    a_data = a.data
    a_data[0] = time.time()       # mutates the read-only operand `a`
    b.data.fill(np.random.rand())  # mutates `b` and is nondeterministic
    return c
