"""Should-flag fixture for the `kernel-purity` rule."""

import time  # clocks are banned in kernel modules

import numpy as np

_scratch = {}  # hidden module-level mutable state


def ssssm_bad(c, a, b, ws):
    a_data = a.data
    a_data[0] = time.time()       # mutates the read-only operand `a`
    b.data.fill(np.random.rand())  # mutates `b` and is nondeterministic
    return c


def updf_bad(tgt, blk, src, plan=None):
    src[0] = 0.0                  # solve update mutates its source segment
    blk.data[:] = 1.0             # and the factor block it should only read
    return tgt


def diagb_bad(diag, x):
    diag.data[0] = 1.0            # diag solve mutates the factor block
    return x
