"""Should-flag: transport payloads aliasing live scheduler/arena state.

The tuple sent to the endpoint carries ``core.counters`` (mutated by
every ``pop``/``complete``), a factor-arena slab (overwritten in place
by ``refactorize``), and — through one level of dataflow plus a helper's
return expression — the module's own ``__guarded_by__``-declared state.
The loopback transport delivers all of them by reference.
"""

__guarded_by__ = {
    "state_lock": ("pending",),
}

pending = []


def snapshot():
    return pending  # returns the guarded list itself, not a copy


def broadcast(endpoint, core, f):
    payload = (7, core.counters, f.arena.data)
    endpoint.send(1, payload)  # counters + arena slab escape here


def report(endpoint):
    endpoint.post_result(snapshot())  # guarded state escapes via the helper
