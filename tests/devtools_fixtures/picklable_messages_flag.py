"""Should-flag fixture for the `picklable-messages` rule."""

import queue
import threading


class RankReport:
    __transport_message__ = True

    finalize = lambda self: None  # noqa: E731  (deliberate: lambda field)

    def __init__(self, rank):
        self.rank = rank
        self.lock = threading.Lock()      # does not survive pickling
        self.inbox = queue.Queue()        # neither does this

        def fmt():
            return f"rank {self.rank}"

        self.fmt = fmt                    # nor a closure
