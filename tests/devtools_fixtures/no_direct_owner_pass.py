"""Clean fixture for ``no-direct-owner``: ownership always goes through
the placement policy."""


def scatter_blocks(f, placement):
    owners = {}
    for bi in range(f.nb):
        for bj in range(f.nb):
            owners[(bi, bj)] = placement.owner(bi, bj)
    return owners


def assign(dag, nprocs):
    from repro.core.placement import CyclicPlacement

    return CyclicPlacement(nprocs).assign(dag)


def unrelated_arithmetic(a, b, p, q):
    # modulo without the paired cyclic shape is fine
    return (a % p) + b * q
