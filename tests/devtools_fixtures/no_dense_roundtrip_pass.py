"""Should-pass: U/V consumed directly; argumented .dense() is scratch."""
import numpy as np


def ssssm_lowrank(c, a_cb, b_blk, ws):
    # the sanctioned form: multiply against the factors themselves
    mid = b_blk.to_dense().T @ a_cb.v
    left = a_cb.u
    rows, cols = c.rows_cols()
    c.data[...] -= np.einsum("er,er->e", left[rows], mid[cols])


def scratch(ws):
    # Workspace.dense takes (which, shape, dtype) — not a round-trip
    return ws.dense("acc", (8, 8), np.float64)
