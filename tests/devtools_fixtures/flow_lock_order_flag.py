"""Should-flag: a lock-acquisition cycle that only exists across a call.

``forward`` holds ``lock_a`` while calling ``helper``, which acquires
``lock_b`` — the edge a → b exists only interprocedurally.  ``reverse``
nests the two directly in the opposite order (b → a).  Two threads
running ``forward`` and ``reverse`` concurrently can deadlock, each
holding the lock the other needs.
"""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def work() -> None:
    pass


def helper() -> None:
    with lock_b:
        work()


def forward() -> None:
    with lock_a:
        helper()  # acquires lock_b while lock_a is held


def reverse() -> None:
    with lock_b:
        with lock_a:  # opposite order: the cycle closes here
            work()
