"""Should-flag fixture for the `no-bare-except-in-runtime` rule."""


def worker_loop(endpoint, core):
    try:
        endpoint.post_result(("ok", core.executed))
    except Exception:
        pass  # the failure vanishes — the master hangs instead

    try:
        return core.pop()
    except:  # noqa: E722  (deliberate: the fixture under test)
        return None
