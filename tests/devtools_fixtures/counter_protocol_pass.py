"""Should-pass fixture for the `counter-protocol` rule."""


def protocol_completion(core, tid):
    newly_ready = core.complete(tid)   # the one sanctioned path
    depth = len(core.ready)            # reads are fine
    counters = list(core.counters)     # so are copies
    return newly_ready, depth, counters


def protocol_tsolve_absorb(core, msg, y, seg):
    src_tid, _tgt, arr = msg
    y[seg] = arr                       # RHS segments are not protocol state
    return core.complete(src_tid)      # remote completion, sanctioned path
