"""Should-flag fixture for the `no-block-rebind` rule."""

import numpy as np


def kernel_rebinds_data(blk, update):
    blk.data = blk.data - update          # rebind: detaches from the slab


def kernel_rebinds_via_augassign(blk, scale):
    blk.data *= scale                     # desugars to a .data rebind


def engine_swaps_pattern(blk, indptr, indices):
    blk.indptr = indptr                   # pattern arrays are views too
    blk.indices = indices


def engine_annotated_rebind(blk):
    blk.data: np.ndarray = np.zeros(blk.nnz)


def tuple_unpack_rebind(blk, other):
    blk.data, other.data = other.data, blk.data
