"""Should-pass: every suppression still masks a live finding.

The noqa'd line really does trip ``send-then-mutate`` (the buffer is
mutated after being sent), so the suppression is earning its keep —
and noqa text inside this docstring is prose, not a suppression:
``# repro: noqa[kernel-purity]`` here must not be mistaken for one.
"""


def send_then_patch(endpoint, buf):
    endpoint.send(0, buf)
    buf.fill(0.0)  # repro: noqa[send-then-mutate]
