"""Should-pass fixture for the `kernel-purity` rule."""

import numpy as np

SSSSM_VARIANTS = {}  # ALL_CAPS registry constants are allowed


def ssssm_good(c, a, b, ws):
    c_data = c.data               # local aliasing of the output is fine
    buf = ws.dense2d
    buf.fill(0.0)                 # the workspace is writable
    np.subtract.at(c_data, np.arange(1), a.data[:1] * b.data[:1])
    return c


def updf_good(tgt, blk, src, plan=None):
    tgt[blk.indices] = tgt[blk.indices] - blk.data * src[:1]  # writes target only
    return tgt


def diagb_good(diag, x):
    x[0] = x[0] / diag.data[-1]   # the RHS segment is the designated output
    return x
