"""Should-flag: an implicitly-float64 array leaks into a float32 path.

``driver`` allocates its scratch with ``np.zeros(n)`` — float64 by
omission, not by decision — and hands it to ``axpy_f32``, which combines
it with explicit float32 factor data: the whole update silently promotes
to float64.  The syntactic ``no-implicit-float64`` rule only sees the
allocation; the dataflow pass reports the *call site* where the implicit
array enters the float32 kernel, plus the direct in-function mix.
"""

import numpy as np


def axpy_f32(dst, work):
    scale = np.zeros(4, dtype=np.float32)
    dst[:] = work + scale  # mixes `work` with float32 data


def driver(n):
    scratch = np.zeros(n)  # float64 by omission
    out = np.zeros(n, dtype=np.float32)
    axpy_f32(out, scratch)  # implicit f64 enters the f32 path here
    return out


def direct_mix(n):
    lo = np.zeros(n, dtype=np.float32)
    hi = np.zeros(n)  # float64 by omission
    return lo + hi  # in-function implicit mix
