"""Should-flag fixture for the `counter-protocol` rule."""

import heapq


def hand_rolled_completion(core, tid):
    for s in core.successors[tid]:
        core.counters[s] -= 1                    # raw counter store
        if core.counters[s] == 0:
            heapq.heappush(core.ready, core.entries[s])  # raw heap push
    core.remaining -= 1                          # raw progress store


def hand_rolled_tsolve_absorb(core, msg, y, seg):
    src_tid, _tgt, arr = msg
    y[seg] = arr
    core.counters[core.successors[src_tid]] -= 1  # raw vectorised decrement
