"""Should-pass fixture for the `send-then-mutate` rule."""


def broadcast(endpoint, dests, blk, tid):
    blk.data[0] = 0.0   # mutating *before* the send is fine
    payload = (tid, blk.indptr, blk.indices, blk.data)
    for dst in dests:
        endpoint.send(dst, payload)


def report(endpoint, stats):
    endpoint.post_result(("ok", stats))
    stats = {}          # rebinding releases the name — no mutation
    stats["fresh"] = 1
    return stats
