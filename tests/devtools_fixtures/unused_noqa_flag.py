"""Should-flag: suppressions that no longer suppress anything.

The line-level noqa sits on a send with no later mutation (the rule it
names produces no finding there), the standalone comment suppresses a
rule that never fires in this file, and the last one names a rule that
does not exist at all.
"""

# repro: noqa[picklable-messages]


def quiet_send(endpoint, payload):
    endpoint.send(0, payload)  # repro: noqa[send-then-mutate]


def typo(endpoint, payload):
    endpoint.send(0, payload)  # repro: noqa[send-them-mutate]
