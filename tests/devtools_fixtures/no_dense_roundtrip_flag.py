"""Should-flag: materialising a compressed block inside an update."""


def ssssm_sloppy(c, a_cb, b_blk, ws):
    # round-trips the overlay to dense — the exact cost the low-rank
    # kernels exist to avoid
    a_dense = a_cb.dense()
    c.data[...] -= (a_dense @ b_blk.to_dense())[c.rows, c.cols]


def feature_peek(cb):
    return cb.dense().sum()
