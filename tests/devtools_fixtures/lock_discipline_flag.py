"""Should-flag fixture for the `lock-discipline` rule."""

import threading

__guarded_by__ = {
    "cond": ("core.pop", "errors"),
}

cond = threading.Condition()


def worker(core, errors):
    tid = core.pop()        # guarded call outside `with cond:`
    errors.append(tid)      # guarded mutation outside `with cond:`
    return tid
