"""Should-pass fixture for the `no-block-rebind` rule."""

import numpy as np


def kernel_writes_in_place(blk, plan, prod):
    blk.data[plan.dst] -= prod            # subscripted store: in place
    np.subtract.at(blk.data, plan.dst, prod)


def patch_back(blk, payload):
    blk.data[...] = payload               # full overwrite through the view


def segment_update(blk, s, e, vals):
    blk.data[s:e] = vals


def reads_are_fine(blk):
    local = blk.data                      # binding a *local* is not a rebind
    data = blk.indices.copy()
    indptr = np.asarray(blk.indptr)
    return local, data, indptr
