"""Tests for the 22 sparse kernel variants against dense references.

The block fixtures come from a real symbolic factorisation, so their
patterns satisfy the fill-closure property the kernels assume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    GESSM_VARIANTS,
    GETRF_VARIANTS,
    SSSSM_VARIANTS,
    TSTRF_VARIANTS,
    KernelType,
    SingularBlockError,
    Workspace,
    gessm_flops,
    getrf_flops,
    kernel_names,
    split_lu,
    ssssm_flops_structural,
    tstrf_flops,
)
from repro.kernels.registry import get_kernel, is_gpu_version
from repro.sparse import CSCMatrix, random_sparse
from repro.symbolic import symbolic_symmetric


@pytest.fixture
def ws():
    return Workspace()


def _blocks(seed: int, n: int = 70, split: int = 35):
    a = random_sparse(n, 0.07, seed=seed)
    f = symbolic_symmetric(a).filled
    top = np.arange(split)
    bot = np.arange(split, n)
    d = f.extract_submatrix(top, range(split))
    b = f.extract_submatrix(top, range(split, n))
    r = f.extract_submatrix(bot, range(split))
    c = f.extract_submatrix(bot, range(split, n))
    return d, b, r, c


def _dense_lu(d: np.ndarray) -> np.ndarray:
    d = d.copy()
    for k in range(d.shape[0]):
        d[k + 1 :, k] /= d[k, k]
        d[k + 1 :, k + 1 :] -= np.outer(d[k + 1 :, k], d[k, k + 1 :])
    return d


class TestRegistry:
    def test_twentytwo_kernels(self):
        assert len(kernel_names()) == 22

    def test_counts_per_type(self):
        counts = {}
        for ktype, _ in kernel_names():
            counts[ktype] = counts.get(ktype, 0) + 1
        assert counts == {
            KernelType.GETRF: 3,
            KernelType.GESSM: 5,
            KernelType.TSTRF: 5,
            KernelType.SSSSM: 6,
            KernelType.COMPRESS: 3,
        }

    def test_get_kernel_error(self):
        with pytest.raises(KeyError, match="valid"):
            get_kernel(KernelType.GETRF, "G_V9")

    def test_gpu_classification(self):
        assert is_gpu_version("G_V1")
        assert not is_gpu_version("C_V2")


class TestGETRF:
    @pytest.mark.parametrize("version", list(GETRF_VARIANTS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense(self, version, seed, ws):
        d, _, _, _ = _blocks(seed)
        ref = _dense_lu(d.to_dense())
        blk = d.copy()
        GETRF_VARIANTS[version](blk, ws)
        np.testing.assert_allclose(blk.to_dense(), ref, atol=1e-10)

    @pytest.mark.parametrize("version", list(GETRF_VARIANTS))
    def test_zero_pivot_raises(self, version, ws):
        dense = np.array([[0.0, 1.0], [1.0, 1.0]])
        blk = CSCMatrix.from_dense(np.array([[1.0, 1.0], [1.0, 1.0]]))
        blk.data[...] = CSCMatrix.from_dense(dense + np.eye(2) * 1e-300).data * 0
        # simplest: a block whose (0,0) value is exactly zero
        blk = CSCMatrix(
            (2, 2),
            np.array([0, 2, 4]),
            np.array([0, 1, 0, 1]),
            np.array([0.0, 1.0, 1.0, 1.0]),
        )
        with pytest.raises(SingularBlockError):
            GETRF_VARIANTS[version](blk, ws)

    @pytest.mark.parametrize("version", list(GETRF_VARIANTS))
    def test_pivot_floor_rescues(self, version, ws):
        blk = CSCMatrix(
            (2, 2),
            np.array([0, 2, 4]),
            np.array([0, 1, 0, 1]),
            np.array([0.0, 1.0, 1.0, 1.0]),
        )
        GETRF_VARIANTS[version](blk, ws, pivot_floor=1e-10)
        d = blk.to_dense()
        assert d[0, 0] != 0.0

    def test_variants_agree_exactly(self, ws):
        d, _, _, _ = _blocks(5)
        results = []
        for fn in GETRF_VARIANTS.values():
            blk = d.copy()
            fn(blk, ws)
            results.append(blk.to_dense())
        for r in results[1:]:
            np.testing.assert_allclose(r, results[0], atol=1e-12)


class TestGESSM:
    @pytest.mark.parametrize("version", list(GESSM_VARIANTS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense(self, version, seed, ws):
        d, b, _, _ = _blocks(seed)
        dfac = d.copy()
        GETRF_VARIANTS["C_V1"](dfac, ws)
        ref_lu = dfac.to_dense()
        l = np.tril(ref_lu, -1) + np.eye(d.ncols)
        expect = np.linalg.solve(l, b.to_dense())
        blk = b.copy()
        GESSM_VARIANTS[version](dfac, blk, ws)
        np.testing.assert_allclose(blk.to_dense(), expect, atol=1e-10)

    def test_empty_rhs(self, ws):
        d, _, _, _ = _blocks(3)
        dfac = d.copy()
        GETRF_VARIANTS["C_V1"](dfac, ws)
        empty = CSCMatrix.empty((d.nrows, 4))
        for fn in GESSM_VARIANTS.values():
            fn(dfac, empty, ws)  # must not crash
        assert empty.nnz == 0


class TestTSTRF:
    @pytest.mark.parametrize("version", list(TSTRF_VARIANTS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense(self, version, seed, ws):
        d, _, r, _ = _blocks(seed)
        dfac = d.copy()
        GETRF_VARIANTS["C_V1"](dfac, ws)
        u = np.triu(dfac.to_dense())
        expect = np.linalg.solve(u.T, r.to_dense().T).T
        blk = r.copy()
        TSTRF_VARIANTS[version](dfac, blk, ws)
        np.testing.assert_allclose(blk.to_dense(), expect, atol=1e-9)

    def test_empty_rhs(self, ws):
        d, _, _, _ = _blocks(3)
        dfac = d.copy()
        GETRF_VARIANTS["C_V1"](dfac, ws)
        empty = CSCMatrix.empty((4, d.ncols))
        for fn in TSTRF_VARIANTS.values():
            fn(dfac, empty, ws)
        assert empty.nnz == 0


class TestSSSSM:
    @pytest.mark.parametrize("version", list(SSSSM_VARIANTS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense(self, version, seed, ws):
        d, b, r, c = _blocks(seed)
        dfac = d.copy()
        GETRF_VARIANTS["C_V1"](dfac, ws)
        lblk = r.copy()
        TSTRF_VARIANTS["C_V2"](dfac, lblk, ws)
        ublk = b.copy()
        GESSM_VARIANTS["C_V2"](dfac, ublk, ws)
        expect = c.to_dense() - lblk.to_dense() @ ublk.to_dense()
        blk = c.copy()
        SSSSM_VARIANTS[version](blk, lblk, ublk, ws)
        np.testing.assert_allclose(blk.to_dense(), expect, atol=1e-10)

    @pytest.mark.parametrize("version", list(SSSSM_VARIANTS))
    def test_empty_operands_noop(self, version, ws):
        c = CSCMatrix.from_dense(np.ones((3, 3)))
        a_empty = CSCMatrix.empty((3, 3))
        b_empty = CSCMatrix.empty((3, 3))
        before = c.to_dense().copy()
        SSSSM_VARIANTS[version](c, a_empty, b_empty, ws)
        np.testing.assert_array_equal(c.to_dense(), before)


class TestSplitLU:
    def test_split_reassembles(self, ws):
        d, _, _, _ = _blocks(4)
        dfac = d.copy()
        GETRF_VARIANTS["C_V1"](dfac, ws)
        l, u = split_lu(dfac)
        packed = dfac.to_dense()
        np.testing.assert_allclose(
            l.to_dense(), np.tril(packed, -1) + np.eye(d.ncols)
        )
        np.testing.assert_allclose(u.to_dense(), np.triu(packed))


def _mask(m: CSCMatrix) -> np.ndarray:
    """Structural pattern mask (fill slots count even when their value is 0)."""
    out = np.zeros(m.shape, dtype=bool)
    r, c = m.rows_cols()
    out[r, c] = True
    return out


class TestFlopCounters:
    def test_getrf_flops_brute_force(self):
        d, _, _, _ = _blocks(6, n=30, split=15)
        dense = _mask(d)
        n = dense.shape[0]
        expect = 0
        for t in range(n):
            low = int(dense[t + 1 :, t].sum())
            up = int(dense[t, t + 1 :].sum())
            expect += low + 2 * low * up
        assert getrf_flops(d) == expect

    def test_gessm_flops_brute_force(self):
        d, b, _, _ = _blocks(6, n=30, split=15)
        dd = _mask(d)
        db = _mask(b)
        expect = 0
        for t in range(dd.shape[0]):
            low = int(dd[t + 1 :, t].sum())
            expect += 2 * low * int(db[t, :].sum())
        assert gessm_flops(d, b) == expect

    def test_tstrf_flops_brute_force(self):
        d, _, r, _ = _blocks(6, n=30, split=15)
        dd = _mask(d)
        dr = _mask(r)
        expect = int(dr.sum())
        for c in range(dd.shape[1]):
            up = int(dd[:c, c].sum())
            expect += 2 * up * int(dr[:, c].sum())
        assert tstrf_flops(d, r) == expect

    def test_ssssm_flops_brute_force(self):
        d, b, r, _ = _blocks(6, n=30, split=15)
        da = _mask(r)
        db = _mask(b)
        expect = 0
        for t in range(da.shape[1]):
            expect += 2 * int(da[:, t].sum()) * int(db[t, :].sum())
        assert ssssm_flops_structural(r, b) == expect


class TestWorkspace:
    def test_dense_grows_and_zeroes(self):
        ws = Workspace()
        a = ws.dense("a", (3, 4))
        a[...] = 7
        b = ws.dense("a", (2, 2))
        assert b.shape == (2, 2)
        np.testing.assert_array_equal(b, 0)

    def test_buffers_independent(self):
        ws = Workspace()
        a = ws.dense("a", (2, 2))
        b = ws.dense("b", (2, 2))
        a[...] = 1
        np.testing.assert_array_equal(b, 0)

    def test_vector(self):
        ws = Workspace()
        v = ws.vector(5)
        v[...] = 3
        v2 = ws.vector(3)
        np.testing.assert_array_equal(v2, 0)
