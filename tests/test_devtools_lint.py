"""Tests of the project-specific AST lint (`repro.devtools`).

Every rule is exercised against a pair of fixtures under
``tests/devtools_fixtures/``: a *should-flag* snippet containing the
violation the rule exists for, and a *should-pass* snippet showing the
sanctioned way to write the same thing.  The repo itself must lint clean
— that is the gate ``make lint`` / ``scripts/check.sh`` enforce.
"""

from pathlib import Path

import pytest

from repro.devtools import lint as lint_cli
from repro.devtools.astlint import (
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "devtools_fixtures"
SRC = Path(__file__).parent.parent / "src"

#: rule name → fixture basename
RULE_FIXTURES = {
    "lock-discipline": "lock_discipline",
    "counter-protocol": "counter_protocol",
    "kernel-purity": "kernel_purity",
    "send-then-mutate": "send_then_mutate",
    "no-bare-except-in-runtime": "bare_except",
    "picklable-messages": "picklable_messages",
    "no-block-rebind": "no_block_rebind",
    "no-dense-roundtrip": "no_dense_roundtrip",
    "no-direct-owner": "no_direct_owner",
    "no-global-blocksize": "no_global_blocksize",
    "no-implicit-float64": "no_implicit_float64",
    "unused-noqa": "unused_noqa",
}


def _run_rule(rule_name: str, path: Path):
    """Lint one fixture with exactly one rule (bypassing path filters)."""
    rule = all_rules()[rule_name]
    return lint_file(path, rules=[rule])


# ----------------------------------------------------------------------
# per-rule fixtures
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rule_name", sorted(RULE_FIXTURES))
def test_rule_flags_its_fixture(rule_name):
    findings = _run_rule(
        rule_name, FIXTURES / f"{RULE_FIXTURES[rule_name]}_flag.py"
    )
    assert findings, f"{rule_name} missed its should-flag fixture"
    assert all(f.rule == rule_name for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize("rule_name", sorted(RULE_FIXTURES))
def test_rule_passes_its_clean_fixture(rule_name):
    findings = _run_rule(
        rule_name, FIXTURES / f"{RULE_FIXTURES[rule_name]}_pass.py"
    )
    assert findings == [], [f.format() for f in findings]


def test_every_registered_rule_has_fixtures():
    assert set(all_rules()) == set(RULE_FIXTURES)


def test_rule_finding_details():
    findings = _run_rule("lock-discipline", FIXTURES / "lock_discipline_flag.py")
    messages = "\n".join(f.message for f in findings)
    assert "core.pop" in messages
    assert "errors" in messages
    flagged_lines = {f.line for f in findings}
    assert len(flagged_lines) == 2  # the call and the mutation


def test_kernel_purity_flags_tsolve_roles():
    """The phase-5 segment-kernel roles are covered: an update mutating
    its source segment or factor block, and a diag solve mutating the
    factor block, are all named with the right designated output."""
    findings = _run_rule("kernel-purity", FIXTURES / "kernel_purity_flag.py")
    messages = "\n".join(f.message for f in findings)
    assert "updf_bad() mutates read-only operand 'src'" in messages
    assert "updf_bad() mutates read-only operand 'blk'" in messages
    assert "diagb_bad() mutates read-only operand 'diag'" in messages
    assert "designated output is 'x'" in messages


def test_kernel_purity_scopes_cover_tsolve_kernels():
    """The rule's path filter includes the phase-5 kernel module (and the
    module itself lints clean)."""
    rule = all_rules()["kernel-purity"]
    path = SRC / "repro" / "kernels" / "tsolve_kernels.py"
    assert rule.applies_to(str(path))
    assert lint_file(path, rules=[rule]) == []


def test_counter_protocol_flags_tsolve_absorb():
    findings = _run_rule(
        "counter-protocol", FIXTURES / "counter_protocol_flag.py"
    )
    assert any(
        f.message.startswith("raw store to scheduler .counters")
        and f.line > 10  # the tsolve-flavoured fixture, not the first one
        for f in findings
    )


def test_no_block_rebind_scope():
    """The rule covers the kernel and engine modules (which lint clean)
    and excludes the storage types that legitimately bind the arrays."""
    rule = all_rules()["no-block-rebind"]
    for rel in (
        ("kernels", "plans.py"),
        ("core", "numeric.py"),
        ("core", "tsolve.py"),
        ("runtime", "distributed.py"),
        ("runtime", "threaded.py"),
    ):
        path = SRC.joinpath("repro", *rel)
        assert rule.applies_to(str(path))
        assert lint_file(path, rules=[rule]) == [], rel
    assert not rule.applies_to(str(SRC / "repro" / "core" / "blocking.py"))


def test_no_dense_roundtrip_scope():
    """The rule covers the modules that consume compressed blocks (all
    clean) and excludes the one approved round-trip — the ``EXPAND_V1``
    decompress kernel in ``kernels/compress.py``."""
    rule = all_rules()["no-dense-roundtrip"]
    for rel in (
        ("core", "numeric.py"),
        ("core", "solver.py"),
        ("runtime", "distributed.py"),
        ("runtime", "threaded.py"),
        ("sparse", "blockrep.py"),
    ):
        path = SRC.joinpath("repro", *rel)
        assert rule.applies_to(str(path))
        assert lint_file(path, rules=[rule]) == [], rel
    assert not rule.applies_to(
        str(SRC / "repro" / "kernels" / "compress.py")
    )


def test_counter_protocol_clean_on_tsolve_engines():
    """The real solve-engine modules obey the protocol rule."""
    rule = all_rules()["counter-protocol"]
    for rel in (
        ("core", "tsolve.py"),
        ("runtime", "threaded.py"),
        ("runtime", "distributed.py"),
        ("runtime", "engines.py"),
    ):
        path = SRC.joinpath("repro", *rel)
        assert rule.applies_to(str(path))
        assert lint_file(path, rules=[rule]) == [], rel


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------

BAD_EXCEPT = (
    "def f(endpoint):\n"
    "    try:\n"
    "        endpoint.post_result(1)\n"
    "    except Exception:\n"
    "        pass\n"
)


def _bare_rule():
    return [all_rules()["no-bare-except-in-runtime"]]


def test_line_suppression():
    src = BAD_EXCEPT.replace(
        "except Exception:",
        "except Exception:  # repro: noqa[no-bare-except-in-runtime]",
    )
    assert lint_source(BAD_EXCEPT, rules=_bare_rule())
    assert lint_source(src, rules=_bare_rule()) == []


def test_line_suppression_other_rule_does_not_apply():
    src = BAD_EXCEPT.replace(
        "except Exception:",
        "except Exception:  # repro: noqa[kernel-purity]",
    )
    assert lint_source(src, rules=_bare_rule())


def test_file_suppression_via_standalone_comment():
    src = "# repro: noqa[no-bare-except-in-runtime]\n" + BAD_EXCEPT
    assert lint_source(src, rules=_bare_rule()) == []


def test_blanket_suppression():
    src = BAD_EXCEPT.replace(
        "except Exception:", "except Exception:  # repro: noqa"
    )
    assert lint_source(src, rules=_bare_rule()) == []


# ----------------------------------------------------------------------
# framework behaviour
# ----------------------------------------------------------------------

def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def f(:\n")
    assert [f.rule for f in findings] == ["syntax-error"]


def test_path_filters_keep_rules_off_foreign_files():
    # kernel-purity is scoped to the kernel modules: the same source
    # linted under a non-kernel path produces nothing
    bad = (FIXTURES / "kernel_purity_flag.py").read_text()
    assert lint_source(bad, path="somewhere/else.py") == []


def test_lint_paths_skips_fixture_directory():
    findings = lint_paths([FIXTURES.parent])
    assert not any("devtools_fixtures" in f.path for f in findings)


def test_unknown_select_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_paths([FIXTURES], select=["no-such-rule"])


def test_renderers():
    findings = _run_rule("counter-protocol", FIXTURES / "counter_protocol_flag.py")
    text = render_text(findings)
    assert "[counter-protocol]" in text and "findings" in text
    import json

    parsed = json.loads(render_json(findings))
    assert parsed and parsed[0]["rule"] == "counter-protocol"


# ----------------------------------------------------------------------
# the gate: the repo itself is clean, and the CLI exit codes work
# ----------------------------------------------------------------------

def test_repository_lints_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_cli_exit_codes(capsys, tmp_path):
    assert lint_cli.main([str(SRC / "repro" / "devtools")]) == 0
    assert "0 findings" in capsys.readouterr().out
    bad = tmp_path / "bad.py"
    bad.write_text((FIXTURES / "counter_protocol_flag.py").read_text())
    assert lint_cli.main([str(bad), "--select", "counter-protocol"]) == 1
    assert "[counter-protocol]" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert lint_cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in RULE_FIXTURES:
        assert name in out


def test_cli_json_format(capsys, tmp_path):
    import json

    # the bare-except rule is scoped to */repro/runtime/*.py, so give
    # the temporary copy a matching path
    bad = tmp_path / "repro" / "runtime" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text((FIXTURES / "bare_except_flag.py").read_text())
    assert lint_cli.main(
        [str(bad), "--select", "no-bare-except-in-runtime",
         "--format", "json"]
    ) == 1
    parsed = json.loads(capsys.readouterr().out)
    assert parsed
    assert all(f["rule"] == "no-bare-except-in-runtime" for f in parsed)
