"""Property-based tests for the supernodal baseline."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline import detect_supernodes, sn_factorize, sn_partition
from repro.sparse import random_sparse
from repro.symbolic import symbolic_gilbert_peierls


def _dense_lu(d: np.ndarray) -> np.ndarray:
    d = d.copy()
    for k in range(d.shape[0]):
        d[k + 1 :, k] /= d[k, k]
        d[k + 1 :, k + 1 :] -= np.outer(d[k + 1 :, k], d[k, k + 1 :])
    return d


@settings(max_examples=15, deadline=None)
@given(
    st.integers(6, 32),
    st.floats(0.06, 0.22),
    st.integers(0, 10_000),
    st.integers(2, 16),
    st.floats(0.0, 0.8),
)
def test_supernodal_factorisation_exact(n, density, seed, max_width, relax):
    """The dense-panel supernodal factorisation is exact for arbitrary
    matrices and arbitrary relaxation settings."""
    a = random_sparse(n, density, seed=seed)
    filled = symbolic_gilbert_peierls(a).filled
    part = detect_supernodes(filled, max_width=max_width, relax_pad=relax)
    m = sn_partition(filled, part)
    sn_factorize(m)
    np.testing.assert_allclose(m.to_dense(), _dense_lu(a.to_dense()), atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(4, 40),
    st.floats(0.05, 0.25),
    st.integers(0, 10_000),
    st.integers(1, 12),
)
def test_supernode_partition_invariants(n, density, seed, max_width):
    a = random_sparse(n, density, seed=seed)
    filled = symbolic_gilbert_peierls(a).filled
    part = detect_supernodes(filled, max_width=max_width)
    b = part.boundaries
    # boundaries form a partition
    assert b[0] == 0 and b[-1] == n
    assert np.all(np.diff(b) >= 1)
    assert part.widths().max() <= max_width
    # padding never loses entries
    assert part.nnz_padded >= part.nnz_actual
    # panel rows are sorted, below the supernode, in range
    for s in range(part.n_supernodes):
        rows = part.panel_rows[s]
        if rows.size:
            assert rows.min() >= b[s + 1]
            assert rows.max() < n
            assert np.all(np.diff(rows) > 0)
