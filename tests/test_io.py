"""Matrix Market reader/writer tests."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.sparse import CSCMatrix, random_sparse, read_matrix_market, write_matrix_market


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        a = random_sparse(30, 0.1, seed=1)
        path = tmp_path / "a.mtx"
        write_matrix_market(path, a, comment="roundtrip test")
        b = read_matrix_market(path)
        np.testing.assert_allclose(b.to_dense(), a.to_dense())

    def test_gzip_roundtrip(self, tmp_path):
        a = random_sparse(12, 0.2, seed=2)
        path = tmp_path / "a.mtx.gz"
        write_matrix_market(path, a)
        b = read_matrix_market(path)
        np.testing.assert_allclose(b.to_dense(), a.to_dense())

    def test_rectangular(self, tmp_path):
        d = np.zeros((3, 5))
        d[0, 4] = 2.5
        d[2, 1] = -1.0
        a = CSCMatrix.from_dense(d)
        path = tmp_path / "rect.mtx"
        write_matrix_market(path, a)
        np.testing.assert_allclose(read_matrix_market(path).to_dense(), d)


class TestFormats:
    def _write(self, tmp_path, text):
        p = tmp_path / "m.mtx"
        p.write_text(text)
        return p

    def test_symmetric_expansion(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 2.0\n"
            "3 1 4.0\n"
            "3 3 1.0\n",
        )
        m = read_matrix_market(p)
        expect = np.array([[2, 0, 4], [0, 0, 0], [4, 0, 1.0]])
        np.testing.assert_allclose(m.to_dense(), expect)

    def test_skew_symmetric_expansion(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n",
        )
        m = read_matrix_market(p)
        np.testing.assert_allclose(m.to_dense(), [[0, -3], [3, 0.0]])

    def test_pattern_field(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n",
        )
        m = read_matrix_market(p)
        np.testing.assert_allclose(m.to_dense(), [[0, 1], [1, 0.0]])

    def test_array_layout(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix array real general\n"
            "2 2\n"
            "1.0\n2.0\n3.0\n4.0\n",
        )
        m = read_matrix_market(p)
        # column-major file order
        np.testing.assert_allclose(m.to_dense(), [[1, 3], [2, 4.0]])

    def test_comments_skipped(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "1 1 1\n"
            "1 1 7.5\n",
        )
        m = read_matrix_market(p)
        assert m.to_dense()[0, 0] == 7.5


class TestErrors:
    def _write(self, tmp_path, text):
        p = tmp_path / "m.mtx"
        p.write_text(text)
        return p

    def test_not_matrix_market(self, tmp_path):
        p = self._write(tmp_path, "garbage\n1 1 1\n")
        with pytest.raises(ValueError, match="not a Matrix Market"):
            read_matrix_market(p)

    def test_complex_rejected(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
        )
        with pytest.raises(ValueError, match="complex"):
            read_matrix_market(p)

    def test_truncated_payload(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
        )
        with pytest.raises(ValueError, match="expected 3"):
            read_matrix_market(p)

    def test_hermitian_rejected(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
        )
        with pytest.raises(ValueError, match="symmetry"):
            read_matrix_market(p)
