"""Tests of the compressed low-rank block family (blockrep + kernels +
solver integration).

Covers the representation layer's truncation guarantees (exact-rank
recovery and the tolerance bound, in both value dtypes), the LR SSSSM
kernels against dense references, the profitability gates, the
``compress_tol=0`` bit-identity guarantee, the end-to-end compressed
solve on a filled low-rank regime across engines (wire traffic
included), and the refinement-stall escalation path that decompresses
and refactorises exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.solver import PanguLU, SolverOptions
from repro.kernels import Workspace
from repro.kernels.compress import (
    CompressPolicy,
    lr_ssssm_flops,
    ssssm_lr_v1,
    ssssm_lr_v2,
    try_compress,
)
from repro.kernels.selector import TaskFeatures
from repro.sparse import CSCMatrix
from repro.sparse.blockrep import (
    CompressedBlock,
    lr_profit_cap,
    randomized_svd,
    truncated_svd,
)


def _low_rank_dense(m, n, r, dtype, seed=0, decay=None):
    """An ``m×n`` matrix of *exact* rank ``r`` (optionally with a decaying
    spectrum appended below the tolerance floor)."""
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((m, r)).astype(dtype)
    v = rng.standard_normal((n, r)).astype(dtype)
    a = u @ v.T
    if decay is not None:
        noise = rng.standard_normal((m, n)).astype(dtype)
        a = a + decay * noise / np.linalg.norm(noise, 2) * np.linalg.norm(a, 2)
    return np.ascontiguousarray(a)


def _coupled_matrix(n=256, bs=32, rank=2, scale=0.05, diag=6.0, seed=11):
    """Dense-ish matrix with rank-``rank`` off-diagonal block coupling —
    the "filled regime" where panel blocks are genuinely low-rank."""
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n, rank))
    v = rng.standard_normal((n, rank))
    a = scale * (u @ v.T)
    for k in range(n // bs):
        s = slice(k * bs, (k + 1) * bs)
        a[s, s] = rng.standard_normal((bs, bs)) + diag * np.eye(bs)
    aspc = sp.csc_matrix(a)
    am = CSCMatrix(
        (n, n), aspc.indptr.astype(np.int64),
        aspc.indices.astype(np.int64), aspc.data,
    )
    return a, am


def _factorize(am, **kw):
    s = PanguLU(am, SolverOptions(**kw))
    s.preprocess()
    return s.factorize()


# ----------------------------------------------------------------------
# truncation property tests (satellite: exact rank + tolerance bound,
# float32 and float64)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("r", [1, 3, 6])
@pytest.mark.parametrize("factory", [truncated_svd, randomized_svd])
class TestTruncationProperties:
    def test_recovers_exact_rank(self, dtype, r, factory):
        tol = 1e-4 if dtype == np.float32 else 1e-10
        dense = _low_rank_dense(48, 40, r, dtype, seed=r)
        out = factory(dense, tol, max_rank=16)
        assert out is not None
        u, v = out
        assert u.shape == (48, r) and v.shape == (40, r)
        assert u.dtype == dtype and v.dtype == dtype
        err = np.linalg.norm(dense - u @ v.T, 2)
        assert err <= tol * np.linalg.norm(dense, 2)

    def test_honours_tolerance_bound(self, dtype, r, factory):
        """With a sub-tolerance tail appended, the factors still truncate
        at rank ``r`` and the reconstruction stays within the bound."""
        tol = 1e-3 if dtype == np.float32 else 1e-6
        dense = _low_rank_dense(48, 40, r, dtype, seed=10 + r, decay=tol / 50)
        out = factory(dense, tol, max_rank=16)
        assert out is not None
        u, v = out
        assert u.shape[1] == r
        err = np.linalg.norm(dense - u @ v.T, 2)
        # slack for the randomized range finder's residual in float32
        assert err <= 4 * tol * np.linalg.norm(dense, 2)

    def test_declines_above_max_rank(self, dtype, r, factory):
        """A spectrum that needs more than ``max_rank`` terms at the
        tolerance is rejected rather than silently mis-approximated."""
        rng = np.random.default_rng(99)
        dense = rng.standard_normal((48, 40)).astype(dtype)  # full rank
        assert factory(dense, 1e-10, max_rank=4) is None


# ----------------------------------------------------------------------
# gates and kernels
# ----------------------------------------------------------------------

class TestTryCompress:
    def _block(self, dense):
        aspc = sp.csc_matrix(dense)
        return CSCMatrix(
            dense.shape, aspc.indptr.astype(np.int64),
            aspc.indices.astype(np.int64), aspc.data,
        )

    def test_profit_gate_rejects_sparse_blocks(self):
        """A block whose nnz cannot pay for even rank-1 factors is never
        compressed, whatever its spectrum."""
        dense = np.zeros((40, 40))
        dense[0, :] = 1.0  # rank 1, but only 40 nnz < m + n
        blk = self._block(dense)
        assert lr_profit_cap(40, 40, blk.nnz) == 0
        policy = CompressPolicy(tol=1e-8, min_order=8)
        assert try_compress(blk, policy) is None

    def test_min_order_gate(self):
        dense = _low_rank_dense(16, 16, 1, np.float64, seed=3)
        blk = self._block(dense)
        assert try_compress(blk, CompressPolicy(tol=1e-8, min_order=32)) is None
        cb = try_compress(blk, CompressPolicy(tol=1e-8, min_order=8))
        assert cb is not None and cb.rank == 1

    def test_compressed_block_accounting(self):
        dense = _low_rank_dense(64, 48, 3, np.float64, seed=5)
        blk = self._block(dense)
        cb = try_compress(blk, CompressPolicy(tol=1e-10, min_order=8))
        assert cb is not None
        assert cb.rank == 3
        assert cb.src_nnz == blk.nnz  # selector parity on remote ranks
        assert cb.value_nbytes == cb.u.nbytes + cb.v.nbytes
        assert cb.value_nbytes < blk.value_nbytes


class TestLRKernels:
    @pytest.mark.parametrize("mix", ["a", "b", "both"])
    def test_matches_dense_reference(self, mix, ws=None):
        ws = Workspace()
        rng = np.random.default_rng(17)
        m = n = k = 40
        a_dense = _low_rank_dense(m, k, 2, np.float64, seed=21)
        b_dense = _low_rank_dense(k, n, 3, np.float64, seed=22)
        def csc(d):
            m = sp.csc_matrix(d)
            return CSCMatrix(
                d.shape, m.indptr.astype(np.int64),
                m.indices.astype(np.int64), m.data.copy(),
            )
        a_blk, b_blk = csc(a_dense), csc(b_dense)
        policy = CompressPolicy(tol=1e-10, min_order=8)
        a_cb = try_compress(a_blk, policy)
        b_cb = try_compress(b_blk, policy)
        assert a_cb is not None and b_cb is not None

        c_dense = rng.standard_normal((m, n))
        c_ref = csc(c_dense)
        c_out = csc(c_dense)
        a_op = a_cb if mix in ("a", "both") else a_blk
        b_op = b_cb if mix in ("b", "both") else b_blk
        kernel = ssssm_lr_v2 if mix == "both" else ssssm_lr_v1
        kernel(c_out, a_op, b_op, ws)

        rows, cols = c_ref.rows_cols()
        expect = c_ref.data - (a_dense @ b_dense)[rows, cols]
        np.testing.assert_allclose(c_out.data, expect, atol=1e-10)

    def test_flops_scale_with_rank_not_order(self):
        a = CompressedBlock((64, 64), np.zeros((64, 2)), np.zeros((64, 2)), 4096)
        b = CompressedBlock((64, 64), np.zeros((64, 2)), np.zeros((64, 2)), 4096)
        lr = lr_ssssm_flops(1000, a, b)
        dense_flops = 2.0 * 64 * 64 * 64
        assert 0 < lr < dense_flops / 10


# ----------------------------------------------------------------------
# solver integration
# ----------------------------------------------------------------------

class TestBitIdentityWhenOff:
    def test_zero_tol_is_the_default_path(self):
        """``compress_tol=0`` factors byte-identically to options that
        never mention compression, with zero compression counters."""
        _, am = _coupled_matrix()
        f0 = _factorize(am, block_size=32)
        f1 = _factorize(am, block_size=32, compress_tol=0.0)
        for b0, b1 in zip(f0.blocks.blk_values, f1.blocks.blk_values):
            np.testing.assert_array_equal(b0.data, b1.data)
        assert f1.stats.blocks_compressed == 0
        assert f1.stats.lr_value_bytes == 0
        assert not f1.compression_active()

    def test_engines_agree_when_off(self):
        a, am = _coupled_matrix(seed=23)
        b = np.random.default_rng(5).standard_normal(am.nrows)
        x_seq = _factorize(am, block_size=32, engine="sequential").solve(b)
        x_dist = _factorize(
            am, block_size=32, engine="distributed", nprocs=3
        ).solve(b)
        np.testing.assert_array_equal(x_seq, x_dist)


class TestCompressedSolve:
    @pytest.mark.parametrize("engine,kw", [
        ("sequential", {}),
        ("threaded", {"n_workers": 3}),
        ("distributed", {"nprocs": 3}),
        ("hybrid", {"nprocs": 2, "n_workers": 2}),
    ])
    def test_filled_regime_compresses_and_solves(self, engine, kw):
        a, am = _coupled_matrix()
        b = np.random.default_rng(2).standard_normal(am.nrows)
        f = _factorize(
            am, block_size=32, engine=engine,
            compress_tol=1e-8, compress_min_order=16, **kw,
        )
        assert f.stats.blocks_compressed > 0
        assert f.stats.lr_value_bytes > 0
        assert f.compression_active()
        x = f.solve(b)
        resid = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        assert resid <= f.options.refine_tol * 10

    def test_lr_kernels_appear_in_choices(self):
        _, am = _coupled_matrix()
        f = _factorize(
            am, block_size=32, compress_tol=1e-8, compress_min_order=16,
        )
        labels = set(f.stats.kernel_choices.values())
        assert any(lbl.startswith("SSSSM/LR_") for lbl in labels)

    def test_distributed_wire_bytes_shrink(self):
        """Compressed panels ship as U/V: the loopback byte accounting
        must come in strictly under the CSC payload accounting."""
        from repro.core import block_partition, build_dag
        from repro.core.numeric import NumericOptions
        from repro.runtime.distributed import factorize_distributed
        from repro.runtime.transports import LoopbackTransport
        from repro.symbolic import symbolic_symmetric

        def run(compress_tol):
            _, am = _coupled_matrix(seed=31)
            filled = symbolic_symmetric(am).filled
            bm = block_partition(filled, 32)
            dag = build_dag(bm)
            return factorize_distributed(
                bm, dag, 3, transport=LoopbackTransport(),
                options=NumericOptions(
                    compress_tol=compress_tol, compress_min_order=16
                ),
            )

        off = run(0.0)
        on = run(1e-8)
        assert on.blocks_compressed > 0
        assert on.lr_value_bytes > 0
        assert on.block_bytes_sent < off.block_bytes_sent

    def test_memory_report_effective_bytes(self):
        from repro.core.memory import memory_report

        _, am = _coupled_matrix()
        f = _factorize(
            am, block_size=32, compress_tol=1e-8, compress_min_order=16,
        )
        rep = memory_report(f.blocks)
        assert rep.lr_value_bytes > 0
        assert rep.compressed_csc_bytes > rep.lr_value_bytes
        assert rep.effective_traffic_bytes < (
            rep.values_bytes + rep.layer2_index_bytes
        )

    def test_refactorize_reuses_lr_slabs(self):
        """After an in-place refactorise the overlay is rebuilt (same
        pattern, new values) and the solve still meets the gate."""
        a, am = _coupled_matrix()
        f = _factorize(
            am, block_size=32, compress_tol=1e-8, compress_min_order=16,
        )
        first = f.stats.blocks_compressed
        assert first > 0
        a2m = CSCMatrix(
            (am.nrows, am.ncols), am.indptr, am.indices, am.data * 1.5
        )
        stats = f.refactorize(a2m)
        assert stats.blocks_compressed == first
        b = np.random.default_rng(8).standard_normal(am.nrows)
        x = f.solve(b)
        resid = np.linalg.norm(1.5 * (a @ x) - b) / np.linalg.norm(b)
        assert resid <= f.options.refine_tol * 10


class TestEscalation:
    def test_decompress_restores_exact_factors(self):
        _, am = _coupled_matrix()
        exact = _factorize(am, block_size=32)
        f = _factorize(
            am, block_size=32, compress_tol=1e-8, compress_min_order=16,
        )
        assert f.compression_active()
        f.decompress()
        assert not f.compression_active()
        assert f.stats.blocks_compressed == 0
        for b0, b1 in zip(exact.blocks.blk_values, f.blocks.blk_values):
            np.testing.assert_array_equal(b0.data, b1.data)

    def test_stalled_refinement_escalates_to_exact(self):
        """A tolerance so loose the panels collapse to rank 1 butchers
        the factors; the solve must notice the stall, refactorise
        exactly, and still return an accurate solution."""
        a, am = _coupled_matrix(scale=1.0, diag=8.0, seed=41)
        f = _factorize(
            am, block_size=32, compress_tol=0.9, compress_min_order=16,
            refine_max_iter=4,
        )
        assert f.compression_active()
        b = np.random.default_rng(3).standard_normal(am.nrows)
        x = f.solve(b)
        resid = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        assert resid <= 1e-10
        # the escalation flipped compression off and refactorised
        assert not f.compression_active()


# ----------------------------------------------------------------------
# satellite: auto-calibrated rank speeds
# ----------------------------------------------------------------------

class TestAutoRankSpeeds:
    def test_calibrate_returns_normalised_tuple(self):
        from repro.runtime.calibrate import calibrate_rank_speeds

        speeds = calibrate_rank_speeds(3, order=48, repeats=2)
        assert len(speeds) == 3
        assert max(speeds) == 1.0
        assert all(0.0 < s <= 1.0 for s in speeds)

    def test_auto_resolves_during_preprocess(self):
        _, am = _coupled_matrix()
        s = PanguLU(am, SolverOptions(
            block_size=32, rank_speeds="auto", nprocs=2,
        ))
        s.preprocess()
        assert isinstance(s.options.rank_speeds, tuple)
        assert len(s.options.rank_speeds) == 2
        assert max(s.options.rank_speeds) == 1.0
