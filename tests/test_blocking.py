"""Tests for regular 2D blocking and the two-layer structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import block_partition, choose_block_size
from repro.sparse import CSCMatrix, random_sparse
from repro.symbolic import symbolic_symmetric


class TestChooseBlockSize:
    def test_positive(self):
        assert choose_block_size(1000, 50_000) > 0

    def test_rejects_nonpositive_order(self):
        with pytest.raises(ValueError):
            choose_block_size(0, 10)

    def test_sparser_matrices_get_coarser_grids(self):
        dense_bs = choose_block_size(4000, 2_000_000)
        sparse_bs = choose_block_size(4000, 10_000)
        assert sparse_bs >= dense_bs

    def test_enough_parallelism(self):
        # a mid-size matrix must yield a grid with many block columns
        bs = choose_block_size(2000, 400_000)
        assert 2000 // bs >= 16


class TestPartition:
    def _blocked(self, n=60, bs=16, seed=0):
        a = random_sparse(n, 0.08, seed=seed)
        f = symbolic_symmetric(a).filled
        return f, block_partition(f, bs)

    def test_roundtrip(self):
        f, bm = self._blocked()
        np.testing.assert_allclose(bm.to_csc().to_dense(), f.to_dense())

    def test_block_count_and_nnz_conserved(self):
        f, bm = self._blocked()
        assert sum(b.nnz for b in bm.blk_values) == f.nnz
        assert bm.num_blocks == len(bm.blk_values)

    def test_block_shapes(self):
        f, bm = self._blocked(n=50, bs=16)
        assert bm.nb == 4
        assert bm.block_order(0) == 16
        assert bm.block_order(3) == 2  # 50 - 3*16

    def test_block_lookup(self):
        f, bm = self._blocked()
        for bj in range(bm.nb):
            rows, blocks = bm.blocks_in_column(bj)
            for bi, blk in zip(rows, blocks):
                assert bm.block(int(bi), bj) is blk
        # an absent block returns None
        dense_mask = np.zeros((bm.nb, bm.nb), dtype=bool)
        for bj in range(bm.nb):
            rows, _ = bm.blocks_in_column(bj)
            dense_mask[rows, bj] = True
        absent = np.argwhere(~dense_mask)
        for bi, bj in absent[:3]:
            assert bm.block(int(bi), int(bj)) is None

    def test_local_patterns_sorted(self):
        _, bm = self._blocked()
        for blk in bm.blk_values:
            blk._validate()

    def test_supports(self):
        _, bm = self._blocked()
        for slot, blk in enumerate(bm.blk_values):
            np.testing.assert_array_equal(
                bm.col_support[slot], np.diff(blk.indptr) > 0
            )
            rs = np.zeros(blk.nrows, dtype=bool)
            rs[blk.indices] = True
            np.testing.assert_array_equal(bm.row_support[slot], rs)

    def test_blocks_in_row(self):
        f, bm = self._blocked()
        for bi in range(bm.nb):
            for bj, blk in bm.blocks_in_row(bi):
                assert bm.block(bi, bj) is blk

    def test_rejects_bad_inputs(self):
        a = random_sparse(10, 0.2, seed=1)
        with pytest.raises(ValueError, match="positive"):
            block_partition(a, 0)
        with pytest.raises(ValueError, match="square"):
            block_partition(CSCMatrix.empty((3, 4)), 2)

    def test_nnz_stats(self):
        _, bm = self._blocked()
        stats = bm.nnz_stats()
        assert stats["num_blocks"] == bm.num_blocks
        assert stats["nnz_total"] == sum(b.nnz for b in bm.blk_values)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(5, 40),
    st.integers(2, 20),
    st.floats(0.05, 0.3),
    st.integers(0, 10_000),
)
def test_partition_roundtrip_property(n, bs, density, seed):
    a = random_sparse(n, density, seed=seed)
    bm = block_partition(a, bs)
    np.testing.assert_allclose(bm.to_csc().to_dense(), a.to_dense())
    assert bm.nb == -(-n // bs)
