"""Tests for regular 2D blocking and the two-layer structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    block_partition,
    block_size_decision,
    boundaries_from_block_size,
    choose_block_size,
)
from repro.sparse import CSCMatrix, random_sparse
from repro.symbolic import symbolic_symmetric


class TestChooseBlockSize:
    def test_positive(self):
        assert choose_block_size(1000, 50_000) > 0

    def test_rejects_nonpositive_order(self):
        with pytest.raises(ValueError):
            choose_block_size(0, 10)

    def test_sparser_matrices_get_coarser_grids(self):
        dense_bs = choose_block_size(4000, 2_000_000)
        sparse_bs = choose_block_size(4000, 10_000)
        assert sparse_bs >= dense_bs

    def test_enough_parallelism(self):
        # a mid-size matrix must yield a grid with many block columns
        bs = choose_block_size(2000, 400_000)
        assert 2000 // bs >= 16


class TestBlockSizeDecision:
    def test_matches_choose_block_size(self):
        for n, nnz in ((1000, 50_000), (49, 1000), (10_000, 10)):
            d = block_size_decision(n, nnz)
            assert d.bs == choose_block_size(n, nnz)

    def test_unclamped_decision(self):
        # n=1024, dense enough: nb=32, bs_raw=32 inside [8, 512]
        d = block_size_decision(1024, 500_000)
        assert not d.size_clamped
        assert d.bs == d.bs_raw
        assert d.nb == d.nb_grid == d.nb_sqrt == 32

    def test_min_clamp_edge(self):
        # n=49 dense: grid 7, bs_raw=7, one below the default min of 8
        d = block_size_decision(49, 1000)
        assert d.bs_raw == 7
        assert d.bs == 8
        assert d.size_clamped

    def test_at_min_is_not_clamped(self):
        # bs_raw exactly at min_bs: the clamp edge itself does not fire
        d = block_size_decision(64, 2000)
        assert d.bs_raw == 8
        assert d.bs == 8
        assert not d.size_clamped

    def test_max_clamp_edge(self):
        # huge, nearly-empty matrix: coarsening drives the grid to the
        # floor of 4 and bs_raw far past the default max of 512
        d = block_size_decision(10_000, 10)
        assert d.nb == 4
        assert d.bs_raw == 2500
        assert d.bs == 512
        assert d.size_clamped

    def test_max_clamp_respects_override(self):
        d = block_size_decision(10_000, 10, max_bs=4096)
        assert d.bs == d.bs_raw == 2500
        assert not d.size_clamped

    def test_grid_clamp(self):
        # sqrt(100_000) ≈ 316 exceeds the 128-column grid ceiling
        d = block_size_decision(100_000, 50_000_000)
        assert d.nb_sqrt > 128
        assert d.nb_grid == 128
        assert d.grid_clamped

    def test_coarsening_recorded(self):
        d = block_size_decision(4000, 10_000)
        assert d.nb < d.nb_grid
        assert d.avg_block_nnz == pytest.approx(10_000 / d.nb**2)


class TestPartition:
    def _blocked(self, n=60, bs=16, seed=0):
        a = random_sparse(n, 0.08, seed=seed)
        f = symbolic_symmetric(a).filled
        return f, block_partition(f, bs)

    def test_roundtrip(self):
        f, bm = self._blocked()
        np.testing.assert_allclose(bm.to_csc().to_dense(), f.to_dense())

    def test_block_count_and_nnz_conserved(self):
        f, bm = self._blocked()
        assert sum(b.nnz for b in bm.blk_values) == f.nnz
        assert bm.num_blocks == len(bm.blk_values)

    def test_block_shapes(self):
        f, bm = self._blocked(n=50, bs=16)
        assert bm.nb == 4
        assert bm.block_order(0) == 16
        assert bm.block_order(3) == 2  # 50 - 3*16

    def test_block_lookup(self):
        f, bm = self._blocked()
        for bj in range(bm.nb):
            rows, blocks = bm.blocks_in_column(bj)
            for bi, blk in zip(rows, blocks):
                assert bm.block(int(bi), bj) is blk
        # an absent block returns None
        dense_mask = np.zeros((bm.nb, bm.nb), dtype=bool)
        for bj in range(bm.nb):
            rows, _ = bm.blocks_in_column(bj)
            dense_mask[rows, bj] = True
        absent = np.argwhere(~dense_mask)
        for bi, bj in absent[:3]:
            assert bm.block(int(bi), int(bj)) is None

    def test_local_patterns_sorted(self):
        _, bm = self._blocked()
        for blk in bm.blk_values:
            blk._validate()

    def test_supports(self):
        _, bm = self._blocked()
        for slot, blk in enumerate(bm.blk_values):
            np.testing.assert_array_equal(
                bm.col_support[slot], np.diff(blk.indptr) > 0
            )
            rs = np.zeros(blk.nrows, dtype=bool)
            rs[blk.indices] = True
            np.testing.assert_array_equal(bm.row_support[slot], rs)

    def test_blocks_in_row(self):
        f, bm = self._blocked()
        for bi in range(bm.nb):
            for bj, blk in bm.blocks_in_row(bi):
                assert bm.block(bi, bj) is blk

    def test_rejects_bad_inputs(self):
        a = random_sparse(10, 0.2, seed=1)
        with pytest.raises(ValueError, match="positive"):
            block_partition(a, 0)
        with pytest.raises(ValueError, match="square"):
            block_partition(CSCMatrix.empty((3, 4)), 2)

    def test_nnz_stats(self):
        _, bm = self._blocked()
        stats = bm.nnz_stats()
        assert stats["num_blocks"] == bm.num_blocks
        assert stats["nnz_total"] == sum(b.nnz for b in bm.blk_values)


class TestBoundaryPartition:
    """Partitioning from an explicit boundary array (the strategy seam)."""

    def _filled(self, n=50, seed=0, density=0.08):
        a = random_sparse(n, density, seed=seed)
        return symbolic_symmetric(a).filled

    def test_scalar_and_equispaced_boundaries_bit_identical(self):
        f = self._filled(n=50)
        bm_scalar = block_partition(f, 16)
        bm_bounds = block_partition(f, boundaries_from_block_size(50, 16))
        assert bm_scalar.bs == bm_bounds.bs == 16
        np.testing.assert_array_equal(bm_scalar.blk_colptr, bm_bounds.blk_colptr)
        np.testing.assert_array_equal(bm_scalar.blk_rowidx, bm_bounds.blk_rowidx)
        for a_blk, b_blk in zip(bm_scalar.blk_values, bm_bounds.blk_values):
            assert a_blk.shape == b_blk.shape
            np.testing.assert_array_equal(a_blk.indptr, b_blk.indptr)
            np.testing.assert_array_equal(a_blk.indices, b_blk.indices)
            np.testing.assert_array_equal(a_blk.data, b_blk.data)

    def test_indivisible_spacing(self):
        # n = 50 not divisible by the 16-wide spacing: ragged last block
        f = self._filled(n=50)
        bm = block_partition(f, np.array([0, 16, 32, 48, 50]))
        assert bm.nb == 4
        assert bm.block_order(3) == 2
        assert bm.block_start(3) == 48
        np.testing.assert_allclose(bm.to_csc().to_dense(), f.to_dense())

    def test_irregular_boundaries_roundtrip(self):
        f = self._filled(n=60)
        bm = block_partition(f, np.array([0, 7, 9, 30, 31, 55, 60]))
        assert bm.nb == 6
        assert [bm.block_order(b) for b in range(6)] == [7, 2, 21, 1, 24, 5]
        assert bm.bs == 24  # nominal size = widest extent
        assert not bm.is_regular
        assert sum(b.nnz for b in bm.blk_values) == f.nnz
        np.testing.assert_allclose(bm.to_csc().to_dense(), f.to_dense())

    def test_single_column_blocks(self):
        # every block one column wide: the scalar-LU degenerate layout
        n = 12
        f = self._filled(n=n, density=0.2)
        bm = block_partition(f, np.arange(n + 1))
        assert bm.nb == n
        assert bm.max_block_order == 1
        assert all(blk.shape == (1, 1) for blk in bm.blk_values)
        np.testing.assert_allclose(bm.to_csc().to_dense(), f.to_dense())

    def test_empty_trailing_block(self):
        # trailing block column whose only entry is its diagonal — every
        # off-diagonal block in the last block row/column is absent from
        # layer 1 (empty blocks are never stored)
        n = 10
        eye_tail = np.zeros((n, n))
        eye_tail[: n - 2, : n - 2] = random_sparse(
            n - 2, 0.4, seed=1
        ).to_dense()
        np.fill_diagonal(eye_tail, np.arange(1.0, n + 1))
        f = CSCMatrix.from_dense(eye_tail)
        bm = block_partition(f, np.array([0, 4, 8, n]))
        last = bm.nb - 1
        rows, _ = bm.blocks_in_column(last)
        assert list(rows) == [last]  # only the diagonal block is stored
        np.testing.assert_allclose(bm.to_csc().to_dense(), eye_tail)

    def test_arena_matches_per_block_on_irregular(self):
        f = self._filled(n=60)
        bounds = np.array([0, 7, 9, 30, 31, 55, 60])
        bm = block_partition(f, bounds)
        bm_arena = block_partition(f, bounds, arena=True)
        assert bm_arena.arena is not None
        for a_blk, b_blk in zip(bm.blk_values, bm_arena.blk_values):
            assert a_blk.shape == b_blk.shape
            np.testing.assert_array_equal(a_blk.indptr, b_blk.indptr)
            np.testing.assert_array_equal(a_blk.indices, b_blk.indices)
            np.testing.assert_array_equal(a_blk.data, b_blk.data)

    def test_rejects_bad_boundaries(self):
        f = self._filled(n=20)
        with pytest.raises(ValueError, match="strictly increasing"):
            block_partition(f, np.array([0, 10, 10, 20]))
        with pytest.raises(ValueError, match="from 0 to n"):
            block_partition(f, np.array([0, 10, 19]))
        with pytest.raises(ValueError, match="from 0 to n"):
            block_partition(f, np.array([1, 10, 20]))
        with pytest.raises(ValueError, match="length >= 2"):
            block_partition(f, np.array([20]))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(5, 40),
    st.integers(2, 20),
    st.floats(0.05, 0.3),
    st.integers(0, 10_000),
)
def test_partition_roundtrip_property(n, bs, density, seed):
    a = random_sparse(n, density, seed=seed)
    bm = block_partition(a, bs)
    np.testing.assert_allclose(bm.to_csc().to_dense(), a.to_dense())
    assert bm.nb == -(-n // bs)
