"""Edge cases across the stack: trivial sizes, degenerate structures."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU
from repro.core import block_partition, build_dag, factorize
from repro.runtime import CPU_PLATFORM, SimSpec, simulate
from repro.sparse import CSCMatrix
from repro.symbolic import symbolic_symmetric


class TestTrivialSizes:
    def test_one_by_one(self):
        a = CSCMatrix.from_dense(np.array([[4.0]]))
        s = PanguLU(a)
        x = s.solve(np.array([8.0]))
        np.testing.assert_allclose(x, [2.0])
        sign, logdet = s.slogdet()
        assert sign == 1.0 and logdet == pytest.approx(np.log(4.0))

    def test_two_by_two_antidiagonal(self):
        a = CSCMatrix.from_dense(np.array([[0.0, 2.0], [3.0, 0.0]]))
        s = PanguLU(a)
        x = s.solve(np.array([2.0, 3.0]))
        np.testing.assert_allclose(x, [1.0, 1.0])

    def test_diagonal_matrix(self):
        a = CSCMatrix.from_dense(np.diag([1.0, 2.0, 3.0, 4.0]))
        s = PanguLU(a)
        x = s.solve(np.ones(4))
        np.testing.assert_allclose(x, [1.0, 0.5, 1 / 3, 0.25])

    def test_dense_matrix(self):
        rng = np.random.default_rng(0)
        d = rng.standard_normal((12, 12)) + np.eye(12) * 20
        a = CSCMatrix.from_dense(d)
        s = PanguLU(a)
        b = rng.standard_normal(12)
        x = s.solve(b)
        np.testing.assert_allclose(d @ x, b, atol=1e-9)


class TestDegenerateStructures:
    def test_tridiagonal_chain(self):
        n = 30
        d = np.eye(n) * 3 + np.eye(n, k=1) * -1 + np.eye(n, k=-1) * -1
        a = CSCMatrix.from_dense(d)
        s = PanguLU(a)
        x = s.solve(np.ones(n))
        np.testing.assert_allclose(d @ x, 1.0, atol=1e-10)

    def test_arrowhead(self):
        # one dense row+column: the structure that makes blocking hard
        n = 25
        d = np.eye(n) * 5.0
        d[0, :] = 1.0
        d[:, 0] = 1.0
        d[0, 0] = n
        a = CSCMatrix.from_dense(d)
        s = PanguLU(a)
        b = np.arange(1.0, n + 1)
        x = s.solve(b)
        np.testing.assert_allclose(d @ x, b, atol=1e-9)

    def test_block_diagonal_independent(self):
        import scipy.sparse as sp

        from repro.sparse import grid_laplacian_2d

        g1 = grid_laplacian_2d(4, 4).to_scipy()
        g2 = grid_laplacian_2d(5, 5).to_scipy()
        a = CSCMatrix.from_scipy(sp.block_diag([g1, g2]))
        s = PanguLU(a)
        b = np.ones(41)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10

    def test_permutation_matrix_times_scale(self):
        n = 9
        perm = np.roll(np.arange(n), 3)
        d = np.zeros((n, n))
        d[np.arange(n), perm] = np.arange(2.0, n + 2)
        a = CSCMatrix.from_dense(d)
        s = PanguLU(a)
        b = np.ones(n)
        x = s.solve(b)
        np.testing.assert_allclose(d @ x, b, atol=1e-12)


class TestEmptySimulation:
    def test_zero_tasks(self):
        spec = SimSpec(
            durations=np.zeros(0),
            owner=np.zeros(0, dtype=np.int64),
            out_bytes=np.zeros(0),
            n_deps=np.zeros(0, dtype=np.int64),
            successors=[],
            priority=np.zeros(0),
            nprocs=2,
        )
        res = simulate(spec, CPU_PLATFORM)
        assert res.makespan == 0.0
        assert res.total_busy == 0.0


class TestSingleBlockFactorisation:
    def test_whole_matrix_one_block(self):
        rng = np.random.default_rng(1)
        d = rng.standard_normal((20, 20)) + np.eye(20) * 30
        a = CSCMatrix.from_dense(d)
        f = symbolic_symmetric(a).filled
        bm = block_partition(f, 64)
        assert bm.nb == 1
        dag = build_dag(bm)
        assert len(dag.tasks) == 1  # just GETRF
        factorize(bm, dag)
        lu = bm.to_csc().to_dense()
        l = np.tril(lu, -1) + np.eye(20)
        u = np.triu(lu)
        np.testing.assert_allclose(l @ u, d, atol=1e-9)
