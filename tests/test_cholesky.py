"""Tests for the SPD block Cholesky extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU
from repro.cholesky import (
    CholeskyOptions,
    NotPositiveDefiniteError,
    PanguLLt,
    potrf,
    potrf_flops,
    syrk,
    syrk_flops,
    trsm,
)
from repro.kernels import Workspace
from repro.sparse import CSCMatrix, generate, grid_laplacian_2d, random_sparse
from repro.symbolic import symbolic_symmetric


def spd_random(n: int, seed: int) -> CSCMatrix:
    """A random sparse SPD matrix: symmetrised dominant random."""
    a = random_sparse(n, 0.06, seed=seed, symmetric_pattern=True)
    d = a.to_dense()
    d = (d + d.T) / 2.0
    d += np.eye(n) * (np.abs(d).sum(axis=1).max())
    return CSCMatrix.from_dense(d)


class TestKernels:
    def _blocks(self, seed=0, n=60, split=30):
        a = spd_random(n, seed)
        f = symbolic_symmetric(a).filled
        from repro.cholesky.solver import _lower_triangle

        low = _lower_triangle(f)
        d = low.extract_submatrix(np.arange(split), range(split))
        r = low.extract_submatrix(np.arange(split, n), range(split))
        c = low.extract_submatrix(np.arange(split, n), range(split, n))
        return d, r, c

    def test_potrf_matches_numpy(self):
        d, _, _ = self._blocks()
        ws = Workspace()
        blk = d.copy()
        potrf(blk, ws)
        # reconstruct the full symmetric block from the lower storage
        full = d.to_dense() + np.tril(d.to_dense(), -1).T
        ref = np.linalg.cholesky(full)
        np.testing.assert_allclose(blk.to_dense(), ref, atol=1e-9)

    def test_potrf_rejects_indefinite(self):
        blk = CSCMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 1.0]]))
        blk.data[blk.data == 1.0] = -1.0  # negative diagonal
        with pytest.raises(NotPositiveDefiniteError):
            potrf(blk, Workspace())

    def test_trsm_matches_dense(self):
        d, r, _ = self._blocks(seed=1)
        ws = Workspace()
        dfac = d.copy()
        potrf(dfac, ws)
        l_full = dfac.to_dense()
        expect = np.linalg.solve(l_full, r.to_dense().T).T  # X L^T = B
        blk = r.copy()
        trsm(dfac, blk, ws)
        np.testing.assert_allclose(blk.to_dense(), expect, atol=1e-8)

    def test_syrk_matches_dense(self):
        d, r, c = self._blocks(seed=2)
        ws = Workspace()
        dfac = d.copy()
        potrf(dfac, ws)
        lblk = r.copy()
        trsm(dfac, lblk, ws)
        target = c.copy()
        syrk(target, lblk, lblk, ws)
        ld = lblk.to_dense()
        expect_full = c.to_dense() - np.tril(ld @ ld.T) + np.triu(ld @ ld.T, 1) * 0
        # only the lower part is stored; compare there
        mask = np.zeros(c.shape, dtype=bool)
        rr, cc = c.rows_cols()
        mask[rr, cc] = True
        np.testing.assert_allclose(
            target.to_dense()[mask],
            (c.to_dense() - (ld @ ld.T))[mask],
            atol=1e-8,
        )

    def test_flop_counters_positive(self):
        d, r, _ = self._blocks(seed=3)
        assert potrf_flops(d) > 0
        assert syrk_flops(r, r) > 0


class TestSolver:
    @pytest.mark.parametrize("ordering", ["nd", "amd", "natural"])
    def test_laplacian(self, ordering):
        a = grid_laplacian_2d(11, 11)
        s = PanguLLt(a, CholeskyOptions(ordering=ordering))
        b = np.arange(1.0, 122.0)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10

    @pytest.mark.parametrize("seed", range(3))
    def test_random_spd(self, seed):
        a = spd_random(70, seed)
        s = PanguLLt(a)
        b = np.random.default_rng(seed).standard_normal(70)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10
        assert s.factor_error() < 1e-10

    @pytest.mark.parametrize("name", ["audikw_1", "ldoor", "apache2", "Serena"])
    def test_spd_paper_analogues(self, name):
        a = generate(name, scale=0.1)
        s = PanguLLt(a)
        b = np.ones(a.nrows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-9

    def test_matches_lu_solution(self):
        a = spd_random(60, 7)
        b = np.ones(60)
        x_chol = PanguLLt(a).solve(b)
        x_lu = PanguLU(a).solve(b)
        np.testing.assert_allclose(x_chol, x_lu, atol=1e-8)

    def test_half_the_flops_of_lu(self):
        a = generate("apache2", scale=0.15)
        chol = PanguLLt(a)
        chol.factorize()
        lu = PanguLU(a)
        lu.preprocess()
        # Schur work roughly halves (plus panel savings); generous bound
        assert chol.flops < 0.75 * lu.dag.total_flops

    def test_rejects_indefinite(self):
        a = random_sparse(30, 0.1, seed=9)  # unsymmetric, not SPD
        d = a.to_dense()
        d = (d + d.T) / 2 - np.eye(30) * 100  # negative definite shift
        with pytest.raises(NotPositiveDefiniteError):
            PanguLLt(CSCMatrix.from_dense(d)).factorize()

    def test_rejects_rectangular_and_nan(self):
        with pytest.raises(ValueError, match="square"):
            PanguLLt(CSCMatrix.empty((2, 3)))
        a = spd_random(10, 1)
        a.data[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            PanguLLt(a)

    def test_explicit_block_size(self):
        a = spd_random(50, 3)
        s = PanguLLt(a, CholeskyOptions(block_size=8))
        s.preprocess()
        assert s.blocks.bs == 8
        x = s.solve(np.ones(50))
        assert s.residual_norm(x, np.ones(50)) < 1e-10
