"""Tests for the fill-reducing orderings (RCM, AMD, minimum degree, ND)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import amd, minimum_degree, nested_dissection, rcm
from repro.sparse import bandwidth, grid_laplacian_2d, random_sparse
from repro.symbolic import symbolic_symmetric


def _is_permutation(p: np.ndarray, n: int) -> bool:
    return p.shape == (n,) and np.array_equal(np.sort(p), np.arange(n))


def _fill_of(a, p):
    return symbolic_symmetric(a.permute(p, p)).nnz_lu


ORDERINGS = {
    "rcm": rcm,
    "amd": amd,
    "md": minimum_degree,
    "nd": nested_dissection,
}


class TestValidity:
    @pytest.mark.parametrize("name", list(ORDERINGS))
    def test_permutation_on_random(self, name):
        a = random_sparse(60, 0.06, seed=3)
        p = ORDERINGS[name](a)
        assert _is_permutation(p, 60)

    @pytest.mark.parametrize("name", list(ORDERINGS))
    def test_permutation_on_grid(self, name):
        g = grid_laplacian_2d(9, 9)
        p = ORDERINGS[name](g)
        assert _is_permutation(p, 81)

    @pytest.mark.parametrize("name", list(ORDERINGS))
    def test_empty_matrix(self, name):
        from repro.sparse import CSCMatrix

        p = ORDERINGS[name](CSCMatrix.empty((0, 0)))
        assert p.size == 0

    @pytest.mark.parametrize("name", ["amd", "nd"])
    def test_rejects_rectangular(self, name):
        from repro.sparse import CSCMatrix

        r = CSCMatrix.empty((3, 4))
        with pytest.raises(ValueError):
            ORDERINGS[name](r)

    @pytest.mark.parametrize("name", list(ORDERINGS))
    def test_disconnected_graph(self, name):
        # block-diagonal: two independent components
        import scipy.sparse as sp
        from repro.sparse import CSCMatrix

        g1 = grid_laplacian_2d(4, 4).to_scipy()
        g2 = grid_laplacian_2d(3, 3).to_scipy()
        a = CSCMatrix.from_scipy(sp.block_diag([g1, g2]))
        p = ORDERINGS[name](a)
        assert _is_permutation(p, 25)


class TestQuality:
    def test_rcm_reduces_bandwidth(self):
        a = random_sparse(150, 0.03, seed=9)
        p = rcm(a)
        assert bandwidth(a.permute(p, p)) <= bandwidth(a)

    def test_amd_beats_natural_on_grid(self):
        g = grid_laplacian_2d(14, 14)
        natural = _fill_of(g, np.arange(196))
        assert _fill_of(g, amd(g)) < natural

    def test_nd_beats_natural_on_grid(self):
        g = grid_laplacian_2d(14, 14)
        natural = _fill_of(g, np.arange(196))
        assert _fill_of(g, nested_dissection(g)) < natural

    def test_md_close_to_amd(self):
        g = grid_laplacian_2d(10, 10)
        f_amd = _fill_of(g, amd(g))
        f_md = _fill_of(g, minimum_degree(g))
        # AMD is an approximation of MD; allow generous slack both ways
        assert f_amd < 2.0 * f_md

    def test_nd_leaf_size_parameter(self):
        g = grid_laplacian_2d(12, 12)
        p1 = nested_dissection(g, leaf_size=16)
        p2 = nested_dissection(g, leaf_size=100)
        assert _is_permutation(p1, 144) and _is_permutation(p2, 144)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 40), st.floats(0.02, 0.25), st.integers(0, 10_000))
def test_all_orderings_are_permutations(n, density, seed):
    a = random_sparse(n, density, seed=seed)
    for fn in (rcm, amd, nested_dissection):
        assert _is_permutation(fn(a), n)


class TestColamd:
    def test_is_permutation(self):
        from repro.ordering import colamd

        a = random_sparse(70, 0.05, seed=4)
        assert _is_permutation(colamd(a), 70)

    def test_reduces_ata_fill(self):
        from repro.ordering import colamd

        a = random_sparse(80, 0.04, seed=6)
        p = colamd(a)
        natural = _fill_of(a, np.arange(80))
        # colamd orders for A^T A; on these matrices it should at least
        # not be catastrophically worse than natural on A itself, and the
        # solver integration tests check end-to-end behaviour
        assert _fill_of(a, p) < 2 * natural

    def test_unsymmetric_matrix(self):
        from repro.ordering import colamd
        from repro.sparse import generate

        a = generate("cage12", scale=0.15)
        assert _is_permutation(colamd(a), a.ncols)

    def test_solver_option(self):
        from repro import PanguLU, SolverOptions

        a = random_sparse(60, 0.06, seed=7)
        s = PanguLU(a, SolverOptions(ordering="colamd"))
        x = s.solve(np.ones(60))
        assert s.residual_norm(x, np.ones(60)) < 1e-9
