"""Unit tests for runtime helpers not covered by the larger suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import SuperLUBaseline, sn_etree_levels
from repro.kernels.base import solve_levels
from repro.runtime import A100_PLATFORM, MI50_PLATFORM, CPU_PLATFORM
from repro.sparse import random_sparse


class TestPlatforms:
    def test_message_time_components(self):
        p = A100_PLATFORM
        lat_only = p.message_time(0, 1, 0.0)
        assert lat_only == pytest.approx(p.intra_latency)
        big = p.message_time(0, 1, 1e9)
        assert big == pytest.approx(p.intra_latency + 1e9 / p.intra_bandwidth)

    def test_node_boundary(self):
        p = A100_PLATFORM  # 4 procs per node
        assert p.message_time(3, 4, 1e6) > p.message_time(0, 3, 1e6)
        assert p.message_time(4, 7, 1e6) == p.message_time(0, 3, 1e6)

    def test_platform_orderings(self):
        assert A100_PLATFORM.gpu.flops_peak > MI50_PLATFORM.gpu.flops_peak
        assert CPU_PLATFORM.gpu.flops_peak == CPU_PLATFORM.cpu.flops_peak


class TestSolveLevels:
    def test_diagonal_only_single_level(self):
        indptr = np.array([0, 1, 2, 3])
        cols = np.array([0, 1, 2])
        levels = solve_levels(indptr, cols, 3)
        assert len(levels) == 1
        np.testing.assert_array_equal(levels[0], [0, 1, 2])

    def test_chain_gives_one_row_per_level(self):
        # row r depends on r-1 (bidiagonal)
        indptr = np.array([0, 1, 3, 5])
        cols = np.array([0, 0, 1, 1, 2])
        levels = solve_levels(indptr, cols, 3)
        assert [list(l) for l in levels] == [[0], [1], [2]]

    def test_empty(self):
        assert solve_levels(np.array([0]), np.array([], dtype=int), 0) == []


class TestSupernodeEtree:
    def test_levels_consistent_with_parents(self):
        a = random_sparse(60, 0.07, seed=2)
        bl = SuperLUBaseline(a)
        bl.preprocess()
        levels = sn_etree_levels(bl.partition)
        assert levels.shape == (bl.partition.n_supernodes,)
        assert levels.min() >= 0
        # a parent's level strictly exceeds each child's
        col_to_sn = bl.partition.supernode_of_column()
        for k in range(bl.partition.n_supernodes):
            rows = bl.partition.panel_rows[k]
            if rows.size:
                parent = int(col_to_sn[int(rows[0])])
                assert levels[parent] > levels[k]


class TestChromeTrace:
    def test_events_well_formed(self, tmp_path):
        import json

        from repro.runtime import SimSpec, simulate, write_chrome_trace

        spec = SimSpec(
            durations=np.asarray([1e-3, 2e-3]),
            owner=np.asarray([0, 1]),
            out_bytes=np.zeros(2),
            n_deps=np.asarray([0, 1]),
            successors=[[1], []],
            priority=np.asarray([0.0, 1.0]),
            nprocs=2,
        )
        res = simulate(spec, CPU_PLATFORM)
        path = tmp_path / "trace.json"
        write_chrome_trace(
            path, res, spec.owner,
            names=["a", "b"], categories=["GETRF", "SSSSM"],
        )
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert len(events) == 3  # 2 tasks + makespan marker
        first = events[0]
        assert first["name"] == "a" and first["ph"] == "X"
        assert first["dur"] > 0
        # the dependent task starts after its predecessor ends
        assert events[1]["ts"] >= events[0]["ts"] + events[0]["dur"] - 1e-6


class TestNorms:
    def test_norm_1_and_inf(self):
        from repro.sparse import CSCMatrix

        d = np.array([[1.0, -2.0], [3.0, 0.0]])
        m = CSCMatrix.from_dense(d)
        assert m.norm_1() == 4.0
        assert m.norm_inf() == 3.0
        assert CSCMatrix.empty((2, 2)).norm_1() == 0.0
