"""Tests of the pre-execution schedule verifier (`repro.core.verify`).

Two directions: every DAG the real builders produce must verify clean
(factor DAGs across the block-size matrix, executable solve DAGs for
every owner map the engines use), and each hand-injected violation must
be rejected with its named diagnostic code — the codes are the contract
``--verify`` output and error-handling callers rely on.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core import block_partition, build_dag, factorize
from repro.core.dag import TaskType
from repro.core.solver import PanguLU, SolverOptions
from repro.core.tsolve_dag import TSolveTaskType, build_tsolve_dag
from repro.core.verify import ScheduleReport, ScheduleViolation, verify_dag
from repro.core.mapping import ProcessGrid
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def _blocked(n=72, bs=13, seed=0):
    a = random_sparse(n, 0.07, seed=seed)
    filled = symbolic_symmetric(a).filled
    return block_partition(filled, bs)


def _factor_dag(**kw):
    bm = _blocked(**kw)
    return bm, build_dag(bm)


def _tsolve_dag(owner=lambda bi, bj: 0, *, executable=True, **kw):
    bm, dag = _factor_dag(**kw)
    factorize(bm, dag)
    return build_tsolve_dag(bm, owner, executable=executable)


def _raises(code, dag):
    with pytest.raises(ScheduleViolation) as exc:
        verify_dag(dag)
    assert exc.value.code == code
    assert f"[{code}]" in str(exc.value)
    return str(exc.value)


# ----------------------------------------------------------------------
# real DAGs verify clean
# ----------------------------------------------------------------------

class TestAcceptsRealDags:
    @pytest.mark.parametrize(
        "n,bs,seed", [(40, 8, 0), (72, 13, 1), (90, 16, 2), (60, 60, 3)]
    )
    def test_factor_dags(self, n, bs, seed):
        _, dag = _factor_dag(n=n, bs=bs, seed=seed)
        report = verify_dag(dag)
        assert isinstance(report, ScheduleReport)
        assert report.kind == "factor"
        assert report.n_tasks == len(dag.tasks)
        assert report.n_roots >= 1
        assert 1 <= report.depth <= report.n_tasks
        assert "verified" in str(report)

    @pytest.mark.parametrize(
        "owner",
        [
            lambda bi, bj: 0,
            ProcessGrid.square(2).owner,
            ProcessGrid.square(3).owner,
        ],
        ids=["single", "grid2", "grid3"],
    )
    def test_executable_tsolve_dags(self, owner):
        tdag = _tsolve_dag(owner)
        report = verify_dag(tdag)
        assert report.kind == "tsolve"
        assert report.n_tasks == len(tdag)

    def test_simulator_tsolve_dag_base_checks_only(self):
        # the non-executable build has no writer chains (seq arrays are
        # None) — edges/counters/acyclicity still verify
        tdag = _tsolve_dag(executable=False)
        assert tdag.seq_y is None
        assert verify_dag(tdag).kind == "tsolve"

    def test_unsupported_dag_type(self):
        with pytest.raises(TypeError, match="unsupported DAG type"):
            verify_dag(object())


# ----------------------------------------------------------------------
# injected violations are rejected by name
# ----------------------------------------------------------------------

class TestRejectsFactorViolations:
    @pytest.fixture()
    def dag(self):
        return _factor_dag()[1]

    def test_bad_edge(self, dag):
        bad = copy.deepcopy(dag)
        bad.tasks[0].successors.append(len(bad.tasks) + 7)
        msg = _raises("bad-edge", bad)
        assert "task 0" in msg

    def test_counter_mismatch(self, dag):
        bad = copy.deepcopy(dag)
        bad.tasks[-1].n_deps += 1
        msg = _raises("counter-mismatch", bad)
        assert f"task {bad.tasks[-1].tid}" in msg

    def test_cycle(self, dag):
        bad = copy.deepcopy(dag)
        # close a 2-cycle with counters kept consistent, so the Kahn
        # pass (not the counter check) is what rejects it
        t = next(t for t in bad.tasks if t.successors)
        s = t.successors[0]
        bad.tasks[s].successors.append(t.tid)
        bad.tasks[t.tid].n_deps += 1
        msg = _raises("cycle", bad)
        assert "->" in msg  # a concrete cycle is named

    def test_double_writer(self, dag):
        bad = copy.deepcopy(dag)
        ssssm = next(t for t in bad.tasks if t.ttype == TaskType.SSSSM)
        panel = bad.panel_of_block[(ssssm.bi, ssssm.bj)]
        ssssm.successors.remove(panel)
        bad.tasks[panel].n_deps -= 1
        msg = _raises("double-writer", bad)
        assert f"({ssssm.bi},{ssssm.bj})" in msg


class TestRejectsTsolveViolations:
    @pytest.fixture(scope="class")
    def tdag(self):
        return _tsolve_dag(ProcessGrid.square(2).owner)

    def test_cycle(self, tdag):
        bad = copy.deepcopy(tdag)
        t = next(i for i, s in enumerate(bad.successors) if s)
        s = bad.successors[t][0]
        bad.successors[s].append(t)
        bad.n_deps[t] += 1
        _raises("cycle", bad)

    def test_segment_order_gap(self, tdag):
        bad = copy.deepcopy(tdag)
        tid = int(np.flatnonzero(bad.seq_y >= 0)[0])
        bad.seq_y[tid] += 5  # leaves a hole in the writer sequence
        msg = _raises("segment-order", bad)
        assert "y-segment" in msg

    def test_segment_order_unseeded_x(self, tdag):
        bad = copy.deepcopy(tdag)
        # find an x-segment with more than one writer and swap the
        # DIAG_F seed (seq 0) with the next writer: the sequence stays
        # contiguous but the segment is no longer seeded first
        kinds = np.asarray(bad.kinds)
        for seg in range(int(bad.target.max()) + 1):
            tids = np.flatnonzero((bad.target == seg) & (bad.seq_x >= 0))
            if len(tids) < 2:
                continue
            order = tids[np.argsort(bad.seq_x[tids])]
            first, second = int(order[0]), int(order[1])
            assert kinds[first] == int(TSolveTaskType.DIAG_F)
            bad.seq_x[first], bad.seq_x[second] = (
                bad.seq_x[second], bad.seq_x[first],
            )
            break
        else:  # pragma: no cover - matrix always has multi-writer segs
            pytest.skip("no multi-writer x-segment in this matrix")
        msg = _raises("segment-order", bad)
        assert "DIAG_F" in msg

    def test_unchained_writer(self, tdag):
        bad = copy.deepcopy(tdag)
        # break the direct edge between two consecutive y-writers while
        # keeping counters consistent, so only the chain check can object
        for seg in range(int(bad.target.max()) + 1):
            tids = np.flatnonzero((bad.target == seg) & (bad.seq_y >= 0))
            if len(tids) < 2:
                continue
            order = tids[np.argsort(bad.seq_y[tids])]
            a, b = int(order[0]), int(order[1])
            if b in bad.successors[a]:
                bad.successors[a].remove(b)
                bad.n_deps[b] -= 1
                break
        else:  # pragma: no cover
            pytest.skip("no chained y-segment in this matrix")
        msg = _raises("unchained-writer", bad)
        assert "race" in msg


# ----------------------------------------------------------------------
# solver / CLI wiring
# ----------------------------------------------------------------------

class TestSolverIntegration:
    @pytest.mark.parametrize(
        "engine,kw",
        [
            ("sequential", {}),
            ("threaded", {"n_workers": 3}),
            ("distributed", {"nprocs": 2}),
        ],
    )
    def test_verify_schedule_option(self, engine, kw):
        a = random_sparse(64, 0.08, seed=5)
        b = np.arange(1.0, 65.0)
        solver = PanguLU(
            a,
            SolverOptions(
                block_size=12, engine=engine, verify_schedule=True, **kw
            ),
        )
        x = solver.solve(b)
        assert solver.residual_norm(x, b) < 1e-9
        # both DAGs were verifiable on demand too
        assert verify_dag(solver.dag).kind == "factor"

    def test_cli_verify_flag(self, capsys):
        from repro.__main__ import main

        rc = main(["solve", "ecology1", "--scale", "0.12", "--verify"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "factor DAG verified" in out
