"""Tests of the runtime race / invariant detector (`repro.devtools.racecheck`).

The detector must (a) stay silent on correct runs of every engine, and
(b) catch deliberately injected protocol violations — a double writer
under the threaded engine (per-block locks disabled), duplicate message
delivery under the loopback transport (``FaultPlan.duplicate_from``),
and dropped completions — reporting *which* tasks and workers collided.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import block_partition, build_dag, factorize
from repro.core.dag import Task, TaskType
from repro.core.solver import PanguLU, SolverOptions
from repro.devtools.racecheck import (
    CheckedSchedulerCore,
    ConcurrencyViolation,
    RaceChecker,
    validation_enabled,
)
from repro.runtime import factorize_distributed, factorize_threaded
from repro.runtime.scheduler import CounterUnderflowError, SchedulerCore
from repro.runtime.transports import FaultPlan, LoopbackTransport
from repro.sparse import grid_laplacian_2d, random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=80, bs=12, seed=0):
    a = random_sparse(n, 0.06, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return bm, build_dag(bm)


class _Stub:
    def __init__(self, tid, k, ttype, successors, n_deps):
        self.tid, self.k, self.ttype = tid, k, ttype
        self.successors, self.n_deps = successors, n_deps


class _StubDAG:
    def __init__(self, tasks):
        self.tasks = tasks


def _chain(n):
    return _StubDAG([
        _Stub(i, i, 0, [i + 1] if i + 1 < n else [], 0 if i == 0 else 1)
        for i in range(n)
    ])


# ----------------------------------------------------------------------
# RaceChecker unit behaviour
# ----------------------------------------------------------------------

class TestRaceChecker:
    def test_double_writer_names_both_parties(self):
        c = RaceChecker(label="unit")
        c.begin_write(slot=7, tid=3, worker=0)
        with pytest.raises(ConcurrencyViolation) as exc:
            c.begin_write(slot=7, tid=5, worker=2)
        msg = str(exc.value)
        assert "slot 7" in msg
        assert "task 5" in msg and "worker 2" in msg  # the intruder
        assert "task 3" in msg and "worker 0" in msg  # the holder
        assert c.violations  # kept for post-mortems

    def test_distinct_slots_do_not_collide(self):
        c = RaceChecker()
        c.begin_write(1, tid=0, worker=0)
        c.begin_write(2, tid=1, worker=1)
        c.end_write(1, tid=0, worker=0)
        c.end_write(2, tid=1, worker=1)
        c.begin_write(1, tid=2, worker=1)  # slot free again
        c.end_write(1, tid=2, worker=1)

    def test_unbalanced_release(self):
        c = RaceChecker()
        with pytest.raises(ConcurrencyViolation, match="unbalanced"):
            c.end_write(4, tid=0, worker=0)

    def test_duplicate_completion(self):
        c = RaceChecker()
        c.on_complete(9, worker=1)
        with pytest.raises(ConcurrencyViolation) as exc:
            c.on_complete(9, worker=3)
        assert "completed twice" in str(exc.value)
        assert "worker 1" in str(exc.value) and "worker 3" in str(exc.value)

    def test_reissue_detection(self):
        c = RaceChecker()
        c.on_pop(2, worker=0)
        with pytest.raises(ConcurrencyViolation, match="issued twice"):
            c.on_pop(2, worker=1)
        c2 = RaceChecker()
        c2.on_pop(4, worker=0)
        c2.on_complete(4, worker=0)
        with pytest.raises(ConcurrencyViolation, match="re-issued finished"):
            c2.on_pop(4, worker=1)

    def test_final_check_reports_dropped_completion(self):
        checker = RaceChecker(label="drop")
        core = CheckedSchedulerCore.from_dag(_chain(2), checker=checker)
        tid = core.pop()
        assert tid == 0
        # never complete it: the completion message was "dropped"
        with pytest.raises(ConcurrencyViolation, match="never completed"):
            checker.final_check(core)

    def test_final_check_reports_missing_owned_tasks(self):
        checker = RaceChecker(label="stuck")
        core = CheckedSchedulerCore.from_dag(_chain(3), checker=checker)
        core.complete(core.pop())  # t0 done, t1 and t2 never run
        with pytest.raises(ConcurrencyViolation, match="of 3 owned"):
            checker.final_check(core)

    def test_final_check_clean_after_full_drain(self):
        checker = RaceChecker()
        core = CheckedSchedulerCore.from_dag(_chain(4), checker=checker)
        while (tid := core.pop()) is not None:
            core.complete(tid)
        checker.final_check(core)  # no violation
        assert checker.violations == []


# ----------------------------------------------------------------------
# the always-on counter underflow guard (SchedulerCore.complete)
# ----------------------------------------------------------------------

class TestCounterUnderflow:
    def test_duplicate_completion_raises_diagnostic(self):
        core = SchedulerCore.from_dag(_chain(2))
        core.complete(0)
        with pytest.raises(CounterUnderflowError) as exc:
            core.complete(0)  # t1's counter would go to −1
        msg = str(exc.value)
        assert "completion of task 0" in msg
        assert "task 1" in msg and "-1" in msg
        assert "more than once" in msg

    def test_legitimate_completions_never_trip_it(self):
        core = SchedulerCore.from_dag(_chain(5))
        while (tid := core.pop()) is not None:
            core.complete(tid)
        core.check("unit")
        assert np.all(core.counters == 0)


# ----------------------------------------------------------------------
# injected double writer under the threaded engine
# ----------------------------------------------------------------------

class _NoopLock:
    """A 'lock' that serialises nothing — simulates broken per-block
    locking so two workers write the same block concurrently."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


def test_threaded_detector_catches_double_writer(monkeypatch):
    bm, _ = _prepared()
    # two independent root tasks targeting the SAME block (0, 0)
    dag = _StubDAG([
        Task(0, TaskType.GETRF, 0, 0, 0, flops=1),
        Task(1, TaskType.GETRF, 0, 0, 0, flops=1),
    ])

    collided = threading.Event()
    checker = RaceChecker(label="threaded")
    orig_begin = checker.begin_write

    def signalling_begin(slot, tid, worker):
        try:
            orig_begin(slot, tid, worker)
        except ConcurrencyViolation:
            collided.set()  # release the first writer
            raise

    checker.begin_write = signalling_begin

    def fake_execute(f, task, version, ws, **kwargs):
        # hold the block until the second writer collides (bounded wait
        # so a regression fails the test instead of hanging it)
        collided.wait(timeout=10)
        return 0, False

    monkeypatch.setattr("repro.runtime.threaded._make_block_locks",
                        lambda n: [_NoopLock() for _ in range(n)])
    monkeypatch.setattr("repro.runtime.threaded.execute_task", fake_execute)

    with pytest.raises(ConcurrencyViolation) as exc:
        factorize_threaded(bm, dag, n_workers=2, checker=checker)
    msg = str(exc.value)
    assert "double writer" in msg
    assert "task 0" in msg and "task 1" in msg  # both tasks named
    assert collided.is_set()


def test_threaded_clean_run_with_real_locks_and_checker():
    bm, dag = _prepared(seed=1)
    ref, _ = _prepared(seed=1)
    factorize(ref, build_dag(ref))
    checker = RaceChecker(label="threaded")
    stats = factorize_threaded(bm, dag, n_workers=4, checker=checker)
    assert stats.tasks_executed == len(dag.tasks)
    assert checker.violations == []
    np.testing.assert_allclose(
        bm.to_csc().to_dense(), ref.to_csc().to_dense(), atol=1e-10
    )


# ----------------------------------------------------------------------
# duplicate message delivery under the loopback transport
# ----------------------------------------------------------------------

def test_faultplan_duplicate_from_delivers_twice():
    t = LoopbackTransport(faults=FaultPlan(duplicate_from=frozenset({0})))

    def target(rank, endpoint):
        if rank == 0:
            endpoint.send(1, "blk")
            endpoint.post_result(("done", rank))
        else:
            msgs = [endpoint.recv(), endpoint.recv()]
            endpoint.post_result(("got", msgs))

    t.start(2, target, lambda rank: ())
    results = [t.get_result(10.0) for _ in range(2)]
    t.join()
    got = next(r for r in results if r[0] == "got")
    assert got[1] == ["blk", "blk"]


def test_distributed_detector_catches_duplicate_delivery():
    bm, dag = _prepared(seed=2)
    transport = LoopbackTransport(
        faults=FaultPlan(duplicate_from=frozenset({0, 1}))
    )
    with pytest.raises(RuntimeError) as exc:
        factorize_distributed(
            bm, dag, 2, transport=transport, validate=True, timeout=30.0
        )
    msg = str(exc.value)
    assert "completed twice" in msg       # the checker's verdict
    assert "rank" in msg                  # with rank provenance
    assert "duplicate message" in msg


def test_distributed_duplicate_delivery_trips_underflow_without_checker():
    # even with validation off, the always-on counter guard (or the
    # teardown path) refuses to deliver a silently corrupted result
    bm, dag = _prepared(seed=2)
    transport = LoopbackTransport(
        faults=FaultPlan(duplicate_from=frozenset({0, 1}))
    )
    with pytest.raises(RuntimeError):
        factorize_distributed(
            bm, dag, 2, transport=transport, timeout=30.0
        )


def test_distributed_clean_run_under_validation():
    bm, dag = _prepared(seed=3)
    ref, _ = _prepared(seed=3)
    factorize(ref, build_dag(ref))
    stats = factorize_distributed(
        bm, dag, 3, transport=LoopbackTransport(), validate=True
    )
    assert sum(stats.tasks_per_proc) == len(dag.tasks)
    np.testing.assert_allclose(
        bm.to_csc().to_dense(), ref.to_csc().to_dense(), atol=1e-10
    )


# ----------------------------------------------------------------------
# option / environment plumbing
# ----------------------------------------------------------------------

class TestPlumbing:
    def test_validation_enabled_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert not validation_enabled()
        assert not validation_enabled(SolverOptions())
        assert validation_enabled(SolverOptions(validate_concurrency=True))
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert validation_enabled()
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not validation_enabled()

    def test_sequential_factorize_accepts_checker(self):
        bm, dag = _prepared(seed=4)
        checker = RaceChecker(label="sequential")
        factorize(bm, dag, checker=checker)
        assert checker.violations == []

    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_solver_validate_concurrency_end_to_end(self, engine):
        a = grid_laplacian_2d(12, 12)
        solver = PanguLU(
            a,
            SolverOptions(
                engine=engine, n_workers=3, validate_concurrency=True
            ),
        )
        b = np.ones(a.nrows)
        x = solver.solve(b)
        assert float(np.linalg.norm(a.matvec(x) - b)) < 1e-8

    def test_env_var_drives_engines(self, monkeypatch):
        calls = []
        import repro.runtime.engines as engines_mod
        from repro.devtools import racecheck

        orig = racecheck.RaceChecker

        class Spy(orig):
            def __init__(self, *a, **kw):
                calls.append(kw.get("label"))
                super().__init__(*a, **kw)

        monkeypatch.setattr(racecheck, "RaceChecker", Spy)
        monkeypatch.setenv("REPRO_CHECK", "1")
        bm, dag = _prepared(seed=5)
        engine = engines_mod.get_engine("threaded")

        class _Opts:
            numeric = None
            n_workers = 2
            validate_concurrency = False

        engine(bm, dag, _Opts())
        assert calls == ["threaded"]
