"""Tests for the discrete-event distributed simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import CPU_PLATFORM, A100_PLATFORM, SimSpec, simulate


def _chain_spec(durations, nprocs=1, owners=None, levels=None):
    """A linear chain t0 → t1 → … with given durations."""
    n = len(durations)
    succ = [[i + 1] if i + 1 < n else [] for i in range(n)]
    deps = np.asarray([0] + [1] * (n - 1), dtype=np.int64)
    return SimSpec(
        durations=np.asarray(durations, dtype=np.float64),
        owner=np.asarray(owners if owners is not None else [0] * n, dtype=np.int64),
        out_bytes=np.zeros(n),
        n_deps=deps,
        successors=succ,
        priority=np.arange(n, dtype=np.float64),
        nprocs=nprocs,
        levels=np.asarray(levels, dtype=np.int64) if levels is not None else None,
    )


def _fanout_spec(nprocs, k, dur=1.0):
    """Root task fanning out to k independent children on round-robin procs."""
    n = k + 1
    succ = [list(range(1, n))] + [[] for _ in range(k)]
    deps = np.asarray([0] + [1] * k, dtype=np.int64)
    owners = np.asarray([0] + [i % nprocs for i in range(k)], dtype=np.int64)
    return SimSpec(
        durations=np.full(n, dur),
        owner=owners,
        out_bytes=np.zeros(n),
        n_deps=deps,
        successors=succ,
        priority=np.arange(n, dtype=np.float64),
        nprocs=nprocs,
    )


class TestBasics:
    def test_chain_makespan_is_sum(self):
        spec = _chain_spec([1.0, 2.0, 3.0])
        res = simulate(spec, CPU_PLATFORM)
        assert res.makespan == pytest.approx(6.0)
        assert res.busy_seconds[0] == pytest.approx(6.0)
        assert res.sync_seconds[0] == pytest.approx(0.0)

    def test_fanout_parallelises(self):
        res1 = simulate(_fanout_spec(1, 8), CPU_PLATFORM)
        res8 = simulate(_fanout_spec(8, 8), CPU_PLATFORM)
        assert res1.makespan == pytest.approx(9.0)
        assert res8.makespan < res1.makespan

    def test_cross_proc_message_delay(self):
        spec = _chain_spec([1.0, 1.0], nprocs=2, owners=[0, 1])
        spec.out_bytes = np.asarray([1e6, 0.0])
        res = simulate(spec, A100_PLATFORM)
        delay = A100_PLATFORM.message_time(0, 1, 1e6)
        assert res.makespan == pytest.approx(2.0 + delay)
        assert res.messages == 1
        assert res.comm_bytes == pytest.approx(1e6)
        # proc 1 waited for the message
        assert res.sync_seconds[1] == pytest.approx(1.0 + delay)

    def test_same_node_cheaper_than_cross_node(self):
        p = A100_PLATFORM
        assert p.message_time(0, 1, 1e6) < p.message_time(0, 5, 1e6)
        assert p.message_time(2, 2, 1e9) == 0.0

    def test_all_tasks_completed(self):
        spec = _fanout_spec(4, 11)
        res = simulate(spec, CPU_PLATFORM)
        assert np.all(np.isfinite(res.start_times))
        assert np.all(res.end_times >= res.start_times)

    def test_deadlock_detected(self):
        spec = _chain_spec([1.0, 1.0])
        spec.n_deps = np.asarray([0, 2], dtype=np.int64)  # never satisfied
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate(spec, CPU_PLATFORM)

    def test_unknown_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            simulate(_chain_spec([1.0]), CPU_PLATFORM, schedule="bogus")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="owner"):
            SimSpec(
                durations=np.ones(2),
                owner=np.zeros(1, dtype=np.int64),
                out_bytes=np.zeros(2),
                n_deps=np.zeros(2, dtype=np.int64),
                successors=[[], []],
                priority=np.zeros(2),
                nprocs=1,
            )
        with pytest.raises(ValueError, match="exceeds"):
            SimSpec(
                durations=np.ones(1),
                owner=np.asarray([3]),
                out_bytes=np.zeros(1),
                n_deps=np.zeros(1, dtype=np.int64),
                successors=[[]],
                priority=np.zeros(1),
                nprocs=2,
            )


class TestLevelSet:
    def test_requires_levels(self):
        spec = _chain_spec([1.0, 1.0])
        with pytest.raises(ValueError, match="levels"):
            simulate(spec, CPU_PLATFORM, schedule="levelset")

    def test_barrier_blocks_early_start(self):
        # two independent tasks at level 0 on proc 0, one level-1 task on
        # proc 1 with NO dependencies: the barrier must still hold it back
        spec = SimSpec(
            durations=np.asarray([2.0, 3.0, 1.0]),
            owner=np.asarray([0, 0, 1]),
            out_bytes=np.zeros(3),
            n_deps=np.zeros(3, dtype=np.int64),
            successors=[[], [], []],
            priority=np.arange(3, dtype=np.float64),
            nprocs=2,
            levels=np.asarray([0, 0, 1]),
        )
        res = simulate(spec, CPU_PLATFORM, schedule="levelset")
        # level-1 task starts only after both level-0 tasks finish (t=5)
        assert res.start_times[2] == pytest.approx(5.0)
        res_free = simulate(spec, CPU_PLATFORM, schedule="syncfree")
        assert res_free.start_times[2] == pytest.approx(0.0)

    def test_levelset_never_faster(self):
        spec = _fanout_spec(4, 12)
        spec.levels = np.asarray([0] + [1] * 12, dtype=np.int64)
        free = simulate(spec, CPU_PLATFORM, schedule="syncfree")
        barrier = simulate(spec, CPU_PLATFORM, schedule="levelset")
        assert barrier.makespan >= free.makespan - 1e-12

    def test_empty_leading_levels(self):
        spec = _chain_spec([1.0, 1.0], levels=[3, 4])
        res = simulate(spec, CPU_PLATFORM, schedule="levelset")
        assert res.makespan == pytest.approx(2.0)


class TestAccounting:
    def test_busy_conservation(self):
        spec = _fanout_spec(3, 9, dur=0.5)
        res = simulate(spec, CPU_PLATFORM)
        assert res.total_busy == pytest.approx(10 * 0.5)

    def test_gflops(self):
        spec = _chain_spec([2.0])
        res = simulate(spec, CPU_PLATFORM)
        assert res.gflops(4e9) == pytest.approx(2.0)

    def test_sync_ratio_bounded(self):
        spec = _fanout_spec(4, 16)
        res = simulate(spec, CPU_PLATFORM)
        assert 0.0 <= res.sync_ratio() <= 1.0

    def test_makespan_at_least_critical_path(self):
        spec = _chain_spec([1.0, 1.0, 1.0], nprocs=4, owners=[0, 1, 2])
        res = simulate(spec, A100_PLATFORM)
        assert res.makespan >= 3.0
