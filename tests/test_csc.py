"""Unit and property tests for the CSC container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CSCMatrix, coo_to_csc, random_sparse


def random_dense(rng: np.random.Generator, n: int, m: int, density: float) -> np.ndarray:
    d = rng.standard_normal((n, m))
    d[rng.random((n, m)) > density] = 0.0
    return d


# ---------------------------------------------------------------------------
# construction & validation
# ---------------------------------------------------------------------------

class TestConstruction:
    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        d = random_dense(rng, 13, 9, 0.3)
        m = CSCMatrix.from_dense(d)
        assert m.shape == (13, 9)
        np.testing.assert_array_equal(m.to_dense(), d)

    def test_eye(self):
        m = CSCMatrix.eye(5)
        np.testing.assert_array_equal(m.to_dense(), np.eye(5))
        assert m.nnz == 5

    def test_empty(self):
        m = CSCMatrix.empty((4, 6))
        assert m.nnz == 0
        np.testing.assert_array_equal(m.to_dense(), np.zeros((4, 6)))

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            CSCMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_validation_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSCMatrix(
                (2, 2), np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 2.0])
            )

    def test_validation_rejects_row_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSCMatrix((2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0]))

    def test_validation_rejects_unsorted_rows(self):
        with pytest.raises(ValueError, match="sorted"):
            CSCMatrix(
                (3, 1), np.array([0, 2]), np.array([2, 0]), np.array([1.0, 2.0])
            )

    def test_data_mismatch(self):
        with pytest.raises(ValueError, match="data"):
            CSCMatrix((2, 1), np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))

    def test_pattern_only_lazy_data(self):
        m = CSCMatrix((2, 1), np.array([0, 1]), np.array([0]))
        assert m.nnz == 1
        np.testing.assert_array_equal(m.data, [0.0])

    def test_from_scipy(self):
        import scipy.sparse as sp

        s = sp.random(10, 10, density=0.3, random_state=0, format="csc")
        m = CSCMatrix.from_scipy(s)
        np.testing.assert_allclose(m.to_dense(), s.toarray())


class TestCooAssembly:
    def test_duplicates_summed(self):
        m = coo_to_csc((2, 2), [0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0])
        np.testing.assert_array_equal(m.to_dense(), [[3.0, 0.0], [0.0, 5.0]])

    def test_duplicates_rejected_when_disallowed(self):
        with pytest.raises(ValueError, match="duplicate"):
            coo_to_csc((2, 2), [0, 0], [0, 0], [1.0, 2.0], sum_duplicates=False)

    def test_default_values_are_ones(self):
        m = coo_to_csc((2, 2), [0, 1], [1, 0])
        np.testing.assert_array_equal(m.to_dense(), [[0, 1], [1, 0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            coo_to_csc((2, 2), [3], [0], [1.0])
        with pytest.raises(ValueError):
            coo_to_csc((2, 2), [0], [-1], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            coo_to_csc((2, 2), [0, 1], [0], [1.0, 2.0])


# ---------------------------------------------------------------------------
# operations vs dense reference
# ---------------------------------------------------------------------------

class TestOps:
    def setup_method(self):
        self.rng = np.random.default_rng(42)
        self.d = random_dense(self.rng, 17, 17, 0.25)
        self.m = CSCMatrix.from_dense(self.d)

    def test_transpose(self):
        np.testing.assert_array_equal(self.m.transpose().to_dense(), self.d.T)

    def test_transpose_involution(self):
        t2 = self.m.transpose().transpose()
        assert t2 == self.m

    def test_permute_rows_cols(self):
        p = self.rng.permutation(17)
        q = self.rng.permutation(17)
        np.testing.assert_array_equal(
            self.m.permute(p, q).to_dense(), self.d[np.ix_(p, q)]
        )

    def test_permute_identity(self):
        np.testing.assert_array_equal(self.m.permute(None, None).to_dense(), self.d)

    def test_diagonal(self):
        np.testing.assert_array_equal(self.m.diagonal(), np.diag(self.d))

    def test_scale(self):
        r = self.rng.random(17) + 0.5
        c = self.rng.random(17) + 0.5
        expect = np.diag(r) @ self.d @ np.diag(c)
        np.testing.assert_allclose(self.m.scale(r, c).to_dense(), expect)

    def test_matvec(self):
        x = self.rng.standard_normal(17)
        np.testing.assert_allclose(self.m.matvec(x), self.d @ x)

    def test_matvec_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            self.m.matvec(np.zeros(5))

    def test_extract_submatrix(self):
        rows = np.array([1, 4, 9, 13])
        cols = [0, 5, 6]
        sub = self.m.extract_submatrix(rows, cols)
        np.testing.assert_array_equal(sub.to_dense(), self.d[np.ix_(rows, cols)])

    def test_col_access(self):
        rows, vals = self.m.col(3)
        dense_col = self.d[:, 3]
        np.testing.assert_array_equal(dense_col[rows], vals)
        assert np.all(np.diff(rows) > 0)

    def test_copy_is_deep(self):
        c = self.m.copy()
        c.data[:] = 0
        assert self.m.data.any()

    def test_density(self):
        assert self.m.density == self.m.nnz / (17 * 17)

    def test_equality(self):
        assert self.m == self.m.copy()
        other = self.m.copy()
        other.data[0] += 1
        assert not (self.m == other)


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

@st.composite
def sparse_matrices(draw):
    n = draw(st.integers(1, 24))
    m = draw(st.integers(1, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    density = draw(st.floats(0.0, 0.5))
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n, m))
    d[rng.random((n, m)) > density] = 0.0
    return d


@settings(max_examples=60, deadline=None)
@given(sparse_matrices())
def test_dense_roundtrip_property(d):
    m = CSCMatrix.from_dense(d)
    np.testing.assert_array_equal(m.to_dense(), d)
    # invariants hold
    m._validate()
    assert m.nnz == np.count_nonzero(d)


@settings(max_examples=60, deadline=None)
@given(sparse_matrices())
def test_transpose_property(d):
    m = CSCMatrix.from_dense(d)
    np.testing.assert_array_equal(m.transpose().to_dense(), d.T)
    m.transpose()._validate()


@settings(max_examples=40, deadline=None)
@given(sparse_matrices(), st.integers(0, 2**31 - 1))
def test_permute_property(d, seed):
    rng = np.random.default_rng(seed)
    p = rng.permutation(d.shape[0])
    q = rng.permutation(d.shape[1])
    m = CSCMatrix.from_dense(d)
    out = m.permute(p, q)
    out._validate()
    np.testing.assert_array_equal(out.to_dense(), d[np.ix_(p, q)])


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 40), st.floats(0.01, 0.3), st.integers(0, 10_000))
def test_random_sparse_is_diagonally_dominant(n, density, seed):
    a = random_sparse(n, density, seed=seed)
    d = a.to_dense()
    diag = np.abs(np.diag(d))
    offsum = np.sum(np.abs(d), axis=1) - diag
    assert np.all(diag > offsum)
