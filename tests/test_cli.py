"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.__main__ import main
from repro.sparse import generate, read_matrix_market, write_matrix_market


class TestSolve:
    def test_solve_analogue(self, capsys):
        rc = main(["solve", "ecology1", "--scale", "0.15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "relative residual" in out
        assert "numeric" in out

    def test_solve_mtx_file(self, tmp_path, capsys):
        path = tmp_path / "m.mtx"
        write_matrix_market(path, generate("G3_circuit", scale=0.15))
        rc = main(["solve", str(path), "--ordering", "amd"])
        assert rc == 0
        assert "residual" in capsys.readouterr().out

    def test_solve_writes_solution(self, tmp_path, capsys):
        out_path = tmp_path / "x.txt"
        rc = main(["solve", "ecology1", "--scale", "0.12",
                   "--output", str(out_path)])
        assert rc == 0
        x = np.loadtxt(out_path)
        a = generate("ecology1", scale=0.12)
        assert np.linalg.norm(a.matvec(x) - 1.0) < 1e-8

    def test_solve_rejects_rectangular(self, tmp_path, capsys):
        from repro.sparse import CSCMatrix

        path = tmp_path / "rect.mtx"
        d = np.ones((2, 3))
        write_matrix_market(path, CSCMatrix.from_dense(d))
        rc = main(["solve", str(path)])
        assert rc == 2


class TestInfo:
    def test_info(self, capsys):
        rc = main(["info", "cage12", "--scale", "0.15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nnz" in out and "bandwidth" in out

    def test_info_symbolic(self, capsys):
        rc = main(["info", "ecology1", "--scale", "0.12", "--symbolic"])
        assert rc == 0
        assert "nnz(L+U)" in capsys.readouterr().out


class TestGenerate:
    def test_generate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "gen.mtx"
        rc = main(["generate", "apache2", str(path), "--scale", "0.12"])
        assert rc == 0
        a = read_matrix_market(path)
        b = generate("apache2", scale=0.12)
        assert a == b

    def test_generate_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "bogus", "out.mtx"])


class TestSimulate:
    def test_simulate_table(self, capsys):
        rc = main(["simulate", "ecology1", "--scale", "0.12",
                   "--max-procs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GFLOP/s" in out
        assert "procs" in out

    def test_simulate_mi50(self, capsys):
        rc = main(["simulate", "G3_circuit", "--scale", "0.1",
                   "--platform", "mi50", "--max-procs", "2"])
        assert rc == 0


class TestEstimate:
    def test_estimate_table(self, capsys):
        rc = main(["estimate", "ecology1", "--scale", "0.12",
                   "--procs", "1", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pred. GFLOP/s" in out
        assert "factor storage" in out


class TestSolveWorkers:
    def test_threaded_solve(self, capsys):
        rc = main(["solve", "G3_circuit", "--scale", "0.12",
                   "--workers", "3"])
        assert rc == 0
        assert "residual" in capsys.readouterr().out


class TestSimulateTrace:
    def test_trace_written(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["simulate", "ecology1", "--scale", "0.1",
                   "--max-procs", "2", "--trace", str(out)])
        assert rc == 0
        import json

        data = json.loads(out.read_text())
        assert len(data["traceEvents"]) > 1
        # simulated message edges appear as flow-event arrows
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"s", "f"} <= phases


class TestEngineFlag:
    @pytest.mark.parametrize("engine", ["sequential", "threaded", "distributed"])
    def test_engine_selected(self, engine, capsys):
        rc = main(["solve", "ecology1", "--scale", "0.12",
                   "--engine", engine, "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"engine = {engine}" in out
        assert "relative residual" in out

    def test_real_run_trace_written(self, tmp_path, capsys):
        import json

        out = tmp_path / "real.json"
        rc = main(["solve", "ecology1", "--scale", "0.12",
                   "--engine", "threaded", "--workers", "2",
                   "--trace", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        tasks = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert tasks and all("dur" in e for e in tasks)

    def test_distributed_trace_has_flow_events(self, tmp_path, capsys):
        import json

        out = tmp_path / "dist.json"
        rc = main(["solve", "ecology1", "--scale", "0.12",
                   "--engine", "distributed", "--workers", "2",
                   "--trace", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"X", "s", "f"} <= phases
