"""Tests for the real threaded synchronisation-free executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import block_partition, build_dag, factorize
from repro.runtime import factorize_threaded
from repro.sparse import generate, random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=90, bs=12, seed=0):
    a = random_sparse(n, 0.06, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return a, bm, build_dag(bm)


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_matches_sequential(self, workers):
        a, bm_seq, dag_seq = _prepared(seed=workers)
        _, bm_thr, dag_thr = _prepared(seed=workers)
        factorize(bm_seq, dag_seq)
        stats = factorize_threaded(bm_thr, dag_thr, n_workers=workers)
        assert stats.tasks_executed == len(dag_thr.tasks)
        np.testing.assert_allclose(
            bm_thr.to_csc().to_dense(), bm_seq.to_csc().to_dense(), atol=1e-9
        )

    def test_on_paper_analogue(self):
        a = generate("G3_circuit", scale=0.15)
        from repro import PanguLU

        s1, s2 = PanguLU(a), PanguLU(a)
        s1.preprocess()
        s2.preprocess()
        factorize(s1.blocks, s1.dag)
        factorize_threaded(s2.blocks, s2.dag, n_workers=4)
        np.testing.assert_allclose(
            s2.blocks.to_csc().to_dense(),
            s1.blocks.to_csc().to_dense(),
            atol=1e-9,
        )


class TestProtocol:
    def test_rejects_zero_workers(self):
        _, bm, dag = _prepared()
        with pytest.raises(ValueError, match="worker"):
            factorize_threaded(bm, dag, n_workers=0)

    def test_error_propagates(self):
        _, bm, dag = _prepared()
        # poison a diagonal block so GETRF hits an exact zero pivot
        diag = bm.block(0, 0)
        diag.data[...] = 0.0
        from repro.core import NumericOptions
        from repro.kernels.base import SingularBlockError

        with pytest.raises(SingularBlockError):
            factorize_threaded(
                bm, dag, NumericOptions(pivot_floor=0.0), n_workers=3
            )

    def test_kernel_exception_propagates_and_quiesces(self, monkeypatch):
        # a kernel that raises mid-DAG must surface the *original*
        # exception to the caller with every worker quiesced first —
        # factorize_threaded joins the pool before re-raising, so this
        # test deadlocks (and times out) if quiescing is broken
        import threading

        from repro.core import NumericOptions
        from repro.kernels.registry import KERNEL_REGISTRY, KernelType

        class _Boom(RuntimeError):
            pass

        def boom(*args, **kwargs):
            raise _Boom("injected kernel failure")

        for version in list(KERNEL_REGISTRY[KernelType.SSSSM]):
            monkeypatch.setitem(KERNEL_REGISTRY[KernelType.SSSSM], version, boom)
        _, bm, dag = _prepared(n=120, bs=10, seed=3)
        threads_before = threading.active_count()
        with pytest.raises(_Boom, match="injected kernel failure"):
            factorize_threaded(
                bm, dag, NumericOptions(use_plans=False), n_workers=4
            )
        assert threading.active_count() == threads_before

    def test_records_kernel_choices(self):
        _, bm, dag = _prepared()
        stats = factorize_threaded(bm, dag, n_workers=2)
        assert len(stats.kernel_choices) == len(dag.tasks)

    def test_parallelism_observed(self):
        # with several workers the ready queue must have held >1 task at
        # some point for a DAG with real fan-out
        _, bm, dag = _prepared(n=120, bs=10, seed=3)
        stats = factorize_threaded(bm, dag, n_workers=4)
        assert stats.max_ready_depth >= 2
