"""Tests of the pluggable placement layer (`repro.core.placement`) and
the hybrid distributed×threaded engine.

The default :class:`CyclicPlacement` must be bit-identical to the
historical ``ProcessGrid.owner`` rule on every layer that consumes it;
:class:`CostModelPlacement` must be deterministic and, on a speed-skewed
platform, strictly beat the cyclic map on speed-scaled load imbalance
and on simulated makespan.  The hybrid engine (each rank driving a
thread pool over the shared scheduler core) must match the other
engines: bit-identical triangular solves, allclose factors.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import (
    ProcessGrid,
    assign_tasks,
    balance_loads,
    block_partition,
    build_dag,
    factorize,
    load_imbalance,
    task_weights,
)
from repro.core.placement import (
    CostModelPlacement,
    CyclicPlacement,
    PlacementPolicy,
    available_placements,
    get_placement,
    resolve_placement,
)
from repro.core.solver import PanguLU, SolverOptions
from repro.core.tsolve import tsolve_sequential
from repro.core.tsolve_dag import build_tsolve_dag
from repro.core.verify import ScheduleViolation, verify_dag
from repro.runtime import (
    CPU_PLATFORM,
    factorize_distributed,
    simulate_pangulu,
    simulate_tsolve,
    tsolve_distributed,
)
from repro.runtime.transports import LoopbackTransport
from repro.sparse import grid_laplacian_2d, random_sparse
from repro.symbolic import symbolic_symmetric

#: two fast ranks, two at 40% speed — the ≥2× skew the acceptance
#: criterion names
SKEWED_SPEEDS = (1.0, 1.0, 0.4, 0.4)


def _prepared(n=80, bs=12, seed=0):
    a = random_sparse(n, 0.06, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return bm, build_dag(bm)


def _factored(n=72, bs=13, seed=0):
    bm, dag = _prepared(n, bs, seed)
    factorize(bm, dag)
    return bm


# ----------------------------------------------------------------------
# ProcessGrid.square regression: non-perfect-square counts
# ----------------------------------------------------------------------

class TestSquareGrid:
    def test_non_perfect_square_counts(self):
        # the isqrt-based search must find exact factorisations, not
        # degenerate to 1×n whenever n has no integer root
        assert ProcessGrid.square(12) == ProcessGrid(3, 4)
        assert ProcessGrid.square(18) == ProcessGrid(3, 6)
        assert ProcessGrid.square(24) == ProcessGrid(4, 6)
        assert ProcessGrid.square(48) == ProcessGrid(6, 8)

    def test_perfect_squares(self):
        for root in (1, 2, 3, 7, 10):
            assert ProcessGrid.square(root * root) == ProcessGrid(root, root)

    def test_primes_degenerate_to_row(self):
        for p in (2, 3, 13, 97):
            assert ProcessGrid.square(p) == ProcessGrid(1, p)

    def test_large_perfect_square_isqrt_edge(self):
        # float sqrt of (10**8)**2 can land below the true root; isqrt
        # must not, so the square factorisation is found exactly
        n = 10**8
        assert ProcessGrid.square(n * n) == ProcessGrid(n, n)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessGrid.square(0)
        with pytest.raises(ValueError, match="positive"):
            ProcessGrid.square(-4)

    def test_every_count_covered_exactly(self):
        for n in range(1, 65):
            g = ProcessGrid.square(n)
            assert g.p * g.q == n and g.p <= g.q


# ----------------------------------------------------------------------
# CyclicPlacement ≡ the historical grid rule
# ----------------------------------------------------------------------

class TestCyclicPlacement:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6, 12])
    def test_owner_matches_grid(self, nprocs):
        grid = ProcessGrid.square(nprocs)
        place = CyclicPlacement(grid)
        for bi in range(10):
            for bj in range(10):
                assert place.owner(bi, bj) == grid.owner(bi, bj)

    def test_int_constructor_squares(self):
        assert CyclicPlacement(6).grid == ProcessGrid.square(6)
        assert CyclicPlacement(6).nprocs == 6

    def test_assign_matches_assign_tasks(self):
        _, dag = _prepared()
        grid = ProcessGrid.square(4)
        np.testing.assert_array_equal(
            CyclicPlacement(grid).assign(dag), assign_tasks(dag, grid)
        )

    def test_assign_tasks_accepts_policy(self):
        _, dag = _prepared()
        np.testing.assert_array_equal(
            assign_tasks(dag, CyclicPlacement(4)),
            assign_tasks(dag, ProcessGrid.square(4)),
        )

    def test_prepare_is_noop_returning_self(self):
        p = CyclicPlacement(2)
        assert p.prepare(None, None) is p


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------

class TestRegistry:
    def test_available(self):
        assert available_placements() == ["cost", "cyclic"]

    def test_get_by_name(self):
        assert isinstance(get_placement("cyclic", 4), CyclicPlacement)
        assert isinstance(get_placement("cost", 4), CostModelPlacement)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown placement"):
            get_placement("round-robin", 4)

    def test_resolve_passes_instances_through(self):
        p = CyclicPlacement(4)
        assert resolve_placement(p, 4) is p

    def test_resolve_rejects_rank_mismatch(self):
        with pytest.raises(ValueError, match="built for 4"):
            resolve_placement(CyclicPlacement(4), 6)

    def test_speed_validation(self):
        with pytest.raises(ValueError, match="rank speeds"):
            get_placement("cost", 4, speeds=(1.0, 2.0))  # wrong length
        with pytest.raises(ValueError, match="positive"):
            get_placement("cost", 2, speeds=(1.0, 0.0))

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError, match="at least one rank"):
            CostModelPlacement(0)


# ----------------------------------------------------------------------
# CostModelPlacement
# ----------------------------------------------------------------------

class TestCostModelPlacement:
    def test_deterministic(self):
        bm, dag = _prepared(seed=3)
        a = CostModelPlacement(4, SKEWED_SPEEDS).prepare(dag, bm)
        b = CostModelPlacement(4, SKEWED_SPEEDS).prepare(dag, bm)
        assert a._owners == b._owners
        np.testing.assert_array_equal(a.assign(dag), b.assign(dag))

    def test_owners_in_range(self):
        bm, dag = _prepared()
        place = CostModelPlacement(3).prepare(dag, bm)
        asg = place.assign(dag)
        assert asg.min() >= 0 and asg.max() < 3

    def test_unseen_blocks_fall_back_to_cyclic(self):
        bm, dag = _prepared()
        place = CostModelPlacement(4).prepare(dag, bm)
        fallback = CyclicPlacement(4)
        # a block index far outside the structure was never costed
        assert place.owner(10**6, 10**6) == fallback.owner(10**6, 10**6)

    def test_prepare_needs_something_to_cost(self):
        with pytest.raises(ValueError, match="DAG or a blocked"):
            CostModelPlacement(2).prepare()

    def test_blocks_only_prepare_covers_solve_path(self):
        bm = _factored()
        place = CostModelPlacement(3).prepare(blocks=bm)
        for bj in range(bm.nb):
            rows, _ = bm.blocks_in_column(bj)
            for bi in rows:
                assert 0 <= place.owner(int(bi), bj) < 3

    def test_fast_ranks_carry_more_weight(self):
        bm, dag = _prepared(seed=5)
        w = task_weights(dag, bm)
        place = CostModelPlacement(4, SKEWED_SPEEDS).prepare(dag, bm)
        loads = np.zeros(4)
        np.add.at(loads, place.assign(dag), w)
        # the two fast ranks together absorb more weight than the two
        # slow ones — the whole point of speed-aware placement
        assert loads[:2].sum() > loads[2:].sum()

    def test_beats_cyclic_imbalance_on_skewed_platform(self):
        bm, dag = _prepared(seed=7)
        w = task_weights(dag, bm)
        cyc = CyclicPlacement(4).assign(dag)
        cost = CostModelPlacement(4, SKEWED_SPEEDS).prepare(dag, bm).assign(dag)
        imb_cyc = load_imbalance(dag, cyc, 4, weights=w, speeds=SKEWED_SPEEDS)
        imb_cost = load_imbalance(dag, cost, 4, weights=w, speeds=SKEWED_SPEEDS)
        assert imb_cost < imb_cyc

    def test_reduces_simulated_makespan_on_skewed_platform(self):
        """The ISSUE's acceptance criterion: on a ≥2× speed-skew
        platform the cost-model placement beats cyclic end-to-end in
        the event simulation, not just on the static metric."""
        bm, dag = _prepared(n=120, bs=14, seed=2)
        platform = dataclasses.replace(
            CPU_PLATFORM, rank_speeds=SKEWED_SPEEDS
        )
        mk_cyc = simulate_pangulu(
            bm, dag, platform, 4, placement="cyclic"
        ).result.makespan
        mk_cost = simulate_pangulu(
            bm, dag, platform, 4, placement="cost"
        ).result.makespan
        assert mk_cost < mk_cyc

    def test_homogeneous_default_unchanged(self):
        """Without rank_speeds the adapter's default path is the
        historical one: cyclic placement, raw-flops balancing."""
        bm, dag = _prepared(seed=4)
        sim = simulate_pangulu(bm, dag, CPU_PLATFORM, 4)
        place = CyclicPlacement(4)
        expected = balance_loads(dag, place, place.assign(dag))
        np.testing.assert_array_equal(sim.assignment, expected)

    def test_tsolve_simulation_accepts_placement(self):
        bm = _factored()
        platform = dataclasses.replace(
            CPU_PLATFORM, rank_speeds=SKEWED_SPEEDS
        )
        res = simulate_tsolve(bm, platform, 4, placement="cost")
        assert res.makespan > 0.0


# ----------------------------------------------------------------------
# speed-aware balancing and metric
# ----------------------------------------------------------------------

class TestSpeedAwareBalancing:
    def test_balancer_deterministic_under_speeds(self):
        _, dag = _prepared(seed=9)
        place = CyclicPlacement(4, SKEWED_SPEEDS)
        a = balance_loads(dag, place, speeds=SKEWED_SPEEDS)
        b = balance_loads(dag, place, speeds=SKEWED_SPEEDS)
        np.testing.assert_array_equal(a, b)

    def test_balancer_improves_skewed_cyclic(self):
        _, dag = _prepared(seed=9)
        place = CyclicPlacement(4, SKEWED_SPEEDS)
        before = place.assign(dag)
        after = balance_loads(dag, place, before, speeds=SKEWED_SPEEDS)
        imb_b = load_imbalance(dag, before, 4, speeds=SKEWED_SPEEDS)
        imb_a = load_imbalance(dag, after, 4, speeds=SKEWED_SPEEDS)
        assert imb_a < imb_b  # strict: cyclic ignores the skew entirely

    def test_homogeneous_speeds_bit_identical_to_none(self):
        _, dag = _prepared(seed=6)
        place = CyclicPlacement(4)
        np.testing.assert_array_equal(
            balance_loads(dag, place),
            balance_loads(dag, place, speeds=(1.0,) * 4),
        )

    def test_metric_scales_by_speed(self):
        _, dag = _prepared()
        n = len(dag.tasks)
        asg = np.zeros(n, dtype=np.int64)
        # all work on rank 0; making rank 0 twice as fast halves its
        # time, but the mean drops too — ratio must follow the loads
        imb_slow = load_imbalance(dag, asg, 2, speeds=(0.5, 1.0))
        imb_fast = load_imbalance(dag, asg, 2, speeds=(2.0, 1.0))
        assert imb_slow == imb_fast == pytest.approx(2.0)

    def test_speed_length_checked(self):
        _, dag = _prepared()
        with pytest.raises(ValueError, match="rank speeds"):
            load_imbalance(
                dag, np.zeros(len(dag.tasks), dtype=np.int64), 4,
                speeds=(1.0, 2.0),
            )


# ----------------------------------------------------------------------
# ownership verification
# ----------------------------------------------------------------------

class TestOwnershipVerification:
    def test_accepts_any_consistent_map(self):
        bm, dag = _prepared()
        for place in (
            CyclicPlacement(4),
            CostModelPlacement(4, SKEWED_SPEEDS).prepare(dag, bm),
        ):
            report = verify_dag(dag, assignment=place.assign(dag), nprocs=4)
            assert report.n_tasks == len(dag.tasks)

    def test_rejects_split_ownership(self):
        _, dag = _prepared()
        asg = CyclicPlacement(4).assign(dag)
        # move exactly one task of a multi-task block to another rank
        targets = {}
        split = None
        for t in dag.tasks:
            if (t.bi, t.bj) in targets:
                split = t.tid
                break
            targets[(t.bi, t.bj)] = t.tid
        assert split is not None
        asg[split] = (asg[split] + 1) % 4
        with pytest.raises(ScheduleViolation) as exc:
            verify_dag(dag, assignment=asg, nprocs=4)
        assert exc.value.code == "split-ownership"

    def test_rejects_out_of_range_rank(self):
        _, dag = _prepared()
        asg = CyclicPlacement(4).assign(dag)
        asg[0] = 7
        with pytest.raises(ScheduleViolation, match="outside the valid"):
            verify_dag(dag, assignment=asg, nprocs=4)

    def test_rejects_wrong_length(self):
        _, dag = _prepared()
        with pytest.raises(ScheduleViolation, match="entries"):
            verify_dag(dag, assignment=np.zeros(3, dtype=np.int64))


# ----------------------------------------------------------------------
# the real engines honour the placement
# ----------------------------------------------------------------------

class TestEnginesHonourPlacement:
    def test_distributed_factor_with_cost_placement(self):
        bm_ref, dag_ref = _prepared(seed=8)
        factorize(bm_ref, dag_ref)
        bm, dag = _prepared(seed=8)
        place = CostModelPlacement(3, (1.0, 1.0, 0.5)).prepare(dag, bm)
        stats = factorize_distributed(
            bm, dag, 3, transport=LoopbackTransport(), placement=place
        )
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), bm_ref.to_csc().to_dense(), atol=1e-10
        )
        assert sum(stats.tasks_per_proc) == len(dag.tasks)

    def test_distributed_rejects_rank_mismatch(self):
        bm, dag = _prepared(seed=8)
        with pytest.raises(ValueError, match="built for"):
            factorize_distributed(
                bm, dag, 4,
                transport=LoopbackTransport(),
                placement=CyclicPlacement(2),
            )

    def test_distributed_tsolve_with_cost_placement(self):
        f = _factored(seed=4)
        b = np.ones(f.n)
        ref, _ = tsolve_sequential(f, b)
        place = CostModelPlacement(3).prepare(blocks=f)
        tdag = build_tsolve_dag(f, place.owner, executable=True)
        x, stats = tsolve_distributed(
            f, tdag, b, 3,
            transport=LoopbackTransport(), placement=place, validate=True,
        )
        assert np.array_equal(x, ref)
        assert stats.tasks_executed == len(tdag)

    def test_solver_facade_cost_placement_end_to_end(self):
        a = grid_laplacian_2d(9, 9)
        b = np.ones(a.nrows)
        x_ref = PanguLU(a, SolverOptions(engine="sequential")).solve(b)
        s = PanguLU(a, SolverOptions(
            engine="distributed", nprocs=3, placement="cost",
            rank_speeds=(1.0, 1.0, 0.5), verify_schedule=True,
        ))
        x = s.solve(b)
        assert s.placement is not None and s.placement.name == "cost"
        np.testing.assert_allclose(x, x_ref, atol=1e-10)


# ----------------------------------------------------------------------
# the hybrid engine: ranks × threads over the shared scheduler core
# ----------------------------------------------------------------------

class TestHybridEngine:
    def test_single_rank_single_thread_bit_identical(self):
        bm_ref, dag_ref = _prepared(seed=1)
        factorize(bm_ref, dag_ref)
        bm, dag = _prepared(seed=1)
        factorize_distributed(
            bm, dag, 1, transport=LoopbackTransport(), n_threads=1
        )
        assert np.array_equal(
            bm.to_csc().to_dense(), bm_ref.to_csc().to_dense()
        )

    @pytest.mark.parametrize("nprocs,n_threads", [(1, 3), (2, 2), (3, 2)])
    def test_factor_matches_sequential(self, nprocs, n_threads):
        bm_ref, dag_ref = _prepared(seed=2)
        factorize(bm_ref, dag_ref)
        bm, dag = _prepared(seed=2)
        stats = factorize_distributed(
            bm, dag, nprocs,
            transport=LoopbackTransport(), n_threads=n_threads,
        )
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), bm_ref.to_csc().to_dense(), atol=1e-10
        )
        assert sum(stats.tasks_per_proc) == len(dag.tasks)

    def test_factor_passes_race_checker(self):
        bm, dag = _prepared(seed=3)
        factorize_distributed(
            bm, dag, 2,
            transport=LoopbackTransport(), n_threads=3, validate=True,
        )

    def test_rejects_zero_threads(self):
        bm, dag = _prepared(seed=3)
        with pytest.raises(ValueError, match="thread"):
            factorize_distributed(bm, dag, 2, n_threads=0)

    @pytest.mark.parametrize("nrhs", [1, 2])
    def test_tsolve_bit_identical(self, nrhs):
        f = _factored(seed=5)
        rng = np.random.default_rng(3)
        b = rng.standard_normal(f.n if nrhs == 1 else (f.n, nrhs))
        ref, _ = tsolve_sequential(f, b)
        tdag = build_tsolve_dag(
            f, CyclicPlacement(2).owner, executable=True
        )
        x, stats = tsolve_distributed(
            f, tdag, b, 2,
            transport=LoopbackTransport(), n_threads=3, validate=True,
        )
        assert np.array_equal(x, ref)
        assert stats.engine == "hybrid"
        assert stats.tasks_executed == len(tdag)

    def test_facade_hybrid_end_to_end(self):
        a = grid_laplacian_2d(9, 9)
        b = np.ones(a.nrows)
        x_ref = PanguLU(a, SolverOptions(engine="sequential")).solve(b)
        s = PanguLU(a, SolverOptions(
            engine="hybrid", nprocs=2, n_workers=2,
        ))
        x = s.solve(b)
        np.testing.assert_allclose(x, x_ref, atol=1e-10)
        fact = s.factorize()
        assert fact.last_tsolve_stats.engine == "hybrid"

    def test_facade_hybrid_with_cost_placement(self):
        a = grid_laplacian_2d(8, 8)
        b = np.ones(a.nrows)
        x_ref = PanguLU(a, SolverOptions(engine="sequential")).solve(b)
        s = PanguLU(a, SolverOptions(
            engine="hybrid", nprocs=2, n_workers=2, placement="cost",
            verify_schedule=True,
        ))
        np.testing.assert_allclose(s.solve(b), x_ref, atol=1e-10)


# ----------------------------------------------------------------------
# policy ABC contract
# ----------------------------------------------------------------------

class TestPolicyContract:
    def test_custom_policy_plugs_in(self):
        """Any single-writer-consistent owner map works end to end —
        the layer is genuinely pluggable, not a two-entry enum."""

        class RowPlacement(PlacementPolicy):
            name = "rows"

            def owner(self, bi, bj):
                return bi % self.nprocs

        bm_ref, dag_ref = _prepared(seed=6)
        factorize(bm_ref, dag_ref)
        bm, dag = _prepared(seed=6)
        place = RowPlacement(3)
        verify_dag(dag, assignment=place.assign(dag), nprocs=3)
        factorize_distributed(
            bm, dag, 3, transport=LoopbackTransport(), placement=place
        )
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), bm_ref.to_csc().to_dense(), atol=1e-10
        )

    def test_abstract_owner_required(self):
        with pytest.raises(TypeError):
            PlacementPolicy(2)  # abstract
