"""Smoke tests: every example script runs to completion at tiny scale."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py", "0.15")
    assert "relative residual" in out
    assert "threaded executor" in out


def test_circuit_simulation():
    out = _run("circuit_simulation.py", "0.12")
    assert "newton iter" in out
    assert "amortised" in out


def test_distributed_scaling():
    out = _run("distributed_scaling.py", "ecology1", "0.12")
    assert "PanguLU A100" in out


def test_kernel_playground():
    out = _run("kernel_playground.py")
    assert "GETRF" in out and "SSSSM" in out


def test_matrix_market_solve(tmp_path):
    from repro.sparse import generate, write_matrix_market

    path = tmp_path / "m.mtx"
    write_matrix_market(path, generate("G3_circuit", scale=0.12))
    out = _run("matrix_market_solve.py", str(path))
    assert "PanguLU" in out and "baseline" in out


def test_syncfree_trace():
    out = _run("syncfree_trace.py")
    assert "synchronisation-free array" in out
    assert "levelset schedule" in out


def test_distributed_memory():
    out = _run("distributed_memory.py", "2", "0.12")
    assert "max |distributed − sequential|" in out


def test_spd_cholesky():
    out = _run("spd_cholesky.py", "0.12")
    assert "storage ratio" in out
    assert "solutions agree" in out
