"""Tests for the block-LU task DAG and the synchronisation-free array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TaskType, block_partition, build_dag, sync_free_array
from repro.sparse import grid_laplacian_2d, random_sparse
from repro.symbolic import symbolic_symmetric


def _dag(n=60, bs=16, seed=0):
    a = random_sparse(n, 0.08, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return bm, build_dag(bm)


class TestStructure:
    def test_one_getrf_per_block_column(self):
        bm, dag = _dag()
        getrfs = [t for t in dag.tasks if t.ttype == TaskType.GETRF]
        assert len(getrfs) == bm.nb
        assert sorted(t.k for t in getrfs) == list(range(bm.nb))

    def test_panel_task_per_stored_panel_block(self):
        bm, dag = _dag()
        for (bi, bj), tid in dag.panel_of_block.items():
            assert bm.block(bi, bj) is not None
            t = dag.tasks[tid]
            assert (t.bi, t.bj) == (bi, bj)
            if bi == bj:
                assert t.ttype == TaskType.GETRF
            elif bi < bj:
                assert t.ttype == TaskType.GESSM
            else:
                assert t.ttype == TaskType.TSTRF

    def test_ssssm_operands_exist(self):
        bm, dag = _dag()
        for t in dag.tasks:
            if t.ttype == TaskType.SSSSM:
                assert bm.block(t.bi, t.k) is not None
                assert bm.block(t.k, t.bj) is not None
                assert bm.block(t.bi, t.bj) is not None
                assert t.bi > t.k and t.bj > t.k

    def test_dep_counts_match_predecessors(self):
        _, dag = _dag()
        indeg = np.zeros(len(dag.tasks), dtype=int)
        for t in dag.tasks:
            for s in t.successors:
                indeg[s] += 1
        np.testing.assert_array_equal(indeg, dag.dep_counts())

    def test_acyclic_and_complete_topo_order(self):
        _, dag = _dag()
        indeg = dag.dep_counts()
        stack = dag.roots()
        seen = 0
        while stack:
            t = stack.pop()
            seen += 1
            for s in dag.tasks[t].successors:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        assert seen == len(dag.tasks)

    def test_deps_go_forward_in_steps(self):
        _, dag = _dag()
        for t in dag.tasks:
            for s in t.successors:
                assert dag.tasks[s].k >= t.k

    def test_total_flops_positive(self):
        _, dag = _dag()
        assert dag.total_flops == sum(t.flops for t in dag.tasks) > 0

    def test_critical_path_bounds(self):
        _, dag = _dag()
        cp = dag.critical_path_flops()
        assert 0 < cp <= dag.total_flops

    def test_missing_diagonal_block_rejected(self):
        # a block matrix with an empty diagonal block
        import repro.core.dag as dagmod
        from repro.sparse import CSCMatrix

        d = np.zeros((4, 4))
        d[0, 0] = d[1, 1] = 1.0
        d[3, 0] = 1.0  # block (1,1) of a 2x2 blocking stays empty
        bm = block_partition(CSCMatrix.from_dense(d), 2)
        with pytest.raises(ValueError, match="diagonal block"):
            dagmod.build_dag(bm)


class TestSyncFreeArray:
    def test_counts_match_paper_semantics(self):
        bm, dag = _dag()
        arr = sync_free_array(dag, bm.nb)
        # every stored panel block appears
        assert set(arr) == set(dag.panel_of_block)
        # value = number of SSSSM updates the block still needs
        for (bi, bj), v in arr.items():
            expected = sum(
                1
                for t in dag.tasks
                if t.ttype == TaskType.SSSSM and (t.bi, t.bj) == (bi, bj)
            )
            assert v == expected

    def test_first_diagonal_ready(self):
        bm, dag = _dag()
        arr = sync_free_array(dag, bm.nb)
        assert arr[(0, 0)] == 0  # GETRF(0) is immediately runnable


class TestGridCase:
    def test_laplacian_dag(self):
        g = grid_laplacian_2d(10, 10)
        f = symbolic_symmetric(g).filled
        bm = block_partition(f, 20)
        dag = build_dag(bm)
        assert len(dag.tasks) >= bm.nb
        # wavefront: roots must include GETRF(0)
        roots = {dag.tasks[t].ttype for t in dag.roots()}
        assert TaskType.GETRF in roots
