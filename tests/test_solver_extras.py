"""Tests for the extended solver APIs: multi-RHS, transpose solves,
log-determinant and condition estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU, SolverOptions
from repro.sparse import generate, random_sparse


class TestMultiRHS:
    def test_matches_column_by_column(self):
        a = random_sparse(60, 0.07, seed=1)
        s = PanguLU(a)
        rng = np.random.default_rng(0)
        B = rng.standard_normal((60, 5))
        X = s.solve(B)
        for c in range(5):
            x_single = s.solve(B[:, c])
            np.testing.assert_allclose(X[:, c], x_single, atol=1e-10)

    def test_residual_per_column(self):
        a = generate("CoupCons3D", scale=0.1)
        s = PanguLU(a)
        B = np.eye(a.nrows)[:, :3]
        X = s.solve(B)
        d = a.to_dense()
        assert np.abs(d @ X - B).max() < 1e-8

    def test_rejects_3d(self):
        a = random_sparse(20, 0.1, seed=2)
        with pytest.raises(ValueError, match="shape"):
            PanguLU(a).solve(np.zeros((20, 2, 2)))

    def test_matmat_matches_matvec(self):
        a = random_sparse(30, 0.1, seed=3)
        X = np.random.default_rng(1).standard_normal((30, 4))
        Y = a.matmat(X)
        for c in range(4):
            np.testing.assert_allclose(Y[:, c], a.matvec(X[:, c]))


class TestTransposeSolve:
    @pytest.mark.parametrize("seed", range(3))
    def test_residual(self, seed):
        a = random_sparse(70, 0.07, seed=seed)
        s = PanguLU(a)
        b = np.random.default_rng(seed).standard_normal(70)
        x = s.solve_transposed(b)
        d = a.to_dense()
        assert np.abs(d.T @ x - b).max() < 1e-8

    def test_consistent_with_transposed_matrix(self):
        a = random_sparse(50, 0.08, seed=9)
        b = np.random.default_rng(2).standard_normal(50)
        x1 = PanguLU(a).solve_transposed(b)
        x2 = PanguLU(a.transpose()).solve(b)
        np.testing.assert_allclose(x1, x2, atol=1e-8)

    def test_unsymmetric_matrix(self):
        a = generate("cage12", scale=0.12)
        s = PanguLU(a)
        b = np.ones(a.nrows)
        x = s.solve_transposed(b)
        d = a.to_dense()
        assert np.abs(d.T @ x - b).max() < 1e-8


class TestSlogdet:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_numpy(self, seed):
        a = random_sparse(50, 0.08, seed=seed)
        sign, logdet = PanguLU(a).slogdet()
        sref, lref = np.linalg.slogdet(a.to_dense())
        assert sign == sref
        assert logdet == pytest.approx(lref, rel=1e-9)

    def test_negative_determinant(self):
        # flip the sign of one row: determinant sign flips
        a = random_sparse(30, 0.1, seed=5)
        flipped = a.copy()
        rows, _ = flipped.rows_cols()
        flipped.data[rows == 0] *= -1.0
        s1, _ = PanguLU(a).slogdet()
        s2, _ = PanguLU(flipped).slogdet()
        assert s1 == -s2

    def test_scaled_matrix(self):
        a = random_sparse(40, 0.08, seed=6)
        scaled = a.scale(np.full(40, 3.0), None)
        _, l1 = PanguLU(a).slogdet()
        _, l2 = PanguLU(scaled).slogdet()
        assert l2 == pytest.approx(l1 + 40 * np.log(3.0), rel=1e-9)


class TestCondest:
    def test_within_factor_of_truth(self):
        a = random_sparse(60, 0.08, seed=7)
        est = PanguLU(a).condest_1norm()
        d = a.to_dense()
        true = np.linalg.norm(d, 1) * np.linalg.norm(np.linalg.inv(d), 1)
        assert est <= true * 1.001          # Hager gives a lower bound
        assert est >= true / 20             # …that is rarely far off

    def test_identity_conditioning(self):
        from repro.sparse import CSCMatrix

        est = PanguLU(CSCMatrix.eye(12)).condest_1norm()
        assert est == pytest.approx(1.0, rel=1e-12)

    def test_detects_bad_conditioning(self):
        a = random_sparse(40, 0.1, seed=8)
        bad = a.scale(np.logspace(0, 8, 40), None)
        k_good = PanguLU(a).condest_1norm()
        k_bad = PanguLU(bad).condest_1norm()
        assert k_bad > 100 * k_good


class TestPivotDiagnostics:
    def test_no_replacements_on_healthy_matrix(self):
        a = random_sparse(60, 0.08, seed=10)
        s = PanguLU(a)
        s.factorize()
        assert s.numeric_stats.pivots_replaced == 0

    def test_replacements_counted_on_singular_block(self):
        import numpy as np

        from repro.core import block_partition, build_dag, factorize
        from repro.core.numeric import NumericOptions
        from repro.symbolic import symbolic_symmetric

        a = random_sparse(40, 0.08, seed=11)
        f = symbolic_symmetric(a).filled
        bm = block_partition(f, 10)
        dag = build_dag(bm)
        # zero the first diagonal block's values: every pivot needs rescue
        diag = bm.block(0, 0)
        diag.data[...] = 0.0
        stats = factorize(bm, dag, NumericOptions(pivot_floor=1e-10))
        assert stats.pivots_replaced >= diag.ncols


class TestEstimate:
    def test_reports_structure_and_predictions(self):
        a = generate("ldoor", scale=0.12)
        s = PanguLU(a)
        est = s.estimate(proc_counts=(1, 4))
        assert est["n"] == a.nrows
        assert est["nnz_lu"] >= a.nnz
        assert est["flops"] > 0
        assert est["factor_bytes"] > 0
        assert set(est["predicted"]) == {
            ("A100", 1), ("A100", 4), ("MI50", 1), ("MI50", 4),
        }
        for v in est["predicted"].values():
            assert v["seconds"] > 0 and v["gflops"] > 0
            assert 0.0 <= v["sync_ratio"] <= 1.0

    def test_estimate_does_not_factorize(self):
        a = random_sparse(40, 0.1, seed=12)
        s = PanguLU(a)
        s.estimate(proc_counts=(1,))
        assert not s._factorized
        # numeric still works afterwards
        x = s.solve(np.ones(40))
        assert s.residual_norm(x, np.ones(40)) < 1e-9
