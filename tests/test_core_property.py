"""Property-based tests of the full numeric pipeline on random inputs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import block_partition, build_dag, factorize
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def _dense_lu(d: np.ndarray) -> np.ndarray:
    d = d.copy()
    for k in range(d.shape[0]):
        d[k + 1 :, k] /= d[k, k]
        d[k + 1 :, k + 1 :] -= np.outer(d[k + 1 :, k], d[k, k + 1 :])
    return d


@settings(max_examples=20, deadline=None)
@given(
    st.integers(6, 36),
    st.integers(2, 14),
    st.floats(0.05, 0.25),
    st.integers(0, 10_000),
)
def test_block_lu_matches_dense_for_any_block_size(n, bs, density, seed):
    """The blocked factorisation is exact for every matrix × block-size
    combination — the core correctness property of the whole system."""
    a = random_sparse(n, density, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    dag = build_dag(bm)
    stats = factorize(bm, dag)
    assert stats.tasks_executed == len(dag.tasks)
    np.testing.assert_allclose(
        bm.to_csc().to_dense(), _dense_lu(a.to_dense()), atol=1e-8
    )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(6, 30),
    st.integers(2, 10),
    st.floats(0.05, 0.25),
    st.integers(0, 10_000),
)
def test_dag_flops_invariants(n, bs, density, seed):
    """Structural invariants of the DAG hold for arbitrary inputs."""
    a = random_sparse(n, density, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    dag = build_dag(bm)
    # every task has non-negative flops; GETRF count equals grid order
    from repro.core import TaskType

    getrfs = [t for t in dag.tasks if t.ttype == TaskType.GETRF]
    assert len(getrfs) == bm.nb
    assert all(t.flops >= 0 for t in dag.tasks)
    assert dag.total_flops == sum(t.flops for t in dag.tasks)
    # the critical path is a valid lower bound
    assert 0 <= dag.critical_path_flops() <= dag.total_flops


@settings(max_examples=12, deadline=None)
@given(
    st.integers(8, 28),
    st.floats(0.06, 0.2),
    st.integers(0, 10_000),
    st.integers(1, 4),
)
def test_solve_random_property(n, density, seed, nrhs):
    """End-to-end solve accuracy for arbitrary well-posed systems."""
    from repro import PanguLU

    a = random_sparse(n, density, seed=seed)
    s = PanguLU(a)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, nrhs)) if nrhs > 1 else rng.standard_normal(n)
    x = s.solve(b)
    d = a.to_dense()
    assert np.abs(d @ x - b).max() < 1e-8
