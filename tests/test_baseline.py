"""Tests for the SuperLU_DIST-role supernodal baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU
from repro.baseline import (
    BaselineOptions,
    SuperLUBaseline,
    build_sn_dag,
    detect_supernodes,
    simulate_superlu,
    sn_factorize,
    sn_partition,
    supernode_size_histogram,
)
from repro.runtime import A100_PLATFORM
from repro.sparse import generate, random_sparse
from repro.symbolic import symbolic_gilbert_peierls


def _filled(n=70, seed=0):
    a = random_sparse(n, 0.07, seed=seed)
    return a, symbolic_gilbert_peierls(a).filled


class TestDetection:
    def test_boundaries_partition_columns(self):
        _, f = _filled()
        part = detect_supernodes(f)
        b = part.boundaries
        assert b[0] == 0 and b[-1] == f.ncols
        assert np.all(np.diff(b) >= 1)

    def test_width_cap_respected(self):
        _, f = _filled()
        part = detect_supernodes(f, max_width=8)
        assert part.widths().max() <= 8

    def test_padding_at_least_actual(self):
        _, f = _filled()
        part = detect_supernodes(f)
        assert part.nnz_padded >= part.nnz_actual
        assert part.padding_ratio >= 1.0

    def test_relaxation_trades_padding_for_width(self):
        _, f = _filled()
        tight = detect_supernodes(f, relax_pad=0.0, relax_small=1)
        loose = detect_supernodes(f, relax_pad=1.0, relax_small=8)
        assert loose.n_supernodes <= tight.n_supernodes
        assert loose.nnz_padded >= tight.nnz_padded

    def test_supernode_of_column(self):
        _, f = _filled()
        part = detect_supernodes(f)
        s = part.supernode_of_column()
        for k in range(part.n_supernodes):
            cols = np.flatnonzero(s == k)
            assert cols.min() == part.boundaries[k]
            assert cols.max() == part.boundaries[k + 1] - 1

    def test_histogram_counts_all(self):
        _, f = _filled()
        part = detect_supernodes(f)
        hist = supernode_size_histogram(part)
        assert hist.sum() == part.n_supernodes

    def test_fem_supernodes_wider_than_circuit(self):
        """Fig. 3's point: FEM matrices form fat supernodes, circuit-like
        matrices stay thin."""
        fem = generate("audikw_1", scale=0.12)
        cir = generate("ASIC_680k", scale=0.25)
        pf = detect_supernodes(symbolic_gilbert_peierls(PanguLU(fem).reorder()).filled)
        pc = detect_supernodes(symbolic_gilbert_peierls(PanguLU(cir).reorder()).filled)
        assert pf.widths().mean() > pc.widths().mean()


class TestSupernodalNumeric:
    def test_matches_dense_lu(self):
        a, f = _filled(seed=2)
        part = detect_supernodes(f)
        m = sn_partition(f, part)
        sn_factorize(m)
        d = a.to_dense()
        for k in range(d.shape[0]):
            d[k + 1 :, k] /= d[k, k]
            d[k + 1 :, k + 1 :] -= np.outer(d[k + 1 :, k], d[k, k + 1 :])
        np.testing.assert_allclose(m.to_dense(), d, atol=1e-9)

    def test_partition_roundtrip(self):
        a, f = _filled(seed=3)
        part = detect_supernodes(f)
        m = sn_partition(f, part)
        np.testing.assert_allclose(m.to_dense(), f.to_dense())

    def test_stats_recorded(self):
        _, f = _filled(seed=4)
        part = detect_supernodes(f)
        m = sn_partition(f, part)
        stats = sn_factorize(m)
        assert stats.panel_flops > 0
        assert stats.schur_flops == sum(g.flops for g in stats.gemms)
        for g in stats.gemms:
            assert 0 < g.density_a <= 1
            assert 0 < g.density_c <= 1

    def test_gemm_dense_flops_exceed_structural_need(self):
        """The dense GEMMs pay for padding — their FLOPs must exceed the
        structural FLOPs PanguLU spends on the same matrix."""
        a = random_sparse(80, 0.05, seed=5)
        bl = SuperLUBaseline(a)
        bl.factorize()
        s = PanguLU(a)
        s.preprocess()
        total_dense = bl.numeric_stats.panel_flops + bl.numeric_stats.schur_flops
        assert total_dense > s.dag.total_flops


class TestBaselineSolver:
    @pytest.mark.parametrize("seed", range(3))
    def test_residual(self, seed):
        a = random_sparse(70, 0.06, seed=seed)
        bl = SuperLUBaseline(a)
        b = np.arange(1.0, 71.0)
        x = bl.solve(b)
        assert bl.residual_norm(x, b) < 1e-9

    def test_agrees_with_pangulu(self):
        a = random_sparse(90, 0.05, seed=7)
        b = np.ones(90)
        x_bl = SuperLUBaseline(a).solve(b)
        x_pg = PanguLU(a).solve(b)
        np.testing.assert_allclose(x_bl, x_pg, atol=1e-7)

    def test_phase_seconds(self):
        a = random_sparse(50, 0.08, seed=8)
        bl = SuperLUBaseline(a)
        bl.solve(np.ones(50))
        assert set(bl.phase_seconds) == {
            "reorder", "symbolic", "preprocess", "numeric", "solve",
        }

    def test_paper_analogue(self):
        a = generate("CoupCons3D", scale=0.12)
        bl = SuperLUBaseline(a)
        b = np.ones(a.nrows)
        x = bl.solve(b)
        assert bl.residual_norm(x, b) < 1e-8


class TestBaselineDAG:
    def _fixture(self, seed=0):
        a = random_sparse(80, 0.06, seed=seed)
        bl = SuperLUBaseline(a, BaselineOptions(max_supernode_width=8))
        bl.preprocess()
        return bl

    def test_levels_monotone_along_deps(self):
        bl = self._fixture()
        dag = build_sn_dag(bl.panels, bl.partition)
        for tid in range(len(dag)):
            for s in dag.successors[tid]:
                # inter-step dependencies go to a >= level
                assert dag.levels[s] >= dag.levels[tid]

    def test_dep_counts_consistent(self):
        bl = self._fixture(1)
        dag = build_sn_dag(bl.panels, bl.partition)
        indeg = np.zeros(len(dag), dtype=int)
        for tid in range(len(dag)):
            for s in dag.successors[tid]:
                indeg[s] += 1
        np.testing.assert_array_equal(indeg, dag.n_deps)

    def test_simulation_completes_both_schedules(self):
        bl = self._fixture(2)
        for schedule in ("levelset", "syncfree"):
            res, dag = simulate_superlu(
                bl.panels, bl.partition, A100_PLATFORM, 8, schedule=schedule
            )
            assert res.makespan > 0

    def test_levelset_not_faster_than_syncfree(self):
        bl = self._fixture(3)
        ls, dag = simulate_superlu(
            bl.panels, bl.partition, A100_PLATFORM, 8, schedule="levelset"
        )
        sf, _ = simulate_superlu(
            bl.panels, bl.partition, A100_PLATFORM, 8, schedule="syncfree", dag=dag
        )
        assert ls.makespan >= sf.makespan - 1e-12

    def test_pangulu_beats_baseline_on_irregular_matrix(self):
        """The headline claim at reduced scale: on a circuit-like matrix
        PanguLU's simulated factorisation is faster than the baseline's."""
        from repro.runtime import simulate_pangulu

        a = generate("ASIC_680k", scale=0.25)
        bl = SuperLUBaseline(a)
        bl.preprocess()
        res_bl, _ = simulate_superlu(bl.panels, bl.partition, A100_PLATFORM, 8)
        s = PanguLU(a)
        s.preprocess()
        res_pg = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 8)
        assert res_pg.result.makespan < res_bl.makespan
