"""Tests for the multiprocessing distributed-memory executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import block_partition, build_dag, factorize
from repro.runtime import factorize_distributed
from repro.sparse import generate, random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=80, bs=12, seed=0):
    a = random_sparse(n, 0.06, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return bm, build_dag(bm)


@pytest.fixture(scope="module")
def sequential_reference():
    bm, dag = _prepared()
    factorize(bm, dag)
    return bm.to_csc().to_dense()


class TestDistributed:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_matches_sequential(self, nprocs, sequential_reference):
        bm, dag = _prepared()
        stats = factorize_distributed(bm, dag, nprocs)
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), sequential_reference, atol=1e-10
        )
        assert sum(stats.tasks_per_proc) == len(dag.tasks)
        assert stats.n_procs == nprocs

    def test_single_proc_sends_nothing(self):
        bm, dag = _prepared(seed=1)
        stats = factorize_distributed(bm, dag, 1)
        assert stats.messages_sent == 0

    def test_messages_grow_with_procs(self):
        bm2, dag2 = _prepared(seed=2)
        s2 = factorize_distributed(bm2, dag2, 2)
        bm4, dag4 = _prepared(seed=2)
        s4 = factorize_distributed(bm4, dag4, 4)
        assert s4.messages_sent >= s2.messages_sent
        assert s2.block_bytes_sent > 0

    def test_rejects_zero_procs(self):
        bm, dag = _prepared(seed=3)
        with pytest.raises(ValueError, match="process"):
            factorize_distributed(bm, dag, 0)

    def test_on_paper_analogue(self):
        a = generate("G3_circuit", scale=0.12)
        from repro import PanguLU

        s_ref, s_dist = PanguLU(a), PanguLU(a)
        s_ref.preprocess()
        s_dist.preprocess()
        factorize(s_ref.blocks, s_ref.dag)
        factorize_distributed(s_dist.blocks, s_dist.dag, 3)
        np.testing.assert_allclose(
            s_dist.blocks.to_csc().to_dense(),
            s_ref.blocks.to_csc().to_dense(),
            atol=1e-9,
        )


class TestFailureInjection:
    def test_worker_error_surfaces(self):
        """A kernel failure inside a rank must surface as RuntimeError on
        the master, not hang the pool."""
        from repro.core import NumericOptions

        bm, dag = _prepared(seed=9)
        # poison the first diagonal block: zero pivots + no GESP rescue
        bm.block(0, 0).data[...] = 0.0
        with pytest.raises(RuntimeError, match="rank"):
            factorize_distributed(
                bm, dag, 2, options=NumericOptions(pivot_floor=0.0)
            )

    def test_all_ranks_report_errors_independently(self):
        from repro.core import NumericOptions

        bm, dag = _prepared(seed=10)
        bm.block(0, 0).data[...] = 0.0
        try:
            factorize_distributed(
                bm, dag, 4, options=NumericOptions(pivot_floor=0.0)
            )
        except RuntimeError as exc:
            assert "SingularBlockError" in str(exc) or "rank" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected a RuntimeError")


class TestMessageAccounting:
    def test_messages_match_dag_prediction(self):
        """The executor's actual message count equals the DAG-predicted
        count: one message per (task, consumer-process) pair with the
        consumer distinct from the producer."""
        from repro.core.mapping import ProcessGrid

        bm, dag = _prepared(seed=11)
        nprocs = 3
        grid = ProcessGrid.square(nprocs)
        owner = {}
        for bj in range(bm.nb):
            rows, _ = bm.blocks_in_column(bj)
            for bi in rows:
                owner[(int(bi), bj)] = grid.owner(int(bi), bj)
        expected = 0
        for t in dag.tasks:
            me = owner[(t.bi, t.bj)]
            dests = {
                owner[(dag.tasks[s].bi, dag.tasks[s].bj)]
                for s in t.successors
            } - {me}
            expected += len(dests)
        stats = factorize_distributed(bm, dag, nprocs)
        assert stats.messages_sent == expected
