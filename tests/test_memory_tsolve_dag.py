"""Tests for memory accounting and the triangular-solve task DAG."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU, SolverOptions
from repro.core import (
    ProcessGrid,
    TSolveTaskType,
    build_tsolve_dag,
    memory_report,
    per_process_bytes,
)
from repro.runtime import A100_PLATFORM, simulate_tsolve
from repro.sparse import generate, random_sparse


@pytest.fixture(scope="module")
def prepared():
    a = random_sparse(120, 0.05, seed=4)
    s = PanguLU(a, SolverOptions(block_size=16))
    s.preprocess()
    return s


class TestMemoryReport:
    def test_totals_consistent(self, prepared):
        rep = memory_report(prepared.blocks)
        assert rep.total_bytes == (
            rep.values_bytes
            + rep.layer2_index_bytes
            + rep.layer1_index_bytes
            + rep.plan_bytes
            + rep.arena_refill_bytes
        )
        nnz = sum(b.nnz for b in prepared.blocks.blk_values)
        assert rep.values_bytes == nnz * 8

    def test_layer1_overhead_insignificant(self, prepared):
        """The paper's claim: the block-level arrays add no significant
        overhead.  Pin it below 5% of total storage."""
        rep = memory_report(prepared.blocks)
        assert rep.layer1_overhead < 0.05

    def test_dense_ratio_above_one_for_sparse(self):
        # a genuinely sparse factor (grid Laplacian): storing blocks dense
        # would cost several times the two-layer sparse storage
        a = generate("ecology1", scale=0.25)
        s = PanguLU(a)
        s.preprocess()
        rep = memory_report(s.blocks)
        assert rep.dense_ratio > 1.5

    def test_per_process_bytes_sum(self, prepared):
        grid = ProcessGrid.square(4)
        pp = per_process_bytes(prepared.blocks, grid)
        total = sum(
            b.nnz * 16 + (b.ncols + 1) * 8 for b in prepared.blocks.blk_values
        )
        assert pp.sum() == total
        assert pp.shape == (4,)


class TestTSolveDAG:
    def test_task_counts(self, prepared):
        f = prepared.blocks
        grid = ProcessGrid.square(4)
        dag = build_tsolve_dag(f, grid.owner)
        kinds = dag.kinds
        n_diag = (kinds == int(TSolveTaskType.DIAG_F)).sum()
        assert n_diag == f.nb
        assert (kinds == int(TSolveTaskType.DIAG_B)).sum() == f.nb
        # one forward update per strictly-lower stored block
        lower_blocks = sum(
            1
            for bj in range(f.nb)
            for bi in f.blocks_in_column(bj)[0]
            if int(bi) > bj
        )
        assert (kinds == int(TSolveTaskType.UPD_F)).sum() == lower_blocks

    def test_acyclic_and_executable(self, prepared):
        f = prepared.blocks
        dag = build_tsolve_dag(f, ProcessGrid.square(2).owner)
        indeg = dag.n_deps.copy()
        stack = [t for t in range(len(dag)) if indeg[t] == 0]
        seen = 0
        while stack:
            t = stack.pop()
            seen += 1
            for s in dag.successors[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        assert seen == len(dag)

    def test_forward_before_backward(self, prepared):
        """DIAG_B(k) transitively depends on DIAG_F(k)."""
        f = prepared.blocks
        dag = build_tsolve_dag(f, ProcessGrid.square(1).owner)
        # direct edge inserted by construction:
        for k in range(f.nb):
            fwd = int(np.flatnonzero(
                (dag.kinds == int(TSolveTaskType.DIAG_F)) & (dag.k_of == k)
            )[0])
            bwd = int(np.flatnonzero(
                (dag.kinds == int(TSolveTaskType.DIAG_B)) & (dag.k_of == k)
            )[0])
            assert bwd in dag.successors[fwd]

    def test_simulation_completes(self, prepared):
        for p in (1, 4, 16):
            res = simulate_tsolve(prepared.blocks, A100_PLATFORM, p)
            assert res.makespan > 0

    def test_single_proc_no_sync(self, prepared):
        res = simulate_tsolve(prepared.blocks, A100_PLATFORM, 1)
        assert res.mean_sync == pytest.approx(0.0)


class TestFacadeThreading:
    def test_n_workers_option(self):
        a = generate("G3_circuit", scale=0.12)
        b = np.ones(a.nrows)
        x1 = PanguLU(a, SolverOptions(n_workers=1)).solve(b)
        x4 = PanguLU(a, SolverOptions(n_workers=4)).solve(b)
        np.testing.assert_allclose(x1, x4, atol=1e-9)
