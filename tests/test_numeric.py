"""Tests for the numeric factorisation driver and block triangular solves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NumericOptions,
    block_backward,
    block_forward,
    block_partition,
    build_dag,
    factorize,
    solve_lower_unit,
    solve_upper,
)
from repro.kernels import SelectorPolicy
from repro.sparse import grid_laplacian_2d, random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=60, bs=16, seed=0):
    a = random_sparse(n, 0.08, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return a, bm, build_dag(bm)


def _dense_lu(d: np.ndarray) -> np.ndarray:
    d = d.copy()
    for k in range(d.shape[0]):
        d[k + 1 :, k] /= d[k, k]
        d[k + 1 :, k + 1 :] -= np.outer(d[k + 1 :, k], d[k, k + 1 :])
    return d


class TestFactorize:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_dense_lu(self, seed):
        a, bm, dag = _prepared(seed=seed)
        ref = _dense_lu(a.to_dense())
        factorize(bm, dag)
        np.testing.assert_allclose(bm.to_csc().to_dense(), ref, atol=1e-9)

    def test_all_tasks_executed(self):
        a, bm, dag = _prepared()
        stats = factorize(bm, dag)
        assert stats.tasks_executed == len(dag.tasks)
        assert len(stats.kernel_choices) == len(dag.tasks)

    def test_fixed_policy_same_result(self):
        a, bm1, dag1 = _prepared(seed=4)
        _, bm2, dag2 = _prepared(seed=4)
        factorize(bm1, dag1)
        factorize(
            bm2, dag2, NumericOptions(selector=SelectorPolicy.fixed())
        )
        np.testing.assert_allclose(
            bm1.to_csc().to_dense(), bm2.to_csc().to_dense(), atol=1e-9
        )

    def test_version_histogram(self):
        _, bm, dag = _prepared()
        stats = factorize(bm, dag)
        hist = stats.version_histogram()
        assert sum(hist.values()) == len(dag.tasks)
        assert all("/" in k for k in hist)

    def test_collect_timings(self):
        _, bm, dag = _prepared()
        stats = factorize(bm, dag, collect_timings=True)
        assert set(stats.seconds_by_type) <= {"GETRF", "GESSM", "TSTRF", "SSSSM"}
        assert stats.seconds_total > 0

    def test_flops_total(self):
        _, bm, dag = _prepared()
        stats = factorize(bm, dag)
        assert stats.flops_total == dag.total_flops

    def test_block_size_one(self):
        a, bm, dag = _prepared(n=20, bs=1, seed=2)
        factorize(bm, dag)
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), _dense_lu(a.to_dense()), atol=1e-9
        )

    def test_single_block(self):
        a, bm, dag = _prepared(n=20, bs=32, seed=2)
        assert bm.nb == 1
        factorize(bm, dag)
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), _dense_lu(a.to_dense()), atol=1e-9
        )


class TestWithinBlockSolves:
    def test_solve_lower_unit(self):
        a, bm, dag = _prepared(n=30, bs=32, seed=1)
        factorize(bm, dag)
        diag = bm.block(0, 0)
        packed = diag.to_dense()
        l = np.tril(packed, -1) + np.eye(30)
        y = np.arange(1.0, 31.0)
        expect = np.linalg.solve(l, y)
        solve_lower_unit(diag, y)
        np.testing.assert_allclose(y, expect, atol=1e-10)

    def test_solve_upper(self):
        a, bm, dag = _prepared(n=30, bs=32, seed=1)
        factorize(bm, dag)
        diag = bm.block(0, 0)
        u = np.triu(diag.to_dense())
        y = np.arange(1.0, 31.0)
        expect = np.linalg.solve(u, y)
        solve_upper(diag, y)
        np.testing.assert_allclose(y, expect, atol=1e-8)

    def test_solve_upper_zero_diag_raises(self):
        from repro.sparse import CSCMatrix

        d = CSCMatrix.from_dense(np.array([[0.0, 1], [0, 1.0]]))
        # give position (0,0) a stored zero
        d2 = CSCMatrix(
            (2, 2), np.array([0, 1, 3]), np.array([0, 0, 1]), np.array([0.0, 1.0, 1.0])
        )
        with pytest.raises(ZeroDivisionError):
            solve_upper(d2, np.ones(2))


class TestBlockTriangularSolves:
    @pytest.mark.parametrize("bs", [7, 16, 64])
    def test_forward_backward_roundtrip(self, bs):
        a, bm, dag = _prepared(n=50, bs=bs, seed=3)
        factorize(bm, dag)
        d = a.to_dense()
        b = np.linspace(1, 2, 50)
        y = block_forward(bm, b)
        x = block_backward(bm, y)
        np.testing.assert_allclose(d @ x, b, atol=1e-8)

    def test_forward_matches_dense(self):
        a, bm, dag = _prepared(n=40, bs=8, seed=5)
        factorize(bm, dag)
        packed = bm.to_csc().to_dense()
        l = np.tril(packed, -1) + np.eye(40)
        b = np.random.default_rng(0).standard_normal(40)
        np.testing.assert_allclose(
            block_forward(bm, b), np.linalg.solve(l, b), atol=1e-9
        )

    def test_backward_matches_dense(self):
        a, bm, dag = _prepared(n=40, bs=8, seed=5)
        factorize(bm, dag)
        packed = bm.to_csc().to_dense()
        u = np.triu(packed)
        b = np.random.default_rng(1).standard_normal(40)
        np.testing.assert_allclose(
            block_backward(bm, b), np.linalg.solve(u, b), atol=1e-8
        )

    def test_shape_checks(self):
        _, bm, dag = _prepared()
        factorize(bm, dag)
        with pytest.raises(ValueError, match="shape"):
            block_forward(bm, np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            block_backward(bm, np.zeros(3))


class TestGridMatrix:
    def test_laplacian_factorisation(self):
        g = grid_laplacian_2d(9, 9)
        f = symbolic_symmetric(g).filled
        bm = block_partition(f, 16)
        dag = build_dag(bm)
        factorize(bm, dag)
        ref = _dense_lu(g.to_dense())
        np.testing.assert_allclose(bm.to_csc().to_dense(), ref, atol=1e-9)
