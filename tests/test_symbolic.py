"""Tests for elimination trees and both symbolic factorisation paths."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CSCMatrix, grid_laplacian_2d, random_sparse
from repro.symbolic import (
    column_counts,
    elimination_tree,
    fill_in_values,
    postorder,
    symbolic_gilbert_peierls,
    symbolic_symmetric,
    tree_levels,
)


def dense_lu_pattern(d: np.ndarray) -> np.ndarray:
    """Exact structural fill of LU without pivoting (dense reference)."""
    n = d.shape[0]
    pat = d != 0
    for k in range(n):
        assert pat[k, k], "reference requires a structurally full diagonal"
        rows = np.flatnonzero(pat[k + 1 :, k]) + k + 1
        cols = np.flatnonzero(pat[k, k + 1 :]) + k + 1
        pat[np.ix_(rows, cols)] = True
    return pat


def pattern_mask(m: CSCMatrix) -> np.ndarray:
    out = np.zeros(m.shape, dtype=bool)
    r, c = m.rows_cols()
    out[r, c] = True
    return out


class TestEtree:
    def test_chain_matrix(self):
        # tridiagonal → etree is a path
        d = np.eye(5) + np.eye(5, k=1) + np.eye(5, k=-1)
        par = elimination_tree(CSCMatrix.from_dense(d))
        np.testing.assert_array_equal(par, [1, 2, 3, 4, -1])

    def test_diagonal_matrix_is_forest_of_roots(self):
        par = elimination_tree(CSCMatrix.eye(4))
        np.testing.assert_array_equal(par, [-1, -1, -1, -1])

    def test_parent_exceeds_child(self):
        a = random_sparse(50, 0.06, seed=2)
        par = elimination_tree(a)
        for v, p in enumerate(par):
            assert p == -1 or p > v

    def test_postorder_children_before_parents(self):
        a = random_sparse(40, 0.08, seed=3)
        par = elimination_tree(a)
        post = postorder(par)
        pos = np.empty(40, dtype=int)
        pos[post] = np.arange(40)
        for v, p in enumerate(par):
            if p >= 0:
                assert pos[v] < pos[p]

    def test_postorder_is_permutation(self):
        a = random_sparse(33, 0.1, seed=4)
        post = postorder(elimination_tree(a))
        assert np.array_equal(np.sort(post), np.arange(33))

    def test_tree_levels(self):
        par = np.array([1, 2, -1])
        np.testing.assert_array_equal(tree_levels(par), [2, 1, 0])

    def test_column_counts_match_fill(self):
        g = grid_laplacian_2d(7, 7)
        par = elimination_tree(g)
        cc = column_counts(g, par)
        filled = symbolic_symmetric(g).filled
        mask = pattern_mask(filled)
        lower = np.tril(mask)
        np.testing.assert_array_equal(cc, lower.sum(axis=0))


class TestSymmetricFill:
    @pytest.mark.parametrize("seed", range(4))
    def test_superset_of_exact_fill(self, seed):
        a = random_sparse(45, 0.06, seed=seed)
        sym = symbolic_symmetric(a)
        exact = dense_lu_pattern(a.to_dense())
        assert np.all(pattern_mask(sym.filled) >= exact)

    def test_exact_on_symmetric_pattern(self):
        g = grid_laplacian_2d(8, 8)
        sym = symbolic_symmetric(g)
        exact = dense_lu_pattern(g.to_dense())
        np.testing.assert_array_equal(pattern_mask(sym.filled), exact)

    def test_values_injected(self):
        a = random_sparse(30, 0.08, seed=9)
        sym = symbolic_symmetric(a)
        np.testing.assert_allclose(sym.filled.to_dense(), a.to_dense())

    def test_nnz_accounting(self):
        g = grid_laplacian_2d(6, 6)
        sym = symbolic_symmetric(g)
        mask = pattern_mask(sym.filled)
        strict_lower = np.tril(mask, -1).sum()
        assert sym.nnz_l == strict_lower + 36
        assert sym.nnz_u == strict_lower + 36  # symmetric pattern

    def test_fill_ratio_at_least_one(self):
        a = random_sparse(30, 0.05, seed=1)
        assert symbolic_symmetric(a).fill_ratio >= 1.0

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            symbolic_symmetric(CSCMatrix.empty((2, 3)))


class TestGilbertPeierls:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("prune", [True, False])
    def test_matches_dense_reference(self, seed, prune):
        a = random_sparse(45, 0.06, seed=seed)
        gp = symbolic_gilbert_peierls(a, prune=prune)
        np.testing.assert_array_equal(
            pattern_mask(gp.filled), dense_lu_pattern(a.to_dense())
        )

    def test_pruning_does_not_change_pattern(self):
        a = random_sparse(60, 0.05, seed=11)
        g1 = symbolic_gilbert_peierls(a, prune=True)
        g2 = symbolic_gilbert_peierls(a, prune=False)
        assert g1.filled.nnz == g2.filled.nnz
        assert np.array_equal(g1.filled.indices, g2.filled.indices)

    def test_subset_of_symmetric_fill(self):
        a = random_sparse(40, 0.07, seed=12)
        gp = symbolic_gilbert_peierls(a)
        sym = symbolic_symmetric(a)
        assert np.all(pattern_mask(sym.filled) >= pattern_mask(gp.filled))

    def test_values_injected(self):
        a = random_sparse(25, 0.1, seed=13)
        gp = symbolic_gilbert_peierls(a)
        np.testing.assert_allclose(gp.filled.to_dense(), a.to_dense())

    def test_nnz_counts(self):
        a = random_sparse(30, 0.08, seed=14)
        gp = symbolic_gilbert_peierls(a)
        mask = pattern_mask(gp.filled)
        assert gp.nnz_l == np.tril(mask).sum()
        assert gp.nnz_u == np.triu(mask).sum()


class TestFillInValues:
    def test_missing_entry_raises(self):
        pattern = CSCMatrix.eye(3)
        a = CSCMatrix.from_dense(np.array([[1.0, 2.0, 0], [0, 1, 0], [0, 0, 1.0]]))
        with pytest.raises(ValueError, match="cover"):
            fill_in_values(pattern, a)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            fill_in_values(CSCMatrix.eye(3), CSCMatrix.eye(4))


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 30), st.floats(0.03, 0.25), st.integers(0, 10_000))
def test_gp_equals_dense_reference_property(n, density, seed):
    a = random_sparse(n, density, seed=seed)
    gp = symbolic_gilbert_peierls(a)
    np.testing.assert_array_equal(
        pattern_mask(gp.filled), dense_lu_pattern(a.to_dense())
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 30), st.floats(0.03, 0.25), st.integers(0, 10_000))
def test_symmetric_fill_closure_property(n, density, seed):
    """The fill pattern must be closed under (r,t),(t,c) → (r,c), t < min —
    the invariant every kernel's bin-search addressing relies on."""
    a = random_sparse(n, density, seed=seed)
    mask = pattern_mask(symbolic_symmetric(a).filled)
    for t in range(n):
        rows = np.flatnonzero(mask[t + 1 :, t]) + t + 1
        cols = np.flatnonzero(mask[t, t + 1 :]) + t + 1
        assert mask[np.ix_(rows, cols)].all()


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 35), st.floats(0.03, 0.3), st.integers(0, 10_000))
def test_etree_properties(n, density, seed):
    """Elimination-tree invariants on arbitrary matrices: parents come
    after children, postorder is a valid topological order, and levels
    decrease from child to parent by exactly one."""
    a = random_sparse(n, density, seed=seed)
    par = elimination_tree(a)
    assert par.shape == (n,)
    for v, p in enumerate(par):
        assert p == -1 or p > v
    post = postorder(par)
    assert np.array_equal(np.sort(post), np.arange(n))
    depth = tree_levels(par)
    for v, p in enumerate(par):
        if p >= 0:
            assert depth[v] == depth[p] + 1
        else:
            assert depth[v] == 0
