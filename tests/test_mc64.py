"""Tests for MC64: maximum transversal and maximum-product matching."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse.csgraph import min_weight_full_bipartite_matching

from repro.ordering import StructurallySingularError, maximum_transversal, mc64
from repro.sparse import CSCMatrix, generate, random_sparse


class TestTransversal:
    def test_full_matching_on_dominant(self):
        a = random_sparse(50, 0.06, seed=1)
        t = maximum_transversal(a)
        assert np.array_equal(np.sort(t), np.arange(50))
        # permuted diagonal is structurally nonzero
        d = a.permute(t, None).to_dense()
        assert np.all(np.diag(d != 0))

    def test_partial_matching_on_singular(self):
        d = np.zeros((3, 3))
        d[0, 0] = d[1, 0] = d[2, 0] = 1.0  # only column 0 has entries
        t = maximum_transversal(CSCMatrix.from_dense(d))
        assert (t >= 0).sum() == 1

    def test_permutation_matrix(self):
        # identity-reversed: anti-diagonal
        d = np.fliplr(np.eye(5))
        t = maximum_transversal(CSCMatrix.from_dense(d))
        np.testing.assert_array_equal(t, [4, 3, 2, 1, 0])

    def test_needs_augmenting_paths(self):
        # cheap assignment alone fails here; augmentation must rewire
        d = np.array([[1.0, 1.0], [1.0, 0.0]])
        t = maximum_transversal(CSCMatrix.from_dense(d))
        assert np.array_equal(np.sort(t), [0, 1])
        assert t[1] == 0  # column 1 only has row 0


class TestMC64:
    @pytest.mark.parametrize("seed", range(5))
    def test_optimal_log_product(self, seed):
        a = random_sparse(60, 0.06, seed=seed)
        r = mc64(a)
        b = a.to_scipy().tocsr()
        b.data = -np.log(np.abs(b.data))
        rr, cc = min_weight_full_bipartite_matching(b)
        opt = -b[rr, cc].sum()
        assert abs(r.log_product - opt) < 1e-8

    @pytest.mark.parametrize("seed", range(5))
    def test_scaling_bounds(self, seed):
        a = random_sparse(60, 0.06, seed=seed + 100)
        r = mc64(a)
        s = a.scale(r.row_scale, r.col_scale)
        assert np.abs(s.data).max() <= 1 + 1e-9
        diag = np.abs(s.permute(r.row_perm, None).diagonal())
        np.testing.assert_allclose(diag, 1.0, atol=1e-9)

    def test_scales_positive(self):
        a = random_sparse(30, 0.1, seed=3)
        r = mc64(a)
        assert np.all(r.row_scale > 0) and np.all(r.col_scale > 0)

    def test_row_perm_is_permutation(self):
        a = random_sparse(40, 0.08, seed=4)
        r = mc64(a)
        assert np.array_equal(np.sort(r.row_perm), np.arange(40))

    def test_singular_raises(self):
        d = np.zeros((3, 3))
        d[0, 0] = d[1, 1] = 1.0
        d[2, 0] = 1.0  # row 2 shares column support with row 0 only
        d[0, 2] = 0.0  # column 2 empty
        with pytest.raises(StructurallySingularError):
            mc64(CSCMatrix.from_dense(d))

    def test_no_perfect_matching_raises(self):
        # columns 0 and 1 both only reach row 0
        d = np.array([[1.0, 1.0, 0], [0, 0, 1.0], [0, 0, 1.0]])
        with pytest.raises(StructurallySingularError):
            mc64(CSCMatrix.from_dense(d))

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            mc64(CSCMatrix.empty((2, 3)))

    def test_empty(self):
        r = mc64(CSCMatrix.empty((0, 0)))
        assert r.row_perm.size == 0

    def test_already_diagonal_dominant_identityish(self):
        # strongly dominant diagonal: MC64 should keep the diagonal matching
        d = np.diag([10.0, 20.0, 30.0]) + 0.1
        r = mc64(CSCMatrix.from_dense(d))
        np.testing.assert_array_equal(r.row_perm, [0, 1, 2])

    def test_on_paper_analogue(self):
        a = generate("cage12", scale=0.15)
        r = mc64(a)
        s = a.scale(r.row_scale, r.col_scale).permute(r.row_perm, None)
        assert np.abs(s.diagonal()).min() > 0.99


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 25), st.floats(0.05, 0.4), st.integers(0, 10_000))
def test_mc64_invariants_property(n, density, seed):
    a = random_sparse(n, density, seed=seed)
    r = mc64(a)
    assert np.array_equal(np.sort(r.row_perm), np.arange(n))
    s = a.scale(r.row_scale, r.col_scale)
    assert np.abs(s.data).max() <= 1 + 1e-9
    diag = np.abs(s.permute(r.row_perm, None).diagonal())
    np.testing.assert_allclose(diag, 1.0, atol=1e-9)
