"""Transport plumbing and fault-injection tests for the distributed
engine, run over the deterministic in-process loopback transport."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import block_partition, build_dag, factorize
from repro.runtime import (
    EventRecorder,
    FaultPlan,
    LoopbackTransport,
    factorize_distributed,
    recorder_to_chrome_trace,
    write_recorder_trace,
)
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=80, bs=12, seed=0):
    a = random_sparse(n, 0.06, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return bm, build_dag(bm)


@pytest.fixture(scope="module")
def reference():
    bm, dag = _prepared()
    factorize(bm, dag)
    return bm.to_csc().to_dense()


class TestLoopback:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_matches_sequential(self, nprocs, reference):
        bm, dag = _prepared()
        stats = factorize_distributed(
            bm, dag, nprocs, transport=LoopbackTransport()
        )
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), reference, atol=1e-10
        )
        assert sum(stats.tasks_per_proc) == len(dag.tasks)

    def test_message_accounting_matches_multiprocessing(self):
        bm_a, dag_a = _prepared(seed=4)
        loop = factorize_distributed(
            bm_a, dag_a, 3, transport=LoopbackTransport()
        )
        bm_b, dag_b = _prepared(seed=4)
        mp = factorize_distributed(bm_b, dag_b, 3)
        assert loop.messages_sent == mp.messages_sent
        assert loop.block_bytes_sent == mp.block_bytes_sent

    def test_bytes_are_actual_payload_sizes(self):
        """Byte accounting equals the summed nbytes of the indptr,
        indices and data arrays of every sent block — not an nnz
        guesstimate."""
        bm, dag = _prepared(seed=6)
        stats = factorize_distributed(
            bm, dag, 2, transport=LoopbackTransport()
        )
        assert stats.messages_sent > 0
        # every payload carries at least an indptr (ncols+1 int64s), so
        # the per-message floor is well above zero even for empty blocks
        assert stats.block_bytes_sent >= stats.messages_sent * 8


class TestFaultInjection:
    def test_dead_rank_times_out_instead_of_hanging(self):
        bm, dag = _prepared(seed=1)
        transport = LoopbackTransport(
            faults=FaultPlan(dead_ranks=frozenset({1}))
        )
        with pytest.raises(RuntimeError, match="timed out"):
            factorize_distributed(bm, dag, 3, transport=transport, timeout=1.0)

    def test_rank_raising_mid_run_tears_down_pool(self):
        bm, dag = _prepared(seed=2)
        transport = LoopbackTransport(faults=FaultPlan(fail_after={0: 3}))
        with pytest.raises(RuntimeError, match="rank 0.*injected fault"):
            factorize_distributed(bm, dag, 3, transport=transport, timeout=30.0)

    def test_dropped_messages_starve_consumers(self):
        bm, dag = _prepared(seed=3)
        transport = LoopbackTransport(
            faults=FaultPlan(drop_from=frozenset({0}))
        )
        with pytest.raises(RuntimeError, match="timed out"):
            factorize_distributed(bm, dag, 4, transport=transport, timeout=1.0)

    def test_delayed_messages_still_correct(self, reference):
        bm, dag = _prepared()
        transport = LoopbackTransport(
            faults=FaultPlan(delay_seconds=0.005)
        )
        factorize_distributed(bm, dag, 3, transport=transport)
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), reference, atol=1e-10
        )

    def test_reordered_messages_still_correct(self, reference):
        """Staggered delays make later messages overtake earlier ones;
        the counter protocol never depends on arrival order."""
        bm, dag = _prepared()
        transport = LoopbackTransport(
            faults=FaultPlan(delay_seconds=0.01, stagger=True)
        )
        factorize_distributed(bm, dag, 4, transport=transport)
        np.testing.assert_allclose(
            bm.to_csc().to_dense(), reference, atol=1e-10
        )


class TestRealRunTraces:
    def test_distributed_trace_has_lanes_and_flows(self, tmp_path):
        bm, dag = _prepared(seed=7)
        rec = EventRecorder()
        stats = factorize_distributed(
            bm, dag, 3, transport=LoopbackTransport(), recorder=rec
        )
        path = tmp_path / "dist.json"
        write_recorder_trace(path, rec)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        tasks = [e for e in events if e["ph"] == "X"]
        assert len(tasks) == len(dag.tasks)
        lanes = {e["tid"] for e in tasks}
        assert len(lanes) >= 2  # per-rank lanes
        sends = [e for e in events if e["ph"] == "s"]
        recvs = [e for e in events if e["ph"] == "f"]
        assert len(sends) == stats.messages_sent
        assert len(sends) == len(recvs)
        # matched pairs share ids, receive never precedes its send
        by_id = {e["id"]: e for e in sends}
        for r in recvs:
            assert r["ts"] >= by_id[r["id"]]["ts"]

    def test_threaded_trace_has_worker_lanes(self, tmp_path):
        from repro.runtime import factorize_threaded

        bm, dag = _prepared(seed=8)
        rec = EventRecorder()
        factorize_threaded(bm, dag, n_workers=3, recorder=rec)
        events = recorder_to_chrome_trace(rec)
        tasks = [e for e in events if e["ph"] == "X"]
        assert len(tasks) == len(dag.tasks)
        assert {e["tid"] for e in tasks} <= {0, 1, 2}
        # ready-queue depth is exported as a counter track
        assert any(e["ph"] == "C" for e in events)

    def test_trace_roundtrips_as_json(self, tmp_path):
        bm, dag = _prepared(seed=9)
        rec = EventRecorder()
        factorize(bm, dag, recorder=rec)
        path = tmp_path / "seq.json"
        write_recorder_trace(path, rec)
        data = json.loads(path.read_text())
        assert all("ts" in e and "ph" in e for e in data["traceEvents"])
