"""Tests for the 2D block-cyclic mapping and static load balancing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ProcessGrid,
    assign_tasks,
    balance_loads,
    block_partition,
    build_dag,
    load_imbalance,
    task_weights,
)
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def _dag(n=80, bs=10, seed=0):
    a = random_sparse(n, 0.06, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return bm, build_dag(bm)


class TestProcessGrid:
    def test_square_factorisation(self):
        assert ProcessGrid.square(1) == ProcessGrid(1, 1)
        assert ProcessGrid.square(4) == ProcessGrid(2, 2)
        assert ProcessGrid.square(6) == ProcessGrid(2, 3)
        assert ProcessGrid.square(7) == ProcessGrid(1, 7)
        assert ProcessGrid.square(128) == ProcessGrid(8, 16)

    def test_nprocs(self):
        assert ProcessGrid(3, 4).nprocs == 12

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ProcessGrid.square(0)

    def test_block_cyclic_owner(self):
        g = ProcessGrid(2, 2)
        assert g.owner(0, 0) == 0
        assert g.owner(0, 1) == 1
        assert g.owner(1, 0) == 2
        assert g.owner(1, 1) == 3
        assert g.owner(2, 2) == 0  # cycles


class TestAssignment:
    def test_assignment_matches_owner(self):
        _, dag = _dag()
        grid = ProcessGrid.square(4)
        asg = assign_tasks(dag, grid)
        for t, p in zip(dag.tasks, asg):
            assert p == grid.owner(t.bi, t.bj)

    def test_assignment_in_range(self):
        _, dag = _dag()
        asg = assign_tasks(dag, ProcessGrid.square(6))
        assert asg.min() >= 0 and asg.max() < 6


class TestBalancing:
    def test_no_change_single_proc(self):
        _, dag = _dag()
        grid = ProcessGrid.square(1)
        asg = balance_loads(dag, grid)
        assert np.all(asg == 0)

    def test_imbalance_not_worse(self):
        _, dag = _dag(seed=3)
        grid = ProcessGrid.square(4)
        before = assign_tasks(dag, grid)
        after = balance_loads(dag, grid, before)
        imb_before = load_imbalance(dag, before, 4)
        imb_after = load_imbalance(dag, after, 4)
        assert imb_after <= imb_before + 1e-9

    def test_swaps_preserve_task_partition(self):
        _, dag = _dag(seed=5)
        grid = ProcessGrid.square(4)
        after = balance_loads(dag, grid)
        assert after.shape == (len(dag.tasks),)
        assert after.min() >= 0 and after.max() < 4

    def test_input_not_mutated(self):
        _, dag = _dag(seed=7)
        grid = ProcessGrid.square(4)
        before = assign_tasks(dag, grid)
        snapshot = before.copy()
        balance_loads(dag, grid, before)
        np.testing.assert_array_equal(before, snapshot)

    def test_multiple_rounds_allowed(self):
        _, dag = _dag(seed=9)
        grid = ProcessGrid.square(4)
        a1 = balance_loads(dag, grid, max_rounds=1)
        a3 = balance_loads(dag, grid, max_rounds=3)
        assert load_imbalance(dag, a3, 4) <= load_imbalance(dag, a1, 4) + 1e-9


class TestImbalanceMetric:
    def test_perfect_balance(self):
        _, dag = _dag()
        n = len(dag.tasks)
        # everything on one proc of one → 1.0
        assert load_imbalance(dag, np.zeros(n, dtype=np.int64), 1) == 1.0

    def test_all_on_one_of_two(self):
        _, dag = _dag()
        n = len(dag.tasks)
        imb = load_imbalance(dag, np.zeros(n, dtype=np.int64), 2)
        assert imb == pytest.approx(2.0)

    def test_explicit_weights(self):
        _, dag = _dag()
        n = len(dag.tasks)
        assignment = np.arange(n, dtype=np.int64) % 2
        uniform = np.ones(n)
        # with uniform weights the metric is a pure task count ratio
        expected = 2 * max(np.bincount(assignment, minlength=2)) / n
        assert load_imbalance(
            dag, assignment, 2, weights=uniform
        ) == pytest.approx(expected)


class TestTaskWeights:
    def test_every_task_visible(self):
        # zero-flop tasks must still carry weight: a pure-FLOP balancer
        # treats them as free and the imbalance metric under-reports
        bm, dag = _dag()
        w = task_weights(dag, bm)
        assert w.shape == (len(dag.tasks),)
        assert np.all(w >= 1.0)

    def test_floor_is_block_traffic(self):
        bm, dag = _dag()
        w = task_weights(dag, bm)
        flops = np.asarray([t.flops for t in dag.tasks], dtype=np.float64)
        assert np.all(w >= flops)
        for i, t in enumerate(dag.tasks):
            blk = bm.block(t.bi, t.bj)
            assert w[i] >= 2.0 * blk.nnz

    def test_without_structure_unit_floor(self):
        _, dag = _dag()
        w = task_weights(dag)
        flops = np.asarray([t.flops for t in dag.tasks], dtype=np.float64)
        np.testing.assert_array_equal(w, np.maximum(flops, 1.0))

    def test_balancer_accepts_weights(self):
        bm, dag = _dag()
        grid = ProcessGrid.square(4)
        w = task_weights(dag, bm)
        a0 = assign_tasks(dag, grid)
        a1 = balance_loads(dag, grid, a0, weights=w)
        before = load_imbalance(dag, a0, 4, weights=w)
        after = load_imbalance(dag, a1, 4, weights=w)
        assert after <= before + 1e-9

    def test_weights_length_checked(self):
        _, dag = _dag()
        grid = ProcessGrid.square(4)
        with pytest.raises(ValueError, match="one entry per task"):
            balance_loads(dag, grid, weights=np.ones(3))
