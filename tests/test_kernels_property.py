"""Property-based tests: all kernel variants agree on random fill-closed
block splits, for arbitrary matrices and split points."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    GESSM_VARIANTS,
    GETRF_VARIANTS,
    SSSSM_VARIANTS,
    TSTRF_VARIANTS,
    Workspace,
)
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric

WS = Workspace()


@st.composite
def closed_splits(draw):
    """A random matrix, its symbolic fill, and a random 2×2 block split —
    patterns closed under fill by construction."""
    n = draw(st.integers(8, 40))
    density = draw(st.floats(0.05, 0.25))
    seed = draw(st.integers(0, 2**31 - 1))
    split = draw(st.integers(2, n - 2))
    a = random_sparse(n, density, seed=seed)
    f = symbolic_symmetric(a).filled
    top = np.arange(split)
    bot = np.arange(split, n)
    d = f.extract_submatrix(top, range(split))
    b = f.extract_submatrix(top, range(split, n))
    r = f.extract_submatrix(bot, range(split))
    c = f.extract_submatrix(bot, range(split, n))
    return d, b, r, c


@settings(max_examples=30, deadline=None)
@given(closed_splits())
def test_getrf_variants_agree(blocks):
    d, _, _, _ = blocks
    results = []
    for fn in GETRF_VARIANTS.values():
        blk = d.copy()
        fn(blk, WS)
        results.append(blk.to_dense())
    for r in results[1:]:
        np.testing.assert_allclose(r, results[0], atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(closed_splits())
def test_panel_variants_agree(blocks):
    d, b, r, _ = blocks
    dfac = d.copy()
    GETRF_VARIANTS["C_V1"](dfac, WS)
    gessm_results = []
    for fn in GESSM_VARIANTS.values():
        blk = b.copy()
        fn(dfac, blk, WS)
        gessm_results.append(blk.to_dense())
    for g in gessm_results[1:]:
        np.testing.assert_allclose(g, gessm_results[0], atol=1e-8)
    tstrf_results = []
    for fn in TSTRF_VARIANTS.values():
        blk = r.copy()
        fn(dfac, blk, WS)
        tstrf_results.append(blk.to_dense())
    for t in tstrf_results[1:]:
        np.testing.assert_allclose(t, tstrf_results[0], atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(closed_splits())
def test_ssssm_variants_agree(blocks):
    d, b, r, c = blocks
    dfac = d.copy()
    GETRF_VARIANTS["C_V1"](dfac, WS)
    lblk = r.copy()
    TSTRF_VARIANTS["C_V2"](dfac, lblk, WS)
    ublk = b.copy()
    GESSM_VARIANTS["C_V2"](dfac, ublk, WS)
    results = []
    for fn in SSSSM_VARIANTS.values():
        blk = c.copy()
        fn(blk, lblk, ublk, WS)
        results.append(blk.to_dense())
    for s in results[1:]:
        np.testing.assert_allclose(s, results[0], atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(closed_splits())
def test_kernels_write_only_inside_pattern(blocks):
    """No kernel may allocate or move entries — the pattern is immutable."""
    d, b, r, c = blocks
    dfac = d.copy()
    GETRF_VARIANTS["G_V2"](dfac, WS)
    for blk_src, runs in (
        (b, [lambda blk: GESSM_VARIANTS["G_V1"](dfac, blk, WS)]),
        (r, [lambda blk: TSTRF_VARIANTS["G_V1"](dfac, blk, WS)]),
    ):
        blk = blk_src.copy()
        before_pattern = (blk.indptr.copy(), blk.indices.copy())
        for run in runs:
            run(blk)
        assert np.array_equal(blk.indptr, before_pattern[0])
        assert np.array_equal(blk.indices, before_pattern[1])
