"""Tests for the fixed-pattern re-factorisation API (circuit workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU
from repro.sparse import generate, random_sparse


class TestRefactorize:
    def test_same_pattern_new_values(self):
        a = random_sparse(80, 0.06, seed=1)
        s = PanguLU(a)
        b = np.ones(80)
        s.solve(b)
        a2 = a.copy()
        a2.data = a.data * 1.7
        s.refactorize(a2)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-9
        # the residual is measured against the *new* matrix
        np.testing.assert_allclose(a2.matvec(x), b, atol=1e-8)

    def test_repeated_newton_like_updates(self):
        a = generate("ASIC_680k", scale=0.15)
        s = PanguLU(a)
        b = np.ones(a.nrows)
        s.solve(b)
        rng = np.random.default_rng(3)
        for _ in range(3):
            a_it = a.copy()
            a_it.data = a.data * (1 + 0.1 * rng.standard_normal(a.nnz))
            s.refactorize(a_it)
            x = s.solve(b)
            assert s.residual_norm(x, b) < 1e-8

    def test_preserves_symbolic_objects(self):
        a = random_sparse(60, 0.07, seed=2)
        s = PanguLU(a)
        s.factorize()
        dag_before = s.dag
        sym_before = s.symbolic
        a2 = a.copy()
        a2.data = a.data + 0.01
        s.refactorize(a2)
        assert s.dag is dag_before
        assert s.symbolic is sym_before

    def test_rejects_different_pattern(self):
        a = random_sparse(40, 0.08, seed=3)
        other = random_sparse(40, 0.08, seed=4)
        s = PanguLU(a)
        s.factorize()
        with pytest.raises(ValueError, match="pattern"):
            s.refactorize(other)

    def test_rejects_different_shape(self):
        a = random_sparse(40, 0.08, seed=5)
        other = random_sparse(41, 0.08, seed=5)
        s = PanguLU(a)
        with pytest.raises(ValueError, match="shape"):
            s.refactorize(other)

    def test_refactorize_before_factorize(self):
        # refactorize on a fresh solver runs the earlier phases implicitly
        a = random_sparse(50, 0.08, seed=6)
        a2 = a.copy()
        a2.data = a.data * 2.0
        s = PanguLU(a)
        s.refactorize(a2)
        x = s.solve(np.ones(50))
        np.testing.assert_allclose(a2.matvec(x), 1.0, atol=1e-8)

    def test_lu_product_error_tracks_new_values(self):
        a = random_sparse(50, 0.08, seed=7)
        s = PanguLU(a)
        s.factorize()
        a2 = a.copy()
        a2.data = a.data * -0.5
        s.refactorize(a2)
        assert s.lu_product_error() < 1e-10
