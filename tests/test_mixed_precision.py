"""Tests for the float32 factor path with float64 iterative refinement.

The mixed-precision contract: factors are computed and stored in
``SolverOptions.factor_dtype`` (halving value storage and traffic for
``float32``), and :meth:`Factorization.solve` recovers ``float64``-level
accuracy by adaptive refinement — plain LU-IR while it contracts,
GMRES-IR escalation when conditioning bites, and a clear
:class:`RefinementStalled` diagnostic when neither reaches the tolerance.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import PanguLU, RefinementStalled, SolverOptions
from repro.sparse import CSCMatrix, random_sparse


def _conditioned(n: int, decades: int, seed: int) -> CSCMatrix:
    """A random sparse matrix with ~``decades`` orders of magnitude of
    row scaling — the conditioning knob the refinement tests sweep."""
    a = random_sparse(n, 0.08, seed=seed)
    if decades == 0:
        return a
    return a.scale(np.logspace(-decades / 2, decades / 2, n), None)


class TestFactorDtypeOption:
    def test_default_is_float64(self):
        a = random_sparse(30, 0.1, seed=0)
        s = PanguLU(a)
        s.preprocess()
        assert s.blocks.dtype == np.dtype(np.float64)

    def test_float32_blocks_and_arena_slab(self):
        a = random_sparse(60, 0.08, seed=1)
        s = PanguLU(a, SolverOptions(factor_dtype="float32"))
        s.preprocess()
        assert s.blocks.dtype == np.dtype(np.float32)
        assert s.blocks.arena.data.dtype == np.dtype(np.float32)
        for slot, blk in enumerate(s.blocks.blk_values):
            assert blk.data.dtype == np.dtype(np.float32), slot

    def test_float32_arena_slab_is_half_the_bytes(self):
        a = random_sparse(80, 0.06, seed=2)
        s64 = PanguLU(a, SolverOptions())
        s32 = PanguLU(a, SolverOptions(factor_dtype="float32"))
        s64.preprocess()
        s32.preprocess()
        # identical symbolic structure, half the value bytes
        assert s32.blocks.arena.data.nbytes * 2 == s64.blocks.arena.data.nbytes

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="factor_dtype"):
            SolverOptions(factor_dtype="float16").resolved_factor_dtype()
        with pytest.raises(ValueError, match="refine_target_dtype"):
            SolverOptions(
                refine_target_dtype="complex128"
            ).resolved_refine_dtype()

    def test_value_nbytes_tracks_dtype(self):
        # symbolic (lazy-data) matrices must price value bytes at their
        # declared dtype, not a hardcoded float64 itemsize
        m32 = CSCMatrix((8, 8), np.zeros(9, dtype=np.int64),
                        np.zeros(0, dtype=np.int64), dtype=np.float32)
        m64 = CSCMatrix((8, 8), np.zeros(9, dtype=np.int64),
                        np.zeros(0, dtype=np.int64))
        assert m32.value_nbytes * 2 == m64.value_nbytes
        a = random_sparse(20, 0.2, seed=3)
        assert a.astype(np.float32).value_nbytes * 2 == a.value_nbytes


class TestRefinementRecoversAccuracy:
    @pytest.mark.parametrize("decades", [0, 2, 4])
    def test_float32_reaches_float64_tolerance(self, decades):
        n = 70
        a = _conditioned(n, decades, seed=decades + 5)
        b = np.ones(n)
        s64 = PanguLU(a, SolverOptions())
        s32 = PanguLU(a, SolverOptions(factor_dtype="float32"))
        r64 = s64.residual_norm(s64.solve(b), b)
        r32 = s32.residual_norm(s32.solve(b), b)
        # the refined float32 solution matches the float64 path's residual
        # tolerance (refine_tol), not merely single-precision accuracy
        assert r32 <= max(1e-12, 100 * r64)

    def test_multi_rhs_refined(self):
        n = 50
        a = _conditioned(n, 3, seed=8)
        s = PanguLU(a, SolverOptions(factor_dtype="float32"))
        B = np.eye(n)[:, :4]
        X = s.solve(B)
        assert X.shape == (n, 4)
        R = a.matmat(X) - B
        assert np.max(
            np.linalg.norm(R, axis=0) / np.linalg.norm(B, axis=0)
        ) < 1e-10

    def test_solve_transposed_refined(self):
        n = 40
        a = _conditioned(n, 2, seed=9)
        s = PanguLU(a, SolverOptions(factor_dtype="float32"))
        f = s.factorize()
        b = np.ones(n)
        x = f.solve_transposed(b)
        assert np.linalg.norm(a.transpose().matvec(x) - b) < 1e-10 * np.linalg.norm(b)

    def test_unreachable_tolerance_raises_stalled(self):
        # no amount of refinement reaches 1e-30 in double — the adaptive
        # loop must stall out and raise the diagnostic, not spin
        n = 40
        a = _conditioned(n, 2, seed=10)
        s = PanguLU(a, SolverOptions(
            factor_dtype="float32", refine_tol=1e-30, refine_max_iter=3,
        ))
        with pytest.raises(RefinementStalled) as ei:
            s.solve(np.ones(n))
        err = ei.value
        assert err.achieved > err.tol == 1e-30
        assert err.iterations > 0
        assert "float64" in str(err)  # the message names the remedy

    def test_ill_conditioned_converges_or_diagnoses(self):
        # κ(A)·ε₃₂ ≫ 1: plain IR on float32 factors cannot contract.
        # Either the GMRES-IR escalation rescues the solve to tolerance
        # or the solver reports the stall — silent inaccuracy is the one
        # forbidden outcome.
        n = 60
        a = _conditioned(n, 10, seed=11)
        s = PanguLU(a, SolverOptions(factor_dtype="float32"))
        b = np.ones(n)
        try:
            x = s.solve(b)
        except RefinementStalled as err:
            assert err.achieved > err.tol
        else:
            assert s.residual_norm(x, b) <= s.options.refine_tol * 10

    def test_stalled_exception_pickles(self):
        err = RefinementStalled(1e-5, 1e-12, 7)
        back = pickle.loads(pickle.dumps(err))
        assert (back.achieved, back.tol, back.iterations) == (1e-5, 1e-12, 7)

    def test_float64_path_unchanged_by_new_options(self):
        # the adaptive loop is exclusive to the float32 path: float64
        # solves keep the fixed-sweep semantics regardless of the knobs
        n = 30
        a = random_sparse(n, 0.1, seed=12)
        b = np.ones(n)
        x1 = PanguLU(a, SolverOptions(refine_steps=2)).solve(b)
        x2 = PanguLU(a, SolverOptions(refine_steps=2, refine_tol=1e-1,
                                      refine_max_iter=1)).solve(b)
        np.testing.assert_array_equal(x1, x2)


class TestEngineBitIdentity:
    def test_fixed_schedule_engines_agree_bitwise(self):
        """On a deterministic schedule all three engines must produce the
        same float32 factors bit for bit (threaded with one worker — more
        workers reassociate commuting Schur updates by design)."""
        a = random_sparse(90, 0.06, seed=13)
        base = dict(factor_dtype="float32", block_size=16)
        f_seq = PanguLU(a, SolverOptions(engine="sequential", **base)).factorize()
        f_thr = PanguLU(a, SolverOptions(engine="threaded", n_workers=1,
                                         **base)).factorize()
        f_dst = PanguLU(a, SolverOptions(engine="distributed", nprocs=4,
                                         **base)).factorize()
        ref = f_seq.blocks.arena.data
        assert ref.dtype == np.dtype(np.float32)
        np.testing.assert_array_equal(ref, f_thr.blocks.arena.data)
        np.testing.assert_array_equal(ref, f_dst.blocks.arena.data)

    def test_threaded_float32_under_race_checker(self):
        a = random_sparse(70, 0.07, seed=14)
        s = PanguLU(a, SolverOptions(
            factor_dtype="float32", engine="threaded", n_workers=4,
            validate_concurrency=True,
        ))
        b = np.ones(70)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10


class TestDtypeRoundTrips:
    def test_factorization_pickle_preserves_dtype(self):
        n = 50
        a = random_sparse(n, 0.08, seed=15)
        f = PanguLU(a, SolverOptions(factor_dtype="float32")).factorize()
        back = pickle.loads(pickle.dumps(f))
        assert back.factor_dtype == np.dtype(np.float32)
        assert back.blocks.dtype == np.dtype(np.float32)
        b = np.ones(n)
        np.testing.assert_array_equal(f.solve(b), back.solve(b))

    def test_refactorize_keeps_float32(self):
        n = 60
        a = random_sparse(n, 0.08, seed=16)
        f = PanguLU(a, SolverOptions(factor_dtype="float32")).factorize()
        a2 = a.copy()
        a2.data[...] = a2.data * 1.5
        f.refactorize(a2)
        assert f.blocks.dtype == np.dtype(np.float32)
        b = np.ones(n)
        x = f.solve(b)
        assert np.linalg.norm(a2.matvec(x) - b) < 1e-10 * np.linalg.norm(b)

    def test_refactorize_legacy_layout_keeps_float32(self):
        n = 50
        a = random_sparse(n, 0.08, seed=17)
        f = PanguLU(a, SolverOptions(factor_dtype="float32",
                                     use_arena=False)).factorize()
        a2 = a.copy()
        a2.data[...] = a2.data * 0.5
        f.refactorize(a2)
        assert f.blocks.dtype == np.dtype(np.float32)
        x = f.solve(np.ones(n))
        assert np.linalg.norm(a2.matvec(x) - 1.0) < 1e-10

    def test_csc_astype_round_trip(self):
        a = random_sparse(25, 0.15, seed=18)
        a32 = a.astype(np.float32)
        assert a32.dtype == np.dtype(np.float32)
        np.testing.assert_array_equal(a32.indptr, a.indptr)
        np.testing.assert_array_equal(a32.indices, a.indices)
        back = a32.astype(np.float64)
        np.testing.assert_allclose(back.data, a.data, rtol=1e-6)

    def test_simulator_prices_float32_traffic(self):
        from repro.runtime.costmodel import bytes_per_entry, extract_sim_tasks

        a = random_sparse(60, 0.08, seed=19)
        s = PanguLU(a, SolverOptions(factor_dtype="float32"))
        s.preprocess()
        tasks = extract_sim_tasks(s.blocks, s.dag)
        assert tasks
        for st in tasks:
            assert st.value_itemsize == 4.0
        # value stream halves; the 4-byte index stream stays
        assert bytes_per_entry(4.0) == 8.0
        assert bytes_per_entry(8.0) == 12.0
