"""Tests of the arena-backed factor storage (`repro.core.blocking.FactorArena`).

The arena is a pure re-layout: one contiguous ``indptr``/``indices``/
``data`` slab per factor with every block a zero-copy view, addressed
through slot→offset tables.  The contract tested here:

* **bit identity** — the arena changes layout, not arithmetic: factors
  and solutions under ``use_arena=True`` equal the legacy per-block
  layout bit for bit on every deterministic schedule (sequential,
  single-worker threaded, distributed ranks, loopback-distributed);
  multi-worker threaded — ulp-nondeterministic run-to-run by itself —
  agrees within its own scatter;
* **in-place refactorize** — re-injecting values allocates/rebinds *no*
  per-block array: the block structure, the slabs, every view and every
  cached execution plan survive by identity;
* **single-buffer serialisation** — a pickled arena-backed
  ``Factorization`` ships the slabs (smaller than the legacy pickle),
  round-trips, and reattaches working views.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import PanguLU
from repro.core import (
    FactorArena,
    block_partition,
    build_dag,
    factorize,
    memory_report,
)
from repro.core.solver import SolverOptions
from repro.runtime import factorize_distributed
from repro.runtime.transports import LoopbackTransport
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric

N = 96


def _filled(seed=0):
    a = random_sparse(N, 0.06, seed=seed)
    return symbolic_symmetric(a).filled


def _pair(seed=0, bs=12):
    """(legacy, arena) partitions of the same filled matrix."""
    f = _filled(seed)
    return block_partition(f, bs), block_partition(f, bs, arena=True)


class TestArenaLayout:
    def test_blocks_are_views_into_the_slabs(self):
        _, bm = _pair()
        arena = bm.arena
        assert isinstance(arena, FactorArena)
        for blk in bm.blk_values:
            assert blk.data.base is arena.data
            assert blk.indices.base is arena.indices
            assert blk.indptr.base is arena.indptr
        assert int(arena.val_off[-1]) == arena.data.size == arena.indices.size
        assert int(arena.ptr_off[-1]) == arena.indptr.size

    def test_layouts_hold_identical_blocks(self):
        legacy, arena = _pair()
        assert np.array_equal(legacy.blk_colptr, arena.blk_colptr)
        assert np.array_equal(legacy.blk_rowidx, arena.blk_rowidx)
        for lb, ab in zip(legacy.blk_values, arena.blk_values):
            assert lb.shape == ab.shape
            assert np.array_equal(lb.indptr, ab.indptr)
            assert np.array_equal(lb.indices, ab.indices)
            assert np.array_equal(lb.data, ab.data)

    def test_gather_reproduces_the_slab(self):
        f = _filled()
        bm = block_partition(f, 12, arena=True)
        assert np.array_equal(f.data[bm.arena.gather], bm.arena.data)

    def test_empty_matrix(self):
        from repro.sparse.csc import CSCMatrix

        bm = block_partition(CSCMatrix.empty((10, 10)), 4, arena=True)
        assert bm.arena.data.size == 0
        assert bm.num_blocks == 0


class TestEnginesAgreeBitIdentical:
    @pytest.mark.parametrize("engine", ["sequential", "threaded", "distributed"])
    def test_factors_and_solutions_match_legacy(self, engine):
        """Bit identity is asserted where the engine itself is run-to-run
        deterministic: sequential, single-worker threaded, and the
        distributed ranks.  (Multi-worker threaded reorders SSSSM
        accumulation ulp-nondeterministically even on one layout — its
        arena/legacy agreement is covered at tolerance below.)"""
        a = random_sparse(N, 0.06, seed=3)
        b = np.ones(N)
        results = {}
        for use_arena in (False, True):
            opts = SolverOptions(
                use_arena=use_arena, engine=engine, n_workers=1, nprocs=2
            )
            s = PanguLU(a, opts)
            s.factorize()
            lu = s.blocks.to_csc()
            results[use_arena] = (
                lu.indptr.copy(), lu.indices.copy(), lu.data.copy(), s.solve(b)
            )
        for la, aa in zip(results[False], results[True]):
            assert np.array_equal(la, aa)

    def test_multiworker_threaded_matches_legacy_to_ulp(self):
        """With >1 worker the threaded engine's own run-to-run scatter
        is ~1e-17; arena vs legacy must land inside that envelope."""
        a = random_sparse(N, 0.06, seed=3)
        factors = {}
        for use_arena in (False, True):
            s = PanguLU(a, SolverOptions(use_arena=use_arena,
                                         engine="threaded", n_workers=3))
            s.factorize()
            factors[use_arena] = s.blocks.to_csc()
        la, aa = factors[False], factors[True]
        assert np.array_equal(la.indptr, aa.indptr)
        assert np.array_equal(la.indices, aa.indices)
        np.testing.assert_allclose(la.data, aa.data, rtol=0, atol=1e-12)

    def test_distributed_loopback_matches_legacy(self):
        """The in-process transport exchanges live slab slices — the
        factored bits still equal the legacy layout's."""
        f = _filled(seed=4)
        legacy = block_partition(f, 12)
        arena = block_partition(f, 12, arena=True)
        factorize_distributed(
            legacy, build_dag(legacy), 3, transport=LoopbackTransport()
        )
        factorize_distributed(
            arena, build_dag(arena), 3, transport=LoopbackTransport()
        )
        for lb, ab in zip(legacy.blk_values, arena.blk_values):
            assert np.array_equal(lb.data, ab.data)
        # the factored values live in the slab (views were written through)
        assert arena.blk_values[0].data.base is arena.arena.data

    def test_sequential_direct_engines_agree(self):
        legacy, arena = _pair(seed=5)
        factorize(legacy, build_dag(legacy))
        factorize(arena, build_dag(arena))
        l_lu, a_lu = legacy.to_csc(), arena.to_csc()
        assert np.array_equal(l_lu.indptr, a_lu.indptr)
        assert np.array_equal(l_lu.indices, a_lu.indices)
        assert np.array_equal(l_lu.data, a_lu.data)


class TestInPlaceRefactorize:
    def test_refactorize_allocates_no_block_arrays(self):
        """The arena refactorize path touches only the value slab: the
        block structure, the three slabs, every block view and the plan
        cache all survive **by identity**, and the plan cache builds no
        new plan."""
        a = random_sparse(N, 0.06, seed=6)
        fact = PanguLU(a, SolverOptions(use_arena=True)).factorize()
        blocks = fact.blocks
        arena = blocks.arena
        slabs = (arena.indptr, arena.indices, arena.data)
        views = list(blocks.blk_values)
        view_arrays = [(v.indptr, v.indices, v.data) for v in views]
        cache = blocks.plan_cache
        builds = cache.builds
        lu_before = blocks.to_csc().data.copy()

        a2 = a.copy()
        a2.data = a.data * 1.7
        fact.refactorize(a2)

        assert fact.blocks is blocks
        assert blocks.arena is arena
        for slab, now in zip(slabs, (arena.indptr, arena.indices, arena.data)):
            assert slab is now
        for view, (ip, ix, dv) in zip(blocks.blk_values, view_arrays):
            assert view.indptr is ip and view.indices is ix and view.data is dv
        assert blocks.plan_cache is cache
        assert cache.builds == builds  # every cached plan was reused
        # and it actually refactorised: new values, correct solve
        assert not np.array_equal(blocks.to_csc().data, lu_before)
        x = fact.solve(np.ones(N))
        assert float(np.max(np.abs(a2.matvec(x) - 1.0))) < 1e-8

    def test_refactorize_matches_legacy_refactorize(self):
        """Slab refill and per-block re-partition inject the same values
        (both reuse the original scalings), so the refactorised bits
        agree across layouts."""
        a = random_sparse(N, 0.06, seed=7)
        a2 = a.copy()
        a2.data = a.data * 0.9 + 0.01
        facts = {}
        for use_arena in (False, True):
            fact = PanguLU(a, SolverOptions(use_arena=use_arena)).factorize()
            fact.refactorize(a2)
            facts[use_arena] = fact.blocks.to_csc().data
        assert np.array_equal(facts[False], facts[True])

    def test_refill_is_elementwise_exact(self):
        f = _filled(seed=8)
        bm = block_partition(f, 12, arena=True)
        new_vals = f.data * 2.5
        bm.arena.refill(new_vals)
        assert np.array_equal(bm.arena.data, new_vals[bm.arena.gather])


class TestSerialisation:
    def _factor_pair(self, seed=9):
        a = random_sparse(N, 0.06, seed=seed)
        legacy = PanguLU(a, SolverOptions(use_arena=False)).factorize()
        arena = PanguLU(a, SolverOptions(use_arena=True)).factorize()
        return legacy, arena

    def test_pickle_round_trip_and_size_bound(self):
        legacy, arena = self._factor_pair()
        blob_a = pickle.dumps(arena)
        blob_l = pickle.dumps(legacy)
        # the slabs serialise as three buffers instead of thousands of
        # per-block arrays (headers, shapes, dtypes each)
        assert len(blob_a) < len(blob_l)

        restored = pickle.loads(blob_a)
        b = np.ones(N)
        assert np.array_equal(restored.solve(b), arena.solve(b))
        # views were reattached onto the restored slabs
        rb = restored.blocks
        assert rb.arena is not None
        for blk in rb.blk_values:
            assert blk.data.base is rb.arena.data

    def test_block_matrix_getstate_drops_rebuildables(self):
        _, bm = _pair(seed=10)
        bm.block_slot(0, 0)  # force the index
        state = bm.__getstate__()
        assert state["plan_cache"] is None
        assert state["_index"] is None
        assert state["blk_values"] is None  # arena: slabs are the truth
        clone = pickle.loads(pickle.dumps(bm))
        assert len(clone.blk_values) == bm.num_blocks
        for ours, theirs in zip(bm.blk_values, clone.blk_values):
            assert np.array_equal(ours.data, theirs.data)


class TestMemoryAccounting:
    def test_arena_report_counts_offset_tables_and_gather(self):
        legacy, arena = _pair(seed=11)
        rl, ra = memory_report(legacy), memory_report(arena)
        assert rl.values_bytes == ra.values_bytes
        assert rl.layer2_index_bytes == ra.layer2_index_bytes
        assert rl.arena_refill_bytes == 0
        assert ra.arena_refill_bytes == arena.arena.gather.nbytes
        # the slot→offset tables replace the per-block payload pointers
        nb1 = arena.num_blocks + 1
        assert ra.layer1_index_bytes == (
            arena.blk_colptr.nbytes + arena.blk_rowidx.nbytes + 2 * nb1 * 8
        )
        assert ra.layer1_overhead < 0.05

    def test_report_derives_bytes_from_dtypes(self):
        _, arena = _pair(seed=12)
        rep = memory_report(arena)
        nnz = sum(b.nnz for b in arena.blk_values)
        assert rep.values_bytes == nnz * np.dtype(np.float64).itemsize
