"""Documentation guards: the walkthrough's code runs, and the public
API surface documented in docs/api.md actually imports."""

from __future__ import annotations

import re
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent / "docs"


def test_walkthrough_code_blocks_execute():
    """Every ```python block in docs/walkthrough.md runs in one shared
    namespace without error (print output is irrelevant)."""
    text = (DOCS / "walkthrough.md").read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert len(blocks) >= 6
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, "<walkthrough>", "exec"), namespace)
    # the walkthrough actually solved the system it built
    assert "solver" in namespace
    import numpy as np

    solver = namespace["solver"]
    x = namespace["x"]
    assert solver.residual_norm(x, np.ones(12)) < 1e-10


def test_star_imports_work():
    """`__all__` of every subpackage matches real attributes."""
    import importlib

    for mod_name in (
        "repro",
        "repro.sparse",
        "repro.ordering",
        "repro.symbolic",
        "repro.kernels",
        "repro.core",
        "repro.runtime",
        "repro.baseline",
        "repro.cholesky",
        "repro.analysis",
    ):
        mod = importlib.import_module(mod_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{mod_name}.{name} missing"


def test_design_and_experiments_reference_real_benches():
    """Every bench file referenced in DESIGN.md / EXPERIMENTS.md exists."""
    root = DOCS.parent
    for doc in ("DESIGN.md", "EXPERIMENTS.md"):
        text = (root / doc).read_text()
        for ref in set(re.findall(r"benchmarks/(bench_\w+\.py)", text)):
            assert (root / "benchmarks" / ref).exists(), f"{doc} → {ref}"


def test_paper_mapping_references_real_modules():
    import importlib

    text = (DOCS / "paper_mapping.md").read_text()
    for ref in sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", text))):
        parts = ref.split(".")
        # try progressively shorter prefixes: module.attr chains allowed
        for cut in range(len(parts), 1, -1):
            try:
                mod = importlib.import_module(".".join(parts[:cut]))
            except ModuleNotFoundError:
                continue
            obj = mod
            ok = True
            for attr in parts[cut:]:
                if not hasattr(obj, attr):
                    ok = False
                    break
                obj = getattr(obj, attr)
            if ok:
                break
        else:
            raise AssertionError(f"paper_mapping.md references missing {ref}")
