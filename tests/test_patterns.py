"""Tests for structural pattern utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    CSCMatrix,
    adjacency_lists,
    bandwidth,
    ensure_diagonal,
    has_full_diagonal,
    is_structurally_symmetric,
    pattern_union,
    random_sparse,
    structural_rank_lower_bound,
    symmetrize_pattern,
)


class TestSymmetrize:
    def test_pattern_is_union(self):
        a = random_sparse(40, 0.05, seed=3)
        s = symmetrize_pattern(a)
        da = a.to_dense() != 0
        ds = np.zeros_like(da)
        r, c = s.rows_cols()
        ds[r, c] = True
        np.testing.assert_array_equal(ds, da | da.T)

    def test_values_preserved(self):
        a = random_sparse(40, 0.05, seed=4)
        s = symmetrize_pattern(a)
        np.testing.assert_allclose(s.to_dense(), a.to_dense())

    def test_result_symmetric(self):
        a = random_sparse(25, 0.08, seed=5)
        assert is_structurally_symmetric(symmetrize_pattern(a))


class TestUnion:
    def test_union_pattern(self):
        a = CSCMatrix.from_dense(np.array([[1.0, 0], [0, 0]]))
        b = CSCMatrix.from_dense(np.array([[0.0, 2], [0, 0]]))
        u = pattern_union(a, b)
        assert u.nnz == 2
        # a's values win where a has the entry
        np.testing.assert_allclose(u.to_dense(), [[1.0, 0], [0, 0]])

    def test_shape_mismatch(self):
        a = CSCMatrix.eye(2)
        b = CSCMatrix.eye(3)
        with pytest.raises(ValueError, match="shape"):
            pattern_union(a, b)


class TestDiagonal:
    def test_has_full_diagonal(self):
        assert has_full_diagonal(CSCMatrix.eye(4))
        d = np.eye(4)
        d[2, 2] = 0
        assert not has_full_diagonal(CSCMatrix.from_dense(d))

    def test_ensure_diagonal_inserts_zeros(self):
        d = np.zeros((3, 3))
        d[0, 1] = 5.0
        a = CSCMatrix.from_dense(d)
        out = ensure_diagonal(a)
        assert has_full_diagonal(out)
        np.testing.assert_allclose(out.to_dense(), d)  # values unchanged

    def test_ensure_diagonal_noop_when_full(self):
        a = random_sparse(10, 0.1, seed=0)
        out = ensure_diagonal(a)
        assert out.nnz == a.nnz


class TestMisc:
    def test_bandwidth(self):
        d = np.eye(5)
        d[0, 4] = 1
        assert bandwidth(CSCMatrix.from_dense(d)) == 4
        assert bandwidth(CSCMatrix.empty((3, 3))) == 0

    def test_adjacency_excludes_self_loops(self):
        a = random_sparse(20, 0.1, seed=1)
        adj = adjacency_lists(a)
        for v, nbrs in enumerate(adj):
            assert v not in nbrs
            assert np.all(np.diff(nbrs) > 0)

    def test_adjacency_symmetric(self):
        a = random_sparse(20, 0.1, seed=2)
        adj = adjacency_lists(a)
        for v, nbrs in enumerate(adj):
            for w in nbrs:
                assert v in adj[int(w)]

    def test_structural_rank_full_for_dominant(self):
        a = random_sparse(30, 0.05, seed=6)
        assert structural_rank_lower_bound(a) == 30


@settings(max_examples=40, deadline=None)
@given(st.integers(2, 30), st.floats(0.02, 0.3), st.integers(0, 10_000))
def test_symmetrize_idempotent(n, density, seed):
    a = random_sparse(n, density, seed=seed)
    s1 = symmetrize_pattern(a)
    s2 = symmetrize_pattern(s1)
    assert np.array_equal(s1.indptr, s2.indptr)
    assert np.array_equal(s1.indices, s2.indices)
