"""Tests for partial factorisation and Schur-complement extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    block_partition,
    build_dag,
    extract_trailing,
    factorize,
    partial_factorize,
)
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=60, bs=12, seed=0):
    a = random_sparse(n, 0.08, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return a, bm, build_dag(bm)


class TestPartialFactorize:
    @pytest.mark.parametrize("kb", [1, 2, 3])
    def test_schur_matches_dense(self, kb):
        a, bm, dag = _prepared()
        partial_factorize(bm, dag, kb)
        s = extract_trailing(bm, kb).to_dense()
        d = a.to_dense()
        cut = kb * bm.bs
        a11, a12 = d[:cut, :cut], d[:cut, cut:]
        a21, a22 = d[cut:, :cut], d[cut:, cut:]
        expect = a22 - a21 @ np.linalg.solve(a11, a12)
        np.testing.assert_allclose(s, expect, atol=1e-8)

    def test_kb_zero_is_noop(self):
        a, bm, dag = _prepared(seed=1)
        stats = partial_factorize(bm, dag, 0)
        assert stats.tasks_executed == 0
        np.testing.assert_allclose(
            extract_trailing(bm, 0).to_dense(), a.to_dense() * 0 + bm.to_csc().to_dense()
        )

    def test_kb_full_equals_factorize(self):
        a, bm1, dag1 = _prepared(seed=2)
        _, bm2, dag2 = _prepared(seed=2)
        partial_factorize(bm1, dag1, bm1.nb)
        factorize(bm2, dag2)
        np.testing.assert_allclose(
            bm1.to_csc().to_dense(), bm2.to_csc().to_dense(), atol=1e-12
        )

    def test_leading_blocks_factored(self):
        a, bm, dag = _prepared(seed=3)
        kb = 2
        partial_factorize(bm, dag, kb)
        # the leading diagonal blocks hold valid LU factors: their packed
        # product reproduces the fully-updated leading blocks
        d = a.to_dense()
        cut = kb * bm.bs
        ref = d[:cut, :cut].copy()
        for t in range(cut):
            ref[t + 1 :, t] /= ref[t, t]
            ref[t + 1 :, t + 1 :] -= np.outer(ref[t + 1 :, t], ref[t, t + 1 :])
        got = bm.to_csc().to_dense()[:cut, :cut]
        np.testing.assert_allclose(got, ref, atol=1e-8)

    def test_bad_kb_rejected(self):
        _, bm, dag = _prepared(seed=4)
        with pytest.raises(ValueError):
            partial_factorize(bm, dag, bm.nb + 1)
        with pytest.raises(ValueError):
            extract_trailing(bm, -1)

    def test_counts_pivot_replacements(self):
        _, bm, dag = _prepared(seed=5)
        stats = partial_factorize(bm, dag, 2)
        assert stats.pivots_replaced == 0
