"""Tests for platform models, kernel cost models and the simulation bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TaskType, block_partition, build_dag
from repro.runtime import (
    A100_PLATFORM,
    MI50_PLATFORM,
    SimTask,
    best_version,
    extract_sim_tasks,
    kernel_time,
    price_tasks,
    simulate_pangulu,
)
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def _task(ttype=TaskType.SSSSM, flops=10_000, nnz=200, rows=64, cols=64, inner=64):
    return SimTask(
        tid=0,
        ttype=ttype,
        k=0,
        bi=1,
        bj=1,
        flops=flops,
        dense_flops=2.0 * rows * cols * inner,
        nnz_a=nnz,
        nnz_b=nnz,
        nnz_target=nnz,
        rows=rows,
        cols=cols,
        inner=inner,
        out_bytes=12.0 * nnz,
    )


class TestKernelTime:
    def test_positive_and_finite(self):
        for ttype in TaskType:
            t = _task(ttype=ttype)
            for platform in (A100_PLATFORM, MI50_PLATFORM):
                v, cost = best_version(t, platform)
                assert np.isfinite(cost) and cost > 0

    def test_more_flops_costs_more(self):
        t1 = _task(flops=1_000)
        t2 = _task(flops=1_000_000_000)
        assert kernel_time(t2, "C_V2", A100_PLATFORM) > kernel_time(
            t1, "C_V2", A100_PLATFORM
        )

    def test_gpu_launch_overhead_dominates_tiny_tasks(self):
        tiny = _task(flops=10, nnz=4, rows=8, cols=8, inner=8)
        # on tiny tasks the CPU sparse kernel beats any GPU variant
        v, _ = best_version(tiny, A100_PLATFORM)
        assert v.startswith("C_")

    def test_gpu_wins_huge_sparse_tasks(self):
        huge = _task(flops=10**9, nnz=10**6, rows=512, cols=512, inner=512)
        v, _ = best_version(huge, A100_PLATFORM)
        assert v.startswith("G_")

    def test_mi50_slower_than_a100(self):
        t = _task(flops=10**8, nnz=10**5)
        assert kernel_time(t, "G_V1", MI50_PLATFORM) > kernel_time(
            t, "G_V1", A100_PLATFORM
        )

    def test_best_version_is_minimum(self):
        from repro.kernels import KERNEL_REGISTRY, KernelType

        t = _task(ttype=TaskType.GESSM, flops=50_000, nnz=3_000)
        v, cost = best_version(t, A100_PLATFORM)
        for version in KERNEL_REGISTRY[KernelType.GESSM]:
            assert cost <= kernel_time(t, version, A100_PLATFORM) + 1e-15


class TestExtraction:
    def _fixture(self):
        a = random_sparse(60, 0.08, seed=0)
        f = symbolic_symmetric(a).filled
        bm = block_partition(f, 12)
        return bm, build_dag(bm)

    def test_one_record_per_task(self):
        bm, dag = self._fixture()
        sts = extract_sim_tasks(bm, dag)
        assert len(sts) == len(dag.tasks)
        for st, t in zip(sts, dag.tasks):
            assert st.tid == t.tid
            assert st.flops == t.flops
            assert st.nnz_target > 0
            assert st.dense_flops >= 0

    def test_dense_flops_exceed_structural(self):
        bm, dag = self._fixture()
        for st in extract_sim_tasks(bm, dag):
            if st.ttype == TaskType.SSSSM:
                assert st.dense_flops >= st.flops

    def test_price_tasks_adaptive_at_most_fixed(self):
        bm, dag = self._fixture()
        sts = extract_sim_tasks(bm, dag)
        ad, _ = price_tasks(sts, A100_PLATFORM, adaptive=True)
        fx, _ = price_tasks(sts, A100_PLATFORM, adaptive=False)
        assert np.all(ad <= fx + 1e-15)


class TestSimulatePanguLU:
    def _fixture(self):
        a = random_sparse(100, 0.06, seed=1)
        f = symbolic_symmetric(a).filled
        bm = block_partition(f, 10)
        return bm, build_dag(bm)

    def test_single_proc_no_sync_messages(self):
        bm, dag = self._fixture()
        sim = simulate_pangulu(bm, dag, A100_PLATFORM, 1)
        assert sim.result.messages == 0
        assert sim.result.mean_sync == pytest.approx(0.0)

    def test_syncfree_not_slower_than_levelset(self):
        bm, dag = self._fixture()
        sf = simulate_pangulu(bm, dag, A100_PLATFORM, 8, schedule="syncfree")
        ls = simulate_pangulu(bm, dag, A100_PLATFORM, 8, schedule="levelset")
        assert sf.result.makespan <= ls.result.makespan + 1e-12

    def test_adaptive_not_slower_than_fixed(self):
        bm, dag = self._fixture()
        ad = simulate_pangulu(bm, dag, A100_PLATFORM, 8, adaptive_kernels=True)
        fx = simulate_pangulu(bm, dag, A100_PLATFORM, 8, adaptive_kernels=False)
        assert ad.result.makespan <= fx.result.makespan + 1e-12

    def test_makespan_at_least_critical_path_time(self):
        bm, dag = self._fixture()
        sim = simulate_pangulu(bm, dag, A100_PLATFORM, 128)
        # the simulated makespan can never beat the duration-weighted
        # longest chain lower bound... use a weaker bound: max task time
        durations = sim.result.end_times - sim.result.start_times
        assert sim.result.makespan >= durations.max() - 1e-15

    def test_seconds_by_type(self):
        bm, dag = self._fixture()
        sim = simulate_pangulu(bm, dag, A100_PLATFORM, 4)
        by_type = sim.seconds_by_type()
        assert set(by_type) <= {"GETRF", "GESSM", "TSTRF", "SSSSM"}
        assert sum(by_type.values()) == pytest.approx(sim.result.total_busy)

    def test_gflops_positive(self):
        bm, dag = self._fixture()
        sim = simulate_pangulu(bm, dag, A100_PLATFORM, 4)
        assert sim.gflops > 0


class TestSimulatedTrees:
    def test_trees_approximate_model_optimum(self):
        from repro.kernels import SelectorPolicy
        from repro.runtime import simulated_trees

        a = random_sparse(90, 0.06, seed=3)
        f = symbolic_symmetric(a).filled
        bm = block_partition(f, 12)
        dag = build_dag(bm)
        sts = extract_sim_tasks(bm, dag)
        trees = simulated_trees(A100_PLATFORM, sts)
        policy = SelectorPolicy(trees=trees)
        from repro.core.dag import TaskType as TT
        from repro.kernels import KernelType
        from repro.kernels.selector import TaskFeatures

        k_of = {
            TT.GETRF: KernelType.GETRF,
            TT.GESSM: KernelType.GESSM,
            TT.TSTRF: KernelType.TSTRF,
            TT.SSSSM: KernelType.SSSSM,
        }
        tree_total = 0.0
        best_total = 0.0
        for st in sts:
            feats = TaskFeatures(
                nnz_a=st.nnz_a, nnz_b=st.nnz_b, flops=st.flops,
                n=st.inner, density=st.operand_density,
            )
            v = policy.select(k_of[st.ttype], feats)
            tree_total += kernel_time(st, v, A100_PLATFORM)
            best_total += best_version(st, A100_PLATFORM)[1]
        # the fitted trees stay close to the per-task optimum on the
        # samples they were fitted on (the paper's own construction)
        assert tree_total <= 1.3 * best_total
