"""Tests for the blocking-strategy interface: regular vs irregular
boundaries, bit-identity guarantees, and the option surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU, SolverOptions
from repro.core import (
    BlockingStrategy,
    IrregularBlocking,
    RegularBlocking,
    block_partition,
    get_blocking_strategy,
)
from repro.core.strategy import _merge_thin, _split_wide
from repro.sparse import random_sparse
from repro.sparse.generators import circuit_like, kkt_saddle_point
from repro.symbolic import symbolic_symmetric


def _filled(n=80, seed=0, density=0.06):
    a = random_sparse(n, density, seed=seed)
    return symbolic_symmetric(a).filled


def _assert_structures_identical(a, b):
    np.testing.assert_array_equal(a.boundaries, b.boundaries)
    np.testing.assert_array_equal(a.blk_colptr, b.blk_colptr)
    np.testing.assert_array_equal(a.blk_rowidx, b.blk_rowidx)
    for a_blk, b_blk in zip(a.blk_values, b.blk_values):
        assert a_blk.shape == b_blk.shape
        np.testing.assert_array_equal(a_blk.indptr, b_blk.indptr)
        np.testing.assert_array_equal(a_blk.indices, b_blk.indices)
        np.testing.assert_array_equal(a_blk.data, b_blk.data)


class TestRegistry:
    def test_resolves_names(self):
        assert isinstance(get_blocking_strategy("regular"), RegularBlocking)
        assert isinstance(get_blocking_strategy("irregular"), IrregularBlocking)

    def test_block_size_forwarded(self):
        assert get_blocking_strategy("regular", block_size=24).block_size == 24
        assert get_blocking_strategy("irregular", block_size=24).max_width == 24

    def test_instance_passthrough(self):
        strat = IrregularBlocking(32)
        assert get_blocking_strategy(strat) is strat

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown blocking strategy"):
            get_blocking_strategy("diagonal")


class TestRegularStrategy:
    def test_matches_direct_partition(self):
        # the strategy seam must not perturb the historical layout
        f = _filled()
        direct = block_partition(f, 16)
        via_strategy = RegularBlocking(16).partition(f)
        assert via_strategy.bs == direct.bs == 16
        _assert_structures_identical(direct, via_strategy)

    def test_heuristic_size_when_unset(self):
        f = _filled()
        strat = RegularBlocking()
        bm = strat.partition(f)
        assert bm.bs == strat.chosen_size(f)
        assert bm.is_regular

    def test_boundaries_equispaced(self):
        f = _filled(n=50)
        b = RegularBlocking(16).boundaries(f)
        np.testing.assert_array_equal(b, [0, 16, 32, 48, 50])


class TestIrregularStrategy:
    def test_boundaries_valid(self):
        f = _filled()
        strat = IrregularBlocking(16)
        b = strat.boundaries(f)
        assert b[0] == 0 and b[-1] == f.ncols
        widths = np.diff(b)
        assert np.all(widths >= 1)
        assert np.all(widths <= 16)

    def test_cap_defaults_to_heuristic(self):
        f = _filled()
        b = IrregularBlocking().boundaries(f)
        from repro.core import choose_block_size

        cap = choose_block_size(f.ncols, f.nnz)
        assert np.diff(b).max() <= cap

    def test_partition_conserves_entries(self):
        f = _filled()
        bm = IrregularBlocking(16).partition(f)
        assert sum(b.nnz for b in bm.blk_values) == f.nnz
        np.testing.assert_allclose(bm.to_csc().to_dense(), f.to_dense())

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="max_width"):
            IrregularBlocking(0)

    def test_is_abstract(self):
        with pytest.raises(TypeError):
            BlockingStrategy()


class TestMergeSplit:
    def test_merge_folds_thin_runs(self):
        b = np.array([0, 1, 2, 3, 4, 5, 6, 7, 8])
        merged = _merge_thin(b, cap=4, min_width=2)
        assert merged[0] == 0 and merged[-1] == 8
        assert np.diff(merged).max() <= 4

    def test_merge_keeps_thick_boundary(self):
        # two already-thick supernodes: the natural boundary survives
        b = np.array([0, 6, 12])
        merged = _merge_thin(b, cap=12, min_width=4)
        np.testing.assert_array_equal(merged, [0, 6, 12])

    def test_split_caps_wide_intervals(self):
        b = np.array([0, 20])
        split = _split_wide(b, cap=8)
        assert split[0] == 0 and split[-1] == 20
        widths = np.diff(split)
        assert np.all(widths <= 8)
        assert np.all(widths >= 1)
        # near-even: widths differ by at most one
        assert widths.max() - widths.min() <= 1

    def test_split_noop_when_within_cap(self):
        b = np.array([0, 5, 9])
        np.testing.assert_array_equal(_split_wide(b, cap=16), b)


ENGINES = ("sequential", "threaded", "distributed")


def _engine_options(engine, **kw):
    return SolverOptions(
        engine=engine,
        n_workers=3 if engine == "threaded" else 1,
        nprocs=3 if engine == "distributed" else 1,
        **kw,
    )


class TestEngineIdentity:
    """Every engine produces the same factors per strategy (parallel
    engines up to floating-point reassociation of commuting Schur
    updates — the documented guarantee), and the strategy seam itself is
    bit-transparent: partitioning from a boundary array must not change
    a single bit relative to the historical scalar-``bs`` path."""

    @pytest.mark.parametrize("blocking", ["regular", "irregular"])
    def test_engines_agree(self, blocking):
        a = kkt_saddle_point(160, seed=2)
        b = np.linspace(1.0, 2.0, a.nrows)
        reference = None
        for engine in ENGINES:
            s = PanguLU(a, _engine_options(engine, blocking=blocking))
            s.factorize()
            x = s.solve(b)
            structure = [
                (blk.indptr.tobytes(), blk.indices.tobytes())
                for blk in s.blocks.blk_values
            ]
            data = [blk.data for blk in s.blocks.blk_values]
            if reference is None:
                reference = (structure, data, x)
            else:
                # the symbolic side is scheduling-independent: exact
                assert structure == reference[0], engine
                for got, want in zip(data, reference[1]):
                    np.testing.assert_allclose(
                        got, want, rtol=1e-10, atol=1e-14, err_msg=engine
                    )
                np.testing.assert_allclose(
                    x, reference[2], rtol=1e-10, atol=1e-14, err_msg=engine
                )
            assert s.residual_norm(x, b) < 1e-10, engine

    def test_boundary_path_bit_identical_to_scalar(self):
        # deterministic engine, same schedule: routing the partition
        # through an explicit boundary array must reproduce the scalar
        # path bit for bit, factors and solution alike
        from repro.core import boundaries_from_block_size

        a = kkt_saddle_point(160, seed=2)
        b = np.linspace(1.0, 2.0, a.nrows)

        class _BoundarySpelling(RegularBlocking):
            def partition(self, filled, *, arena=False, dtype=None):
                return block_partition(
                    filled,
                    boundaries_from_block_size(filled.ncols, 16),
                    arena=arena,
                    dtype=dtype,
                )

        results = []
        for blocking in (RegularBlocking(16), _BoundarySpelling(16)):
            s = PanguLU(
                a, SolverOptions(engine="sequential", blocking=blocking)
            )
            s.factorize()
            x = s.solve(b)
            payload = [
                (blk.indptr.tobytes(), blk.indices.tobytes(), blk.data.tobytes())
                for blk in s.blocks.blk_values
            ]
            results.append((payload, x.tobytes()))
        assert results[0] == results[1]

    def test_strategies_agree_numerically(self):
        # different groupings reassociate floating-point sums, so the
        # factors differ in the last bits — the solutions must still agree
        # to solver accuracy
        a = circuit_like(200, seed=7)
        b = np.linspace(1.0, 2.0, a.nrows)
        xs = {}
        for blocking in ("regular", "irregular"):
            s = PanguLU(a, SolverOptions(blocking=blocking))
            xs[blocking] = s.solve(b)
            assert s.residual_norm(xs[blocking], b) < 1e-10
        np.testing.assert_allclose(
            xs["regular"], xs["irregular"], rtol=1e-8, atol=1e-10
        )


class TestSolverIntegration:
    def test_irregular_end_to_end(self):
        a = random_sparse(160, 0.04, seed=9)
        b = np.linspace(1.0, 2.0, a.nrows)
        s = PanguLU(a, SolverOptions(blocking="irregular"))
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10
        assert not s.blocks.is_regular or s.blocks.nb == 1
        assert s.estimate()["blocking"] == "irregular"

    def test_irregular_with_arena_refactorize(self):
        a = random_sparse(140, 0.04, seed=11)
        b = np.linspace(1.0, 2.0, a.nrows)
        for use_arena in (True, False):
            s = PanguLU(
                a, SolverOptions(blocking="irregular", use_arena=use_arena)
            )
            fact = s.factorize()
            a2 = a.copy()
            a2.data = a.data * 1.25
            fact.refactorize(a2)
            x = fact.solve(b)
            r = a2.matvec(x) - b
            assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-10

    def test_strategy_instance_in_options(self):
        a = random_sparse(120, 0.05, seed=13)
        b = np.linspace(1.0, 2.0, a.nrows)
        s = PanguLU(a, SolverOptions(blocking=IrregularBlocking(12)))
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-10
        assert np.diff(s.blocks.boundaries).max() <= 12

    def test_explicit_block_size_is_irregular_cap(self):
        a = random_sparse(150, 0.05, seed=15)
        s = PanguLU(a, SolverOptions(blocking="irregular", block_size=10))
        s.preprocess()
        assert np.diff(s.blocks.boundaries).max() <= 10

    def test_pickle_roundtrip_irregular(self):
        import pickle

        a = random_sparse(130, 0.05, seed=17)
        b = np.linspace(1.0, 2.0, a.nrows)
        fact = PanguLU(a, SolverOptions(blocking="irregular")).factorize()
        x0 = fact.solve(b)
        clone = pickle.loads(pickle.dumps(fact))
        np.testing.assert_array_equal(clone.solve(b), x0)
