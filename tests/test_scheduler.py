"""Unit tests for the shared scheduler core and the event recorder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import block_partition, build_dag, factorize
from repro.runtime import EventRecorder, SchedulerCore, WorkerLocal, ready_entry
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=80, bs=12, seed=0):
    a = random_sparse(n, 0.06, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return bm, build_dag(bm)


class _Stub:
    """Minimal task shape for hand-built DAG tests."""

    def __init__(self, tid, k, ttype, successors, n_deps):
        self.tid, self.k, self.ttype = tid, k, ttype
        self.successors, self.n_deps = successors, n_deps


class _StubDAG:
    def __init__(self, tasks):
        self.tasks = tasks


def _chain(n):
    """t0 → t1 → … → t(n−1)."""
    return _StubDAG([
        _Stub(i, i, 0, [i + 1] if i + 1 < n else [], 0 if i == 0 else 1)
        for i in range(n)
    ])


class TestSchedulerCore:
    def test_drains_in_priority_order(self):
        # two roots at steps 3 and 1: the step-1 task must pop first
        dag = _StubDAG([
            _Stub(0, 3, 0, [], 0),
            _Stub(1, 1, 0, [], 0),
        ])
        core = SchedulerCore.from_dag(dag)
        assert core.pop() == 1
        assert core.pop() == 0
        assert core.pop() is None

    def test_kernel_class_breaks_step_ties(self):
        # same k: GETRF (class 0) before SSSSM (class 3)
        dag = _StubDAG([
            _Stub(0, 0, 3, [], 0),
            _Stub(1, 0, 0, [], 0),
        ])
        core = SchedulerCore.from_dag(dag)
        assert core.pop() == 1

    def test_complete_releases_successors(self):
        core = SchedulerCore.from_dag(_chain(3))
        assert core.pop() == 0
        assert core.pop() is None        # t1 not released yet
        assert core.complete(0) == 1     # exactly one newly ready
        assert core.pop() == 1
        core.complete(1)
        assert core.pop() == 2
        core.complete(2)
        assert core.done()
        core.check()                     # no deadlock

    def test_deadlock_detected(self):
        core = SchedulerCore.from_dag(_chain(2))
        core.pop()                       # popped but never completed
        with pytest.raises(RuntimeError, match="deadlock"):
            core.check("unit")

    def test_check_names_the_blocked_frontier(self):
        # chain of 3; t0 completes, t1 pops but never completes — t1 is
        # stuck ready (counter 0) and t2 is waiting on it (counter 1)
        core = SchedulerCore.from_dag(_chain(3), lane=4)
        assert core.pop() == 0
        core.complete(0)
        assert core.pop() == 1           # popped, never completed
        assert core.blocked_frontier() == [(1, 0), (2, 1)]
        with pytest.raises(RuntimeError) as exc:
            core.check("threaded")
        msg = str(exc.value)
        assert "threaded deadlock: executed 1 of 3 tasks" in msg
        assert "task 1 (counter=0, lane 4)" in msg
        assert "task 2 (counter=1, lane 4)" in msg
        assert "counter=0 = ready but never scheduled" in msg

    def test_frontier_is_capped_and_counts_overflow(self):
        # twelve independent roots, none executed: the frontier lists
        # the first eight and the message counts the remainder
        dag = _StubDAG([_Stub(i, i, 0, [], 0) for i in range(12)])
        core = SchedulerCore.from_dag(dag)
        assert len(core.blocked_frontier()) == 8
        assert core.blocked_frontier(limit=3) == [(0, 0), (1, 0), (2, 0)]
        with pytest.raises(RuntimeError, match=r"… 4 more"):
            core.check("unit")

    def test_frontier_respects_ownership(self):
        # rank owns 1 and 3 of a 4-chain; only owned pending tasks show
        core = SchedulerCore.from_dag(_chain(4), owned=[1, 3])
        core.complete(0)                 # remote predecessor message
        assert core.blocked_frontier() == [(1, 0), (3, 1)]
        assert core.pop() == 1
        core.complete(1)
        assert core.blocked_frontier() == [(3, 1)]

    def test_owned_subset_counts_only_local_work(self):
        # chain of 4; this "rank" owns tasks 1 and 3
        core = SchedulerCore.from_dag(_chain(4), owned=[1, 3])
        assert core.n_owned == 2
        assert core.pop() is None        # t1 blocked on remote t0
        core.complete(0)                 # remote predecessor message
        assert core.remaining == 2       # remote work doesn't count
        assert core.pop() == 1
        core.complete(1)
        core.complete(2)                 # remote again
        assert core.pop() == 3
        core.complete(3)
        assert core.done()
        core.check()

    def test_vectorised_decrement_matches_full_run(self):
        bm, dag = _prepared()
        core = SchedulerCore.from_dag(dag)
        order = []
        while (tid := core.pop()) is not None:
            order.append(tid)
            core.complete(tid)
        core.check()
        assert sorted(order) == list(range(len(dag.tasks)))
        # priority invariant: a task never runs before a same-heap entry
        # that was ready strictly earlier with a smaller key — spot-check
        # the first popped task is a minimal root
        roots = dag.roots()
        entries = {ready_entry(dag.tasks[t], t): t for t in roots}
        assert order[0] == entries[min(entries)]

    def test_max_ready_depth_tracked(self):
        bm, dag = _prepared()
        core = SchedulerCore.from_dag(dag)
        while (tid := core.pop()) is not None:
            core.complete(tid)
        assert core.max_ready_depth >= 1


class TestWorkerLocal:
    def test_merge_into(self):
        from repro.core import FactorizeStats

        stats = FactorizeStats()
        w1, w2 = WorkerLocal(), WorkerLocal()
        w1.count(0, "getrf/a", 1, True)
        w2.count(1, "ssssm/b", 0, False)
        w1.merge_into(stats)
        w2.merge_into(stats)
        assert stats.tasks_executed == 2
        assert stats.pivots_replaced == 1
        assert stats.planned_tasks == 1
        assert stats.kernel_choices == {0: "getrf/a", 1: "ssssm/b"}


class TestEventRecorder:
    def test_empty_recorder_is_truthy(self):
        # engines gate hot-path timing on `if recorder:` — an armed but
        # still-empty recorder must not read as "no recorder"
        assert bool(EventRecorder())
        assert len(EventRecorder()) == 0

    def test_sequential_run_records_every_task(self):
        bm, dag = _prepared(seed=2)
        rec = EventRecorder()
        stats = factorize(bm, dag, recorder=rec)
        assert len(rec.task_events) == stats.tasks_executed
        assert len(rec.depth_events) == stats.tasks_executed
        assert all(e.t1 >= e.t0 for e in rec.task_events)
        cats = {e.cat for e in rec.task_events}
        assert "GETRF" in cats

    def test_merge_and_pickle(self):
        import pickle

        a, b = EventRecorder(), EventRecorder()
        a.task(0, "x", "GETRF", 0.0, 1.0, tid=0)
        b.send(1, 0, 5, 128)
        b.recv(0, 1, 5, 128)
        a.merge(pickle.loads(pickle.dumps(b)))
        assert len(a.task_events) == 1
        assert len(a.message_events) == 2


class TestEnginesAgree:
    """The acceptance cross-check: every registered engine produces the
    sequential factors through the one shared scheduler core."""

    def test_all_engines_match_sequential(self):
        from repro.runtime import get_engine
        from repro import SolverOptions

        bm_ref, dag_ref = _prepared(seed=5)
        factorize(bm_ref, dag_ref)
        ref = bm_ref.to_csc().to_dense()
        for name in ("sequential", "threaded", "distributed"):
            bm, dag = _prepared(seed=5)
            opts = SolverOptions(n_workers=3, nprocs=2)
            stats = get_engine(name)(bm, dag, opts)
            np.testing.assert_allclose(
                bm.to_csc().to_dense(), ref, atol=1e-10, err_msg=name
            )
            assert stats.tasks_executed == len(dag.tasks), name

    def test_unknown_engine_rejected(self):
        from repro.runtime import get_engine

        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp-drive")
