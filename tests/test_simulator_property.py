"""Property-based tests of the discrete-event simulator on random DAGs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import A100_PLATFORM, CPU_PLATFORM, SimSpec, simulate


@st.composite
def random_dags(draw):
    """A random layered DAG: edges only point to later tasks, so it is
    acyclic by construction."""
    n = draw(st.integers(1, 40))
    nprocs = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    edge_prob = draw(st.floats(0.0, 0.3))
    rng = np.random.default_rng(seed)
    successors: list[list[int]] = [[] for _ in range(n)]
    n_deps = np.zeros(n, dtype=np.int64)
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < edge_prob:
                successors[a].append(b)
                n_deps[b] += 1
    spec = SimSpec(
        durations=rng.random(n) * 1e-3 + 1e-6,
        owner=rng.integers(0, nprocs, size=n),
        out_bytes=rng.random(n) * 1e4,
        n_deps=n_deps,
        successors=successors,
        priority=rng.random(n),
        nprocs=nprocs,
        levels=None,
    )
    return spec, rng


@settings(max_examples=60, deadline=None)
@given(random_dags())
def test_simulation_invariants(dag_rng):
    spec, _ = dag_rng
    res = simulate(spec, A100_PLATFORM)
    n = len(spec.durations)
    # every task ran exactly once, for its full duration
    assert np.all(np.isfinite(res.start_times))
    np.testing.assert_allclose(
        res.end_times - res.start_times, spec.durations, rtol=1e-12
    )
    # work conservation (up to summation-order rounding)
    assert np.isclose(res.total_busy, spec.durations.sum(), rtol=1e-12)
    # makespan bounds: at least the busiest processor, at most serial time
    loads = np.zeros(spec.nprocs)
    np.add.at(loads, spec.owner, spec.durations)
    assert res.makespan >= loads.max() - 1e-15
    serial_plus_comm = spec.durations.sum() + res.messages * (
        A100_PLATFORM.inter_latency + 1e4 / A100_PLATFORM.inter_bandwidth
    ) * 2
    assert res.makespan <= serial_plus_comm + 1e-12
    # dependencies respected
    for a in range(n):
        for b in spec.successors[a]:
            assert res.start_times[b] >= res.end_times[a] - 1e-15


@settings(max_examples=40, deadline=None)
@given(random_dags())
def test_levelset_never_beats_syncfree(dag_rng):
    spec, rng = dag_rng
    # assign consistent levels: longest-path depth
    n = len(spec.durations)
    level = np.zeros(n, dtype=np.int64)
    for a in range(n):
        for b in spec.successors[a]:
            level[b] = max(level[b], level[a] + 1)
    spec.levels = level
    free = simulate(spec, CPU_PLATFORM, schedule="syncfree")
    barrier = simulate(spec, CPU_PLATFORM, schedule="levelset")
    # Greedy list scheduling exhibits Graham anomalies: adding barriers can
    # occasionally *improve* the makespan by steering a process away from a
    # bad early pick, so "barrier ≥ sync-free" is not a theorem for random
    # priorities.  The anomaly is bounded (factor < 2 − 1/p); on the real
    # PanguLU DAGs with critical-path priorities the strict inequality
    # holds empirically (see test_costmodel / bench_fig14).
    assert barrier.makespan >= free.makespan / 2 - 1e-12
    # both execute the same work (up to summation-order rounding)
    assert np.isclose(barrier.total_busy, free.total_busy, rtol=1e-12)


@settings(max_examples=40, deadline=None)
@given(random_dags())
def test_more_processors_never_hurt_without_comm(dag_rng):
    """With a free network, doubling processors cannot slow the greedy
    schedule by more than the classic list-scheduling anomaly bound."""
    spec, _ = dag_rng
    from dataclasses import replace

    free_net = replace(
        CPU_PLATFORM,
        intra_latency=0.0,
        inter_latency=0.0,
        intra_bandwidth=1e30,
        inter_bandwidth=1e30,
    )
    res = simulate(spec, free_net)
    # Graham's bound: makespan <= serial/p + critical path; with owners
    # fixed we just check against the trivial upper bound
    assert res.makespan <= spec.durations.sum() + 1e-12
