"""Cross-module integration tests: the full pipeline end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU, SolverOptions
from repro.baseline import SuperLUBaseline, simulate_superlu
from repro.runtime import (
    A100_PLATFORM,
    MI50_PLATFORM,
    factorize_threaded,
    simulate_pangulu,
)
from repro.sparse import generate, read_matrix_market, write_matrix_market


class TestFullPipeline:
    def test_mtx_file_to_solution(self, tmp_path):
        """Matrix Market ingestion → reorder → symbolic → numeric → solve,
        the exact workflow of PanguLU's artifact."""
        a = generate("CoupCons3D", scale=0.1)
        path = tmp_path / "coupcons.mtx"
        write_matrix_market(path, a)
        loaded = read_matrix_market(path)
        s = PanguLU(loaded)
        b = np.sin(np.arange(loaded.nrows))
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-8

    def test_both_solvers_same_answer(self):
        a = generate("cage12", scale=0.15)
        b = np.ones(a.nrows)
        x_pg = PanguLU(a).solve(b)
        x_bl = SuperLUBaseline(a).solve(b)
        np.testing.assert_allclose(x_pg, x_bl, atol=1e-6)

    def test_threaded_solution_matches(self):
        a = generate("ldoor", scale=0.1)
        s = PanguLU(a)
        s.preprocess()
        factorize_threaded(s.blocks, s.dag, n_workers=4)
        s._factorized = True
        from repro.core.numeric import FactorizeStats

        s.numeric_stats = FactorizeStats()
        b = np.ones(a.nrows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-8

    def test_simulated_speedup_shape(self):
        """Scaling up processes must not slow down a flop-heavy matrix by
        more than noise, and the 16-proc run must beat 1 proc."""
        a = generate("Si87H76", scale=0.35)
        s = PanguLU(a)
        s.preprocess()
        g1 = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 1).gflops
        g16 = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 16).gflops
        assert g16 > g1

    def test_two_platforms_differ(self):
        a = generate("ecology1", scale=0.25)
        s = PanguLU(a)
        s.preprocess()
        t_a100 = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 4).result.makespan
        t_mi50 = simulate_pangulu(s.blocks, s.dag, MI50_PLATFORM, 4).result.makespan
        assert t_a100 != t_mi50

    def test_headline_comparison_irregular(self):
        """ASIC-like matrix: PanguLU wins the simulated head-to-head and
        its symbolic phase is faster in real wall-clock (Figs. 11/12)."""
        a = generate("ASIC_680k", scale=0.3)
        s = PanguLU(a)
        s.preprocess()
        bl = SuperLUBaseline(a)
        bl.preprocess()
        # real symbolic wall-clock: etree walk beats column DFS
        assert s.phase_seconds["symbolic"] < bl.phase_seconds["symbolic"]
        # simulated 8-process numeric factorisation
        pg = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 8)
        res_bl, _ = simulate_superlu(bl.panels, bl.partition, A100_PLATFORM, 8)
        assert pg.result.makespan < res_bl.makespan

    def test_load_balancing_helps_or_neutral(self):
        a = generate("nlpkkt80", scale=0.25)
        s = PanguLU(a)
        s.preprocess()
        on = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 8, load_balance=True)
        off = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 8, load_balance=False)
        # balancing must not catastrophically regress the makespan
        assert on.result.makespan < off.result.makespan * 1.5


class TestReproducibility:
    def test_pipeline_deterministic(self):
        a = generate("G3_circuit", scale=0.2, seed=3)
        b = np.arange(1.0, a.nrows + 1)
        x1 = PanguLU(a, SolverOptions()).solve(b)
        x2 = PanguLU(a, SolverOptions()).solve(b)
        np.testing.assert_array_equal(x1, x2)

    def test_simulation_deterministic(self):
        a = generate("apache2", scale=0.2)
        s = PanguLU(a)
        s.preprocess()
        m1 = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 8).result.makespan
        m2 = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 8).result.makespan
        assert m1 == m2
