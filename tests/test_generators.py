"""Tests for the synthetic analogues of the paper's 16 matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    cage_like,
    circuit_like,
    fem_3d,
    generate,
    grid_laplacian_2d,
    grid_laplacian_3d,
    is_structurally_symmetric,
    kkt_saddle_point,
    paper_matrix_names,
    quantum_chemistry_like,
)


class TestNamedGenerators:
    @pytest.mark.parametrize("name", paper_matrix_names())
    def test_generates_square_nonsingular_analogue(self, name):
        a = generate(name, scale=0.12)
        assert a.nrows == a.ncols > 0
        assert a.nnz > a.nrows  # more than a diagonal
        # structurally full diagonal is not required (MC64 fixes it), but
        # every row and column must be nonempty
        assert np.all(np.diff(a.indptr) > 0)
        rows = np.zeros(a.nrows, dtype=bool)
        rows[a.indices] = True
        assert rows.all()

    @pytest.mark.parametrize("name", paper_matrix_names())
    def test_deterministic(self, name):
        a = generate(name, scale=0.1, seed=5)
        b = generate(name, scale=0.1, seed=5)
        assert a == b

    def test_seed_changes_values(self):
        a = generate("ASIC_680k", scale=0.1, seed=0)
        b = generate("ASIC_680k", scale=0.1, seed=1)
        assert not (a == b)

    def test_scale_grows_size(self):
        small = generate("ecology1", scale=0.1)
        big = generate("ecology1", scale=0.4)
        assert big.nrows > small.nrows

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            generate("not_a_matrix")


class TestStructuralRegimes:
    """Each analogue must reproduce the regime the paper attributes to it."""

    def test_laplacians_are_symmetric_low_density(self):
        for name in ("ecology1", "G3_circuit", "apache2"):
            a = generate(name, scale=0.2)
            assert is_structurally_symmetric(a), name
            assert a.density < 0.03, name

    def test_quantum_chemistry_is_dense_clustered(self):
        a = generate("Si87H76", scale=0.3)
        # far denser than the grid matrices, with fully dense orbital clusters
        assert a.density > 5 * generate("ecology1", scale=0.3).density
        d = a.to_dense()
        cluster = 12
        assert np.count_nonzero(d[:cluster, :cluster]) == cluster * cluster

    def test_cage_is_unsymmetric(self):
        a = generate("cage12", scale=0.3)
        assert not is_structurally_symmetric(a)

    def test_circuit_has_dense_rails(self):
        a = generate("ASIC_680k", scale=0.4)
        deg = np.diff(a.indptr)
        # a few columns far denser than the median — the rail structure
        assert deg.max() > 10 * np.median(deg)

    def test_fem_has_dense_node_blocks(self):
        a = generate("audikw_1", scale=0.15)
        # 3 dofs per node → diagonal 3×3 blocks fully dense
        d = a.to_dense()
        blk = d[:3, :3]
        assert np.count_nonzero(blk) == 9

    def test_kkt_has_zero_block(self):
        a = generate("nlpkkt80", scale=0.3)
        d = a.to_dense() != 0
        # constraint-constraint block is diagonal-only (the -delta I)
        nh = (2 * a.nrows) // 3
        cc = d[nh:, nh:]
        off = cc & ~np.eye(cc.shape[0], dtype=bool)
        assert off.sum() == 0


class TestPrimitives:
    def test_grid_laplacian_2d_structure(self):
        a = grid_laplacian_2d(4, 5)
        assert a.nrows == 20
        d = a.to_dense()
        np.testing.assert_array_equal(d, d.T)
        assert d[0, 0] == 4.0 and d[0, 1] == -1.0

    def test_grid_laplacian_3d_degree(self):
        a = grid_laplacian_3d(3, 3, 3)
        # interior vertex has 6 neighbours + diagonal
        deg = np.diff(a.indptr)
        assert deg.max() == 7

    def test_fem_diagonally_dominant(self):
        a = fem_3d(3, 3, 3, dofs=2, stencil=7, seed=0)
        d = a.to_dense()
        diag = np.abs(np.diag(d))
        off = np.abs(d).sum(axis=1) - diag
        assert np.all(diag > off)

    def test_fem_rejects_bad_stencil(self):
        with pytest.raises(ValueError, match="stencil"):
            fem_3d(2, 2, 2, stencil=9)

    def test_circuit_like_size(self):
        a = circuit_like(200, seed=0)
        assert a.nrows == 200

    def test_cage_like_banded(self):
        a = cage_like(300, seed=0)
        from repro.sparse import bandwidth

        assert bandwidth(a) < 300 // 2  # bounded spread

    def test_quantum_chem_cluster_rounding(self):
        a = quantum_chemistry_like(100, cluster=48, seed=0)
        assert a.nrows == 96  # rounded down to a multiple of the cluster

    def test_kkt_shape(self):
        a = kkt_saddle_point(500, seed=0)
        assert a.nrows == a.ncols
