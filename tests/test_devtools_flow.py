"""Tests of the interprocedural flow analyses (`repro.devtools.flow`)
and the shared SARIF/baseline reporter.

Each pass is exercised against a should-flag/should-pass fixture pair
under ``tests/devtools_fixtures/`` — the flag fixture seeds exactly the
bug class the pass exists for (a lock-order cycle closed through a
call, a cross-call implicit-float64 leak into a float32 kernel, a
payload aliasing scheduler/arena state).  The repo's own ``src`` tree
must analyze clean: that regression is the ``make analyze`` gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import lint as lint_cli
from repro.devtools.astlint import Finding
from repro.devtools.flow import (
    FLOW_PASSES,
    Project,
    analyze_paths,
    flow_rule_descriptions,
)
from repro.devtools.report import (
    apply_baseline,
    fingerprint,
    load_baseline,
    render_sarif,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "devtools_fixtures"
SRC = Path(__file__).parent.parent / "src"

#: pass name → fixture basename
PASS_FIXTURES = {
    "lock-order": "flow_lock_order",
    "dtype-flow": "flow_dtype_flow",
    "payload-escape": "flow_payload_escape",
}


def _run_pass(name: str, path: Path) -> list[Finding]:
    return analyze_paths([path], select=[name])


# ----------------------------------------------------------------------
# per-pass fixtures
# ----------------------------------------------------------------------

def test_every_flow_pass_has_fixtures():
    assert set(FLOW_PASSES) == set(PASS_FIXTURES)


@pytest.mark.parametrize("name", sorted(PASS_FIXTURES))
def test_pass_flags_its_fixture(name):
    findings = _run_pass(name, FIXTURES / f"{PASS_FIXTURES[name]}_flag.py")
    assert findings, f"{name} missed its should-flag fixture"
    assert all(f.rule == name for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize("name", sorted(PASS_FIXTURES))
def test_pass_accepts_its_clean_fixture(name):
    findings = _run_pass(name, FIXTURES / f"{PASS_FIXTURES[name]}_pass.py")
    assert findings == [], [f.format() for f in findings]


def test_lock_order_cycle_is_interprocedural():
    """The flag fixture's a→b edge exists only through a call: the
    reported cycle proves the pass propagated holds across the call
    graph, and the message walks the cycle with its acquisition sites."""
    findings = _run_pass(
        "lock-order", FIXTURES / "flow_lock_order_flag.py"
    )
    assert len(findings) == 1
    msg = findings[0].message
    assert "lock_a" in msg and "lock_b" in msg
    assert "potential deadlock" in msg
    assert "->" in msg  # the cycle path
    assert "flow_lock_order_flag.py:" in msg  # acquisition sites


def test_dtype_flow_reports_the_entry_call_site():
    findings = _run_pass(
        "dtype-flow", FIXTURES / "flow_dtype_flow_flag.py"
    )
    messages = "\n".join(f.message for f in findings)
    # the cross-call leak is reported where the implicit array enters
    assert "driver() passes an implicitly-float64 array" in messages
    assert "axpy_f32()" in messages
    # and the plain in-function mix is reported too
    assert "direct_mix() mixes float32" in messages


def test_payload_escape_names_each_alias():
    findings = _run_pass(
        "payload-escape", FIXTURES / "flow_payload_escape_flag.py"
    )
    messages = "\n".join(f.message for f in findings)
    assert "core.counters" in messages and "scheduler protocol state" in messages
    assert "arena" in messages and "refactorize" in messages
    assert "pending" in messages and "state_lock" in messages  # guarded-by


def test_flow_findings_honour_noqa(tmp_path):
    src = (FIXTURES / "flow_payload_escape_flag.py").read_text()
    silenced = tmp_path / "m.py"
    silenced.write_text("# repro: noqa[payload-escape]\n" + src)
    assert analyze_paths([silenced], select=["payload-escape"]) == []


def test_unknown_pass_name_raises():
    with pytest.raises(ValueError, match="unknown flow pass"):
        analyze_paths([FIXTURES], select=["no-such-pass"])


# ----------------------------------------------------------------------
# the project symbol table / call graph
# ----------------------------------------------------------------------

def test_project_symbols_and_call_resolution(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "util.py").write_text(
        "def helper():\n    return 1\n"
    )
    (tmp_path / "pkg" / "main.py").write_text(
        "from .util import helper\n"
        "from . import util\n"
        "class C:\n"
        "    def m(self):\n"
        "        return self.other()\n"
        "    def other(self):\n"
        "        return helper()\n"
        "def top():\n"
        "    return util.helper()\n"
    )
    project = Project.load(sorted((tmp_path / "pkg").rglob("*.py")))
    names = {fi.qualname for fi in project.all_functions()}
    assert "pkg.util:helper" in names
    assert "pkg.main:C.m" in names and "pkg.main:top" in names

    import ast

    main = project.modules["pkg.main"]
    # self.other() resolves to the sibling method
    m = main.functions["C.m"]
    call = next(
        n for n in ast.walk(m.node) if isinstance(n, ast.Call)
    )
    assert project.resolve_call(call, m).qualname == "pkg.main:C.other"
    # from-import and module-attribute calls resolve across modules
    other = main.functions["C.other"]
    call = next(n for n in ast.walk(other.node) if isinstance(n, ast.Call))
    assert project.resolve_call(call, other).qualname == "pkg.util:helper"
    top = main.functions["top"]
    call = next(n for n in ast.walk(top.node) if isinstance(n, ast.Call))
    assert project.resolve_call(call, top).qualname == "pkg.util:helper"


# ----------------------------------------------------------------------
# reporter: SARIF + baseline
# ----------------------------------------------------------------------

def _sample_findings():
    return [
        Finding("lock-order", "src/a.py", 10, 4, "cycle x -> y -> x"),
        Finding("dtype-flow", "src/b.py", 3, 0, "implicit mix"),
    ]


def test_sarif_document_shape():
    doc = json.loads(render_sarif(_sample_findings(), {"lock-order": "d1"}))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.devtools"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"lock-order", "dtype-flow"} <= rule_ids
    assert len(run["results"]) == 2
    first = run["results"][0]
    assert first["ruleId"] == "lock-order"
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/a.py"
    assert loc["region"]["startLine"] == 10


def test_baseline_roundtrip_and_ratchet(tmp_path):
    findings = _sample_findings()
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    baseline = load_baseline(path)
    assert {fingerprint(f) for f in findings} == baseline
    assert apply_baseline(findings, baseline) == []
    # line drift does not resurrect a baselined finding …
    drifted = Finding("lock-order", "src/a.py", 99, 0, "cycle x -> y -> x")
    assert apply_baseline([drifted], baseline) == []
    # … but a new message is a new finding
    new = Finding("lock-order", "src/a.py", 10, 4, "cycle x -> z -> x")
    assert apply_baseline([new], baseline) == [new]


def test_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


def test_baseline_version_mismatch(tmp_path):
    p = tmp_path / "b.json"
    p.write_text('{"version": 99, "findings": []}')
    with pytest.raises(ValueError, match="version"):
        load_baseline(p)


# ----------------------------------------------------------------------
# the gate: the repo itself analyzes clean; CLI plumbing
# ----------------------------------------------------------------------

def test_repository_flow_analyzes_clean():
    findings = analyze_paths([SRC])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_committed_baseline_is_loadable_and_current():
    """The committed baseline matches reality: applying it to a clean
    tree yields no findings, and it contains no stale version."""
    baseline_path = Path(__file__).parent.parent / "analysis-baseline.json"
    baseline = load_baseline(baseline_path)
    findings = apply_baseline(analyze_paths([SRC]), baseline)
    assert findings == []


def test_cli_flow_flag(tmp_path, capsys):
    bad = tmp_path / "m.py"
    bad.write_text((FIXTURES / "flow_lock_order_flag.py").read_text())
    assert lint_cli.main([str(bad), "--flow"]) == 1
    assert "[lock-order]" in capsys.readouterr().out
    # the same file without --flow has no per-module findings
    assert lint_cli.main([str(bad)]) == 0


def test_cli_flow_select(tmp_path, capsys):
    bad = tmp_path / "m.py"
    bad.write_text((FIXTURES / "flow_dtype_flow_flag.py").read_text())
    assert lint_cli.main(
        [str(bad), "--flow", "--select", "dtype-flow"]
    ) == 1
    out = capsys.readouterr().out
    assert "[dtype-flow]" in out


def test_cli_sarif_and_baseline_workflow(tmp_path, capsys):
    bad = tmp_path / "m.py"
    bad.write_text((FIXTURES / "flow_payload_escape_flag.py").read_text())
    sarif = tmp_path / "analysis.sarif"
    baseline = tmp_path / "baseline.json"

    # 1) findings fail the gate and land in the SARIF report
    assert lint_cli.main(
        [str(bad), "--flow", "--sarif", str(sarif)]
    ) == 1
    capsys.readouterr()
    doc = json.loads(sarif.read_text())
    assert doc["runs"][0]["results"]

    # 2) writing the baseline records them and exits 0
    assert lint_cli.main(
        [str(bad), "--flow", "--baseline", str(baseline),
         "--write-baseline"]
    ) == 0
    capsys.readouterr()

    # 3) with the baseline applied the gate passes and the SARIF is empty
    assert lint_cli.main(
        [str(bad), "--flow", "--baseline", str(baseline),
         "--sarif", str(sarif)]
    ) == 0
    capsys.readouterr()
    assert json.loads(sarif.read_text())["runs"][0]["results"] == []


def test_cli_list_rules_includes_flow_passes(capsys):
    assert lint_cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in flow_rule_descriptions():
        assert name in out
        assert "[flow]" in out
