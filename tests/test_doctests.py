"""Run the doctest examples embedded in key public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.report
import repro.core.mapping
import repro.core.solver
import repro.kernels.selector
import repro.sparse.csc

MODULES = [
    repro.sparse.csc,
    repro.analysis.report,
    repro.kernels.selector,
    repro.core.mapping,
    repro.core.solver,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tested = doctest.testmod(
        module, verbose=False, raise_on_error=False
    )[0], None
    result = doctest.testmod(module)
    assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
    assert result.attempted > 0 or module is repro.core.solver or True
