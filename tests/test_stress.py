"""Heavier end-to-end stress cases (larger analogues, combined features)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU, SolverOptions
from repro.runtime import A100_PLATFORM, simulate_pangulu
from repro.sparse import generate


@pytest.mark.parametrize("name", ["ASIC_680k", "nlpkkt80"])
def test_larger_scale_pipeline(name):
    """Full pipeline at scale 0.3 (roughly 800 unknowns): solve, verify,
    refactorize, estimate — the combined API surface under one matrix."""
    a = generate(name, scale=0.3, seed=2)
    s = PanguLU(a, SolverOptions(n_workers=2))
    b = np.sin(np.arange(a.nrows) * 0.1)
    x = s.solve(b)
    assert s.residual_norm(x, b) < 1e-9

    # fixed-pattern refactorisation with perturbed values
    a2 = a.copy()
    a2.data = a.data * 1.01
    s.refactorize(a2)
    x2 = s.solve(b)
    assert s.residual_norm(x2, b) < 1e-9

    # simulation on the factorised structure still works and scales sanely
    sim1 = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 1)
    sim16 = simulate_pangulu(s.blocks, s.dag, A100_PLATFORM, 16)
    assert sim16.result.makespan <= sim1.result.makespan * 1.5


def test_many_solves_one_factorisation():
    a = generate("G3_circuit", scale=0.3)
    s = PanguLU(a)
    rng = np.random.default_rng(0)
    s.factorize()
    numeric_time = s.phase_seconds["numeric"]
    for _ in range(10):
        b = rng.standard_normal(a.nrows)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-9
    # solves amortise: each solve is much cheaper than the factorisation
    # (phase_seconds["solve"] accumulates across calls; last_solve_seconds
    # is the most recent call alone)
    assert s.solve_count == 10
    assert s.last_solve_seconds < numeric_time
    assert s.phase_seconds["solve"] / s.solve_count < numeric_time


def test_wide_multi_rhs():
    a = generate("CoupCons3D", scale=0.15)
    s = PanguLU(a)
    B = np.random.default_rng(1).standard_normal((a.nrows, 16))
    X = s.solve(B)
    d = a.to_dense()
    assert np.abs(d @ X - B).max() < 1e-7
