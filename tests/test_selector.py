"""Tests for the decision-tree kernel selector and its calibrator."""

from __future__ import annotations

import pytest

from repro.kernels import (
    KERNEL_REGISTRY,
    DecisionTree,
    KernelType,
    SelectorPolicy,
    Split,
    TaskFeatures,
    calibrate,
    default_trees,
)


class TestDecisionTree:
    def test_split_routing(self):
        tree = DecisionTree(Split("nnz_a", 100.0, "C_V1", "G_V1"))
        assert tree.select(TaskFeatures(nnz_a=50)) == "C_V1"
        assert tree.select(TaskFeatures(nnz_a=100)) == "G_V1"
        assert tree.select(TaskFeatures(nnz_a=500)) == "G_V1"

    def test_nested(self):
        tree = DecisionTree(
            Split("nnz_a", 100.0, Split("density", 0.5, "A", "B"), "C")
        )
        assert tree.select(TaskFeatures(nnz_a=10, density=0.1)) == "A"
        assert tree.select(TaskFeatures(nnz_a=10, density=0.9)) == "B"
        assert tree.select(TaskFeatures(nnz_a=200, density=0.9)) == "C"

    def test_leaves(self):
        tree = DecisionTree(Split("flops", 1.0, "X", Split("flops", 2.0, "Y", "Z")))
        assert sorted(tree.leaves()) == ["X", "Y", "Z"]

    def test_unknown_feature(self):
        tree = DecisionTree(Split("bogus", 1.0, "A", "B"))
        with pytest.raises(KeyError):
            tree.select(TaskFeatures(nnz_a=1))


class TestDefaults:
    def test_all_types_covered(self):
        trees = default_trees()
        assert set(trees) == set(KernelType)

    def test_leaves_are_registered_versions(self):
        trees = default_trees()
        for ktype, tree in trees.items():
            for leaf in tree.leaves():
                assert leaf in KERNEL_REGISTRY[ktype], (ktype, leaf)

    def test_small_tasks_avoid_compiled_kernels(self):
        pol = SelectorPolicy.default()
        # tiny product on a large sparse block: the cheap bin-search path
        v = pol.select(
            KernelType.SSSSM,
            TaskFeatures(nnz_a=5, nnz_b=5, flops=10, n=256, density=0.01),
        )
        assert v == "C_V2"
        # tiny product on a small block: the dense GEMM is essentially free
        v = pol.select(
            KernelType.SSSSM,
            TaskFeatures(nnz_a=5, nnz_b=5, flops=10, n=32, density=0.05),
        )
        assert v == "C_V1"


class TestFixedPolicy:
    def test_fixed_always_same(self):
        pol = SelectorPolicy.fixed()
        for feats in (
            TaskFeatures(nnz_a=1, flops=1),
            TaskFeatures(nnz_a=10**6, flops=10**9, density=1.0),
        ):
            assert pol.select(KernelType.GETRF, feats) == "G_V1"
            assert pol.select(KernelType.SSSSM, feats) == "C_V2"

    def test_fixed_custom(self):
        pol = SelectorPolicy.fixed({k: "C_V1" for k in KernelType})
        assert pol.select(KernelType.GETRF, TaskFeatures(nnz_a=1)) == "C_V1"


class TestCalibrate:
    def _samples(self):
        # variant "SLOW" is best below 100 nnz, "FAST" above
        samples = []
        for nnz in [10, 20, 50, 80, 150, 300, 700, 1000]:
            times = {
                "SLOW": 1.0 + nnz / 100.0,
                "FAST": 3.0 + nnz / 1000.0,
            }
            samples.append((TaskFeatures(nnz_a=nnz), times))
        return samples

    def test_learns_crossover(self):
        trees = calibrate({KernelType.GETRF: self._samples()})
        tree = trees[KernelType.GETRF]
        assert tree.select(TaskFeatures(nnz_a=10)) == "SLOW"
        assert tree.select(TaskFeatures(nnz_a=1000)) == "FAST"

    def test_single_variant_collapses_to_leaf(self):
        samples = [
            (TaskFeatures(nnz_a=n), {"ONLY": float(n)}) for n in range(1, 9)
        ]
        trees = calibrate({KernelType.GESSM: samples})
        assert trees[KernelType.GESSM].root == "ONLY"

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="no samples"):
            calibrate({KernelType.TSTRF: []})

    def test_calibrated_total_not_worse_than_any_fixed(self):
        samples = self._samples()
        trees = calibrate({KernelType.GETRF: samples})
        tree = trees[KernelType.GETRF]
        total_tree = sum(t[tree.select(f)] for f, t in samples)
        for v in ("SLOW", "FAST"):
            total_fixed = sum(t[v] for _, t in samples)
            assert total_tree <= total_fixed + 1e-12
