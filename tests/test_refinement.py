"""Tests for iterative refinement behaviour and its configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PanguLU, SolverOptions
from repro.sparse import CSCMatrix, random_sparse


class TestRefinementSteps:
    def test_zero_steps_still_accurate_on_easy_matrix(self):
        a = random_sparse(50, 0.08, seed=1)
        s = PanguLU(a, SolverOptions(refine_steps=0))
        b = np.ones(50)
        x = s.solve(b)
        assert s.residual_norm(x, b) < 1e-12

    def test_refinement_reduces_residual_on_hard_matrix(self):
        a = random_sparse(60, 0.08, seed=9)
        bad = a.scale(np.logspace(-5, 5, 60), None)
        b = np.ones(60)
        res = {}
        for steps in (0, 2):
            s = PanguLU(bad, SolverOptions(refine_steps=steps))
            x = s.solve(b)
            res[steps] = s.residual_norm(x, b)
        assert res[2] <= res[0] * 1.0001  # refinement never hurts
        # and on this conditioning it genuinely helps
        assert res[2] < res[0] or res[0] < 1e-12

    def test_negative_steps_treated_as_zero(self):
        a = random_sparse(30, 0.1, seed=2)
        s = PanguLU(a, SolverOptions(refine_steps=-3))
        x = s.solve(np.ones(30))
        assert s.residual_norm(x, np.ones(30)) < 1e-10

    def test_refinement_applies_to_multi_rhs(self):
        a = random_sparse(40, 0.08, seed=3)
        bad = a.scale(np.logspace(-3, 3, 40), None)
        s = PanguLU(bad, SolverOptions(refine_steps=2))
        B = np.eye(40)[:, :3]
        X = s.solve(B)
        d = bad.to_dense()
        # componentwise residual at the refinement floor
        floor = np.finfo(float).eps * np.abs(d).sum(axis=1).max() * (
            np.abs(X).max() + 1.0
        )
        assert np.abs(d @ X - B).max() < 1e4 * floor

    def test_sabotaged_factors_raise_not_loop(self):
        # pathological: a zero U diagonal in the factors must raise the
        # triangular solve's explicit error, not spin in refinement
        a = random_sparse(20, 0.15, seed=4)
        s = PanguLU(a, SolverOptions(refine_steps=5))
        s.factorize()
        diag = s.blocks.block(0, 0)
        pos = int(np.searchsorted(diag.indices[diag.col_slice(0)], 0))
        diag.data[pos] = 0.0
        with pytest.raises(ZeroDivisionError, match="U diagonal"):
            s.solve(np.ones(20))


class TestRefinementConvergence:
    def test_converges_geometrically(self):
        """Each refinement sweep should multiply the residual by roughly
        the same contraction factor until the FP floor."""
        a = random_sparse(50, 0.08, seed=11)
        bad = a.scale(np.logspace(-4, 4, 50), None)
        s = PanguLU(bad, SolverOptions(refine_steps=0))
        s.factorize()
        b = np.ones(50)
        x = s._apply_factors(b)
        residuals = [np.linalg.norm(b - bad.matvec(x))]
        for _ in range(3):
            r = b - bad.matvec(x)
            x = x + s._apply_factors(r)
            residuals.append(np.linalg.norm(b - bad.matvec(x)))
        # non-increasing until the floor
        for r0, r1 in zip(residuals, residuals[1:]):
            assert r1 <= r0 * 1.5 + 1e-12
