"""Tests for fixed-pattern execution plans (:mod:`repro.kernels.plans`).

The load-bearing property: planned execution must be **bit-identical** to
the unplanned sparse kernels — same products, same order, same masking —
so `use_plans` is purely a performance knob, never a numerics knob.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NumericOptions,
    block_partition,
    build_dag,
    factorize,
    memory_report,
)
from repro.kernels import (
    KERNEL_REGISTRY,
    PLANNABLE_VERSIONS,
    PlanCache,
    SelectorPolicy,
    plan_capable,
)
from repro.sparse import CSCMatrix, random_sparse
from repro.symbolic import symbolic_symmetric


def _prepared(n=80, bs=12, seed=0, density=0.07):
    a = random_sparse(n, density, seed=seed)
    f = symbolic_symmetric(a).filled
    bm = block_partition(f, bs)
    return a, bm, build_dag(bm)


def _factor_dense(bm, dag, **kw):
    stats = factorize(bm, dag, NumericOptions(**kw))
    return bm.to_csc().to_dense(), stats


class TestPlannableRegistry:
    def test_plannable_versions_exist(self):
        for ktype, versions in PLANNABLE_VERSIONS.items():
            for v in versions:
                assert v in KERNEL_REGISTRY[ktype]
                assert plan_capable(ktype, v)

    def test_dense_variants_not_plannable(self):
        # dense-mapped variants use different summation orders — a plan
        # claiming to reproduce them bit-for-bit would be a lie
        from repro.kernels import KernelType

        assert not plan_capable(KernelType.SSSSM, "C_V1")
        assert not plan_capable(KernelType.GETRF, "C_V1")


class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(4))
    def test_fixed_policy_bit_identical(self, seed):
        # fixed policy selects plannable versions for all four roles, so
        # every task runs planned — the strongest exercise of the maps
        _, bm1, dag1 = _prepared(seed=seed)
        _, bm2, dag2 = _prepared(seed=seed)
        d1, s1 = _factor_dense(
            bm1, dag1, selector=SelectorPolicy.fixed(), use_plans=True
        )
        d2, s2 = _factor_dense(
            bm2, dag2, selector=SelectorPolicy.fixed(), use_plans=False
        )
        assert s1.planned_tasks > 0
        assert s2.planned_tasks == 0
        assert np.array_equal(d1, d2)

    @pytest.mark.parametrize("seed", range(4))
    def test_default_policy_bit_identical(self, seed):
        _, bm1, dag1 = _prepared(seed=seed, n=100, bs=10)
        _, bm2, dag2 = _prepared(seed=seed, n=100, bs=10)
        d1, _ = _factor_dense(bm1, dag1, use_plans=True)
        d2, _ = _factor_dense(bm2, dag2, use_plans=False)
        assert np.array_equal(d1, d2)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        bs=st.sampled_from([6, 10, 16]),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_random_block_matrices(self, seed, bs):
        _, bm1, dag1 = _prepared(n=60, bs=bs, seed=seed, density=0.08)
        _, bm2, dag2 = _prepared(n=60, bs=bs, seed=seed, density=0.08)
        d1, _ = _factor_dense(
            bm1, dag1, selector=SelectorPolicy.fixed(), use_plans=True
        )
        d2, _ = _factor_dense(
            bm2, dag2, selector=SelectorPolicy.fixed(), use_plans=False
        )
        assert np.array_equal(d1, d2)


class TestPlanCacheBehaviour:
    def test_cache_attached_to_block_matrix(self):
        _, bm, dag = _prepared()
        assert bm.plan_cache is None
        factorize(bm, dag, NumericOptions(selector=SelectorPolicy.fixed()))
        assert isinstance(bm.plan_cache, PlanCache)
        assert len(bm.plan_cache) > 0
        assert bm.plan_cache.nbytes > 0

    def test_plans_disabled_leaves_no_cache(self):
        _, bm, dag = _prepared()
        stats = factorize(bm, dag, NumericOptions(use_plans=False))
        assert bm.plan_cache is None
        assert stats.planned_tasks == 0
        assert stats.plan_bytes == 0

    def test_refactorize_reuses_cache(self):
        from repro import PanguLU

        a = random_sparse(120, 0.05, seed=7)
        solver = PanguLU(a)
        solver.factorize()
        cache = solver.blocks.plan_cache
        assert cache is not None
        built = len(cache)
        a2 = CSCMatrix(
            a.shape, a.indptr.copy(), a.indices.copy(), a.data * 1.5
        )
        solver.refactorize(a2)
        # same pattern ⇒ same slots ⇒ zero rebuilds on the second pass
        assert solver.blocks.plan_cache is cache
        assert len(cache) == built
        x = solver.solve(np.ones(120))
        assert np.linalg.norm(a2.matvec(x) - 1.0) < 1e-8

    def test_ssssm_entry_limit_falls_back(self):
        _, bm1, dag1 = _prepared(seed=3)
        _, bm2, dag2 = _prepared(seed=3)
        d1, s1 = _factor_dense(bm1, dag1, selector=SelectorPolicy.fixed())
        # a zero entry budget declines every SSSSM plan (memory valve);
        # the solves/GETRF still run planned and the result is unchanged
        d2, s2 = _factor_dense(
            bm2, dag2, selector=SelectorPolicy.fixed(), plan_entry_limit=0
        )
        assert 0 < s2.planned_tasks < s1.planned_tasks
        assert np.array_equal(d1, d2)

    def test_cache_get_caches_none(self):
        cache = PlanCache()
        calls = []

        def builder():
            calls.append(1)
            return None

        assert cache.get("k", builder) is None
        assert cache.get("k", builder) is None
        assert len(calls) == 1


class TestMemoryAccounting:
    def test_plan_bytes_in_report(self):
        _, bm, dag = _prepared()
        rep0 = memory_report(bm)
        assert rep0.plan_bytes == 0
        factorize(bm, dag, NumericOptions(selector=SelectorPolicy.fixed()))
        rep1 = memory_report(bm)
        assert rep1.plan_bytes > 0
        assert rep1.plan_bytes == bm.plan_cache.nbytes
        assert rep1.total_bytes == rep0.total_bytes + rep1.plan_bytes

    def test_stats_report_plan_bytes(self):
        _, bm, dag = _prepared()
        stats = factorize(bm, dag, NumericOptions(selector=SelectorPolicy.fixed()))
        assert stats.plan_bytes == bm.plan_cache.nbytes


class TestThreadedAndPartial:
    def test_threaded_planned_matches_sequential(self):
        from repro.runtime import factorize_threaded

        _, bm1, dag1 = _prepared(n=90, bs=12, seed=5)
        _, bm2, dag2 = _prepared(n=90, bs=12, seed=5)
        factorize(bm1, dag1, NumericOptions(selector=SelectorPolicy.fixed()))
        tstats = factorize_threaded(
            bm2, dag2, NumericOptions(selector=SelectorPolicy.fixed()),
            n_workers=4,
        )
        assert tstats.planned_tasks > 0
        np.testing.assert_allclose(
            bm2.to_csc().to_dense(), bm1.to_csc().to_dense(), atol=1e-9
        )

    def test_partial_factorize_planned_bit_identical(self):
        from repro.core import partial_factorize

        _, bm1, dag1 = _prepared(seed=6)
        _, bm2, dag2 = _prepared(seed=6)
        kb = bm1.nb // 2
        s1 = partial_factorize(
            bm1, dag1, kb, NumericOptions(selector=SelectorPolicy.fixed())
        )
        partial_factorize(
            bm2, dag2, kb,
            NumericOptions(selector=SelectorPolicy.fixed(), use_plans=False),
        )
        assert s1.planned_tasks > 0
        assert np.array_equal(
            bm1.to_csc().to_dense(), bm2.to_csc().to_dense()
        )
