"""Tests for the batched (aggregated) panel kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    GESSM_VARIANTS,
    GETRF_VARIANTS,
    TSTRF_VARIANTS,
    Workspace,
    gessm_batched,
    tstrf_batched,
)
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


@pytest.fixture
def panel_setup():
    """A factored diagonal block plus three U-side and three L-side blocks
    with fill-closed patterns (cut from one symbolic factorisation)."""
    n, h = 96, 32
    a = random_sparse(n, 0.07, seed=21)
    f = symbolic_symmetric(a).filled
    ws = Workspace()
    diag = f.extract_submatrix(np.arange(h), range(h))
    GETRF_VARIANTS["C_V1"](diag, ws)
    u_blocks = [
        f.extract_submatrix(np.arange(h), range(h + i * 20, h + (i + 1) * 20))
        for i in range(3)
    ]
    l_blocks = [
        f.extract_submatrix(np.arange(h + i * 20, h + (i + 1) * 20), range(h))
        for i in range(3)
    ]
    return diag, u_blocks, l_blocks, ws


@pytest.mark.parametrize("version", ["G_V3", "C_V2", "G_V1"])
def test_gessm_batched_matches_per_block(panel_setup, version):
    diag, u_blocks, _, ws = panel_setup
    batched = [b.copy() for b in u_blocks]
    gessm_batched(diag, batched, ws, version=version)
    for ref, got in zip(u_blocks, batched):
        single = ref.copy()
        GESSM_VARIANTS["C_V2"](diag, single, ws)
        np.testing.assert_allclose(got.to_dense(), single.to_dense(), atol=1e-10)


@pytest.mark.parametrize("version", ["G_V3", "C_V2", "G_V1"])
def test_tstrf_batched_matches_per_block(panel_setup, version):
    diag, _, l_blocks, ws = panel_setup
    batched = [b.copy() for b in l_blocks]
    tstrf_batched(diag, batched, ws, version=version)
    for ref, got in zip(l_blocks, batched):
        single = ref.copy()
        TSTRF_VARIANTS["C_V2"](diag, single, ws)
        np.testing.assert_allclose(got.to_dense(), single.to_dense(), atol=1e-9)


def test_empty_batch_noop(panel_setup):
    diag, _, _, ws = panel_setup
    gessm_batched(diag, [], ws)
    tstrf_batched(diag, [], ws)


def test_single_block_batch(panel_setup):
    diag, u_blocks, _, ws = panel_setup
    one = [u_blocks[0].copy()]
    gessm_batched(diag, one, ws, version="G_V3")
    ref = u_blocks[0].copy()
    GESSM_VARIANTS["G_V3"](diag, ref, ws)
    np.testing.assert_allclose(one[0].to_dense(), ref.to_dense(), atol=1e-10)
