"""Cross-validation against SciPy's SuperLU on every paper analogue.

The strongest end-to-end check available offline: for each of the 16
matrices, the PanguLU pipeline (own MC64, own ordering, own symbolic, own
kernels) must produce solutions as accurate as `scipy.sparse.linalg.splu`
(a production sparse LU) on the same systems.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro import PanguLU
from repro.baseline import SuperLUBaseline
from repro.sparse import generate, paper_matrix_names


@pytest.mark.parametrize("name", paper_matrix_names())
def test_matches_scipy_splu(name):
    a = generate(name, scale=0.08, seed=1)
    b = np.sin(np.arange(a.nrows, dtype=np.float64))
    x_ref = spla.splu(a.to_scipy().tocsc()).solve(b)
    x_pg = PanguLU(a).solve(b)
    # compare solution accuracy, not the vectors themselves (conditioning
    # may amplify representation differences)
    d = a.to_dense()
    res_ref = np.linalg.norm(d @ x_ref - b)
    res_pg = np.linalg.norm(d @ x_pg - b)
    assert res_pg <= max(10 * res_ref, 1e-9 * np.linalg.norm(b)), name


@pytest.mark.parametrize("name", ["ASIC_680k", "cage12", "Si87H76"])
def test_baseline_matches_scipy_splu(name):
    a = generate(name, scale=0.08, seed=1)
    b = np.ones(a.nrows)
    x_ref = spla.splu(a.to_scipy().tocsc()).solve(b)
    x_bl = SuperLUBaseline(a).solve(b)
    d = a.to_dense()
    res_ref = np.linalg.norm(d @ x_ref - b)
    res_bl = np.linalg.norm(d @ x_bl - b)
    assert res_bl <= max(10 * res_ref, 1e-9 * np.linalg.norm(b)), name


@pytest.mark.parametrize("name", paper_matrix_names())
def test_fill_not_absurd_vs_scipy(name):
    """Our ND+symmetric-pruned fill should be within a sane factor of
    SuperLU's COLAMD-ordered fill — a regression guard on ordering
    quality."""
    a = generate(name, scale=0.08, seed=1)
    lu = spla.splu(a.to_scipy().tocsc())
    scipy_fill = lu.L.nnz + lu.U.nnz
    s = PanguLU(a)
    s.symbolic_factorize()
    assert s.symbolic.nnz_lu < 6 * scipy_fill, (
        f"{name}: fill {s.symbolic.nnz_lu} vs scipy {scipy_fill}"
    )
