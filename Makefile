.PHONY: check lint analyze test bench-tier2

check:
	sh scripts/check.sh

# the project-specific AST lint needs only the stdlib, so it always runs;
# ruff adds the generic rules wherever it is installed
lint:
	PYTHONPATH=src python -m repro.devtools.lint src
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; generic lint skipped"; \
	fi

# whole-program flow analyses (lock-order, dtype-flow, payload-escape)
# plus the per-module rules; gates on zero findings beyond the committed
# baseline and leaves a SARIF report for CI annotation
analyze:
	PYTHONPATH=src python -m repro.devtools.lint src --flow \
		--baseline analysis-baseline.json --sarif analysis.sarif

test:
	PYTHONPATH=src python -m pytest -x -q

# regenerate BENCH_kernels.json (stamped with git SHA + timestamp +
# matrix set); absolute numbers are machine-dependent — the ratios are
# what reviews look at
bench-tier2:
	python benchmarks/run_tier2.py
