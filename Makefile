.PHONY: check lint test

check:
	sh scripts/check.sh

lint:
	ruff check src tests benchmarks examples

test:
	PYTHONPATH=src python -m pytest -x -q
