#!/usr/bin/env python
"""Distributed strong-scaling study on the simulated GPU clusters.

Reproduces the shape of the paper's Fig. 12 for one matrix: numeric-
factorisation throughput (GFLOP/s) of PanguLU vs the SuperLU_DIST-role
baseline on 1–128 simulated A100 and MI50 GPUs.  The task DAGs are
extracted from the real factorisation structure; per-task times come from
the calibrated platform cost models.

Run:  python examples/distributed_scaling.py [matrix] [scale]
e.g.  python examples/distributed_scaling.py Si87H76 0.5
"""

from __future__ import annotations

import sys

from repro import PanguLU
from repro.analysis import format_table
from repro.baseline import SuperLUBaseline, build_sn_dag, simulate_superlu
from repro.runtime import A100_PLATFORM, MI50_PLATFORM, simulate_pangulu
from repro.sparse import generate

PROC_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Si87H76"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.45
    a = generate(name, scale=scale)
    print(f"matrix: {name} analogue, n = {a.nrows}, nnz = {a.nnz}")

    pg = PanguLU(a)
    pg.preprocess()
    useful_flops = pg.dag.total_flops
    print(f"PanguLU: {pg.blocks.nb}×{pg.blocks.nb} blocks of {pg.blocks.bs}, "
          f"{len(pg.dag)} tasks, {useful_flops:,} structural FLOPs")

    bl = SuperLUBaseline(a)
    bl.preprocess()
    sn_dag = build_sn_dag(bl.panels, bl.partition)
    print(f"baseline: {bl.partition.n_supernodes} supernodes, "
          f"padding ratio {bl.partition.padding_ratio:.2f}, "
          f"{sn_dag.total_dense_flops:,.0f} dense FLOPs")

    rows = []
    for p in PROC_COUNTS:
        row: list[object] = [p]
        for platform in (A100_PLATFORM, MI50_PLATFORM):
            sim = simulate_pangulu(pg.blocks, pg.dag, platform, p)
            res_bl, _ = simulate_superlu(
                bl.panels, bl.partition, platform, p, dag=sn_dag
            )
            row += [sim.gflops, res_bl.gflops(useful_flops)]
        rows.append(row)

    print()
    print(format_table(
        ["procs", "PanguLU A100", "SuperLU A100", "PanguLU MI50", "SuperLU MI50"],
        rows,
    ))
    base = rows[0][1]
    peak = max(r[1] for r in rows)
    print(f"\nPanguLU A100 scales {peak / base:.1f}× from 1 GPU to its best "
          f"configuration (paper: up to 47.5× on 128 A100s at full scale)")


if __name__ == "__main__":
    main()
