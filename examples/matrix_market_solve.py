#!/usr/bin/env python
"""Solve ``A x = b`` for a Matrix Market file — PanguLU's artifact workflow.

The original PanguLU distribution accepts ``.mtx`` files downloaded from
the SuiteSparse collection.  This example does the same: point it at any
real/integer/pattern Matrix Market file (optionally gzipped) and it runs
the full pipeline against a right-hand side of ones, comparing PanguLU
with the supernodal baseline.

With no argument it writes the CoupCons3D analogue to a temporary file
first, so the example is runnable offline.

Run:  python examples/matrix_market_solve.py [path/to/matrix.mtx]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import PanguLU
from repro.baseline import SuperLUBaseline
from repro.sparse import generate, read_matrix_market, write_matrix_market


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "coupcons3d_analogue.mtx"
        write_matrix_market(path, generate("CoupCons3D", scale=0.2),
                            comment="CoupCons3D analogue (repro demo)")
        print(f"no input given — wrote demo matrix to {path}")

    a = read_matrix_market(path)
    print(f"loaded {path.name}: {a.nrows}×{a.ncols}, nnz = {a.nnz}")
    if a.nrows != a.ncols:
        raise SystemExit("need a square matrix")

    b = np.ones(a.nrows)
    for label, solver_cls in (("PanguLU", PanguLU), ("baseline", SuperLUBaseline)):
        solver = solver_cls(a)
        x = solver.solve(b)
        total = sum(solver.phase_seconds.values())
        print(f"{label:>9s}: residual {solver.residual_norm(x, b):.2e}, "
              f"total {total:.3f} s "
              f"(numeric {solver.phase_seconds['numeric']:.3f} s, "
              f"symbolic {solver.phase_seconds['symbolic']:.3f} s)")


if __name__ == "__main__":
    main()
