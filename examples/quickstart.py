#!/usr/bin/env python
"""Quickstart: solve a sparse linear system with PanguLU.

Generates the ecology1 analogue (a 2D grid Laplacian, one of the paper's
16 test matrices), runs the full five-phase pipeline, reports per-phase
times and the solution residual, and then repeats the numeric
factorisation through the engine registry with the real threaded
synchronisation-free executor — recording a Chrome trace of the actual
run (open ``quickstart_trace.json`` in chrome://tracing or Perfetto).

Run:  python examples/quickstart.py [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import PanguLU, SolverOptions
from repro.runtime import available_engines, write_recorder_trace
from repro.sparse import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    a = generate("ecology1", scale=scale)
    print(f"matrix: ecology1 analogue, n = {a.nrows}, nnz = {a.nnz}")

    solver = PanguLU(a, SolverOptions(ordering="nd"))
    b = np.ones(a.nrows)
    x = solver.solve(b)

    print(f"relative residual ‖Ax − b‖/‖b‖ = {solver.residual_norm(x, b):.3e}")
    print(f"LU product error               = {solver.lu_product_error():.3e}")
    print("phase times (s):")
    for phase, seconds in solver.phase_seconds.items():
        print(f"  {phase:<12s} {seconds:8.4f}")
    stats = solver.numeric_stats
    print(f"tasks executed: {stats.tasks_executed}, "
          f"structural FLOPs: {stats.flops_total:,}")
    print("kernel versions used:",
          dict(sorted(stats.version_histogram().items())))

    # run the numeric phase again, for real, through the engine registry
    # with 4 worker threads, recording scheduler events as we go
    print(f"available engines: {available_engines()}")
    fresh = PanguLU(a, SolverOptions(
        ordering="nd", engine="threaded", n_workers=4, trace_events=True,
    ))
    fresh.factorize()
    lu_seq = solver.blocks.to_csc()
    lu_thr = fresh.blocks.to_csc()
    diff = float(np.abs(lu_seq.to_dense() - lu_thr.to_dense()).max())
    print(f"threaded executor: {fresh.numeric_stats.tasks_executed} tasks on "
          f"4 workers, max |seq − thr| = {diff:.2e}")
    write_recorder_trace("quickstart_trace.json", fresh.recorder)
    print(f"chrome trace of the real threaded run "
          f"({len(fresh.recorder)} events) → quickstart_trace.json")


if __name__ == "__main__":
    main()
