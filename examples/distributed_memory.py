#!/usr/bin/env python
"""Distributed-memory factorisation with real OS processes.

Runs PanguLU's synchronisation-free protocol the way the paper's MPI
version does: each rank owns its 2D block-cyclic shard of the matrix,
factors its own blocks, and receives the operand blocks it needs as
messages from their owners — no shared memory, no barriers.  The result
is compared entry-for-entry against a sequential factorisation, and the
message statistics show the communication the protocol actually needs.
The same protocol then runs over the in-process loopback transport —
the deterministic, fault-injectable substrate the test suite uses — to
show that the engine is transport-agnostic.

Run:  python examples/distributed_memory.py [nprocs] [scale]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import PanguLU
from repro.core import factorize
from repro.runtime import LoopbackTransport, factorize_distributed
from repro.sparse import generate


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    a = generate("nlpkkt80", scale=scale)
    print(f"matrix: nlpkkt80 analogue, n = {a.nrows}, nnz = {a.nnz}")

    seq = PanguLU(a)
    seq.preprocess()
    t0 = time.perf_counter()
    factorize(seq.blocks, seq.dag)
    t_seq = time.perf_counter() - t0
    print(f"sequential factorisation: {t_seq:.3f} s, {len(seq.dag)} tasks")

    dist = PanguLU(a)
    dist.preprocess()
    t0 = time.perf_counter()
    stats = factorize_distributed(dist.blocks, dist.dag, nprocs)
    t_dist = time.perf_counter() - t0
    print(f"distributed on {nprocs} processes: {t_dist:.3f} s")
    print(f"  tasks per rank : {stats.tasks_per_proc}")
    print(f"  block messages : {stats.messages_sent} "
          f"({stats.block_bytes_sent / 1024:.1f} KiB of factor blocks)")

    diff = float(np.abs(
        dist.blocks.to_csc().to_dense() - seq.blocks.to_csc().to_dense()
    ).max())
    print(f"max |distributed − sequential| = {diff:.2e}")
    print("(Python ranks pay pickling costs MPI ranks do not — this example "
          "demonstrates protocol correctness, not speedup)")

    loop = PanguLU(a)
    loop.preprocess()
    t0 = time.perf_counter()
    lstats = factorize_distributed(
        loop.blocks, loop.dag, nprocs, transport=LoopbackTransport()
    )
    t_loop = time.perf_counter() - t0
    ldiff = float(np.abs(
        loop.blocks.to_csc().to_dense() - seq.blocks.to_csc().to_dense()
    ).max())
    print(f"loopback transport (threads, same protocol): {t_loop:.3f} s, "
          f"{lstats.messages_sent} messages, "
          f"max |loopback − sequential| = {ldiff:.2e}")


if __name__ == "__main__":
    main()
