#!/usr/bin/env python
"""Trace the synchronisation-free array through a factorisation (Figs. 9/10).

The paper's scheduling state is one counter per stored block: the number
of GESSM/TSTRF/SSSSM operations the block still has to receive.  A
diagonal block at 0 may run GETRF (and drops to −1, releasing its block
row and column); an off-diagonal block at 0 may run its panel solve once
the diagonal is done.  This example factorises a small matrix while
printing the array after every elimination step, then shows the simulated
event timeline of the first tasks on a 4-process grid — the mechanics of
the paper's Fig. 10 walkthrough.

Run:  python examples/syncfree_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import PanguLU, SolverOptions
from repro.core import TaskType, sync_free_array
from repro.runtime import A100_PLATFORM, simulate_pangulu
from repro.sparse import random_sparse


def render_array(nb: int, counts: dict[tuple[int, int], int]) -> str:
    rows = []
    for bi in range(nb):
        cells = []
        for bj in range(nb):
            v = counts.get((bi, bj))
            cells.append(" . " if v is None else f"{v:3d}")
        rows.append(" ".join(cells))
    return "\n".join(rows)


def main() -> None:
    a = random_sparse(48, 0.08, seed=5)
    solver = PanguLU(a, SolverOptions(block_size=8))
    solver.preprocess()
    f, dag = solver.blocks, solver.dag

    counts = sync_free_array(dag, f.nb)
    print(f"block grid {f.nb}×{f.nb}; initial synchronisation-free array")
    print("(value = SSSSM updates the block still needs; '.' = block absent):\n")
    print(render_array(f.nb, counts))

    # replay the DAG in elimination-step order, updating the array the way
    # Fig. 10's processes do on completion of each Schur update
    print("\narray after each elimination step:")
    by_step: dict[int, list] = {}
    for t in dag.tasks:
        by_step.setdefault(t.k, []).append(t)
    for k in sorted(by_step):
        for t in by_step[k]:
            if t.ttype == TaskType.SSSSM:
                counts[(t.bi, t.bj)] -= 1
        ready = sorted(
            (b for b, v in counts.items() if v == 0 and b[0] >= k and b[1] >= k)
        )
        print(f"\nafter step {k}: {len(ready)} blocks at 0 "
              f"(runnable panels next): {ready[:8]}{'…' if len(ready) > 8 else ''}")
        print(render_array(f.nb, counts))

    # the same DAG through the event simulator: the first 12 task firings
    sim = simulate_pangulu(f, dag, A100_PLATFORM, 4)
    order = np.argsort(sim.result.start_times)
    print("\nsimulated timeline on 4 processes (first 12 task starts):")
    print(f"{'t (µs)':>8s}  {'proc':>4s}  task")
    for tid in order[:12]:
        t = dag.tasks[int(tid)]
        print(f"{sim.result.start_times[tid] * 1e6:8.2f}  "
              f"{int(sim.assignment[tid]):4d}  "
              f"{t.ttype.name}(k={t.k}, target=({t.bi},{t.bj}))")
    print(f"\nmakespan {sim.result.makespan * 1e6:.1f} µs, "
          f"mean sync {sim.result.mean_sync * 1e6:.1f} µs, "
          f"{sim.result.messages} messages")

    # Gantt comparison: sync-free vs level-set barriers
    from repro.analysis import render_gantt

    kinds = np.asarray([int(t.ttype) for t in dag.tasks])
    for schedule in ("syncfree", "levelset"):
        run = simulate_pangulu(f, dag, A100_PLATFORM, 4, schedule=schedule)
        print(f"\n{schedule} schedule "
              f"(makespan {run.result.makespan * 1e6:.1f} µs):")
        print(render_gantt(run.result, run.assignment, kinds=kinds, width=64))


if __name__ == "__main__":
    main()
