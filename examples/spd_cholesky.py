#!/usr/bin/env python
"""SPD systems: block Cholesky vs block LU on the same layout.

For symmetric positive definite matrices (the FEM and grid analogues in
the paper's test set are SPD) the regular 2D layout supports ``A = L·Lᵀ``
at half the storage and FLOPs of LU.  This example factors the audikw_1
analogue both ways, compares work/storage/accuracy, and checks the two
solvers agree.

Run:  python examples/spd_cholesky.py [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import PanguLU
from repro.cholesky import PanguLLt
from repro.core import memory_report
from repro.sparse import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    a = generate("audikw_1", scale=scale)
    print(f"matrix: audikw_1 analogue (SPD FEM), n = {a.nrows}, nnz = {a.nnz}")
    b = np.ones(a.nrows)

    chol = PanguLLt(a)
    x_c = chol.solve(b)
    lu = PanguLU(a)
    x_l = lu.solve(b)

    rep_c = memory_report(chol.blocks)
    rep_l = memory_report(lu.blocks)
    print(f"Cholesky: residual {chol.residual_norm(x_c, b):.2e}, "
          f"factor error {chol.factor_error():.2e}, "
          f"{chol.flops:,} Schur FLOPs, {rep_c.total_bytes / 1024:.1f} KiB")
    print(f"LU      : residual {lu.residual_norm(x_l, b):.2e}, "
          f"{lu.dag.total_flops:,} structural FLOPs, "
          f"{rep_l.total_bytes / 1024:.1f} KiB")
    print(f"LU/Cholesky storage ratio: {rep_l.total_bytes / rep_c.total_bytes:.2f}x "
          "(theory ≈ 2x)")
    print(f"solutions agree to {np.abs(x_c - x_l).max():.2e}")


if __name__ == "__main__":
    main()
