#!/usr/bin/env python
"""Explore the 17 sparse kernels and the decision-tree selector.

Builds diagonal/panel/Schur blocks of increasing density from real
symbolic fill, wall-clock-times every kernel variant on each (a miniature
of the paper's Fig. 7 sweep), and shows which variant the decision trees
pick — the mechanism behind the "Kernel selection" bar of Fig. 14.

Run:  python examples/kernel_playground.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.kernels import (
    GESSM_VARIANTS,
    GETRF_VARIANTS,
    SSSSM_VARIANTS,
    TSTRF_VARIANTS,
    KernelType,
    SelectorPolicy,
    TaskFeatures,
    Workspace,
    ssssm_flops_structural,
)
from repro.sparse import random_sparse
from repro.symbolic import symbolic_symmetric


def blocks_at_density(density: float, n: int = 96, seed: int = 0):
    a = random_sparse(n, density, seed=seed)
    f = symbolic_symmetric(a).filled
    half = n // 2
    top, bot = np.arange(half), np.arange(half, n)
    return (
        f.extract_submatrix(top, range(half)),
        f.extract_submatrix(top, range(half, n)),
        f.extract_submatrix(bot, range(half)),
        f.extract_submatrix(bot, range(half, n)),
    )


def time_kernel(fn, *args, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        fresh = [a.copy() if hasattr(a, "copy") else a for a in args[:-1]]
        t0 = time.perf_counter()
        fn(*fresh, args[-1])
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    ws = Workspace()
    policy = SelectorPolicy.default()
    densities = [0.02, 0.05, 0.12, 0.25]

    for label, variants, which in (
        ("GETRF", GETRF_VARIANTS, "diag"),
        ("GESSM", GESSM_VARIANTS, "panel"),
        ("TSTRF", TSTRF_VARIANTS, "panel"),
        ("SSSSM", SSSSM_VARIANTS, "schur"),
    ):
        rows = []
        for dens in densities:
            d, b, r, c = blocks_at_density(dens)
            dfac = d.copy()
            GETRF_VARIANTS["C_V1"](dfac, ws)
            row: list[object] = [f"{dens:.2f}"]
            times = {}
            for vname, fn in variants.items():
                if label == "GETRF":
                    t = time_kernel(lambda blk, w: fn(blk, w), d, ws)
                    feats = TaskFeatures(nnz_a=d.nnz, n=d.ncols, density=d.density)
                elif label == "GESSM":
                    t = time_kernel(lambda blk, w: fn(dfac, blk, w), b, ws)
                    feats = TaskFeatures(
                        nnz_a=dfac.nnz, nnz_b=b.nnz, n=d.ncols, density=b.density
                    )
                elif label == "TSTRF":
                    t = time_kernel(lambda blk, w: fn(dfac, blk, w), r, ws)
                    feats = TaskFeatures(
                        nnz_a=dfac.nnz, nnz_b=r.nnz, n=d.ncols, density=r.density
                    )
                else:
                    t = time_kernel(lambda blk, w: fn(blk, r, b, w), c, ws)
                    feats = TaskFeatures(
                        nnz_a=r.nnz,
                        nnz_b=b.nnz,
                        flops=ssssm_flops_structural(r, b),
                        density=c.density,
                    )
                times[vname] = t
                row.append(t * 1e3)
            chosen = policy.select(KernelType[label], feats)
            fastest = min(times, key=times.get)
            row += [chosen, fastest]
            rows.append(row)
        headers = ["density"] + [f"{v} (ms)" for v in variants] + ["tree picks", "fastest"]
        print(f"\n=== {label} ===")
        print(format_table(headers, rows, float_fmt="{:.3f}"))


if __name__ == "__main__":
    main()
