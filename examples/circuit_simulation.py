#!/usr/bin/env python
"""Circuit simulation workload: repeated solves with a fixed pattern.

Sparse direct solvers in SPICE-class circuit simulators factorise the
same sparsity pattern thousands of times with changing values (Newton
iterations, time steps).  This is the workload the paper's introduction
motivates with KLU/NICSLU/GLU, and the reason PanguLU separates the
(expensive, once) symbolic phase from the (repeated) numeric phase.

This example builds the ASIC_680k analogue — an irregular circuit matrix
with near-dense power rails, the structure on which the paper reports its
largest win (11.70×) — and runs a damped Newton-style loop: each
iteration perturbs the device stamps and calls ``refactorize``, reusing
ordering, fill pattern, blocking, DAG and mapping.

Run:  python examples/circuit_simulation.py
"""

from __future__ import annotations

import time

import numpy as np

import sys

from repro import PanguLU
from repro.sparse import generate


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.35
    a = generate("ASIC_680k", scale=scale, seed=1)
    n = a.nrows
    print(f"circuit matrix: n = {n}, nnz = {a.nnz} "
          f"(irregular: max column degree {int(np.diff(a.indptr).max())})")

    solver = PanguLU(a)
    b = np.zeros(n)
    b[0] = 1.0  # current injection at net 0

    t0 = time.perf_counter()
    x = solver.solve(b)
    t_first = time.perf_counter() - t0
    print(f"initial factor+solve: {t_first:.3f} s, "
          f"residual {solver.residual_norm(x, b):.2e}")
    print("  one-time phases: "
          + ", ".join(f"{k}={v:.3f}s" for k, v in solver.phase_seconds.items()))

    rng = np.random.default_rng(0)
    newton_times = []
    for it in range(5):
        # nonlinear device stamps change values, never the pattern
        a_it = a.copy()
        a_it.data = a.data * (1.0 + 0.05 * rng.standard_normal(a.nnz))
        t0 = time.perf_counter()
        solver.refactorize(a_it)
        x = solver.solve(b)
        dt = time.perf_counter() - t0
        newton_times.append(dt)
        print(f"  newton iter {it}: refactorize+solve {dt:.3f} s, "
              f"residual {solver.residual_norm(x, b):.2e}")

    print(f"amortised iteration time {np.mean(newton_times):.3f} s vs "
          f"{t_first:.3f} s cold start — the symbolic/preprocess phases "
          "are paid once, as in SPICE workloads")


if __name__ == "__main__":
    main()
