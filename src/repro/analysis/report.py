"""Reporting helpers shared by the benchmark harness.

Plain-text table rendering (the benches print the same rows the paper's
tables/figures report) and the geometric-mean speedup aggregation the
paper uses throughout its evaluation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["geometric_mean", "format_table", "speedup_summary"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups).

    >>> geometric_mean([2.0, 8.0])
    4.0
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned plain-text table."""
    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def speedup_summary(speedups: dict[str, float]) -> str:
    """One-line summary: geometric mean and range, paper style."""
    vals = list(speedups.values())
    gm = geometric_mean(vals)
    return (
        f"geomean {gm:.2f}x, range {min(vals):.2f}x – {max(vals):.2f}x "
        f"over {len(vals)} matrices"
    )
