"""Experiment analysis helpers: GEMM density histograms (Fig. 4) and
report formatting/aggregation used by the benchmark harness."""

from .density import DENSITY_BIN_LABELS, gemm_density_histogram
from .gantt import render_gantt
from .report import format_table, geometric_mean, speedup_summary

__all__ = [
    "gemm_density_histogram",
    "DENSITY_BIN_LABELS",
    "geometric_mean",
    "render_gantt",
    "format_table",
    "speedup_summary",
]
