"""Density-distribution analysis of GEMM operands (Fig. 4).

The paper motivates sparse block kernels by histogramming the density of
the matrices SuperLU_DIST feeds to dense GEMM: circuit matrices sit in
the [0, 10)% bin, FEM matrices in [90, 100)%, and CoupCons3D spreads out.
:func:`gemm_density_histogram` computes those distributions from the
baseline's recorded GEMM operands.
"""

from __future__ import annotations

import numpy as np

from ..baseline.supernodal import GEMMRecord

__all__ = ["gemm_density_histogram", "DENSITY_BIN_LABELS"]

DENSITY_BIN_LABELS = [
    "[0,10)", "[10,20)", "[20,30)", "[30,40)", "[40,50)",
    "[50,60)", "[60,70)", "[70,80)", "[80,90)", "[90,100]",
]


def gemm_density_histogram(gemms: list[GEMMRecord]) -> dict[str, np.ndarray]:
    """Per-operand density histograms in percent-of-GEMMs.

    Returns ``{"A": …, "B": …, "C": …}``, each a length-10 array whose
    entries are the percentage of GEMMs whose operand density falls in the
    corresponding 10 %-wide bin (Fig. 4's y-axis).
    """
    if not gemms:
        z = np.zeros(10)
        return {"A": z.copy(), "B": z.copy(), "C": z.copy()}
    edges = np.linspace(0.0, 1.0, 11)
    edges[-1] = 1.0 + 1e-12  # include density exactly 1.0 in the last bin
    out: dict[str, np.ndarray] = {}
    for key, attr in (("A", "density_a"), ("B", "density_b"), ("C", "density_c")):
        vals = np.asarray([getattr(g, attr) for g in gemms])
        hist, _ = np.histogram(vals, bins=edges)
        out[key] = 100.0 * hist / len(gemms)
    return out
