"""ASCII Gantt rendering of simulated schedules.

Turns a :class:`~repro.runtime.simulator.SimResult` into a per-process
timeline (one row per process, one glyph per time bucket) so schedule
differences — barrier gaps under level-set vs dense packing under
sync-free — are visible in a terminal, without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

from ..runtime.simulator import SimResult

__all__ = ["render_gantt"]

#: glyph per task-kind index (cycles if there are more kinds)
_GLYPHS = "FLUS*+#@"


def render_gantt(
    result: SimResult,
    owner: np.ndarray,
    *,
    kinds: np.ndarray | None = None,
    width: int = 72,
    max_procs: int = 16,
) -> str:
    """Render the schedule as text.

    Parameters
    ----------
    result:
        Simulation outcome (start/end times per task).
    owner:
        Process of each task.
    kinds:
        Optional small-integer task-kind array selecting the glyph
        (e.g. ``TaskType`` values); tasks without kinds all render ``#``.
    width:
        Characters per timeline.
    max_procs:
        Rows to render (processes beyond this are summarised).

    Busy buckets show the glyph of the task covering the bucket's midpoint
    (ties: the task that started last); idle buckets show ``·``.
    """
    nprocs = int(owner.max()) + 1 if owner.size else 0
    makespan = result.makespan or 1.0
    edges = np.linspace(0.0, makespan, width + 1)
    mids = (edges[:-1] + edges[1:]) / 2.0
    lines = []
    shown = min(nprocs, max_procs)
    for p in range(shown):
        mine = np.flatnonzero(owner == p)
        row = ["·"] * width
        for t in mine:
            s, e = result.start_times[t], result.end_times[t]
            cover = (mids >= s) & (mids < e)
            glyph = (
                _GLYPHS[int(kinds[t]) % len(_GLYPHS)] if kinds is not None else "#"
            )
            for b in np.flatnonzero(cover):
                row[b] = glyph
        busy_pct = 100.0 * result.busy_seconds[p] / makespan
        lines.append(f"p{p:<3d} |{''.join(row)}| {busy_pct:5.1f}% busy")
    if nprocs > shown:
        lines.append(f"… {nprocs - shown} more processes not shown")
    lines.append(
        f"time 0 … {makespan * 1e3:.3f} ms   "
        f"(glyphs: task kinds, '·' idle)"
    )
    return "\n".join(lines)
