"""repro — a from-scratch reproduction of PanguLU (SC '23).

PanguLU is a distributed sparse direct solver built on regular 2D
block-cyclic layout, block-wise *sparse* BLAS with decision-tree kernel
selection, and synchronisation-free scheduling.  This package implements
the solver and every substrate it depends on in pure Python/NumPy/SciPy:

* :mod:`repro.sparse`   — CSC containers, Matrix Market I/O, synthetic
  analogues of the paper's 16 SuiteSparse matrices;
* :mod:`repro.ordering` — MC64 matchings/scaling, AMD, nested dissection;
* :mod:`repro.symbolic` — elimination trees, symmetric-pruned fill,
  Gilbert–Peierls fill;
* :mod:`repro.kernels`  — the 17 sparse kernel variants of Table 1 plus
  the Fig. 8 decision-tree selector;
* :mod:`repro.core`     — blocking, mapping/load-balancing, the task DAG,
  the numeric driver, triangular solves, and the :class:`PanguLU` facade;
* :mod:`repro.runtime`  — calibrated A100/MI50 platform models, the
  discrete-event distributed simulator, and a real threaded
  synchronisation-free executor;
* :mod:`repro.baseline` — a SuperLU_DIST-role supernodal dense-panel
  solver used as the comparator in every experiment;
* :mod:`repro.analysis` — experiment aggregation helpers.

Quickstart::

    import numpy as np
    from repro import PanguLU
    from repro.sparse import generate

    a = generate("ecology1", scale=0.3)
    solver = PanguLU(a)
    x = solver.solve(np.ones(a.nrows))
    assert solver.residual_norm(x, np.ones(a.nrows)) < 1e-10
"""

from .core.solver import Factorization, PanguLU, RefinementStalled, SolverOptions

__version__ = "1.0.0"

__all__ = [
    "Factorization",
    "PanguLU",
    "RefinementStalled",
    "SolverOptions",
    "__version__",
]
