"""Command-line interface: ``python -m repro <command>``.

Mirrors the PanguLU artifact's workflow (feed a Matrix Market file to the
solver binary) plus conveniences for this reproduction:

``solve``     run the full pipeline on a ``.mtx`` file (or a named
              synthetic analogue) and report residual + phase times;
``info``      matrix statistics and symbolic-fill summary;
``generate``  write a synthetic analogue of a paper matrix to ``.mtx``;
``simulate``  simulated strong-scaling study on the modelled clusters.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import PanguLU, SolverOptions
from .analysis import format_table
from .sparse import (
    generate,
    paper_matrix_names,
    read_matrix_market,
    write_matrix_market,
)


def _load(spec: str, scale: float):
    """A matrix from a file path or the name of a paper analogue."""
    if spec in paper_matrix_names():
        return generate(spec, scale=scale)
    return read_matrix_market(spec)


def _cmd_solve(args: argparse.Namespace) -> int:
    a = _load(args.matrix, args.scale)
    if a.nrows != a.ncols:
        print("error: need a square matrix", file=sys.stderr)
        return 2
    if args.engine == "distributed":
        nprocs = args.ranks or max(1, args.workers)
    elif args.engine == "hybrid":
        nprocs = args.ranks or 2
    else:
        nprocs = 1
    solver = PanguLU(
        a, SolverOptions(
            ordering=args.ordering,
            blocking=args.blocking,
            n_workers=args.workers,
            nprocs=nprocs,
            engine=args.engine,
            placement=args.placement,
            factor_dtype=args.dtype,
            trace_events=bool(args.trace),
            validate_concurrency=bool(args.check),
            verify_schedule=bool(args.verify),
        )
    )
    rng = np.random.default_rng(0)
    b = np.ones(a.nrows) if args.rhs == "ones" else rng.standard_normal(a.nrows)
    x = solver.solve(b)
    blocks = solver.blocks
    if args.verify:
        from .core.verify import verify_dag

        print(verify_dag(solver.dag))
    if blocks.is_regular:
        shape = f"of {blocks.bs}"
    else:
        widths = np.diff(blocks.boundaries)
        shape = f"of {int(widths.min())}..{int(widths.max())} ({args.blocking})"
    print(f"n = {a.nrows}, nnz = {a.nnz}, "
          f"nnz(L+U) = {solver.symbolic.nnz_lu}, "
          f"blocks = {blocks.nb}×{blocks.nb} {shape}")
    print(f"engine = {solver.options.resolved_engine()}, "
          f"factor dtype = {solver.blocks.dtype}, "
          f"relative residual = {solver.residual_norm(x, b):.3e}")
    fact = solver.factorize()
    if fact.last_tsolve_stats is not None:
        ts = fact.last_tsolve_stats
        print(f"solve: {solver.solve_count} call(s), last "
              f"{solver.last_solve_seconds:.4f} s "
              f"({ts.tasks_executed} solve tasks via {ts.engine})")
    for phase, seconds in solver.phase_seconds.items():
        print(f"  {phase:<12s} {seconds:8.4f} s")
    if args.trace:
        from .runtime import write_recorder_trace

        write_recorder_trace(args.trace, solver.recorder)
        print(f"chrome trace of the real run written to {args.trace}")
    if args.output:
        np.savetxt(args.output, x)
        print(f"solution written to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    a = _load(args.matrix, args.scale)
    from .sparse import bandwidth, is_structurally_symmetric

    print(f"shape     : {a.nrows} × {a.ncols}")
    print(f"nnz       : {a.nnz}  (density {a.density:.5f})")
    print(f"symmetric : {is_structurally_symmetric(a)} (structurally)")
    print(f"bandwidth : {bandwidth(a)}")
    if args.symbolic and a.nrows == a.ncols:
        solver = PanguLU(a)
        sym = solver.symbolic_factorize()
        print(f"nnz(L+U)  : {sym.nnz_lu}  (fill ratio {sym.fill_ratio:.2f}, "
              f"after MC64 + {solver.options.ordering} ordering)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    a = generate(args.name, scale=args.scale, seed=args.seed)
    write_matrix_market(args.output, a,
                        comment=f"analogue of {args.name}, scale={args.scale}")
    print(f"wrote {args.name} analogue (n={a.nrows}, nnz={a.nnz}) to {args.output}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    a = _load(args.matrix, args.scale)
    solver = PanguLU(a, SolverOptions(blocking=args.blocking))
    est = solver.estimate(proc_counts=tuple(args.procs))
    print(f"n = {est['n']}, nnz = {est['nnz']}, nnz(L+U) = {est['nnz_lu']} "
          f"(fill {est['fill_ratio']:.2f}x)")
    print(f"flops = {est['flops']:,}, tasks = {est['tasks']}, "
          f"blocks {est['block_grid']}×{est['block_grid']} of {est['block_size']}"
          f" ({est['blocking']})")
    print(f"factor storage = {est['factor_bytes'] / 1024:.1f} KiB")
    rows = [
        [plat, p, v["seconds"] * 1e3, v["gflops"], 100 * v["sync_ratio"]]
        for (plat, p), v in est["predicted"].items()
    ]
    print(format_table(
        ["platform", "procs", "pred. time (ms)", "pred. GFLOP/s", "sync %"],
        rows, float_fmt="{:.3f}",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .runtime import A100_PLATFORM, MI50_PLATFORM, simulate_pangulu

    a = _load(args.matrix, args.scale)
    solver = PanguLU(a)
    solver.preprocess()
    platform = {"a100": A100_PLATFORM, "mi50": MI50_PLATFORM}[args.platform]
    rows = []
    last_sim = None
    for p in (1, 2, 4, 8, 16, 32, 64, 128):
        if p > args.max_procs:
            break
        sim = simulate_pangulu(solver.blocks, solver.dag, platform, p)
        last_sim = sim
        rows.append([p, sim.gflops, sim.result.makespan * 1e3,
                     sim.result.mean_sync * 1e3])
    print(format_table(
        ["procs", "GFLOP/s", "makespan (ms)", "sync (ms)"], rows,
        float_fmt="{:.3f}",
    ))
    if args.trace and last_sim is not None:
        from .runtime import write_chrome_trace

        names = [
            f"{t.ttype.name}(k={t.k},{t.bi},{t.bj})" for t in solver.dag.tasks
        ]
        cats = [t.ttype.name for t in solver.dag.tasks]
        write_chrome_trace(
            args.trace, last_sim.result, last_sim.assignment,
            names=names, categories=cats,
            successors=[t.successors for t in solver.dag.tasks],
        )
        print(f"chrome trace of the largest run written to {args.trace}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PanguLU reproduction — sparse direct solver toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="solve A x = b for a .mtx file or analogue")
    p.add_argument("matrix", help=".mtx path or a paper matrix name")
    p.add_argument("--ordering", default="nd", choices=["nd", "amd", "rcm", "natural"])
    p.add_argument("--blocking", default="regular",
                   choices=["regular", "irregular"],
                   help="blocking strategy: one uniform block size "
                        "(regular, the paper's layout) or supernode-guided "
                        "variable-width boundaries (irregular)")
    p.add_argument("--dtype", default="float64", choices=["float64", "float32"],
                   help="working precision of the factors; float32 halves "
                        "factor storage and recovers accuracy by iterative "
                        "refinement in float64")
    p.add_argument("--rhs", default="ones", choices=["ones", "random"])
    p.add_argument("--scale", type=float, default=0.3, help="analogue size knob")
    p.add_argument("--output", help="write the solution vector to this file")
    p.add_argument("--workers", type=int, default=1,
                   help="worker threads (threaded engine), ranks "
                        "(distributed engine), or threads per rank "
                        "(hybrid engine) for the numeric phase and "
                        "the triangular solves")
    p.add_argument("--ranks", type=int, default=None,
                   help="process-rank count for the distributed and "
                        "hybrid engines (default: --workers for "
                        "distributed, 2 for hybrid)")
    p.add_argument("--engine", default=None,
                   choices=["sequential", "threaded", "distributed",
                            "hybrid"],
                   help="execution engine for the numeric phase AND the "
                        "triangular solves (default: threaded when "
                        "--workers > 1, else sequential); hybrid runs "
                        "--ranks processes each driving --workers "
                        "threads over one shared scheduler")
    p.add_argument("--placement", default="cyclic",
                   choices=["cyclic", "cost"],
                   help="block-to-rank placement policy for the "
                        "distributed/hybrid engines: the paper's 2D "
                        "block-cyclic map, or the cost-model placement "
                        "that greedily packs speed-scaled block loads")
    p.add_argument("--trace", help="write a chrome://tracing JSON of the real "
                                   "numeric + solve run to this path")
    p.add_argument("--check", action="store_true",
                   help="run the numeric phase and the triangular solves "
                        "under the concurrency invariant checker "
                        "(repro.devtools.racecheck); "
                        "equivalent to setting REPRO_CHECK=1")
    p.add_argument("--verify", action="store_true",
                   help="statically verify every built DAG before "
                        "execution (acyclicity, counter=indegree, "
                        "single-writer chains, solve segment ordering) "
                        "and print the schedule report")
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("info", help="matrix statistics")
    p.add_argument("matrix")
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--symbolic", action="store_true",
                   help="also run reordering + symbolic factorisation")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("generate", help="write a synthetic analogue to .mtx")
    p.add_argument("name", choices=paper_matrix_names())
    p.add_argument("output")
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("estimate", help="plan a factorisation (no numeric work)")
    p.add_argument("matrix")
    p.add_argument("--blocking", default="regular",
                   choices=["regular", "irregular"])
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--procs", type=int, nargs="+", default=[1, 4, 16, 64])
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser("simulate", help="simulated strong-scaling study")
    p.add_argument("matrix")
    p.add_argument("--platform", default="a100", choices=["a100", "mi50"])
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--max-procs", type=int, default=128)
    p.add_argument("--trace", help="write a chrome://tracing JSON of the "
                                   "largest simulated run")
    p.set_defaults(func=_cmd_simulate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())
