"""Matrix Market (``.mtx``) reader/writer.

PanguLU's artifact only accepts Matrix Market files; this module provides
the same ingestion path so real SuiteSparse matrices can be fed to the
solver when available, while the test-suite and benchmarks default to the
synthetic analogues in :mod:`repro.sparse.generators`.

Supports the ``matrix coordinate`` format with ``real``/``integer``/
``pattern`` fields and ``general``/``symmetric``/``skew-symmetric``
symmetry, plus ``matrix array`` (dense column-major) for completeness.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

import numpy as np

from .csc import CSCMatrix, coo_to_csc

__all__ = ["read_matrix_market", "write_matrix_market"]

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


def _open(path: str | Path, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: str | Path) -> CSCMatrix:
    """Read a Matrix Market file into a :class:`CSCMatrix`.

    Symmetric and skew-symmetric storage is expanded to a full general
    matrix (diagonal entries are not duplicated; skew diagonals must be
    absent or zero per the format specification).
    """
    with _open(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a Matrix Market file")
        parts = header.strip().split()
        if len(parts) < 5 or parts[1].lower() != "matrix":
            raise ValueError(f"{path}: unsupported header {header!r}")
        layout, field, symmetry = (
            parts[2].lower(),
            parts[3].lower(),
            parts[4].lower(),
        )
        if field == "complex":
            raise ValueError(f"{path}: complex matrices are not supported")
        if field not in _SUPPORTED_FIELDS:
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRY:
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%") or not line.strip():
            line = fh.readline()

        if layout == "coordinate":
            dims = line.split()
            nrows, ncols, nnz = int(dims[0]), int(dims[1]), int(dims[2])
            raw = np.loadtxt(fh, dtype=np.float64, max_rows=nnz, ndmin=2)
            if raw.shape[0] != nnz:
                raise ValueError(
                    f"{path}: expected {nnz} entries, found {raw.shape[0]}"
                )
            if nnz == 0:
                return CSCMatrix.empty((nrows, ncols))
            rows = raw[:, 0].astype(np.int64) - 1
            cols = raw[:, 1].astype(np.int64) - 1
            if field == "pattern":
                vals = np.ones(nnz, dtype=np.float64)
            else:
                vals = raw[:, 2].astype(np.float64)
            if symmetry in ("symmetric", "skew-symmetric"):
                off = rows != cols
                sign = -1.0 if symmetry == "skew-symmetric" else 1.0
                rows = np.concatenate([rows, cols[off]])
                cols = np.concatenate([cols, raw[:, 0].astype(np.int64)[off] - 1])
                vals = np.concatenate([vals, sign * vals[off]])
            return coo_to_csc((nrows, ncols), rows, cols, vals)

        if layout == "array":
            dims = line.split()
            nrows, ncols = int(dims[0]), int(dims[1])
            if symmetry != "general":
                raise ValueError(
                    f"{path}: array layout only supported with general symmetry"
                )
            vals = np.loadtxt(fh, dtype=np.float64).reshape(-1)
            if vals.size != nrows * ncols:
                raise ValueError(f"{path}: dense payload size mismatch")
            dense = vals.reshape((ncols, nrows)).T  # column-major file order
            return CSCMatrix.from_dense(dense)

        raise ValueError(f"{path}: unsupported layout {layout!r}")


def write_matrix_market(path: str | Path, mat: CSCMatrix, *, comment: str = "") -> None:
    """Write a :class:`CSCMatrix` in ``matrix coordinate real general`` form."""
    rows, cols = mat.rows_cols()
    vals = mat.data
    with _open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
        fh.write(f"{mat.nrows} {mat.ncols} {mat.nnz}\n")
        for r, c, v in zip(rows, cols, vals):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
