"""Block representations — the layer that breaks the "block == CSC" rule.

Historically every layer of the stack (kernels, plans, arena, transports,
memory accounting, selector) assumed a stored block *is* a
:class:`~repro.sparse.csc.CSCMatrix`.  The big separator blocks of filled
matrices are nearly dense but numerically low-rank (Zhu & Lai's recursive
ND + low-rank LU; Li & Liu's data-sparse factorisation survey), so a
truncated ``U @ V.T`` factorisation stores and multiplies them at
``O((m + n) · rank)`` instead of ``O(nnz)`` / ``O(m · n)`` cost.

This module defines the representation layer:

* :class:`BlockRep` — the minimal protocol every representation obeys
  (``shape`` / ``nnz`` / ``dtype`` / ``value_nbytes``); the existing
  :class:`CSCMatrix` satisfies it structurally and stays the default,
  bit-identical representation.
* :class:`CompressedBlock` — a rank-``r`` approximation ``U @ V.T`` of a
  panel block, produced by the truncated-SVD / randomised-SVD kernels in
  :mod:`repro.kernels.compress` at a configurable relative tolerance.
* The numerical workhorses :func:`truncated_svd` and
  :func:`randomized_svd` (deterministic: the random range-finder is
  seeded from the block shape, so every engine and every rank computes
  bit-identical factors for the same block).

A compressed block is an **overlay**, not a replacement: the owning rank
keeps the exact CSC payload (the triangular solves and the master gather
read it unchanged), while SSSSM consumers — local or remote — multiply
against the low-rank form.  The resulting factors are approximate;
iterative refinement at solve time recovers full accuracy, with the
escalation path in :class:`~repro.core.solver.Factorization` dropping
the overlay and refactorising exactly when refinement stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BlockRep",
    "CompressedBlock",
    "block_kind",
    "truncated_svd",
    "randomized_svd",
    "lr_profit_cap",
]


class BlockRep:
    """Minimal protocol of a stored block representation.

    Not an ABC — :class:`~repro.sparse.csc.CSCMatrix` predates this layer
    and satisfies the protocol structurally; :class:`CompressedBlock`
    subclasses it for documentation and ``isinstance`` convenience.  A
    representation provides ``shape``, ``nrows``/``ncols``, ``nnz`` (the
    stored-entry count the selector features are built from),
    ``dtype``, and ``value_nbytes`` (the real byte cost of its numeric
    payload — what the transports and :mod:`repro.core.memory` account).
    """

    __slots__ = ()


def block_kind(rep) -> str:
    """``"lr"`` for a compressed block, ``"csc"`` for everything else."""
    return "lr" if isinstance(rep, CompressedBlock) else "csc"


@dataclass
class CompressedBlock(BlockRep):
    """A rank-``r`` low-rank overlay ``U @ V.T`` of one panel block.

    Attributes
    ----------
    shape:
        ``(m, n)`` of the block it approximates.
    u, v:
        The factors — ``u`` is ``(m, r)``, ``v`` is ``(n, r)``, both in
        the factor dtype.  On an arena-backed structure these are
        zero-copy views into the arena's preallocated low-rank slab.
    src_nnz:
        nnz of the exact CSC payload this overlay stands in for.  Shipped
        with the factors so remote ranks — which hold *only* the
        compressed form — compute the same selector features (and hence
        pick the same kernels) as local engines that hold both.
    """

    shape: tuple[int, int]
    u: np.ndarray
    v: np.ndarray
    src_nnz: int

    #: transports may ship this object whole inside result tuples
    __transport_message__ = True

    @property
    def nrows(self) -> int:
        return int(self.shape[0])

    @property
    def ncols(self) -> int:
        return int(self.shape[1])

    @property
    def rank(self) -> int:
        """The retained rank ``r``."""
        return int(self.u.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self.u.dtype

    @property
    def nnz(self) -> int:
        """Stored-entry count of the *exact* payload (selector feature
        parity between ranks that hold the CSC form and ranks that only
        received the overlay)."""
        return int(self.src_nnz)

    @property
    def density(self) -> float:
        """Density of the exact payload over the dense block capacity."""
        m, n = self.shape
        return self.src_nnz / (m * n) if m and n else 0.0

    @property
    def value_nbytes(self) -> int:
        """Real byte cost of the low-rank payload (``U`` plus ``V``)."""
        return int(self.u.nbytes + self.v.nbytes)

    def dense(self) -> np.ndarray:
        """Materialise ``U @ V.T`` as a dense array.

        The only sanctioned caller is the decompress kernel
        (:func:`repro.kernels.compress.decompress_v1`); everywhere else
        the ``no-dense-roundtrip`` lint rule flags the call — the whole
        point of the representation is to *never* pay the dense product.
        """
        return self.u @ self.v.T


def lr_profit_cap(m: int, n: int, nnz: int) -> int:
    """Largest rank at which the low-rank form is strictly smaller than
    the sparse payload: ``rank · (m + n) < nnz``.  0 means compression
    can never pay for this block."""
    if m + n <= 0:
        return 0
    return max(0, (int(nnz) - 1) // (m + n))


def _truncation_rank(s: np.ndarray, tol: float, max_rank: int) -> int:
    """Retained rank under a relative spectral tolerance: keep the
    singular values ``s[i] > tol · s[0]``, capped at ``max_rank``."""
    if s.size == 0 or s[0] <= 0.0:
        return 0
    keep = int(np.count_nonzero(s > tol * s[0]))
    return min(keep, int(max_rank))


def truncated_svd(
    dense: np.ndarray, tol: float, max_rank: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Rank-revealing truncation of ``dense`` to ``U @ V.T``.

    Exact LAPACK SVD in the input dtype (dtype-generic per the
    mixed-precision rules: a float32 block is compressed in float32, so
    planned/unplanned and local/remote arithmetic stay bit-identical).
    Returns ``(u, v)`` with ``u (m, r)``, ``v (n, r)`` and
    ``‖dense − u vᵀ‖₂ ≤ tol · ‖dense‖₂``, or ``None`` when no rank in
    ``[1, max_rank]`` meets the tolerance.
    """
    if max_rank < 1:
        return None
    try:
        uu, s, vt = np.linalg.svd(dense, full_matrices=False)
    except np.linalg.LinAlgError:  # no convergence: skip, keep exact CSC
        return None
    r = _truncation_rank(s, tol, max_rank)
    if r < 1:
        return None
    # the dropped spectrum must actually satisfy the bound — with the
    # rank capped for profitability the tail may still be heavy
    if s.size > r and s[r] > tol * s[0]:
        return None
    u = np.ascontiguousarray(uu[:, :r] * s[:r])
    v = np.ascontiguousarray(vt[:r, :].T)
    return u, v


def _probe_matrix(n: int, k: int, dtype: np.dtype) -> np.ndarray:
    """Deterministic Gaussian test matrix for the randomised range
    finder, seeded from the dimensions alone — every rank and every
    engine draws the identical probe for the same block shape, which is
    what keeps the compressed factors (and therefore the numeric
    factorisation) bit-identical across engines."""
    rng = np.random.default_rng(0x5EED ^ (n << 20) ^ k)
    return rng.standard_normal((n, k)).astype(dtype, copy=False)


def randomized_svd(
    dense: np.ndarray,
    tol: float,
    max_rank: int,
    *,
    oversample: int = 8,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Halko-style randomised truncation of ``dense`` to ``U @ V.T``.

    Range-finding with a deterministic seeded probe (one power
    iteration), then an exact SVD of the small projected matrix.  Same
    return contract as :func:`truncated_svd`; the tolerance check is
    performed on the projected spectrum plus the residual of the range
    capture, so an accepted result honours the bound.
    """
    if max_rank < 1:
        return None
    m, n = dense.shape
    k = min(min(m, n), int(max_rank) + int(oversample))
    if k < 1:
        return None
    omega = _probe_matrix(n, k, dense.dtype)
    y = dense @ omega
    y = dense @ (dense.T @ y)  # one power iteration sharpens the range
    q, _ = np.linalg.qr(y)
    b = q.T @ dense
    try:
        ub, s, vt = np.linalg.svd(b, full_matrices=False)
    except np.linalg.LinAlgError:
        return None
    r = _truncation_rank(s, tol, max_rank)
    if r < 1:
        return None
    if s.size > r and s[r] > tol * s[0]:
        return None
    # residual of the range capture: ‖A − QQᵀA‖_F relative to ‖A‖_F —
    # if the probe missed part of the range the projected spectrum lies
    norm_a = float(np.linalg.norm(dense))
    if norm_a > 0.0:
        resid = float(np.linalg.norm(dense - q @ b))
        if resid > tol * norm_a:
            return None
    u = np.ascontiguousarray((q @ ub[:, :r]) * s[:r])
    v = np.ascontiguousarray(vt[:r, :].T)
    return u, v
