"""Structural (pattern-level) utilities shared across the solver phases."""

from __future__ import annotations

import numpy as np

from .csc import CSCMatrix, coo_to_csc

__all__ = [
    "symmetrize_pattern",
    "pattern_union",
    "adjacency_lists",
    "bandwidth",
    "is_structurally_symmetric",
    "has_full_diagonal",
    "ensure_diagonal",
    "structural_rank_lower_bound",
]


def symmetrize_pattern(a: CSCMatrix) -> CSCMatrix:
    """Return the pattern of ``A + A^T`` with values from ``A`` where present.

    PanguLU symmetrises the matrix before its symmetric-pruned symbolic
    factorisation (Section 5.2); entries present only in ``A^T`` get value 0
    so the numeric phase still factorises the original values.
    """
    at = a.transpose()
    rows_a, cols_a = a.rows_cols()
    rows_t, cols_t = at.rows_cols()
    rows = np.concatenate([rows_a, rows_t])
    cols = np.concatenate([cols_a, cols_t])
    vals = np.concatenate([a.data, np.zeros(at.nnz)])
    # summing duplicates keeps A's value where both patterns have the entry
    return coo_to_csc(a.shape, rows, cols, vals)


def pattern_union(a: CSCMatrix, b: CSCMatrix) -> CSCMatrix:
    """Union of two patterns (values: a's where present, else b's)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    rows_a, cols_a = a.rows_cols()
    rows_b, cols_b = b.rows_cols()
    # Keep A's values; mark B-only entries by adding B with zero where A has
    # the entry.  Simplest correct approach: union pattern, then fill from A.
    rows = np.concatenate([rows_a, rows_b])
    cols = np.concatenate([cols_a, cols_b])
    vals = np.concatenate([a.data, np.zeros(b.nnz)])
    out = coo_to_csc(a.shape, rows, cols, vals)
    return out


def adjacency_lists(a: CSCMatrix) -> list[np.ndarray]:
    """Undirected adjacency of the symmetrised pattern, excluding self-loops.

    Returns, for each vertex ``v``, a sorted array of neighbours.  Used by
    the from-scratch ordering codes (AMD, nested dissection, RCM).
    """
    s = symmetrize_pattern(a)
    n = s.ncols
    out: list[np.ndarray] = []
    for j in range(n):
        rows, _ = s.col(j)
        out.append(rows[rows != j].copy())
    return out


def bandwidth(a: CSCMatrix) -> int:
    """Maximum distance of any stored entry from the diagonal."""
    if a.nnz == 0:
        return 0
    rows, cols = a.rows_cols()
    return int(np.max(np.abs(rows - cols)))


def is_structurally_symmetric(a: CSCMatrix) -> bool:
    """True when the pattern of ``A`` equals the pattern of ``A^T``."""
    at = a.transpose()
    return (
        np.array_equal(a.indptr, at.indptr)
        and np.array_equal(a.indices, at.indices)
    )


def has_full_diagonal(a: CSCMatrix) -> bool:
    """True when every diagonal position is structurally present."""
    n = min(a.shape)
    for j in range(n):
        rows = a.indices[a.col_slice(j)]
        pos = np.searchsorted(rows, j)
        if pos >= rows.size or rows[pos] != j:
            return False
    return True


def ensure_diagonal(a: CSCMatrix, value: float = 0.0) -> CSCMatrix:
    """Return a copy of ``A`` whose diagonal is structurally present.

    Missing diagonal entries are inserted with ``value``; existing entries
    are untouched.  Static-pivoting LU requires a structurally full diagonal.
    """
    n = min(a.shape)
    missing = []
    for j in range(n):
        rows = a.indices[a.col_slice(j)]
        pos = np.searchsorted(rows, j)
        if pos >= rows.size or rows[pos] != j:
            missing.append(j)
    if not missing:
        return a.copy()
    miss = np.asarray(missing, dtype=np.int64)
    rows_a, cols_a = a.rows_cols()
    rows = np.concatenate([rows_a, miss])
    cols = np.concatenate([cols_a, miss])
    vals = np.concatenate([a.data, np.full(miss.size, value)])
    return coo_to_csc(a.shape, rows, cols, vals)


def structural_rank_lower_bound(a: CSCMatrix) -> int:
    """Greedy matching size — a fast lower bound on the structural rank."""
    matched_rows = np.full(a.nrows, False)
    count = 0
    for j in range(a.ncols):
        rows = a.indices[a.col_slice(j)]
        for r in rows:
            if not matched_rows[r]:
                matched_rows[r] = True
                count += 1
                break
    return count
