"""Sparse-matrix substrate: CSC container, block representations
(exact CSC + low-rank compressed), Matrix Market I/O, pattern
utilities, and synthetic analogues of the paper's 16 test matrices."""

from .blockrep import (
    BlockRep,
    CompressedBlock,
    block_kind,
    lr_profit_cap,
    randomized_svd,
    truncated_svd,
)
from .csc import CSCMatrix, coo_to_csc
from .generators import (
    MATRIX_GENERATORS,
    cage_like,
    circuit_like,
    fem_3d,
    generate,
    grid_laplacian_2d,
    grid_laplacian_3d,
    kkt_saddle_point,
    paper_matrix_names,
    quantum_chemistry_like,
    random_sparse,
)
from .io import read_matrix_market, write_matrix_market
from .patterns import (
    adjacency_lists,
    bandwidth,
    ensure_diagonal,
    has_full_diagonal,
    is_structurally_symmetric,
    pattern_union,
    structural_rank_lower_bound,
    symmetrize_pattern,
)

__all__ = [
    "CSCMatrix",
    "coo_to_csc",
    "BlockRep",
    "CompressedBlock",
    "block_kind",
    "lr_profit_cap",
    "truncated_svd",
    "randomized_svd",
    "MATRIX_GENERATORS",
    "generate",
    "paper_matrix_names",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "fem_3d",
    "circuit_like",
    "cage_like",
    "quantum_chemistry_like",
    "kkt_saddle_point",
    "random_sparse",
    "read_matrix_market",
    "write_matrix_market",
    "symmetrize_pattern",
    "pattern_union",
    "adjacency_lists",
    "bandwidth",
    "is_structurally_symmetric",
    "has_full_diagonal",
    "ensure_diagonal",
    "structural_rank_lower_bound",
]
