"""Compressed Sparse Column matrix container.

This is the base storage substrate of the reproduction.  PanguLU stores the
matrix (and every sub-matrix block) in CSC form; both layers of its
"two-layer sparse structure" are CSC (Fig. 6 of the paper).  We implement our
own lightweight, NumPy-backed container rather than relying on
``scipy.sparse`` so that the solver controls the invariants it depends on:

* ``indptr`` is a monotone ``int64`` array of length ``ncols + 1``;
* ``indices`` holds row indices, **sorted and unique within each column**;
* ``data`` is a floating value array aligned with ``indices`` — ``float64``
  by default, ``float32`` on the mixed-precision factor path (any other
  input dtype is coerced to ``float64``).

Sorted-unique columns are what make the paper's "bin-search" kernel
addressing (``numpy.searchsorted`` into a fixed symbolic pattern) valid.
Conversions to/from SciPy and dense NumPy arrays are provided for testing
and for kernel variants that deliberately use a compiled fast path.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

__all__ = ["CSCMatrix", "coo_to_csc", "VALUE_DTYPES"]

#: value dtypes the container stores natively; anything else is coerced
#: to float64 (ints, python floats, float16, …)
VALUE_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _as_values(values: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
    """Normalise a value array: contiguous, float32/float64 preserved,
    every other dtype coerced to float64."""
    arr = np.asarray(values)
    if dtype is None:
        dtype = arr.dtype if arr.dtype in VALUE_DTYPES else np.dtype(np.float64)
    return np.ascontiguousarray(arr, dtype=dtype)


class CSCMatrix:
    """A sparse matrix in Compressed Sparse Column format.

    Examples
    --------
    >>> import numpy as np
    >>> m = CSCMatrix.from_dense(np.array([[2.0, 0.0], [1.0, 3.0]]))
    >>> m.nnz
    3
    >>> m.col(0)
    (array([0, 1]), array([2., 1.]))
    >>> m.transpose().to_dense()
    array([[2., 1.],
           [0., 3.]])

    Parameters
    ----------
    shape:
        ``(nrows, ncols)`` of the matrix.
    indptr:
        Column pointer array, length ``ncols + 1``, dtype coercible to int64.
    indices:
        Row indices, length ``nnz``; must be sorted and unique per column
        (validated when ``check=True``).
    data:
        Numeric values aligned with ``indices``.  ``float32`` and
        ``float64`` inputs keep their dtype; anything else is coerced to
        ``float64``.  May be ``None`` for a pattern-only (symbolic)
        matrix, in which case a zero array (of ``dtype``) is allocated
        lazily on first access.
    dtype:
        Value dtype for a pattern-only matrix (ignored when ``data`` is
        given).  Defaults to ``float64``.
    check:
        Validate invariants on construction.  Defaults to ``True``; internal
        hot paths pass ``False`` after constructing arrays that satisfy the
        invariants by design.
    """

    # blocks cross the multiprocessing transport (rank scatter at fork
    # time), so the `picklable-messages` lint rule audits this class
    __transport_message__ = True

    __slots__ = ("shape", "indptr", "indices", "_data", "_dtype", "_cols")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None = None,
        *,
        dtype: np.dtype | type | None = None,
        check: bool = True,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if data is None:
            self._data = None
            self._dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
            if self._dtype not in VALUE_DTYPES:
                raise TypeError(f"unsupported value dtype {self._dtype}")
        else:
            self._data = _as_values(data, None if dtype is None else np.dtype(dtype))
            self._dtype = self._data.dtype
        self._cols = None
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # invariants & basic properties
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        nrows, ncols = self.shape
        if nrows < 0 or ncols < 0:
            raise ValueError(f"negative shape {self.shape}")
        if self.indptr.shape != (ncols + 1,):
            raise ValueError(
                f"indptr has length {self.indptr.size}, expected {ncols + 1}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.size != nnz:
            raise ValueError(f"indices has {self.indices.size} entries, expected {nnz}")
        if self._data is not None and self._data.size != nnz:
            raise ValueError(f"data has {self._data.size} entries, expected {nnz}")
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= nrows:
                raise ValueError("row index out of range")
            # sorted strictly increasing within each column
            d = np.diff(self.indices)
            col_starts = self.indptr[1:-1]
            interior = np.ones(nnz - 1, dtype=bool) if nnz > 1 else np.zeros(0, bool)
            if nnz > 1:
                interior[col_starts[(col_starts > 0) & (col_starts < nnz)] - 1] = False
                if np.any(d[interior] <= 0):
                    raise ValueError("row indices must be sorted unique per column")

    @property
    def data(self) -> np.ndarray:
        """Numeric values; allocated as zeros on first access for symbolic matrices."""
        if self._data is None:
            self._data = np.zeros(self.nnz, dtype=self._dtype)
        return self._data

    @data.setter
    def data(self, values: np.ndarray) -> None:
        values = _as_values(values)
        if values.size != self.nnz:
            raise ValueError(f"data has {values.size} entries, expected {self.nnz}")
        self._data = values
        self._dtype = values.dtype

    @property
    def dtype(self) -> np.dtype:
        """Value dtype (meaningful even before a symbolic matrix's lazy
        zero array is materialised)."""
        return self._dtype

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    def index_nbytes(self) -> int:
        """Exact bytes of the structural arrays (``indptr`` + ``indices``)
        at their actual dtypes — the layer-2 overhead of one block."""
        return self.indptr.nbytes + self.indices.nbytes

    @property
    def value_nbytes(self) -> int:
        """Exact bytes of the value array at its actual dtype, *without*
        materialising the lazy zero array of a symbolic matrix."""
        if self._data is not None:
            return self._data.nbytes
        return self.nnz * self._dtype.itemsize

    @property
    def density(self) -> float:
        """Fraction of stored entries relative to a dense matrix of this shape."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )

    # ------------------------------------------------------------------
    # column access
    # ------------------------------------------------------------------
    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` views of column ``j``."""
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def col_slice(self, j: int) -> slice:
        """Return the ``data``/``indices`` slice covering column ``j``."""
        return slice(int(self.indptr[j]), int(self.indptr[j + 1]))

    def col_nnz(self) -> np.ndarray:
        """Per-column nonzero counts."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, *, drop_tol: float = 0.0) -> "CSCMatrix":
        """Build from a dense array, keeping entries with ``|a_ij| > drop_tol``.

        ``float32``/``float64`` inputs keep their dtype; everything else
        is coerced to ``float64``."""
        dense = _as_values(dense)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        mask = np.abs(dense) > drop_tol
        # column-major walk so indices come out sorted per column
        cols, rows = np.nonzero(mask.T)
        vals = dense[rows, cols]
        indptr = np.zeros(dense.shape[1] + 1, dtype=np.int64)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(dense.shape, indptr, rows, vals, check=False)

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix | sp.sparray) -> "CSCMatrix":
        """Build from any SciPy sparse matrix (duplicates summed, sorted)."""
        m = sp.csc_matrix(mat)
        m.sum_duplicates()
        m.sort_indices()
        return cls(m.shape, m.indptr, m.indices, m.data, check=False)

    @classmethod
    def from_views(
        cls,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> "CSCMatrix":
        """Wrap existing buffers **without copying** (no validation).

        The arena block layout (:mod:`repro.core.blocking`) depends on the
        returned matrix *aliasing* its inputs: every write through
        ``block.data[...]`` must land in the backing slab.  The regular
        constructor normalises via ``ascontiguousarray``, which silently
        copies on a dtype or layout mismatch and would decouple the block
        from its slab — so this constructor demands exact dtypes
        (``int64`` structure, ``float32`` or ``float64`` values) and
        raises instead of copying.
        """
        for arr, what in ((indptr, "indptr"), (indices, "indices")):
            if arr.dtype != np.int64:
                raise TypeError(
                    f"from_views requires {what} of dtype int64, "
                    f"got {arr.dtype} (would silently copy)"
                )
        if data.dtype not in VALUE_DTYPES:
            raise TypeError(
                "from_views requires data of dtype float32 or float64, "
                f"got {data.dtype} (would silently copy)"
            )
        m = cls.__new__(cls)
        m.shape = (int(shape[0]), int(shape[1]))
        m.indptr = indptr
        m.indices = indices
        m._data = data
        m._dtype = data.dtype
        m._cols = None
        return m

    @classmethod
    def eye(cls, n: int, *, dtype: np.dtype | type = np.float64) -> "CSCMatrix":
        """Identity matrix of order ``n``."""
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        return cls((n, n), indptr, indices, np.ones(n, dtype=dtype), check=False)

    @classmethod
    def empty(
        cls, shape: tuple[int, int], *, dtype: np.dtype | type = np.float64
    ) -> "CSCMatrix":
        """All-zero matrix of the given shape."""
        return cls(
            shape,
            np.zeros(shape[1] + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=dtype),
            check=False,
        )

    def to_dense(self) -> np.ndarray:
        """Expand to a dense array of the matrix's value dtype."""
        out = np.zeros(self.shape, dtype=self._dtype)
        ncols = self.shape[1]
        cols = np.repeat(np.arange(ncols), np.diff(self.indptr))
        out[self.indices, cols] = self.data
        return out

    def to_scipy(self) -> sp.csc_matrix:
        """Convert to ``scipy.sparse.csc_matrix`` (shares no data)."""
        return sp.csc_matrix(
            (self.data.copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )

    def copy(self) -> "CSCMatrix":
        """Deep copy (pattern and values)."""
        return CSCMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            None if self._data is None else self._data.copy(),
            dtype=self._dtype,
            check=False,
        )

    def pattern_copy(self) -> "CSCMatrix":
        """Copy of the pattern with zero values (same value dtype)."""
        return CSCMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            None,
            dtype=self._dtype,
            check=False,
        )

    def astype(self, dtype: np.dtype | type) -> "CSCMatrix":
        """Copy with values cast to ``dtype`` (``float32`` or ``float64``).

        The structural arrays are copied too, so the result shares no
        storage with ``self`` even when the dtype is unchanged.
        """
        dtype = np.dtype(dtype)
        if dtype not in VALUE_DTYPES:
            raise TypeError(f"unsupported value dtype {dtype}")
        return CSCMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            None if self._data is None else self._data.astype(dtype),
            dtype=dtype,
            check=False,
        )

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "CSCMatrix":
        """Return the transpose (a CSC view of the CSR form of ``self``)."""
        nrows, ncols = self.shape
        nnz = self.nnz
        t_indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.add.at(t_indptr, self.indices + 1, 1)
        np.cumsum(t_indptr, out=t_indptr)
        t_indices = np.empty(nnz, dtype=np.int64)
        t_data = np.empty(nnz, dtype=self._dtype)
        fill = t_indptr[:-1].copy()
        cols = np.repeat(np.arange(ncols, dtype=np.int64), np.diff(self.indptr))
        # stable counting pass: entries of a row arrive in increasing column
        # order because we walk columns left to right
        order = np.argsort(self.indices, kind="stable")
        rows_sorted = self.indices[order]
        t_indices[:] = cols[order]
        t_data[:] = self.data[order]
        # rows_sorted groups rows contiguously; positions already correct
        del fill, rows_sorted
        return CSCMatrix((ncols, nrows), t_indptr, t_indices, t_data, check=False)

    def permute(self, row_perm: np.ndarray | None, col_perm: np.ndarray | None) -> "CSCMatrix":
        """Return ``A[row_perm, :][:, col_perm]`` — i.e. new[i, j] = old[row_perm[i], col_perm[j]].

        Either permutation may be ``None`` for identity.  ``row_perm`` and
        ``col_perm`` are "new-from-old" gather permutations.
        """
        nrows, ncols = self.shape
        if col_perm is None:
            col_perm = np.arange(ncols, dtype=np.int64)
        else:
            col_perm = np.asarray(col_perm, dtype=np.int64)
        if row_perm is None:
            inv_row = None
        else:
            row_perm = np.asarray(row_perm, dtype=np.int64)
            inv_row = np.empty(nrows, dtype=np.int64)
            inv_row[row_perm] = np.arange(nrows, dtype=np.int64)

        counts = np.diff(self.indptr)[col_perm]
        new_indptr = np.zeros(ncols + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        nnz = int(new_indptr[-1])
        new_indices = np.empty(nnz, dtype=np.int64)
        new_data = np.empty(nnz, dtype=self._dtype)
        data = self.data
        for newj in range(ncols):
            oldj = int(col_perm[newj])
            sl = self.col_slice(oldj)
            rows = self.indices[sl]
            vals = data[sl]
            if inv_row is not None:
                rows = inv_row[rows]
                order = np.argsort(rows, kind="stable")
                rows = rows[order]
                vals = vals[order]
            dst = slice(int(new_indptr[newj]), int(new_indptr[newj + 1]))
            new_indices[dst] = rows
            new_data[dst] = vals
        return CSCMatrix(self.shape, new_indptr, new_indices, new_data, check=False)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal as a dense vector."""
        n = min(self.shape)
        out = np.zeros(n, dtype=self._dtype)
        data = self.data
        for j in range(n):
            rows, _ = self.indices[self.col_slice(j)], None
            pos = np.searchsorted(rows, j)
            if pos < rows.size and rows[pos] == j:
                out[j] = data[int(self.indptr[j]) + int(pos)]
        return out

    def scale(self, row_scale: np.ndarray | None, col_scale: np.ndarray | None) -> "CSCMatrix":
        """Return ``diag(row_scale) @ A @ diag(col_scale)`` (None = ones)."""
        out = self.copy()
        if row_scale is not None:
            out.data *= np.asarray(row_scale, dtype=np.float64)[out.indices]
        if col_scale is not None:
            cols = np.repeat(np.arange(self.ncols), np.diff(out.indptr))
            out.data *= np.asarray(col_scale, dtype=np.float64)[cols]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` for a dense vector ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.ncols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.ncols},)")
        y = np.zeros(self.nrows, dtype=np.float64)
        cols = np.repeat(np.arange(self.ncols), np.diff(self.indptr))
        np.add.at(y, self.indices, self.data * x[cols])
        return y

    def norm_1(self) -> float:
        """Matrix 1-norm (max absolute column sum)."""
        if self.nnz == 0:
            return 0.0
        sums = np.add.reduceat(np.abs(self.data), self.indptr[:-1])
        sums[np.diff(self.indptr) == 0] = 0.0
        return float(sums.max())

    def norm_inf(self) -> float:
        """Matrix ∞-norm (max absolute row sum)."""
        if self.nnz == 0:
            return 0.0
        sums = np.zeros(self.nrows, dtype=np.float64)
        np.add.at(sums, self.indices, np.abs(self.data).astype(np.float64, copy=False))
        return float(sums.max())

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ X`` for a dense ``(ncols, k)`` array ``X``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != self.ncols:
            raise ValueError(f"X has shape {x.shape}, expected ({self.ncols}, k)")
        y = np.zeros((self.nrows, x.shape[1]), dtype=np.float64)
        cols = np.repeat(np.arange(self.ncols), np.diff(self.indptr))
        np.add.at(y, self.indices, self.data[:, None] * x[cols])
        return y

    def rows_cols(self) -> tuple[np.ndarray, np.ndarray]:
        """Return COO ``(rows, cols)`` index arrays for the stored pattern.

        Returns *views/cached arrays* — callers must not mutate them.  The
        column expansion is cached on first use (patterns are immutable
        after construction), which makes the dense scatter/gather of the
        kernels O(nnz) with no repeated ``repeat``/``diff`` work.
        """
        return self.indices, self.cols_expanded()

    def cols_expanded(self) -> np.ndarray:
        """Column index of every stored entry (cached; do not mutate)."""
        if self._cols is None:
            self._cols = np.repeat(
                np.arange(self.ncols, dtype=np.int64), np.diff(self.indptr)
            )
        return self._cols

    def extract_submatrix(
        self, rows: np.ndarray, cols: Iterable[int]
    ) -> "CSCMatrix":
        """Extract the submatrix ``A[rows, cols]`` (rows must be sorted)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(list(cols), dtype=np.int64)
        row_pos = np.full(self.nrows, -1, dtype=np.int64)
        row_pos[rows] = np.arange(rows.size)
        chunks_idx: list[np.ndarray] = []
        chunks_val: list[np.ndarray] = []
        indptr = np.zeros(cols.size + 1, dtype=np.int64)
        data = self.data
        for out_j, j in enumerate(cols):
            sl = self.col_slice(int(j))
            rr = self.indices[sl]
            keep = row_pos[rr] >= 0
            chunks_idx.append(row_pos[rr[keep]])
            chunks_val.append(data[sl][keep])
            indptr[out_j + 1] = indptr[out_j] + chunks_idx[-1].size
        indices = np.concatenate(chunks_idx) if chunks_idx else np.zeros(0, np.int64)
        vals = (
            np.concatenate(chunks_val)
            if chunks_val
            else np.zeros(0, dtype=self._dtype)
        )
        return CSCMatrix((rows.size, cols.size), indptr, indices, vals, check=False)

    def __eq__(self, other: object) -> bool:
        """Exact structural and numerical equality."""
        if not isinstance(other, CSCMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)


def coo_to_csc(
    shape: tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray | None = None,
    *,
    sum_duplicates: bool = True,
) -> CSCMatrix:
    """Assemble COO triplets into a :class:`CSCMatrix`.

    Duplicate ``(row, col)`` entries are summed (the Matrix Market
    convention for assembled FEM matrices) unless ``sum_duplicates=False``,
    in which case duplicates are an error.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if vals is None:
        vals = np.ones(rows.size, dtype=np.float64)
    else:
        vals = _as_values(vals)
    if not (rows.size == cols.size == vals.size):
        raise ValueError("rows, cols, vals must have equal length")
    nrows, ncols = shape
    if rows.size and (rows.min() < 0 or rows.max() >= nrows):
        raise ValueError("row index out of range")
    if cols.size and (cols.min() < 0 or cols.max() >= ncols):
        raise ValueError("column index out of range")

    # sort by (col, row)
    order = np.lexsort((rows, cols))
    rows = rows[order]
    cols = cols[order]
    vals = vals[order]
    if rows.size:
        dup = np.zeros(rows.size, dtype=bool)
        dup[1:] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
        if dup.any():
            if not sum_duplicates:
                raise ValueError("duplicate entries present")
            # segment-sum duplicates into their first occurrence
            group = np.cumsum(~dup) - 1
            out_vals = np.zeros(int(group[-1]) + 1, dtype=vals.dtype)
            np.add.at(out_vals, group, vals)
            keep = ~dup
            rows, cols, vals = rows[keep], cols[keep], out_vals

    indptr = np.zeros(ncols + 1, dtype=np.int64)
    np.add.at(indptr, cols + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSCMatrix(shape, indptr, rows, vals, check=False)
