"""Synthetic analogues of the paper's 16 SuiteSparse test matrices.

The paper evaluates PanguLU on 16 matrices from the SuiteSparse collection
(Table 3).  Those files are not redistributable inside this offline
reproduction, so each one gets a *generator* that reproduces the structural
regime the paper attributes to it — the property that actually drives every
experiment:

==================  ==========================  ================================
paper matrix        application domain          structural regime reproduced
==================  ==========================  ================================
apache2             structural (3D)             3D 7-point grid Laplacian
ASIC_680k           circuit simulation          highly irregular: sparse rows +
                                                a few dense rows/columns
audikw_1            structural FEM              3D vector FEM, 3 dofs/node,
                                                27-point stencil (dense blocks)
cage12              DNA electrophoresis         nonsymmetric stochastic digraph
CoupCons3D          structural (coupled)        3D FEM with mixed dof coupling
dielFilterV3real    electromagnetics            3D edge-element-like FEM
ecology1            2D/3D model                 2D 5-point grid Laplacian
G3_circuit          circuit simulation          large 2D-grid-like, low degree
Ga41As41H72         quantum chemistry           clustered dense Hamiltonian
Hook_1498           structural FEM              3D FEM, 3 dofs/node
inline_1            structural FEM              3D shell-like FEM
ldoor               structural FEM              3D FEM, low fill
nlpkkt80            optimisation (KKT)          saddle-point [[H B^T];[B 0]]
Serena              structural/geomechanics     3D FEM, 3 dofs/node, large fill
Si87H76             quantum chemistry           clustered dense Hamiltonian
SiO2                quantum chemistry           clustered dense Hamiltonian
==================  ==========================  ================================

All generators are deterministic given ``seed`` and accept a size knob so the
benchmarks can run at Python-friendly scale (the default ``scale=1.0`` gives
matrices of order roughly 1–5k).  Values are chosen to keep static-pivoting
LU stable: diagonally dominant-ish with signed off-diagonals.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .csc import CSCMatrix, coo_to_csc

__all__ = [
    "MATRIX_GENERATORS",
    "generate",
    "paper_matrix_names",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "fem_3d",
    "circuit_like",
    "cage_like",
    "quantum_chemistry_like",
    "kkt_saddle_point",
    "random_sparse",
]


# ---------------------------------------------------------------------------
# primitive structure builders
# ---------------------------------------------------------------------------

def grid_laplacian_2d(nx: int, ny: int, *, rng: np.random.Generator | None = None,
                      jitter: float = 0.0) -> CSCMatrix:
    """5-point Laplacian on an ``nx × ny`` grid (SPD, very low fill)."""
    idx = np.arange(nx * ny).reshape(nx, ny)
    rows, cols, vals = [], [], []

    def add(r: np.ndarray, c: np.ndarray, v: np.ndarray) -> None:
        rows.append(r.ravel())
        cols.append(c.ravel())
        vals.append(v.ravel())

    diag = np.full(nx * ny, 4.0)
    if jitter and rng is not None:
        diag = diag + jitter * rng.random(nx * ny)
    add(idx, idx, diag.reshape(nx, ny))
    # horizontal and vertical couplings, both directions
    add(idx[:, :-1], idx[:, 1:], np.full((nx, ny - 1), -1.0))
    add(idx[:, 1:], idx[:, :-1], np.full((nx, ny - 1), -1.0))
    add(idx[:-1, :], idx[1:, :], np.full((nx - 1, ny), -1.0))
    add(idx[1:, :], idx[:-1, :], np.full((nx - 1, ny), -1.0))
    n = nx * ny
    return coo_to_csc((n, n), np.concatenate(rows), np.concatenate(cols),
                      np.concatenate(vals))


def grid_laplacian_3d(nx: int, ny: int, nz: int, *,
                      rng: np.random.Generator | None = None,
                      jitter: float = 0.0) -> CSCMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid."""
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    rows, cols, vals = [], [], []

    def add(r: np.ndarray, c: np.ndarray, v: float) -> None:
        rows.append(r.ravel())
        cols.append(c.ravel())
        vals.append(np.full(r.size, v))

    n = nx * ny * nz
    diag = np.full(n, 6.0)
    if jitter and rng is not None:
        diag = diag + jitter * rng.random(n)
    rows.append(idx.ravel())
    cols.append(idx.ravel())
    vals.append(diag)
    for axis in range(3):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        a, b = idx[tuple(lo)], idx[tuple(hi)]
        add(a, b, -1.0)
        add(b, a, -1.0)
    return coo_to_csc((n, n), np.concatenate(rows), np.concatenate(cols),
                      np.concatenate(vals))


def fem_3d(nx: int, ny: int, nz: int, *, dofs: int = 3, stencil: int = 27,
           seed: int = 0) -> CSCMatrix:
    """3D finite-element-like matrix: ``dofs`` unknowns per grid node,
    dense ``dofs × dofs`` coupling blocks over a 7- or 27-point stencil.

    This reproduces the regime of audikw_1 / Hook_1498 / Serena: locally
    dense node blocks, regular column structures, large fill.
    """
    if stencil not in (7, 27):
        raise ValueError("stencil must be 7 or 27")
    rng = np.random.default_rng(seed)
    nodes = nx * ny * nz
    idx = np.arange(nodes).reshape(nx, ny, nz)
    pairs_r: list[np.ndarray] = []
    pairs_c: list[np.ndarray] = []
    if stencil == 7:
        offsets = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    else:
        offsets = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        offsets = [o for o in offsets if o > (0, 0, 0)]  # one direction only
    for dx, dy, dz in offsets:
        sa = (
            slice(max(0, -dx), nx - max(0, dx)),
            slice(max(0, -dy), ny - max(0, dy)),
            slice(max(0, -dz), nz - max(0, dz)),
        )
        sb = (
            slice(max(0, dx), nx - max(0, -dx)),
            slice(max(0, dy), ny - max(0, -dy)),
            slice(max(0, dz), nz - max(0, -dz)),
        )
        a, b = idx[sa].ravel(), idx[sb].ravel()
        pairs_r.append(a)
        pairs_c.append(b)
    na = np.concatenate(pairs_r)
    nb = np.concatenate(pairs_c)

    # expand node pairs to dofs×dofs dense blocks, both directions + diagonal
    di, dj = np.meshgrid(np.arange(dofs), np.arange(dofs), indexing="ij")
    di, dj = di.ravel(), dj.ravel()

    def expand(nr: np.ndarray, nc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        r = (nr[:, None] * dofs + di[None, :]).ravel()
        c = (nc[:, None] * dofs + dj[None, :]).ravel()
        return r, c

    r1, c1 = expand(na, nb)
    r2, c2 = expand(nb, na)
    rd, cd = expand(np.arange(nodes), np.arange(nodes))
    rows = np.concatenate([r1, r2, rd])
    cols = np.concatenate([c1, c2, cd])
    # value-symmetric coupling blocks (stiffness matrices are symmetric):
    # the reversed node pair carries the transposed dof block
    off_blocks = -rng.random((na.size, dofs, dofs)) * 0.5
    off_vals = off_blocks.reshape(na.size, -1).ravel()
    off_vals_t = off_blocks.transpose(0, 2, 1).reshape(na.size, -1).ravel()
    diag_blocks = rng.random((nodes, dofs, dofs)) * 0.2
    diag_blocks = (diag_blocks + diag_blocks.transpose(0, 2, 1)) / 2.0
    diag_block_vals = diag_blocks.reshape(nodes, -1).ravel()
    vals = np.concatenate([off_vals, off_vals_t, diag_block_vals])
    n = nodes * dofs
    a = coo_to_csc((n, n), rows, cols, vals)
    # make strictly diagonally dominant for static-pivot stability
    rowsum = np.zeros(n)
    np.add.at(rowsum, a.indices, np.abs(a.data))
    bump = rowsum + 1.0
    rr, cc = a.rows_cols()
    diag_mask = rr == cc
    a.data[diag_mask] += bump[rr[diag_mask]]
    return a


def circuit_like(n: int, *, seed: int = 0, avg_degree: int = 4,
                 n_dense: int | None = None, dense_frac: float = 0.15) -> CSCMatrix:
    """Irregular circuit-simulation-like matrix (ASIC_680k / G3_circuit regime).

    Mostly very sparse rows (resistor/capacitor stamps between random nets)
    plus ``n_dense`` nearly-dense rows *and* columns modelling power/ground
    rails — the structure that defeats supernode aggregation.
    """
    rng = np.random.default_rng(seed)
    if n_dense is None:
        n_dense = max(2, n // 400)
    m = n * avg_degree
    r = rng.integers(0, n, size=m)
    c = rng.integers(0, n, size=m)
    keep = r != c
    r, c = r[keep], c[keep]
    v = rng.standard_normal(r.size) * 0.1
    # symmetric stamps (nodal analysis produces structural symmetry mostly)
    rows = [r, c]
    cols = [c, r]
    vals = [v, v]
    # dense rails: a handful of rows/cols touching a large random subset
    rail_ids = rng.choice(n, size=n_dense, replace=False)
    for rail in rail_ids:
        touched = rng.choice(n, size=int(n * dense_frac), replace=False)
        touched = touched[touched != rail]
        w = rng.standard_normal(touched.size) * 0.05
        rows += [np.full(touched.size, rail), touched]
        cols += [touched, np.full(touched.size, rail)]
        vals += [w, w]
    # dominant diagonal
    rows.append(np.arange(n))
    cols.append(np.arange(n))
    allr = np.concatenate(rows)
    allv = np.concatenate(vals + [np.zeros(n)])
    rowsum = np.zeros(n)
    np.add.at(rowsum, allr[: allv.size - n], np.abs(allv[: allv.size - n]))
    diag = rowsum + 1.0 + rng.random(n)
    vals.append(diag)
    return coo_to_csc((n, n), np.concatenate(rows), np.concatenate(cols),
                      np.concatenate(vals))


def cage_like(n: int, *, seed: int = 0, degree: int = 16) -> CSCMatrix:
    """Nonsymmetric weighted digraph (cage12 regime: DNA electrophoresis).

    cage matrices are column-stochastic-like transition matrices with
    moderate, *unsymmetric* degree and substantial fill under factorisation.
    Edges connect states within a bounded index distance (the cage model is
    a Markov chain on polymer configurations), which keeps fill heavy but
    bounded.
    """
    rng = np.random.default_rng(seed)
    spread = max(8, n // 24)
    r = np.repeat(np.arange(n), degree)
    c = r + rng.integers(-spread, spread + 1, size=r.size)
    keep = (c >= 0) & (c < n) & (c != r)
    r, c = r[keep], c[keep]
    v = rng.random(r.size) * 0.5 / degree
    rows = np.concatenate([r, np.arange(n)])
    cols = np.concatenate([c, np.arange(n)])
    vals = np.concatenate([-v, np.ones(n)])
    return coo_to_csc((n, n), rows, cols, vals)


def quantum_chemistry_like(n: int, *, seed: int = 0, cluster: int = 48,
                           inter_frac: float = 0.06) -> CSCMatrix:
    """Hamiltonian-like matrix (Si87H76 / SiO2 / Ga41As41H72 regime).

    Dense diagonal clusters (atomic orbital groups) with sparse random
    inter-cluster coupling.  Factorisation of these matrices is dominated by
    enormous, nearly-dense Schur complements — the regime where the paper
    reports PanguLU's largest Schur-time wins.
    """
    rng = np.random.default_rng(seed)
    n = (n // cluster) * cluster
    ncl = n // cluster
    rows, cols, vals = [], [], []
    # dense clusters on the diagonal
    di, dj = np.meshgrid(np.arange(cluster), np.arange(cluster), indexing="ij")
    for k in range(ncl):
        base = k * cluster
        rows.append((base + di).ravel())
        cols.append((base + dj).ravel())
        block = rng.standard_normal((cluster, cluster)) * 0.05
        block = (block + block.T) / 2
        vals.append(block.ravel())
    # sparse inter-cluster coupling
    m = int(n * n * inter_frac / max(ncl, 1))
    r = rng.integers(0, n, size=m)
    c = rng.integers(0, n, size=m)
    keep = (r // cluster) != (c // cluster)
    r, c = r[keep], c[keep]
    v = rng.standard_normal(r.size) * 0.02
    rows += [r, c]
    cols += [c, r]
    vals += [v, v]
    allr = np.concatenate(rows)
    allc = np.concatenate(cols)
    allv = np.concatenate(vals)
    a = coo_to_csc((n, n), allr, allc, allv)
    rowsum = np.zeros(n)
    np.add.at(rowsum, a.indices, np.abs(a.data))
    rr, cc = a.rows_cols()
    diag_mask = rr == cc
    a.data[diag_mask] += rowsum[rr[diag_mask]] + 1.0
    return a


def kkt_saddle_point(m: int, *, seed: int = 0) -> CSCMatrix:
    """Saddle-point KKT system (nlpkkt80 regime): ``[[H, B^T], [B, -delta I]]``.

    ``H`` is a 3D-grid Hessian block and ``B`` a sparse constraint Jacobian.
    The zero-ish (2,2) block and the wide ``B`` rows break supernode
    regularity exactly the way nlpkkt80 does.
    """
    rng = np.random.default_rng(seed)
    g = max(4, int(round(m ** (1.0 / 3.0))))
    h = grid_laplacian_3d(g, g, g, rng=rng, jitter=0.5)
    nh = h.nrows
    nc = nh // 2
    # B: each constraint couples a few random primal variables
    per = 5
    r = np.repeat(np.arange(nc), per)
    c = rng.integers(0, nh, size=r.size)
    v = rng.standard_normal(r.size)
    hr, hc = h.rows_cols()
    n = nh + nc
    rows = np.concatenate([hr, r + nh, c, np.arange(nh, n)])
    cols = np.concatenate([hc, c, r + nh, np.arange(nh, n)])
    vals = np.concatenate([h.data, v, v, np.full(nc, -1e-2)])
    return coo_to_csc((n, n), rows, cols, vals)


def random_sparse(n: int, density: float, *, seed: int = 0,
                  symmetric_pattern: bool = False) -> CSCMatrix:
    """Uniform random sparse matrix with a guaranteed dominant diagonal.

    The workhorse of the unit tests and property-based tests.
    """
    rng = np.random.default_rng(seed)
    m = max(0, int(n * n * density))
    r = rng.integers(0, n, size=m)
    c = rng.integers(0, n, size=m)
    keep = r != c
    r, c = r[keep], c[keep]
    v = rng.standard_normal(r.size)
    if symmetric_pattern:
        r, c = np.concatenate([r, c]), np.concatenate([c, r])
        v = np.concatenate([v, v * 0.5])
    rows = np.concatenate([r, np.arange(n)])
    cols = np.concatenate([c, np.arange(n)])
    a = coo_to_csc((n, n), rows, cols, np.concatenate([v, np.zeros(n)]))
    rowsum = np.zeros(n)
    np.add.at(rowsum, a.indices, np.abs(a.data))
    rr, cc = a.rows_cols()
    diag_mask = rr == cc
    a.data[diag_mask] = rowsum[rr[diag_mask]] + 1.0 + rng.random(int(diag_mask.sum()))
    return a


# ---------------------------------------------------------------------------
# the 16 named analogues
# ---------------------------------------------------------------------------

def _scaled(base: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(round(base * scale)))


def _gen_apache2(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(14, scale ** (1 / 3))
    return grid_laplacian_3d(g, g, g, rng=np.random.default_rng(seed), jitter=0.3)


def _gen_asic_680k(scale: float, seed: int) -> CSCMatrix:
    return circuit_like(_scaled(2600, scale), seed=seed, avg_degree=3,
                        n_dense=6, dense_frac=0.2)


def _gen_audikw_1(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(9, scale ** (1 / 3))
    return fem_3d(g, g, g, dofs=3, stencil=27, seed=seed)


def _gen_cage12(scale: float, seed: int) -> CSCMatrix:
    return cage_like(_scaled(1800, scale), seed=seed, degree=14)


def _gen_coupcons3d(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(9, scale ** (1 / 3))
    return fem_3d(g, g, g, dofs=4, stencil=7, seed=seed)


def _gen_dielfilterv3real(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(11, scale ** (1 / 3))
    return fem_3d(g, g, g, dofs=2, stencil=27, seed=seed)


def _gen_ecology1(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(52, scale ** 0.5)
    return grid_laplacian_2d(g, g, rng=np.random.default_rng(seed), jitter=0.3)


def _gen_g3_circuit(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(50, scale ** 0.5)
    a = grid_laplacian_2d(g, g, rng=np.random.default_rng(seed), jitter=0.2)
    return a


def _gen_ga41as41h72(scale: float, seed: int) -> CSCMatrix:
    n = _scaled(1536, scale)
    # cluster size scales with the matrix so the fill regime of the real
    # matrix (dense orbital clusters inside a fragmented global structure,
    # not one dense block) survives miniaturisation
    cluster = max(12, _scaled(64, scale ** 0.5))
    return quantum_chemistry_like(n, seed=seed, cluster=cluster,
                                  inter_frac=0.035)


def _gen_hook_1498(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(10, scale ** (1 / 3))
    return fem_3d(g, g, g, dofs=3, stencil=7, seed=seed)


def _gen_inline_1(scale: float, seed: int) -> CSCMatrix:
    # inline_1 is a shell structure (an inline skater): model it as a thin
    # slab rather than a cube, which changes the separator structure
    g = _scaled(16, scale ** (1 / 3))
    return fem_3d(g, g, max(2, g // 4), dofs=3, stencil=7, seed=seed + 1)


def _gen_ldoor(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(12, scale ** (1 / 3))
    return fem_3d(g, g, g, dofs=2, stencil=7, seed=seed)


def _gen_nlpkkt80(scale: float, seed: int) -> CSCMatrix:
    return kkt_saddle_point(_scaled(1700, scale), seed=seed)


def _gen_serena(scale: float, seed: int) -> CSCMatrix:
    g = _scaled(10, scale ** (1 / 3))
    return fem_3d(g, g, g, dofs=3, stencil=27, seed=seed + 2)


def _gen_si87h76(scale: float, seed: int) -> CSCMatrix:
    n = _scaled(1440, scale)
    cluster = max(12, _scaled(48, scale ** 0.5))
    return quantum_chemistry_like(n, seed=seed, cluster=cluster,
                                  inter_frac=0.045)


def _gen_sio2(scale: float, seed: int) -> CSCMatrix:
    n = _scaled(1280, scale)
    cluster = max(12, _scaled(40, scale ** 0.5))
    return quantum_chemistry_like(n, seed=seed + 3, cluster=cluster,
                                  inter_frac=0.03)


MATRIX_GENERATORS: dict[str, Callable[[float, int], CSCMatrix]] = {
    "apache2": _gen_apache2,
    "ASIC_680k": _gen_asic_680k,
    "audikw_1": _gen_audikw_1,
    "cage12": _gen_cage12,
    "CoupCons3D": _gen_coupcons3d,
    "dielFilterV3real": _gen_dielfilterv3real,
    "ecology1": _gen_ecology1,
    "G3_circuit": _gen_g3_circuit,
    "Ga41As41H72": _gen_ga41as41h72,
    "Hook_1498": _gen_hook_1498,
    "inline_1": _gen_inline_1,
    "ldoor": _gen_ldoor,
    "nlpkkt80": _gen_nlpkkt80,
    "Serena": _gen_serena,
    "Si87H76": _gen_si87h76,
    "SiO2": _gen_sio2,
}


def paper_matrix_names() -> list[str]:
    """The 16 matrix names from Table 3, in paper order."""
    return list(MATRIX_GENERATORS)


def generate(name: str, *, scale: float = 1.0, seed: int = 0) -> CSCMatrix:
    """Generate the synthetic analogue of a paper matrix by name.

    Parameters
    ----------
    name:
        One of :func:`paper_matrix_names` (case-sensitive, paper spelling).
    scale:
        Size knob; 1.0 gives orders of roughly 1–5k suited to pure-Python
        experiments, smaller values shrink proportionally.
    seed:
        Seed for the deterministic value/structure randomness.
    """
    try:
        gen = MATRIX_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; choose from {paper_matrix_names()}"
        ) from None
    return gen(scale, seed)
