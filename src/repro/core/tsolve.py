"""Block triangular solves — phase 5 of PanguLU.

After numeric factorisation the block matrix holds ``L`` (strictly below
the diagonal blocks plus the unit-lower part of each diagonal block) and
``U`` (diagonal and above).  Solving ``A x = b`` finishes with
``L y = b`` (forward, by block columns) and ``U x = y`` (backward).
Both sweeps reuse the two-layer structure: the diagonal block solves are
within-block sparse substitutions; the off-diagonal updates are block
mat-vecs over stored entries only.

Two execution paths share the same kernels
(:mod:`repro.kernels.tsolve_kernels`):

* the legacy **loop sweeps** :func:`block_forward` / :func:`block_backward`
  — fixed k-ascending/-descending order, no scheduler (also the transposed
  solves, which have no DAG path);
* the **scheduler path** — :func:`build_tsolve_dag(..., executable=True)
  <repro.core.tsolve_dag.build_tsolve_dag>` tasks drained through the
  shared :class:`~repro.runtime.scheduler.SchedulerCore`, exactly like the
  numeric phase.  :func:`tsolve_sequential` is the one-lane replay
  (this module's analogue of :func:`repro.core.numeric.factorize`); the
  threaded and distributed variants live in :mod:`repro.runtime` and are
  dispatched by name through :mod:`repro.runtime.engines`.  Same-target
  updates are chained in the DAG, so every engine reproduces the loop
  sweeps' floating-point operation order bit-for-bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..kernels.plans import PlanCache
from ..kernels.tsolve_kernels import (
    SpMVPlan,
    build_spmv_plan,
    diagb_seg,
    diagf_seg,
    updb_seg,
    updf_seg,
)
from ..runtime.scheduler import EventRecorder, SchedulerCore
from ..sparse.csc import CSCMatrix
from .blocking import BlockMatrix
from .tsolve_dag import TSolveDAG, TSolveTaskType, build_tsolve_dag

__all__ = [
    "solve_lower_unit",
    "solve_upper",
    "block_forward",
    "block_backward",
    "block_forward_trans",
    "block_backward_trans",
    "solve_lower_trans_u",
    "solve_upper_trans_l",
    "TSolveStats",
    "tsolve_entries",
    "tsolve_core",
    "tsolve_write_slots",
    "tsolve_task_label",
    "resolve_spmv_plan",
    "execute_tsolve_task",
    "tsolve_sequential",
]


def solve_lower_unit(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← L⁻¹ y`` with the unit-lower part of a factored
    diagonal block (alias of :func:`repro.kernels.tsolve_kernels.diagf_seg`,
    kept under its historical name)."""
    diagf_seg(diag, y)


def solve_upper(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← U⁻¹ y`` with the upper part (incl. diagonal) of a
    factored diagonal block (alias of
    :func:`repro.kernels.tsolve_kernels.diagb_seg`)."""
    diagb_seg(diag, y)


def _block_matvec_sub(blk: CSCMatrix, x_seg: np.ndarray, y_seg: np.ndarray) -> None:
    """``y_seg -= blk @ x_seg`` over stored entries only (vector or panel)."""
    updf_seg(y_seg, blk, x_seg)


def block_forward(f: BlockMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` over the factored block matrix.

    ``b`` may be a vector of length ``n`` or an ``(n, k)`` array of ``k``
    right-hand sides (solved simultaneously, vectorised across columns).
    """
    y = np.asarray(b, dtype=np.float64).copy()
    if y.shape[0] != f.n or y.ndim > 2:
        raise ValueError(f"rhs has shape {y.shape}, expected ({f.n},) or ({f.n}, k)")
    for k in range(f.nb):
        seg = f.block_slice(k)
        diag = f.block(k, k)
        assert diag is not None
        solve_lower_unit(diag, y[seg])
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi <= k:
                continue
            tgt = f.block_slice(bi)
            _block_matvec_sub(blk, y[seg], y[tgt])
    return y


def block_backward(f: BlockMatrix, y: np.ndarray) -> np.ndarray:
    """Solve ``U x = y`` over the factored block matrix (vector or
    ``(n, k)`` multi-RHS array)."""
    x = np.asarray(y, dtype=np.float64).copy()
    if x.shape[0] != f.n or x.ndim > 2:
        raise ValueError(f"rhs has shape {x.shape}, expected ({f.n},) or ({f.n}, k)")
    for k in range(f.nb - 1, -1, -1):
        seg = f.block_slice(k)
        diag = f.block(k, k)
        assert diag is not None
        solve_upper(diag, x[seg])
        # propagate x_k into earlier block rows through U column k blocks
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi >= k:
                continue
            tgt = f.block_slice(bi)
            _block_matvec_sub(blk, x[seg], x[tgt])
    return x


def _block_matvec_t_sub(blk: CSCMatrix, x_seg: np.ndarray, y_seg: np.ndarray) -> None:
    """``y_seg -= blkᵀ @ x_seg`` over stored entries only."""
    cols = np.repeat(np.arange(blk.ncols), np.diff(blk.indptr))
    np.subtract.at(y_seg, cols, blk.data * x_seg[blk.indices])


def solve_lower_trans_u(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← U⁻ᵀ y`` with the upper part of a factored diagonal
    block (``Uᵀ`` is non-unit lower triangular; forward substitution using
    ``U``'s columns as ``Uᵀ``'s rows)."""
    n = diag.ncols
    data = diag.data
    for j in range(n):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        vals = data[sl]
        dpos = int(np.searchsorted(rows, j))
        if dpos >= rows.size or rows[dpos] != j or vals[dpos] == 0.0:
            raise ZeroDivisionError(f"zero or missing U diagonal at {j}")
        if dpos > 0:
            y[j] -= vals[:dpos] @ y[rows[:dpos]]
        y[j] /= vals[dpos]


def solve_upper_trans_l(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← L⁻ᵀ y`` with the unit-lower part of a factored
    diagonal block (``Lᵀ`` is unit upper triangular; backward
    substitution using ``L``'s columns as ``Lᵀ``'s rows)."""
    n = diag.ncols
    data = diag.data
    for j in range(n - 1, -1, -1):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        start = int(np.searchsorted(rows, j + 1))
        if start < rows.size:
            y[j] -= data[sl][start:] @ y[rows[start:]]


def block_forward_trans(f: BlockMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``Uᵀ y = b`` over the factored block matrix (the forward
    sweep of a transposed solve ``(LU)ᵀ v = b``)."""
    y = np.asarray(b, dtype=np.float64).copy()
    if y.shape != (f.n,):
        raise ValueError(f"rhs has shape {y.shape}, expected ({f.n},)")
    for k in range(f.nb):
        seg = f.block_slice(k)
        # contributions from earlier segments through U blocks above the
        # diagonal in block column k (their transposes sit in row k of Uᵀ)
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi >= k:
                continue
            src = f.block_slice(bi)
            _block_matvec_t_sub(blk, y[src], y[seg])
        diag = f.block(k, k)
        assert diag is not None
        solve_lower_trans_u(diag, y[seg])
    return y


def block_backward_trans(f: BlockMatrix, y: np.ndarray) -> np.ndarray:
    """Solve ``Lᵀ x = y`` over the factored block matrix (the backward
    sweep of a transposed solve)."""
    x = np.asarray(y, dtype=np.float64).copy()
    if x.shape != (f.n,):
        raise ValueError(f"rhs has shape {x.shape}, expected ({f.n},)")
    for k in range(f.nb - 1, -1, -1):
        seg = f.block_slice(k)
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi <= k:
                continue
            src = f.block_slice(bi)
            _block_matvec_t_sub(blk, x[src], x[seg])
        diag = f.block(k, k)
        assert diag is not None
        solve_upper_trans_l(diag, x[seg])
    return x


# ----------------------------------------------------------------------
# the scheduler path: TSolveDAG tasks through the shared SchedulerCore
# ----------------------------------------------------------------------

_KIND_NAMES = {int(t): t.name for t in TSolveTaskType}

#: task kinds that write the forward (`y`) array / the backward (`x`) array
_Y_WRITERS = (int(TSolveTaskType.DIAG_F), int(TSolveTaskType.UPD_F))


@dataclass
class TSolveStats:
    """Accounting of one engine-driven triangular solve (both sweeps)."""

    engine: str = "sequential"
    tasks_executed: int = 0
    nrhs: int = 1
    n_workers: int = 1
    n_procs: int = 1
    messages_sent: int = 0
    seg_bytes_sent: float = 0.0
    max_ready_depth: int = 0
    seconds: float = 0.0


def tsolve_task_label(tdag: TSolveDAG, tid: int) -> str:
    """Trace label of a solve task: ``DIAG_F(k=3)`` / ``UPD_B(9→2)``."""
    kind = int(tdag.kinds[tid])
    k, tgt = int(tdag.k_of[tid]), int(tdag.target[tid])
    name = _KIND_NAMES[kind]
    if kind in (TSolveTaskType.DIAG_F, TSolveTaskType.DIAG_B):
        return f"{name}(k={k})"
    return f"{name}({k}→{tgt})"


def tsolve_entries(tdag: TSolveDAG, nb: int) -> list[tuple[int, int, int]]:
    """Precomputed ready-heap entries: forward tasks by ascending source
    segment, backward tasks by descending — the elimination-step priority
    of Section 4.4 carried over to the solve sweeps."""
    entries = []
    for tid in range(len(tdag)):
        kind = int(tdag.kinds[tid])
        k = int(tdag.k_of[tid])
        prio = k if kind in _Y_WRITERS else 2 * nb - 1 - k
        entries.append((prio, kind, tid))
    return entries


def tsolve_core(
    tdag: TSolveDAG,
    nb: int,
    *,
    owned=None,
    recorder: EventRecorder | None = None,
    lane: int = 0,
) -> SchedulerCore:
    """A :class:`SchedulerCore` over the solve DAG's flat arrays."""
    return SchedulerCore(
        tsolve_entries(tdag, nb),
        [np.asarray(s, dtype=np.int64) for s in tdag.successors],
        tdag.n_deps,
        owned=owned,
        recorder=recorder,
        lane=lane,
    )


def tsolve_write_slots(tdag: TSolveDAG, tid: int, nb: int) -> tuple[int, ...]:
    """Race-checker slots a task writes: slot ``i`` is the ``y`` segment
    ``i``, slot ``nb + i`` the ``x`` segment ``i``.  ``DIAG_F`` claims
    both (it finishes ``y[i]`` and seeds ``x[i]``)."""
    kind = int(tdag.kinds[tid])
    tgt = int(tdag.target[tid])
    if kind == TSolveTaskType.DIAG_F:
        return (tgt, nb + tgt)
    if kind == TSolveTaskType.UPD_F:
        return (tgt,)
    return (nb + tgt,)


def resolve_spmv_plan(
    f, tgt: int, k: int, blk: CSCMatrix, plans: PlanCache | None
) -> SpMVPlan | None:
    """The cached scatter plan of update block ``(tgt, k)``, built on
    first use.  Keyed by storage slot like the factorisation plans —
    patterns are immutable post-symbolic, so the plan survives repeated
    solves and refactorisations."""
    if plans is None:
        return None
    return plans.get(("spmv", f.block_slot(tgt, k)), lambda: build_spmv_plan(blk))


def execute_tsolve_task(
    f,
    tdag: TSolveDAG,
    tid: int,
    y: np.ndarray,
    x: np.ndarray,
    plans: PlanCache | None = None,
) -> None:
    """Run one solve task against the forward/backward RHS arrays.

    The shared per-task entry point of the sequential, threaded and
    distributed solve engines (the phase-5 analogue of
    :func:`repro.core.numeric.execute_task`).  ``f`` is anything exposing
    ``block_slice``/``block``/``block_order``/``block_slot`` — a
    :class:`BlockMatrix` or a distributed rank's local view.
    """
    kind = int(tdag.kinds[tid])
    k = int(tdag.k_of[tid])
    tgt = int(tdag.target[tid])
    seg = f.block_slice(tgt)
    if kind == TSolveTaskType.DIAG_F:
        diagf_seg(f.block(k, k), y[seg])
        x[seg] = y[seg]  # seed the backward sweep with the forward result
    elif kind == TSolveTaskType.DIAG_B:
        diagb_seg(f.block(k, k), x[seg])
    else:
        blk = f.block(tgt, k)
        src = f.block_slice(k)
        plan = resolve_spmv_plan(f, tgt, k, blk, plans)
        if kind == TSolveTaskType.UPD_F:
            updf_seg(y[seg], blk, y[src], plan)
        else:
            updb_seg(x[seg], blk, x[src], plan)


def _check_rhs(n: int, b: np.ndarray) -> np.ndarray:
    y = np.array(b, dtype=np.float64)
    if y.shape[0] != n or y.ndim > 2:
        raise ValueError(f"rhs has shape {y.shape}, expected ({n},) or ({n}, k)")
    return y


def tsolve_sequential(
    f: BlockMatrix,
    b: np.ndarray,
    *,
    tdag: TSolveDAG | None = None,
    plans: PlanCache | None = None,
    recorder: EventRecorder | None = None,
    checker=None,
) -> tuple[np.ndarray, TSolveStats]:
    """Both triangular sweeps as a one-lane replay of the solve DAG —
    the scheduler-path correctness reference (bit-identical to
    ``block_backward(f, block_forward(f, b))``).

    ``b`` may be a vector or an ``(n, k)`` multi-RHS panel.  Pass a
    ``recorder`` for solve-task trace lanes and a ``checker``
    (:class:`~repro.devtools.racecheck.RaceChecker`) to audit the
    single-writer discipline over RHS segments.
    """
    if tdag is None:
        tdag = build_tsolve_dag(f, lambda bi, bj: 0, executable=True)
    y = _check_rhs(f.n, b)
    x = np.empty_like(y)
    t_start = time.perf_counter()
    core = tsolve_core(tdag, f.nb, recorder=recorder)
    if checker is not None:
        from ..devtools.racecheck import CheckedSchedulerCore

        core = CheckedSchedulerCore.adopt(core, checker)
    stats = TSolveStats(nrhs=1 if y.ndim == 1 else y.shape[1])
    # pop/complete auditing is wired into the adopted core; only the
    # write claims are reported here where the slots are known
    while (tid := core.pop()) is not None:
        slots = tsolve_write_slots(tdag, tid, f.nb)
        if checker is not None:
            for s in slots:
                checker.begin_write(s, tid, 0)
        t0 = recorder.now() if recorder else 0.0
        try:
            execute_tsolve_task(f, tdag, tid, y, x, plans)
        finally:
            if checker is not None:
                for s in slots:
                    checker.end_write(s, tid, 0)
        if recorder:
            recorder.task(
                0, tsolve_task_label(tdag, tid),
                _KIND_NAMES[int(tdag.kinds[tid])], t0, recorder.now(), tid,
            )
        core.complete(tid)
        stats.tasks_executed += 1
    core.check("tsolve-sequential")
    if checker is not None:
        checker.final_check(core)
    stats.max_ready_depth = core.max_ready_depth
    stats.seconds = time.perf_counter() - t_start
    return x, stats
