"""Block triangular solves — phase 5 of PanguLU.

After numeric factorisation the block matrix holds ``L`` (strictly below
the diagonal blocks plus the unit-lower part of each diagonal block) and
``U`` (diagonal and above).  Solving ``A x = b`` finishes with
``L y = b`` (forward, by block columns) and ``U x = y`` (backward).
Both sweeps reuse the two-layer structure: the diagonal block solves are
within-block sparse substitutions; the off-diagonal updates are block
mat-vecs over stored entries only.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSCMatrix
from .blocking import BlockMatrix

__all__ = [
    "solve_lower_unit",
    "solve_upper",
    "block_forward",
    "block_backward",
    "block_forward_trans",
    "block_backward_trans",
    "solve_lower_trans_u",
    "solve_upper_trans_l",
]


def solve_lower_unit(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← L⁻¹ y`` with the unit-lower part of a factored
    diagonal block.  ``y`` may be a vector or a 2-D multi-RHS panel."""
    n = diag.ncols
    data = diag.data
    multi = y.ndim == 2
    for j in range(n):
        yj = y[j]
        if not (yj.any() if multi else yj != 0.0):
            continue
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        start = int(np.searchsorted(rows, j + 1))
        if start < rows.size:
            if multi:
                y[rows[start:]] -= np.outer(data[sl][start:], yj)
            else:
                y[rows[start:]] -= data[sl][start:] * yj


def solve_upper(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← U⁻¹ y`` with the upper part (incl. diagonal) of a
    factored diagonal block.  ``y`` may be a vector or a 2-D panel."""
    n = diag.ncols
    data = diag.data
    multi = y.ndim == 2
    for j in range(n - 1, -1, -1):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        vals = data[sl]
        dpos = int(np.searchsorted(rows, j))
        if dpos >= rows.size or rows[dpos] != j or vals[dpos] == 0.0:
            raise ZeroDivisionError(f"zero or missing U diagonal at {j}")
        y[j] /= vals[dpos]
        yj = y[j]
        if dpos > 0 and (yj.any() if multi else yj != 0.0):
            if multi:
                y[rows[:dpos]] -= np.outer(vals[:dpos], yj)
            else:
                y[rows[:dpos]] -= vals[:dpos] * yj


def _block_matvec_sub(blk: CSCMatrix, x_seg: np.ndarray, y_seg: np.ndarray) -> None:
    """``y_seg -= blk @ x_seg`` over stored entries only (vector or panel)."""
    cols = np.repeat(np.arange(blk.ncols), np.diff(blk.indptr))
    if x_seg.ndim == 2:
        np.subtract.at(y_seg, blk.indices, blk.data[:, None] * x_seg[cols])
    else:
        np.subtract.at(y_seg, blk.indices, blk.data * x_seg[cols])


def block_forward(f: BlockMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` over the factored block matrix.

    ``b`` may be a vector of length ``n`` or an ``(n, k)`` array of ``k``
    right-hand sides (solved simultaneously, vectorised across columns).
    """
    y = np.asarray(b, dtype=np.float64).copy()
    if y.shape[0] != f.n or y.ndim > 2:
        raise ValueError(f"rhs has shape {y.shape}, expected ({f.n},) or ({f.n}, k)")
    bs = f.bs
    for k in range(f.nb):
        seg = slice(k * bs, k * bs + f.block_order(k))
        diag = f.block(k, k)
        assert diag is not None
        solve_lower_unit(diag, y[seg])
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi <= k:
                continue
            tgt = slice(bi * bs, bi * bs + f.block_order(bi))
            _block_matvec_sub(blk, y[seg], y[tgt])
    return y


def block_backward(f: BlockMatrix, y: np.ndarray) -> np.ndarray:
    """Solve ``U x = y`` over the factored block matrix (vector or
    ``(n, k)`` multi-RHS array)."""
    x = np.asarray(y, dtype=np.float64).copy()
    if x.shape[0] != f.n or x.ndim > 2:
        raise ValueError(f"rhs has shape {x.shape}, expected ({f.n},) or ({f.n}, k)")
    bs = f.bs
    for k in range(f.nb - 1, -1, -1):
        seg = slice(k * bs, k * bs + f.block_order(k))
        diag = f.block(k, k)
        assert diag is not None
        solve_upper(diag, x[seg])
        # propagate x_k into earlier block rows through U column k blocks
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi >= k:
                continue
            tgt = slice(bi * bs, bi * bs + f.block_order(bi))
            _block_matvec_sub(blk, x[seg], x[tgt])
    return x


def _block_matvec_t_sub(blk: CSCMatrix, x_seg: np.ndarray, y_seg: np.ndarray) -> None:
    """``y_seg -= blkᵀ @ x_seg`` over stored entries only."""
    cols = np.repeat(np.arange(blk.ncols), np.diff(blk.indptr))
    np.subtract.at(y_seg, cols, blk.data * x_seg[blk.indices])


def solve_lower_trans_u(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← U⁻ᵀ y`` with the upper part of a factored diagonal
    block (``Uᵀ`` is non-unit lower triangular; forward substitution using
    ``U``'s columns as ``Uᵀ``'s rows)."""
    n = diag.ncols
    data = diag.data
    for j in range(n):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        vals = data[sl]
        dpos = int(np.searchsorted(rows, j))
        if dpos >= rows.size or rows[dpos] != j or vals[dpos] == 0.0:
            raise ZeroDivisionError(f"zero or missing U diagonal at {j}")
        if dpos > 0:
            y[j] -= vals[:dpos] @ y[rows[:dpos]]
        y[j] /= vals[dpos]


def solve_upper_trans_l(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← L⁻ᵀ y`` with the unit-lower part of a factored
    diagonal block (``Lᵀ`` is unit upper triangular; backward
    substitution using ``L``'s columns as ``Lᵀ``'s rows)."""
    n = diag.ncols
    data = diag.data
    for j in range(n - 1, -1, -1):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        start = int(np.searchsorted(rows, j + 1))
        if start < rows.size:
            y[j] -= data[sl][start:] @ y[rows[start:]]


def block_forward_trans(f: BlockMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``Uᵀ y = b`` over the factored block matrix (the forward
    sweep of a transposed solve ``(LU)ᵀ v = b``)."""
    y = np.asarray(b, dtype=np.float64).copy()
    if y.shape != (f.n,):
        raise ValueError(f"rhs has shape {y.shape}, expected ({f.n},)")
    bs = f.bs
    for k in range(f.nb):
        seg = slice(k * bs, k * bs + f.block_order(k))
        # contributions from earlier segments through U blocks above the
        # diagonal in block column k (their transposes sit in row k of Uᵀ)
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi >= k:
                continue
            src = slice(bi * bs, bi * bs + f.block_order(bi))
            _block_matvec_t_sub(blk, y[src], y[seg])
        diag = f.block(k, k)
        assert diag is not None
        solve_lower_trans_u(diag, y[seg])
    return y


def block_backward_trans(f: BlockMatrix, y: np.ndarray) -> np.ndarray:
    """Solve ``Lᵀ x = y`` over the factored block matrix (the backward
    sweep of a transposed solve)."""
    x = np.asarray(y, dtype=np.float64).copy()
    if x.shape != (f.n,):
        raise ValueError(f"rhs has shape {x.shape}, expected ({f.n},)")
    bs = f.bs
    for k in range(f.nb - 1, -1, -1):
        seg = slice(k * bs, k * bs + f.block_order(k))
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi <= k:
                continue
            src = slice(bi * bs, bi * bs + f.block_order(bi))
            _block_matvec_t_sub(blk, x[src], x[seg])
        diag = f.block(k, k)
        assert diag is not None
        solve_upper_trans_l(diag, x[seg])
    return x
