"""Numeric factorisation driver.

Executes the task DAG on the blocked matrix *in place*: after
:func:`factorize`, every diagonal block holds its LU factors (unit-lower
``L`` implicit, ``U`` on and above the diagonal), blocks below the
diagonal hold ``L``, blocks above hold ``U``.

Execution follows the synchronisation-free discipline of Section 4.4: a
ready-heap ordered by priority (earlier elimination step first — the
critical path — then kernel class), counters per task, counter decrements
on completion.  That discipline lives exactly once, in
:class:`repro.runtime.scheduler.SchedulerCore`; this module is the
*sequential* engine draining one core, the threaded engine
(:mod:`repro.runtime.threaded`) shares a core between workers, the
distributed engine (:mod:`repro.runtime.distributed`) gives each rank a
core over its owned tasks, and :mod:`repro.runtime.simulator` models the
same protocol in virtual time — all replay the same DAG.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from ..kernels.base import Workspace
from ..kernels.compress import CompressPolicy, try_compress
from ..runtime.scheduler import EventRecorder, SchedulerCore, WorkerLocal, ready_entry
from ..kernels.plans import (
    PlanCache,
    build_gessm_plan,
    build_getrf_plan,
    build_ssssm_plan,
    build_tstrf_plan,
    rebase_ssssm_plan,
    run_gessm_plan,
    run_getrf_plan,
    run_ssssm_plan,
    run_ssssm_plan_arena,
    run_tstrf_plan,
)
from ..kernels.registry import KernelType, get_kernel, plan_capable
from ..kernels.selector import SelectorPolicy, TaskFeatures
from ..sparse.blockrep import CompressedBlock, lr_profit_cap
from .blocking import BlockMatrix
from .dag import Task, TaskDAG, TaskType

__all__ = [
    "NumericOptions",
    "FactorizeStats",
    "factorize",
    "task_features",
    "run_task",
    "execute_task",
    "resolve_plan_cache",
    "resolve_compress",
    "ready_entry",
    "push_ready",
]

_TTYPE_TO_KTYPE = {
    TaskType.GETRF: KernelType.GETRF,
    TaskType.GESSM: KernelType.GESSM,
    TaskType.TSTRF: KernelType.TSTRF,
    TaskType.SSSSM: KernelType.SSSSM,
}


@dataclass
class NumericOptions:
    """Configuration of the numeric phase.

    Attributes
    ----------
    selector:
        Kernel-selection policy (decision trees by default; a fixed
        baseline for the Fig. 14 ablation).
    pivot_floor:
        Relative static-pivot replacement threshold: a pivot smaller in
        magnitude than ``pivot_floor · max|block|`` is replaced by that
        bound with matching sign (SuperLU GESP policy).  0 disables the
        replacement and raises on exact zeros.
    use_plans:
        Execute the sparse-addressing kernel variants through cached
        fixed-pattern execution plans (:mod:`repro.kernels.plans`).
        Planned execution is bit-identical to the unplanned kernels; the
        flag exists for the Fig. 14-style planned-vs-unplanned ablation.
    plan_entry_limit:
        Per-task cap on SSSSM scatter-map entries; products whose plan
        would exceed it fall back to unplanned execution (memory valve).
        ``None`` removes the cap.
    compress_tol:
        Relative spectral tolerance for the low-rank block overlay
        (``SolverOptions.compress_tol`` syncs here).  0 — the default —
        disables compression entirely: no overlay is consulted or
        written, and every engine is bit-identical to the
        pre-compression code path.
    compress_min_order:
        Smallest ``min(m, n)`` a GESSM/TSTRF output block must reach
        before a compression attempt (small blocks never amortise the
        SVD).
    """

    selector: SelectorPolicy = field(default_factory=SelectorPolicy.default)
    pivot_floor: float = 1e-12
    use_plans: bool = True
    plan_entry_limit: int | None = 4_000_000
    compress_tol: float = 0.0
    compress_min_order: int = 32


@dataclass
class FactorizeStats:
    """Per-run accounting: task counts, chosen kernel versions, timings."""

    kernel_choices: dict[int, str] = field(default_factory=dict)
    tasks_executed: int = 0
    seconds_total: float = 0.0
    seconds_by_type: dict[str, float] = field(default_factory=dict)
    flops_total: int = 0
    pivots_replaced: int = 0
    planned_tasks: int = 0
    plan_bytes: int = 0
    blocks_compressed: int = 0
    lr_value_bytes: int = 0

    def version_histogram(self) -> dict[str, int]:
        """Count of executed tasks per ``TYPE/VERSION`` label."""
        out: dict[str, int] = {}
        for label in self.kernel_choices.values():
            out[label] = out.get(label, 0) + 1
        return out


def _compressed(f, bi: int, bj: int):
    """The low-rank overlay of block ``(bi, bj)`` if the structure keeps
    one (``BlockMatrix`` and the distributed ``_LocalView`` both do);
    ``None`` otherwise.  ``getattr``-based so hand-built test doubles
    without an overlay keep working."""
    get = getattr(f, "compressed_block", None)
    return get(bi, bj) if get is not None else None


def _ssssm_operand(f, bi: int, bj: int):
    """The representation an SSSSM consumer should multiply with: the
    low-rank overlay when present, else the exact CSC block.  On remote
    ranks only the overlay may exist (the transport shipped U/V, not the
    CSC arrays)."""
    cb = _compressed(f, bi, bj)
    return cb if cb is not None else f.block(bi, bj)


def task_features(f: BlockMatrix, task: Task) -> TaskFeatures:
    """Structural features of a task for the decision-tree selector.

    SSSSM operands are looked up through the representation layer:
    compressed operands contribute their exact-payload ``nnz`` (shipped
    as ``src_nnz`` with the factors, so local and remote ranks compute
    identical features) plus the ``lr_operands``/``rank`` features the
    low-rank branches of the tree split on.
    """
    target = f.block(task.bi, task.bj)
    assert target is not None
    if task.ttype == TaskType.GETRF:
        return TaskFeatures(
            nnz_a=target.nnz,
            flops=task.flops,
            n=target.ncols,
            density=target.density,
        )
    if task.ttype in (TaskType.GESSM, TaskType.TSTRF):
        diag = f.block(task.k, task.k)
        assert diag is not None
        return TaskFeatures(
            nnz_a=diag.nnz,
            nnz_b=target.nnz,
            flops=task.flops,
            n=diag.ncols,
            density=target.density,
        )
    a_rep = _ssssm_operand(f, task.bi, task.k)
    b_rep = _ssssm_operand(f, task.k, task.bj)
    assert a_rep is not None and b_rep is not None
    a_rank = a_rep.rank if isinstance(a_rep, CompressedBlock) else 0
    b_rank = b_rep.rank if isinstance(b_rep, CompressedBlock) else 0
    return TaskFeatures(
        nnz_a=a_rep.nnz,
        nnz_b=b_rep.nnz,
        flops=task.flops,
        n=a_rep.ncols,
        density=target.density,
        lr_operands=int(a_rank > 0) + int(b_rank > 0),
        rank=max(a_rank, b_rank),
    )


def resolve_plan_cache(f: BlockMatrix, options: NumericOptions) -> PlanCache | None:
    """The plan cache of this block structure, or ``None`` with plans off.

    The cache lives on the :class:`BlockMatrix` (created on first use) so
    plans follow the pattern they address — shared by every engine that
    factorises the same structure and reused across refactorisations.
    """
    if not options.use_plans:
        return None
    cache = f.plan_cache
    if cache is None:
        cache = f.plan_cache = PlanCache(ssssm_entry_limit=options.plan_entry_limit)
    return cache


def resolve_compress(options: NumericOptions) -> CompressPolicy | None:
    """The compression policy implied by the options, or ``None`` when
    compression is off (``compress_tol <= 0``) — the default path, where
    ``execute_task`` never touches the overlay machinery."""
    if options.compress_tol <= 0.0:
        return None
    tree = options.selector.trees.get(KernelType.COMPRESS)
    return CompressPolicy(
        tol=options.compress_tol,
        min_order=options.compress_min_order,
        tree=tree,
    )


def _maybe_compress(f, task: Task, policy: CompressPolicy) -> None:
    """Try to install a low-rank overlay for a just-computed GESSM/TSTRF
    panel block.  Runs inside the caller's write-lock window for the
    target slot, so the RaceChecker still sees a single writer; the
    exact CSC payload is left untouched (the overlay is additive)."""
    target = f.block(task.bi, task.bj)
    if target is None:
        return
    m, n = target.shape
    cap = lr_profit_cap(m, n, target.nnz)
    feats = TaskFeatures(
        nnz_a=target.nnz, n=min(m, n), density=target.density, rank=cap
    )
    cb = try_compress(target, policy, feats)
    if cb is not None:
        f.set_compressed(task.bi, task.bj, cb.u, cb.v, src_nnz=cb.src_nnz)


def _try_planned(
    f: BlockMatrix, task: Task, ktype: KernelType, plans: PlanCache, pivot_floor: float
) -> int | None:
    """Execute a task through its cached execution plan.

    Returns the replaced-pivot count, or ``None`` when no plan applies
    (SSSSM declined over the entry limit) — the caller falls back to the
    unplanned kernel.  Plans are keyed by the storage slots of the
    participating blocks: patterns are immutable post-symbolic, so a slot
    identifies a pattern for the life of the structure.

    On an arena-backed structure the SSSSM scatter maps are rebased to
    **slab-global** offsets and executed directly on the shared value
    slab (same indexing order — bit-identical); distributed workers
    operate on a :class:`~repro.runtime.distributed._LocalView` without
    an arena and keep the block-local form.

    Keys carry the value dtype character alongside the slots: the plans
    themselves are index-only (dtype-agnostic), but keying on dtype keeps
    a shared cache coherent if the same structure is ever re-partitioned
    at a different working precision (refactorize carries the cache
    across partitions).
    """
    target = f.block(task.bi, task.bj)
    dc = target.data.dtype.char
    if ktype is KernelType.GETRF:
        slot = f.block_slot(task.bi, task.bj)
        plan = plans.get(("getrf", slot, dc), lambda: build_getrf_plan(target))
        return run_getrf_plan(plan, target, pivot_floor=pivot_floor)
    if ktype is KernelType.GESSM or ktype is KernelType.TSTRF:
        diag = f.block(task.k, task.k)
        key = (
            "gessm" if ktype is KernelType.GESSM else "tstrf",
            f.block_slot(task.k, task.k),
            f.block_slot(task.bi, task.bj),
            dc,
        )
        if ktype is KernelType.GESSM:
            plan = plans.get(key, lambda: build_gessm_plan(diag, target))
            run_gessm_plan(plan, diag, target)
        else:
            plan = plans.get(key, lambda: build_tstrf_plan(diag, target))
            run_tstrf_plan(plan, diag, target)
        return 0
    a_blk = f.block(task.bi, task.k)
    b_blk = f.block(task.k, task.bj)
    sa = f.block_slot(task.bi, task.k)
    sb = f.block_slot(task.k, task.bj)
    sc = f.block_slot(task.bi, task.bj)
    arena = getattr(f, "arena", None)
    if arena is not None:
        plan = plans.get(
            ("ssssm@arena", sa, sb, sc, dc),
            lambda: rebase_ssssm_plan(
                build_ssssm_plan(
                    target, a_blk, b_blk, entry_limit=plans.ssssm_entry_limit
                ),
                int(arena.val_off[sa]),
                int(arena.val_off[sb]),
                int(arena.val_off[sc]),
            ),
        )
        if plan is None:
            return None
        run_ssssm_plan_arena(plan, arena.data)
        return 0
    plan = plans.get(
        ("ssssm", sa, sb, sc, dc),
        lambda: build_ssssm_plan(
            target, a_blk, b_blk, entry_limit=plans.ssssm_entry_limit
        ),
    )
    if plan is None:
        return None
    run_ssssm_plan(plan, target, a_blk, b_blk)
    return 0


def execute_task(
    f: BlockMatrix,
    task: Task,
    version: str,
    ws: Workspace,
    *,
    pivot_floor: float = 0.0,
    plans: PlanCache | None = None,
    compress: CompressPolicy | None = None,
) -> tuple[int, bool]:
    """Execute one task, preferring a cached execution plan.

    Returns ``(replaced_pivots, planned)`` — the GESP diagnostic plus
    whether a plan (rather than the unplanned kernel) ran.  This is the
    shared per-task entry point of all three engines.

    With a :class:`~repro.kernels.compress.CompressPolicy` (``None`` by
    default — the bit-identical path), two extra branches activate:
    SSSSM tasks whose operands carry a low-rank overlay route to the
    ``LR_V1``/``LR_V2`` kernels (never the plan path — plans address
    exact patterns), and a just-finished GESSM/TSTRF panel is offered to
    the compressor before the task completes, inside the same write-lock
    window.
    """
    ktype = _TTYPE_TO_KTYPE[task.ttype]
    if ktype is KernelType.SSSSM:
        a_cb = _compressed(f, task.bi, task.k)
        b_cb = _compressed(f, task.k, task.bj)
        if a_cb is not None or b_cb is not None:
            target = f.block(task.bi, task.bj)
            assert target is not None
            a_op = a_cb if a_cb is not None else f.block(task.bi, task.k)
            b_op = b_cb if b_cb is not None else f.block(task.k, task.bj)
            if not version.startswith("LR_"):
                # a fixed (ablation) selector never emits the low-rank
                # versions; the operand representation decides for it
                version = "LR_V2" if (a_cb is not None and b_cb is not None) else "LR_V1"
            get_kernel(ktype, version)(target, a_op, b_op, ws)
            return 0, False
    if plans is not None and plan_capable(ktype, version):
        replaced = _try_planned(f, task, ktype, plans, pivot_floor)
        if replaced is not None:
            if compress is not None and task.ttype in (TaskType.GESSM, TaskType.TSTRF):
                _maybe_compress(f, task, compress)
            return replaced, True
    kernel = get_kernel(ktype, version)
    target = f.block(task.bi, task.bj)
    assert target is not None
    if task.ttype == TaskType.GETRF:
        return int(kernel(target, ws, pivot_floor=pivot_floor) or 0), False
    if task.ttype in (TaskType.GESSM, TaskType.TSTRF):
        diag = f.block(task.k, task.k)
        kernel(diag, target, ws)
        if compress is not None:
            _maybe_compress(f, task, compress)
    else:
        a_blk = f.block(task.bi, task.k)
        b_blk = f.block(task.k, task.bj)
        kernel(target, a_blk, b_blk, ws)
    return 0, False


def run_task(
    f: BlockMatrix,
    task: Task,
    version: str,
    ws: Workspace,
    *,
    pivot_floor: float = 0.0,
    plans: PlanCache | None = None,
    compress: CompressPolicy | None = None,
) -> int:
    """Execute one task with an explicit kernel version (in place).

    Returns the number of statically-replaced pivots (GETRF only; 0 for
    the other kernel roles) — the GESP diagnostic aggregated in
    :class:`FactorizeStats`.  Pass ``plans`` to route the plannable
    variants through cached execution plans (bit-identical result).
    """
    return execute_task(
        f, task, version, ws, pivot_floor=pivot_floor, plans=plans, compress=compress
    )[0]


def push_ready(heap: list[tuple[int, int, int]], dag: TaskDAG, tid: int) -> None:
    """Push a newly-ready task onto the priority heap."""
    heapq.heappush(heap, ready_entry(dag.tasks[tid], tid))


def factorize(
    f: BlockMatrix,
    dag: TaskDAG,
    options: NumericOptions | None = None,
    *,
    collect_timings: bool = False,
    recorder: EventRecorder | None = None,
    checker=None,
) -> FactorizeStats:
    """Factorise the blocked matrix in place by replaying the DAG.

    Tasks are drawn from the shared scheduler core's ready-heap with
    priority ``(k, task-type, tid)`` — the earliest elimination step
    first, which keeps the critical path moving (the paper: "each
    process always selects the most critical of the tasks to be
    computed").  Pass an :class:`~repro.runtime.scheduler.EventRecorder`
    to capture task/ready-depth events for Chrome-trace export, or a
    :class:`~repro.devtools.racecheck.RaceChecker` (``checker``) to
    audit the counter protocol as it runs.
    """
    options = options or NumericOptions()
    stats = FactorizeStats()
    ws = Workspace()
    plans = resolve_plan_cache(f, options)
    compress = resolve_compress(options)
    core = SchedulerCore.from_dag(dag, recorder=recorder)
    if checker is not None:
        from ..devtools.racecheck import CheckedSchedulerCore

        core = CheckedSchedulerCore.adopt(core, checker)
    local = WorkerLocal()

    t_start = time.perf_counter()
    while (tid := core.pop()) is not None:
        task = dag.tasks[tid]
        feats = task_features(f, task)
        ktype = _TTYPE_TO_KTYPE[task.ttype]
        version = options.selector.select(ktype, feats)
        t0 = time.perf_counter() if (collect_timings or recorder) else 0.0
        replaced, planned = execute_task(
            f, task, version, ws,
            pivot_floor=options.pivot_floor, plans=plans, compress=compress,
        )
        if collect_timings or recorder:
            t1 = time.perf_counter()
            if collect_timings:
                key = task.ttype.name
                stats.seconds_by_type[key] = (
                    stats.seconds_by_type.get(key, 0.0) + t1 - t0
                )
            if recorder:
                recorder.task(
                    0, f"{task.ttype.name}(k={task.k},{task.bi},{task.bj})",
                    task.ttype.name, t0, t1, tid,
                )
        local.count(tid, f"{ktype.value}/{version}", replaced, planned)
        stats.flops_total += task.flops
        core.complete(tid)

    local.merge_into(stats)
    stats.seconds_total = time.perf_counter() - t_start
    if plans is not None:
        stats.plan_bytes = plans.nbytes
    if compress is not None:
        comp = f.compression_stats()
        stats.blocks_compressed = comp["blocks_compressed"]
        stats.lr_value_bytes = comp["lr_value_bytes"]
    core.check("sequential")
    if checker is not None:
        checker.final_check(core)
    return stats
