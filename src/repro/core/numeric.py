"""Numeric factorisation driver.

Executes the task DAG on the blocked matrix *in place*: after
:func:`factorize`, every diagonal block holds its LU factors (unit-lower
``L`` implicit, ``U`` on and above the diagonal), blocks below the
diagonal hold ``L``, blocks above hold ``U``.

Execution follows the synchronisation-free discipline of Section 4.4: a
ready-heap ordered by priority (earlier elimination step first — the
critical path — then kernel class), counters per task, counter decrements
on completion.  This module is the *sequential* engine used for
correctness and single-process runs; the threaded engine lives in
:mod:`repro.runtime.threaded` and the distributed behaviour is modelled in
:mod:`repro.runtime.simulator` — all three replay the same DAG.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from ..kernels.base import Workspace
from ..kernels.registry import KernelType, get_kernel
from ..kernels.selector import SelectorPolicy, TaskFeatures
from .blocking import BlockMatrix
from .dag import Task, TaskDAG, TaskType

__all__ = ["NumericOptions", "FactorizeStats", "factorize", "task_features", "run_task"]

_TTYPE_TO_KTYPE = {
    TaskType.GETRF: KernelType.GETRF,
    TaskType.GESSM: KernelType.GESSM,
    TaskType.TSTRF: KernelType.TSTRF,
    TaskType.SSSSM: KernelType.SSSSM,
}


@dataclass
class NumericOptions:
    """Configuration of the numeric phase.

    Attributes
    ----------
    selector:
        Kernel-selection policy (decision trees by default; a fixed
        baseline for the Fig. 14 ablation).
    pivot_floor:
        Relative static-pivot replacement threshold: a pivot smaller in
        magnitude than ``pivot_floor · max|block|`` is replaced by that
        bound with matching sign (SuperLU GESP policy).  0 disables the
        replacement and raises on exact zeros.
    """

    selector: SelectorPolicy = field(default_factory=SelectorPolicy.default)
    pivot_floor: float = 1e-12


@dataclass
class FactorizeStats:
    """Per-run accounting: task counts, chosen kernel versions, timings."""

    kernel_choices: dict[int, str] = field(default_factory=dict)
    tasks_executed: int = 0
    seconds_total: float = 0.0
    seconds_by_type: dict[str, float] = field(default_factory=dict)
    flops_total: int = 0
    pivots_replaced: int = 0

    def version_histogram(self) -> dict[str, int]:
        """Count of executed tasks per ``TYPE/VERSION`` label."""
        out: dict[str, int] = {}
        for tid, label in self.kernel_choices.items():
            out[label] = out.get(label, 0) + 1
        return out


def task_features(f: BlockMatrix, task: Task) -> TaskFeatures:
    """Structural features of a task for the decision-tree selector."""
    target = f.block(task.bi, task.bj)
    assert target is not None
    if task.ttype == TaskType.GETRF:
        return TaskFeatures(
            nnz_a=target.nnz,
            flops=task.flops,
            n=target.ncols,
            density=target.density,
        )
    if task.ttype in (TaskType.GESSM, TaskType.TSTRF):
        diag = f.block(task.k, task.k)
        assert diag is not None
        return TaskFeatures(
            nnz_a=diag.nnz,
            nnz_b=target.nnz,
            flops=task.flops,
            n=diag.ncols,
            density=target.density,
        )
    a_blk = f.block(task.bi, task.k)
    b_blk = f.block(task.k, task.bj)
    assert a_blk is not None and b_blk is not None
    return TaskFeatures(
        nnz_a=a_blk.nnz,
        nnz_b=b_blk.nnz,
        flops=task.flops,
        n=a_blk.ncols,
        density=target.density,
    )


def run_task(
    f: BlockMatrix,
    task: Task,
    version: str,
    ws: Workspace,
    *,
    pivot_floor: float = 0.0,
) -> int:
    """Execute one task with an explicit kernel version (in place).

    Returns the number of statically-replaced pivots (GETRF only; 0 for
    the other kernel roles) — the GESP diagnostic aggregated in
    :class:`FactorizeStats`.
    """
    ktype = _TTYPE_TO_KTYPE[task.ttype]
    kernel = get_kernel(ktype, version)
    target = f.block(task.bi, task.bj)
    assert target is not None
    if task.ttype == TaskType.GETRF:
        return int(kernel(target, ws, pivot_floor=pivot_floor) or 0)
    if task.ttype in (TaskType.GESSM, TaskType.TSTRF):
        diag = f.block(task.k, task.k)
        kernel(diag, target, ws)
    else:
        a_blk = f.block(task.bi, task.k)
        b_blk = f.block(task.k, task.bj)
        kernel(target, a_blk, b_blk, ws)
    return 0


def factorize(
    f: BlockMatrix,
    dag: TaskDAG,
    options: NumericOptions | None = None,
    *,
    collect_timings: bool = False,
) -> FactorizeStats:
    """Factorise the blocked matrix in place by replaying the DAG.

    Tasks are drawn from a ready-heap with priority
    ``(k, task-type, tid)`` — the earliest elimination step first, which
    keeps the critical path moving (the paper: "each process always
    selects the most critical of the tasks to be computed").
    """
    options = options or NumericOptions()
    stats = FactorizeStats()
    ws = Workspace()
    counters = dag.dep_counts()
    ready: list[tuple[int, int, int]] = []
    for tid in dag.roots():
        t = dag.tasks[tid]
        heapq.heappush(ready, (t.k, int(t.ttype), tid))

    t_start = time.perf_counter()
    executed = 0
    while ready:
        _, _, tid = heapq.heappop(ready)
        task = dag.tasks[tid]
        feats = task_features(f, task)
        ktype = _TTYPE_TO_KTYPE[task.ttype]
        version = options.selector.select(ktype, feats)
        if collect_timings:
            t0 = time.perf_counter()
            stats.pivots_replaced += run_task(
                f, task, version, ws, pivot_floor=options.pivot_floor
            )
            dt = time.perf_counter() - t0
            key = task.ttype.name
            stats.seconds_by_type[key] = stats.seconds_by_type.get(key, 0.0) + dt
        else:
            stats.pivots_replaced += run_task(
                f, task, version, ws, pivot_floor=options.pivot_floor
            )
        stats.kernel_choices[tid] = f"{ktype.value}/{version}"
        stats.flops_total += task.flops
        executed += 1
        for s in task.successors:
            counters[s] -= 1
            if counters[s] == 0:
                ts = dag.tasks[s]
                heapq.heappush(ready, (ts.k, int(ts.ttype), s))

    stats.tasks_executed = executed
    stats.seconds_total = time.perf_counter() - t_start
    if executed != len(dag.tasks):
        raise RuntimeError(
            f"deadlock: executed {executed} of {len(dag.tasks)} tasks "
            "(dependency counters inconsistent)"
        )
    return stats
