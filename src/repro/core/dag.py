"""Task DAG of the right-looking block LU factorisation.

Every node is one kernel invocation on one block — the paper's minimum
scheduling unit ("uses sparse kernels as the smallest scheduling unit",
Section 4.4).  For elimination step ``k``:

* ``GETRF(k)``      factors diagonal block ``(k, k)``;
* ``TSTRF(i, k)``   turns block ``(i, k)``, ``i > k``, into ``L``;
* ``GESSM(k, j)``   turns block ``(k, j)``, ``j > k``, into ``U``;
* ``SSSSM(k, i, j)`` applies ``C(i,j) −= L(i,k) · U(k,j)``.

An SSSSM node exists only when the structural product is nonempty (the
column support of ``L(i,k)`` intersects the row support of ``U(k,j)``);
fill closure then guarantees the target block exists.

Dependencies:

* ``GETRF(k)``      ← every ``SSSSM(·, k, k)``;
* ``GESSM(k, j)``   ← ``GETRF(k)`` + every ``SSSSM(·, k, j)``;
* ``TSTRF(i, k)``   ← ``GETRF(k)`` + every ``SSSSM(·, i, k)``;
* ``SSSSM(k, i, j)``← ``TSTRF(i, k)`` + ``GESSM(k, j)``.

The per-block *synchronisation-free array* of Section 4.4 is exactly the
count of unfinished SSSSM predecessors of each block's panel task; it is
exposed by :func:`sync_free_array` for tests and illustration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..kernels.flops import (
    diag_counts,
    gessm_flops_from_counts,
    tstrf_flops_from_counts,
)
from .blocking import BlockMatrix

__all__ = ["TaskType", "Task", "TaskDAG", "build_dag", "sync_free_array"]


class TaskType(enum.IntEnum):
    """Kernel role of a DAG node (ordering = scheduling priority class)."""

    GETRF = 0
    GESSM = 1
    TSTRF = 2
    SSSSM = 3


@dataclass
class Task:
    """One kernel invocation.

    ``(bi, bj)`` is the *target* block; ``k`` the elimination step.  For
    SSSSM the operands are ``L(bi, k)`` and ``U(k, bj)``.
    """

    tid: int
    ttype: TaskType
    k: int
    bi: int
    bj: int
    flops: int
    n_deps: int = 0
    successors: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task({self.tid}: {self.ttype.name} k={self.k} "
            f"target=({self.bi},{self.bj}) flops={self.flops})"
        )


@dataclass
class TaskDAG:
    """The full task graph plus lookup indices.

    Attributes
    ----------
    tasks:
        All tasks, indexed by ``tid``.
    panel_of_block:
        Maps ``(bi, bj)`` to the tid of the block's panel task (GETRF /
        GESSM / TSTRF).
    total_flops:
        Sum of all task FLOP counts — the paper's Table 3 "PanguLU FLOPs".
    """

    tasks: list[Task]
    panel_of_block: dict[tuple[int, int], int]
    total_flops: int

    def __len__(self) -> int:
        return len(self.tasks)

    def roots(self) -> list[int]:
        """Tasks with no dependencies (initially runnable)."""
        return [t.tid for t in self.tasks if t.n_deps == 0]

    def dep_counts(self) -> np.ndarray:
        """Fresh copy of the per-task dependency counters."""
        return np.asarray([t.n_deps for t in self.tasks], dtype=np.int64)

    def critical_path_flops(self) -> int:
        """FLOP weight of the longest dependency chain — a lower bound on
        any schedule's makespan in flop units."""
        n = len(self.tasks)
        depth = np.zeros(n, dtype=np.int64)
        indeg = self.dep_counts()
        stack = [t for t in range(n) if indeg[t] == 0]
        for t in stack:
            depth[t] = self.tasks[t].flops
        out = 0
        while stack:
            t = stack.pop()
            out = max(out, int(depth[t]))
            for s in self.tasks[t].successors:
                depth[s] = max(depth[s], depth[t] + self.tasks[s].flops)
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        return out


def build_dag(f: BlockMatrix) -> TaskDAG:
    """Construct the task DAG from the blocked filled pattern."""
    nb = f.nb
    tasks: list[Task] = []
    panel_of_block: dict[tuple[int, int], int] = {}
    ssssm_into: dict[tuple[int, int], list[int]] = {}

    # Precompute per-step L-column and U-row block lists
    lcol: list[list[int]] = [[] for _ in range(nb)]  # block rows i > k with (i,k)
    urow: list[list[int]] = [[] for _ in range(nb)]  # block cols j > k with (k,j)
    for bj in range(nb):
        rows, _ = f.blocks_in_column(bj)
        for bi in rows:
            bi = int(bi)
            if bi > bj:
                lcol[bj].append(bi)
            elif bi < bj:
                urow[bi].append(bj)

    def add(ttype: TaskType, k: int, bi: int, bj: int, flops: int) -> int:
        tid = len(tasks)
        tasks.append(Task(tid, ttype, k, bi, bj, flops))
        return tid

    # ---- create all tasks ------------------------------------------------
    for k in range(nb):
        diag = f.block(k, k)
        if diag is None:
            raise ValueError(
                f"diagonal block ({k},{k}) is structurally empty — "
                "the input needs a zero-free diagonal (run MC64 first)"
            )
        counts = diag_counts(diag)
        getrf_fl = int(
            np.sum(counts.lower_col)
            + 2 * np.dot(counts.lower_col, counts.upper_row)
        )
        panel_of_block[(k, k)] = add(TaskType.GETRF, k, k, k, getrf_fl)
        # per-U-block row-nnz vectors, reused by every SSSSM of this step
        u_rownnz: dict[int, np.ndarray] = {}
        for j in urow[k]:
            b = f.block(k, j)
            assert b is not None
            panel_of_block[(k, j)] = add(
                TaskType.GESSM, k, k, j, gessm_flops_from_counts(counts, b)
            )
            rn = np.zeros(b.nrows, dtype=np.int64)
            np.add.at(rn, b.indices, 1)
            u_rownnz[j] = rn
        l_colnnz: dict[int, np.ndarray] = {}
        for i in lcol[k]:
            b = f.block(i, k)
            assert b is not None
            panel_of_block[(i, k)] = add(
                TaskType.TSTRF, k, i, k, tstrf_flops_from_counts(counts, b)
            )
            l_colnnz[i] = np.diff(b.indptr)
        # Schur updates from step k
        for i in lcol[k]:
            slot_l = f.block_slot(i, k)
            csup = f.col_support[slot_l]
            cn = l_colnnz[i]
            for j in urow[k]:
                slot_u = f.block_slot(k, j)
                rsup = f.row_support[slot_u]
                if not bool(np.any(csup & rsup)):
                    continue  # structurally empty product
                tid = add(
                    TaskType.SSSSM,
                    k,
                    i,
                    j,
                    int(2 * np.dot(cn, u_rownnz[j])),
                )
                ssssm_into.setdefault((i, j), []).append(tid)

    # ---- wire dependencies ------------------------------------------------
    for t in tasks:
        if t.ttype == TaskType.GETRF:
            preds = ssssm_into.get((t.k, t.k), [])
            t.n_deps = len(preds)
            for p in preds:
                tasks[p].successors.append(t.tid)
        elif t.ttype in (TaskType.GESSM, TaskType.TSTRF):
            preds = ssssm_into.get((t.bi, t.bj), [])
            t.n_deps = 1 + len(preds)
            tasks[panel_of_block[(t.k, t.k)]].successors.append(t.tid)
            for p in preds:
                tasks[p].successors.append(t.tid)
        else:  # SSSSM
            t.n_deps = 2
            tasks[panel_of_block[(t.bi, t.k)]].successors.append(t.tid)
            tasks[panel_of_block[(t.k, t.bj)]].successors.append(t.tid)

    total = int(sum(t.flops for t in tasks))
    return TaskDAG(tasks=tasks, panel_of_block=panel_of_block, total_flops=total)


def sync_free_array(dag: TaskDAG, nb: int) -> dict[tuple[int, int], int]:
    """The paper's per-block synchronisation-free array (Fig. 9).

    Value = number of GESSM/TSTRF/SSSSM operations the block still has to
    receive before its next phase can fire: for a diagonal block, 0 means
    GETRF may run (−1 after it completes, releasing its row and column);
    for an off-diagonal block, 0 means its panel solve may run once the
    diagonal is done.
    """
    counts: dict[tuple[int, int], int] = {}
    for (bi, bj), tid in dag.panel_of_block.items():
        t = dag.tasks[tid]
        ssssm_preds = t.n_deps if t.ttype == TaskType.GETRF else t.n_deps - 1
        counts[(bi, bj)] = ssssm_preds
    return counts
