"""2D blocking — PanguLU's two-layer sparse structure (Fig. 6).

The filled matrix (output of symbolic factorisation) is split into blocks
along one shared boundary array for rows and columns.  Layer 1 is a
*block-level CSC*: the arrays ``blk_colptr`` / ``blk_rowidx`` compress the
nonzero blocks of each block column, and ``blk_values`` holds the per-block
payloads.  Layer 2 is the CSC pattern *inside* each block.  Empty blocks
are not stored.

The boundary array is what a :class:`~repro.core.strategy.BlockingStrategy`
produces: regular blocking emits equispaced boundaries (one fixed block
size, last block possibly short), irregular blocking emits boundaries
aligned with the symbolic fill's supernode structure.  Everything below
the partition — storage, mapping, kernels, runtime — addresses blocks
through :meth:`BlockMatrix.block_start` / :meth:`BlockMatrix.block_order`
and never assumes a uniform spacing.

Because every block keeps its exact sparse pattern (no supernode padding),
the numeric kernels never compute with structural zeros — the central
storage claim of the paper (Fig. 1e vs 1d).

Two physical layouts back the same logical structure:

* **per-block** (legacy): every payload owns its three arrays —
  independently allocated, independently pickled, re-allocated on every
  refactorisation;
* **arena** (:class:`FactorArena`, the paper's Section 4.2
  "preallocates all block storage during preprocessing"): one contiguous
  ``indptr`` / ``indices`` / ``data`` slab for the whole factor, sized
  once from the symbolic fill, with every block a zero-copy
  :meth:`~repro.sparse.csc.CSCMatrix.from_views` slice addressed through
  a slot→offset table.  Kernels write through the views straight into
  the slab, so a refactorisation is a single in-place overwrite of the
  value slab and serialisation ships three buffers instead of thousands.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field

import numpy as np

from ..sparse.blockrep import CompressedBlock, lr_profit_cap
from ..sparse.csc import CSCMatrix

__all__ = [
    "BlockMatrix",
    "FactorArena",
    "BlockSizeDecision",
    "block_size_decision",
    "choose_block_size",
    "boundaries_from_block_size",
    "block_partition",
]

logger = logging.getLogger(__name__)

#: coarsening floor on the average dense block payload ``nnz(L+U) / nb²``
MIN_AVG_BLOCK_NNZ = 12.0


@dataclass(frozen=True)
class BlockSizeDecision:
    """Every input and intermediate of the block-size heuristic.

    :func:`choose_block_size` used to return a silently clamped scalar;
    this record makes the decision inspectable — which clamp fired, what
    the pre-clamp grid and block size were — for logs, benches, and tests.
    """

    n: int                  #: matrix order
    nnz_filled: int         #: nnz of the filled (post-symbolic) matrix
    min_bs: int             #: lower clamp on the block size
    max_bs: int             #: upper clamp on the block size
    nb_sqrt: int            #: sqrt(n) grid before the 4..128 grid clamp
    nb_grid: int            #: grid after the 4..128 clamp, before coarsening
    nb: int                 #: final grid after density-driven coarsening
    avg_block_nnz: float    #: nnz_filled / nb² at the final grid
    bs_raw: int             #: ceil(n / nb) before the [min_bs, max_bs] clamp
    bs: int                 #: the chosen block size (what callers use)

    @property
    def grid_clamped(self) -> bool:
        """True when the 4..128 grid clamp changed ``nb_sqrt``."""
        return self.nb_grid != self.nb_sqrt

    @property
    def size_clamped(self) -> bool:
        """True when the ``[min_bs, max_bs]`` clamp changed ``bs_raw``."""
        return self.bs != self.bs_raw


def block_size_decision(
    n: int, nnz_filled: int, *, min_bs: int = 8, max_bs: int = 512
) -> BlockSizeDecision:
    """The block-size heuristic with its full decision trace.

    Same computation as :func:`choose_block_size` (which delegates here);
    returns a :class:`BlockSizeDecision` instead of the bare scalar so
    callers can see whether — and which — clamp fired.
    """
    if n <= 0:
        raise ValueError("matrix order must be positive")
    nb_sqrt = int(round(np.sqrt(n)))
    nb_grid = int(np.clip(nb_sqrt, 4, 128))
    nb = nb_grid
    while nb > 4 and nnz_filled / (nb * nb) < MIN_AVG_BLOCK_NNZ:
        nb = max(4, nb // 2)
    bs_raw = -(-n // nb)
    bs = int(np.clip(bs_raw, min_bs, max(max_bs, min_bs)))
    return BlockSizeDecision(
        n=n,
        nnz_filled=nnz_filled,
        min_bs=min_bs,
        max_bs=max_bs,
        nb_sqrt=nb_sqrt,
        nb_grid=nb_grid,
        nb=nb,
        avg_block_nnz=nnz_filled / (nb * nb),
        bs_raw=bs_raw,
        bs=bs,
    )


def choose_block_size(
    n: int, nnz_filled: int, *, min_bs: int = 8, max_bs: int = 512
) -> int:
    """Pick the regular block size from the matrix order and post-symbolic
    density (Section 4.1: "calculated from the matrix order and the density
    of the matrix after symbolic factorisation").

    The heuristic balances two pressures the paper names — computation
    (large blocks amortise per-kernel overheads) and communication /
    parallelism (many blocks expose concurrency to the process grid):

    * start from a grid of ``nb ≈ sqrt(n)`` block columns, which keeps the
      task count roughly linear in ``n``;
    * coarsen while the *average dense block payload*
      ``nnz(L+U) / nb²`` falls below a floor, so very sparse matrices get
      bigger blocks (more nonzeros per kernel call);
    * clamp the resulting block size to ``[min_bs, max_bs]``.

    Use :func:`block_size_decision` for the full decision trace (clamp
    provenance, pre-clamp grid and size).
    """
    d = block_size_decision(n, nnz_filled, min_bs=min_bs, max_bs=max_bs)
    if d.size_clamped:
        logger.debug(
            "choose_block_size(n=%d, nnz=%d): bs %d clamped to %d "
            "(range %d..%d, grid %d, avg block nnz %.1f)",
            d.n, d.nnz_filled, d.bs_raw, d.bs, d.min_bs, d.max_bs,
            d.nb, d.avg_block_nnz,
        )
    return d.bs


def boundaries_from_block_size(n: int, bs: int) -> np.ndarray:
    """Equispaced block boundaries ``[0, bs, 2·bs, …, n]`` (the regular
    layout: every block ``bs`` wide except a possibly short last one)."""
    if bs <= 0:
        raise ValueError("block size must be positive")
    nb = -(-n // bs)
    return np.minimum(np.arange(nb + 1, dtype=np.int64) * bs, n)


@dataclass
class FactorArena:
    """Preallocated contiguous factor storage (paper Section 4.2).

    The two-layer structure's promise — "preallocates all block storage
    during preprocessing" with only a handful of auxiliary arrays — made
    literal: three slabs hold every block's CSC arrays back to back in
    storage-slot (layer-1) order, and two offset tables address them.

    Attributes
    ----------
    indptr:
        Concatenated per-block column-pointer arrays (each block-local,
        starting at 0); block ``slot`` owns
        ``indptr[ptr_off[slot]:ptr_off[slot+1]]``.
    indices, data:
        Concatenated per-block row indices / values; block ``slot`` owns
        ``indices[val_off[slot]:val_off[slot+1]]`` and the matching
        ``data`` slice.
    ptr_off, val_off:
        Slot→offset tables (length ``num_blocks + 1``) — together with
        the layer-1 ``blk_colptr``/``blk_rowidx`` these are the paper's
        auxiliary access arrays.
    gather:
        Position in the parent filled matrix's ``data`` array of every
        slab entry (``data[i] == filled.data[gather[i]]``).  This is what
        makes :meth:`refill` — and therefore refactorisation — a single
        in-place overwrite of the value slab with zero new block
        allocations.
    lr_data, lr_off, lr_rank:
        Optional low-rank slab (``None`` until :meth:`alloc_lr`): slot
        ``s`` may hold compressed ``U``/``V`` factors in
        ``lr_data[lr_off[s]:lr_off[s+1]]`` with the retained rank in
        ``lr_rank[s]`` (−1 = uncompressed).  Capacities are sized from
        the profitable-rank cap ``(nnz − 1) // (m + n)``, which bounds
        the whole slab at strictly less than the ``data`` slab — so the
        compressed overlay never doubles the arena, and ``refactorize``
        re-compresses into the same storage without allocating.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    ptr_off: np.ndarray
    val_off: np.ndarray
    gather: np.ndarray
    lr_data: np.ndarray | None = field(default=None, repr=False)
    lr_off: np.ndarray | None = field(default=None, repr=False)
    lr_rank: np.ndarray | None = field(default=None, repr=False)

    @property
    def nbytes(self) -> int:
        """Total slab + offset-table bytes (``gather`` included)."""
        total = (
            self.indptr.nbytes + self.indices.nbytes + self.data.nbytes
            + self.ptr_off.nbytes + self.val_off.nbytes + self.gather.nbytes
        )
        if self.lr_data is not None:
            total += self.lr_data.nbytes + self.lr_off.nbytes + self.lr_rank.nbytes
        return total

    @property
    def has_lr(self) -> bool:
        """True once :meth:`alloc_lr` has laid out the low-rank slab."""
        return self.lr_data is not None

    def alloc_lr(self, caps: np.ndarray) -> None:
        """Lay out the low-rank slab from per-slot entry capacities
        (``caps[s]`` = largest ``rank · (m + n)`` worth storing for slot
        ``s``; 0 disables compression for that slot)."""
        num_blocks = self.ptr_off.size - 1
        caps = np.asarray(caps, dtype=np.int64)
        if caps.size != num_blocks:
            raise ValueError("one capacity per storage slot required")
        lr_off = np.zeros(num_blocks + 1, dtype=np.int64)
        np.cumsum(caps, out=lr_off[1:])
        self.lr_off = lr_off
        self.lr_data = np.zeros(int(lr_off[-1]), dtype=self.data.dtype)
        self.lr_rank = np.full(num_blocks, -1, dtype=np.int64)

    def lr_capacity(self, slot: int) -> int:
        """Entry capacity of slot ``slot``'s low-rank storage (0 when the
        slab is unallocated or the slot was sized out)."""
        if self.lr_off is None:
            return 0
        return int(self.lr_off[slot + 1] - self.lr_off[slot])

    def lr_views(
        self, slot: int, shape: tuple[int, int], rank: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(u, v)`` views over slot ``slot``'s low-rank
        storage for the given shape and rank."""
        m, n = shape
        base = int(self.lr_off[slot])
        u = self.lr_data[base : base + m * rank].reshape(m, rank)
        v = self.lr_data[base + m * rank : base + (m + n) * rank].reshape(n, rank)
        return u, v

    def slot_view(self, slot: int, shape: tuple[int, int]) -> CSCMatrix:
        """Zero-copy :class:`CSCMatrix` over storage slot ``slot``."""
        p0, p1 = int(self.ptr_off[slot]), int(self.ptr_off[slot + 1])
        v0, v1 = int(self.val_off[slot]), int(self.val_off[slot + 1])
        return CSCMatrix.from_views(
            shape, self.indptr[p0:p1], self.indices[v0:v1], self.data[v0:v1]
        )

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the ``data`` slab (the factor dtype)."""
        return self.data.dtype

    def refill(self, filled_data: np.ndarray) -> None:
        """Overwrite the value slab in place from a filled-pattern data
        array (same symbolic pattern, new numeric values).  No block
        array is allocated or rebound — every view stays valid, so the
        plan cache and the solve DAGs survive untouched."""
        if filled_data.dtype == self.data.dtype:
            np.take(filled_data, self.gather, out=self.data)
        else:
            # np.take refuses cross-dtype `out`; fall back to a gathering
            # assignment, which casts (float64 fill → float32 slab) on
            # the mixed-precision path
            self.data[...] = filled_data[self.gather]
        if self.lr_rank is not None:
            # stale low-rank factors describe the *old* values; the next
            # factorization re-compresses into the same slab
            self.lr_rank[:] = -1


@dataclass
class BlockMatrix:
    """Two-layer block-sparse matrix.

    Attributes
    ----------
    n:
        Matrix order.
    bs:
        Nominal block size.  For a regular partition this is the uniform
        spacing (last block row/column may be smaller); for an irregular
        partition it is the widest block extent.  Layout-independent code
        must use :meth:`block_start` / :meth:`block_order` instead.
    nb:
        Number of block rows/columns (``len(boundaries) - 1``).
    boundaries:
        Block boundary array of length ``nb + 1`` with
        ``boundaries[0] == 0`` and ``boundaries[-1] == n``; block ``b``
        spans global rows/columns ``boundaries[b]:boundaries[b + 1]``.
        Shared by rows and columns, so diagonal blocks stay square.
    blk_colptr, blk_rowidx:
        Layer-1 CSC arrays over blocks: block column ``bj`` owns the block
        rows ``blk_rowidx[blk_colptr[bj]:blk_colptr[bj+1]]`` (sorted).
    blk_values:
        Per-block payloads aligned with ``blk_rowidx``; each is a
        :class:`CSCMatrix` with *local* indices.
    col_support, row_support:
        Per-block boolean arrays over local columns/rows marking which are
        structurally nonzero — used to decide whether a Schur product
        between two blocks is structurally empty.
    plan_cache:
        Lazily-created :class:`repro.kernels.plans.PlanCache` of
        fixed-pattern execution plans for this structure (managed by
        :func:`repro.core.numeric.resolve_plan_cache`).  Attached here —
        not to the options — because plans are keyed by storage slots,
        which only identify patterns within one block structure.
    arena:
        The :class:`FactorArena` backing ``blk_values`` when the
        structure was built with ``block_partition(..., arena=True)``;
        ``None`` for the legacy per-block layout.  With an arena, every
        payload is a zero-copy view into the slabs, serialisation ships
        the slabs instead of per-block arrays, and
        :meth:`FactorArena.refill` re-injects values without allocating.
    dtype:
        Value dtype of every block payload (``float64`` by default,
        ``float32`` on the mixed-precision factor path).  Set by
        :func:`block_partition`.
    lr_overlay:
        Low-rank *overlay*: ``(bi, bj) →``
        :class:`~repro.sparse.blockrep.CompressedBlock` for blocks that
        currently carry a truncated ``U @ V.T`` alongside their exact
        CSC payload.  Empty with compression disabled — the default path
        never consults it.  The CSC payload stays authoritative (the
        triangular solves and the to_csc reassembly read it unchanged);
        SSSSM consumers prefer the overlay via
        :meth:`compressed_block`.
    """

    n: int
    bs: int
    nb: int
    blk_colptr: np.ndarray
    blk_rowidx: np.ndarray
    blk_values: list[CSCMatrix]
    col_support: list[np.ndarray] = field(default_factory=list)
    row_support: list[np.ndarray] = field(default_factory=list)
    plan_cache: object | None = field(default=None, repr=False)
    arena: FactorArena | None = field(default=None, repr=False)
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))
    boundaries: np.ndarray | None = field(default=None, repr=False)
    lr_overlay: dict = field(default_factory=dict, repr=False)
    _index: dict | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.boundaries is None:
            # hand-built regular structures (tests, fixtures) may omit the
            # boundary array; derive the equispaced one from bs
            self.boundaries = boundaries_from_block_size(self.n, self.bs)

    # ------------------------------------------------------------------
    def block_start(self, b: int) -> int:
        """First global row/column of block index ``b``."""
        return int(self.boundaries[b])

    def block_order(self, b: int) -> int:
        """Row/column count of block index ``b``."""
        return int(self.boundaries[b + 1] - self.boundaries[b])

    def block_slice(self, b: int) -> slice:
        """Global row/column slice covered by block index ``b``."""
        return slice(int(self.boundaries[b]), int(self.boundaries[b + 1]))

    @property
    def max_block_order(self) -> int:
        """Widest block extent (workspace sizing for any block)."""
        return int(np.diff(self.boundaries).max()) if self.nb else 0

    @property
    def is_regular(self) -> bool:
        """True when every block (except possibly the last) spans ``bs``."""
        return bool(
            np.array_equal(
                self.boundaries, boundaries_from_block_size(self.n, self.bs)
            )
        )

    # ------------------------------------------------------------------
    # arena views & serialisation
    # ------------------------------------------------------------------
    def _attach_arena_views(self) -> None:
        """(Re)create ``blk_values`` as zero-copy views into the arena
        slabs (and the per-block support masks from those views), and
        rebuild the low-rank overlay from the slab's per-slot ranks."""
        arena = self.arena
        assert arena is not None
        values: list[CSCMatrix] = []
        overlay: dict[tuple[int, int], CompressedBlock] = {}
        for bj in range(self.nb):
            for slot in range(int(self.blk_colptr[bj]), int(self.blk_colptr[bj + 1])):
                bi = int(self.blk_rowidx[slot])
                shape = (self.block_order(bi), self.block_order(bj))
                values.append(arena.slot_view(slot, shape))
                if arena.lr_rank is not None and arena.lr_rank[slot] >= 0:
                    rank = int(arena.lr_rank[slot])
                    u, v = arena.lr_views(slot, shape, rank)
                    src_nnz = int(arena.val_off[slot + 1] - arena.val_off[slot])
                    overlay[(bi, bj)] = CompressedBlock(
                        shape=shape, u=u, v=v, src_nnz=src_nnz
                    )
        self.blk_values = values
        self.col_support, self.row_support = _supports(values)
        self.lr_overlay = overlay

    def __getstate__(self) -> dict:
        """Serialise without the unpicklable/rebuildable parts.

        The plan cache (holds a lock, rebuilt lazily) and the slot index
        are always dropped.  With an arena, the per-block views and
        support masks are dropped too — the three slabs are the single
        source of truth, so pickling ships three contiguous buffers
        instead of thousands of small per-block arrays.
        """
        state = {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }
        state["plan_cache"] = None
        state["_index"] = None
        if self.arena is not None:
            state["blk_values"] = None
            state["col_support"] = None
            state["row_support"] = None
            # the overlay is views into the lr slab; rebuilt from
            # arena.lr_rank on unpickle
            state["lr_overlay"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        if self.arena is not None and self.blk_values is None:
            self._attach_arena_views()

    @property
    def num_blocks(self) -> int:
        """Number of stored (structurally nonzero) blocks."""
        return int(self.blk_colptr[-1])

    def block_slot(self, bi: int, bj: int) -> int:
        """Storage slot of block ``(bi, bj)`` or −1 if absent (O(1) via a
        lazily-built dictionary index)."""
        if self._index is None:
            index: dict[tuple[int, int], int] = {}
            for col in range(self.nb):
                lo, hi = int(self.blk_colptr[col]), int(self.blk_colptr[col + 1])
                for slot in range(lo, hi):
                    index[(int(self.blk_rowidx[slot]), col)] = slot
            self._index = index
        return self._index.get((bi, bj), -1)

    def block(self, bi: int, bj: int) -> CSCMatrix | None:
        """The block at block coordinates ``(bi, bj)``, or None if empty."""
        slot = self.block_slot(bi, bj)
        return None if slot < 0 else self.blk_values[slot]

    # ------------------------------------------------------------------
    # low-rank overlay
    # ------------------------------------------------------------------
    def compressed_block(self, bi: int, bj: int) -> CompressedBlock | None:
        """The low-rank overlay of block ``(bi, bj)`` or ``None`` when
        the block is uncompressed (always ``None`` with compression
        disabled)."""
        return self.lr_overlay.get((bi, bj))

    def enable_lr_overlay(self) -> None:
        """Size the arena's low-rank slab so compressed factors can be
        stored (and re-stored across ``refactorize``) without
        allocating.  Diagonal blocks are sized out — GETRF targets are
        never compressed.  No-op for the legacy layout or when already
        allocated."""
        arena = self.arena
        if arena is None or arena.has_lr:
            return
        caps = np.zeros(self.num_blocks, dtype=np.int64)
        for bj in range(self.nb):
            for slot in range(int(self.blk_colptr[bj]), int(self.blk_colptr[bj + 1])):
                bi = int(self.blk_rowidx[slot])
                if bi == bj:
                    continue
                m, n = self.block_order(bi), self.block_order(bj)
                nnz = int(arena.val_off[slot + 1] - arena.val_off[slot])
                caps[slot] = lr_profit_cap(m, n, nnz) * (m + n)
        arena.alloc_lr(caps)

    def set_compressed(
        self, bi: int, bj: int, u: np.ndarray, v: np.ndarray, *, src_nnz: int
    ) -> CompressedBlock:
        """Install a low-rank overlay for block ``(bi, bj)``.

        When the arena's low-rank slab has capacity for this rank, the
        factors are copied into zero-copy slab views (so refactorize
        re-compresses alloc-free and pickling ships one buffer);
        otherwise the overlay owns the arrays.  The exact CSC payload is
        untouched either way.
        """
        m, n = int(u.shape[0]), int(v.shape[0])
        rank = int(u.shape[1])
        slot = self.block_slot(bi, bj)
        arena = self.arena
        if (
            arena is not None
            and arena.has_lr
            and slot >= 0
            and rank * (m + n) <= arena.lr_capacity(slot)
        ):
            uv, vv = arena.lr_views(slot, (m, n), rank)
            uv[...] = u
            vv[...] = v
            arena.lr_rank[slot] = rank
            cb = CompressedBlock(shape=(m, n), u=uv, v=vv, src_nnz=int(src_nnz))
        else:
            cb = CompressedBlock(shape=(m, n), u=u, v=v, src_nnz=int(src_nnz))
        self.lr_overlay[(bi, bj)] = cb
        return cb

    def clear_compressed(self) -> None:
        """Drop every low-rank overlay (the refinement escalation path:
        back to exact CSC blocks everywhere)."""
        self.lr_overlay.clear()
        if self.arena is not None and self.arena.lr_rank is not None:
            self.arena.lr_rank[:] = -1

    def compression_stats(self) -> dict[str, int]:
        """Counters for stats/benches: how many blocks carry an overlay,
        the low-rank payload bytes, and the exact value bytes those
        blocks would cost uncompressed."""
        lr_bytes = 0
        csc_bytes = 0
        for (bi, bj), cb in self.lr_overlay.items():
            lr_bytes += cb.value_nbytes
            blk = self.block(bi, bj)
            if blk is not None:
                csc_bytes += blk.value_nbytes
        return {
            "blocks_compressed": len(self.lr_overlay),
            "lr_value_bytes": int(lr_bytes),
            "compressed_csc_bytes": int(csc_bytes),
        }

    def blocks_in_column(self, bj: int) -> tuple[np.ndarray, list[CSCMatrix]]:
        """(block-row indices, payloads) of block column ``bj``."""
        lo, hi = int(self.blk_colptr[bj]), int(self.blk_colptr[bj + 1])
        return self.blk_rowidx[lo:hi], self.blk_values[lo:hi]

    def blocks_in_row(self, bi: int) -> list[tuple[int, CSCMatrix]]:
        """List of ``(bj, payload)`` for stored blocks in block row ``bi``."""
        out = []
        for bj in range(self.nb):
            blk = self.block(bi, bj)
            if blk is not None:
                out.append((bj, blk))
        return out

    # ------------------------------------------------------------------
    def to_csc(self) -> CSCMatrix:
        """Reassemble the global matrix (for verification)."""
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        for bj in range(self.nb):
            lo, hi = int(self.blk_colptr[bj]), int(self.blk_colptr[bj + 1])
            for slot in range(lo, hi):
                bi = int(self.blk_rowidx[slot])
                blk = self.blk_values[slot]
                r, c = blk.rows_cols()
                rows_parts.append(r + self.block_start(bi))
                cols_parts.append(c + self.block_start(bj))
                vals_parts.append(blk.data)
        from ..sparse.csc import coo_to_csc

        if not rows_parts:
            return CSCMatrix.empty((self.n, self.n))
        return coo_to_csc(
            (self.n, self.n),
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
        )

    def nnz_stats(self) -> dict[str, float]:
        """Summary statistics used by reports and the block-size bench."""
        nnzs = np.asarray([b.nnz for b in self.blk_values], dtype=np.int64)
        dens = np.asarray([b.density for b in self.blk_values])
        return {
            "num_blocks": int(nnzs.size),
            "nnz_total": int(nnzs.sum()) if nnzs.size else 0,
            "nnz_mean": float(nnzs.mean()) if nnzs.size else 0.0,
            "density_mean": float(dens.mean()) if dens.size else 0.0,
            "grid": self.nb,
        }


def _supports(blocks: list[CSCMatrix]) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-block column/row structural-support masks."""
    col_support = []
    row_support = []
    for blk in blocks:
        col_support.append(np.diff(blk.indptr) > 0)
        rs = np.zeros(blk.nrows, dtype=bool)
        rs[blk.indices] = True
        row_support.append(rs)
    return col_support, row_support


def _validate_boundaries(n: int, boundaries: np.ndarray) -> np.ndarray:
    """Check a block-boundary array for matrix order ``n``."""
    boundaries = np.asarray(boundaries, dtype=np.int64)
    if boundaries.ndim != 1 or boundaries.size < 2:
        raise ValueError("boundaries must be a 1-D array of length >= 2")
    if boundaries[0] != 0 or boundaries[-1] != n:
        raise ValueError(
            f"boundaries must run from 0 to n={n}, got "
            f"[{boundaries[0]}, ..., {boundaries[-1]}]"
        )
    if np.any(np.diff(boundaries) <= 0):
        raise ValueError("boundaries must be strictly increasing")
    return boundaries


def block_partition(
    filled: CSCMatrix,
    bs: int | np.ndarray,
    *,
    arena: bool = False,
    dtype: np.dtype | type | None = None,
) -> BlockMatrix:
    """Split a filled matrix into the two-layer block structure.

    ``bs`` is either a scalar block size (regular layout: equispaced
    boundaries, last block possibly short) or an explicit boundary array
    of length ``nb + 1`` running from 0 to ``n`` — the output of a
    :class:`~repro.core.strategy.BlockingStrategy`.  Both go through the
    same splitting arithmetic, so a boundary array with regular spacing
    produces a bit-identical structure to the scalar form.

    Every stored entry of ``filled`` lands in exactly one block; blocks
    keep local CSC patterns with sorted-unique columns (inherited from the
    parent).  O(nnz + nb²) time.

    With ``arena=True`` the payloads are laid out in one preallocated
    :class:`FactorArena` — three contiguous slabs in storage-slot order —
    and every block is a zero-copy view into them (bit-identical contents
    to the per-block layout; only the physical backing differs).  The
    slabs are sized from the per-block extents, so variable-width blocks
    need no changes below this point.

    ``dtype`` sets the value dtype of the payloads (and the arena's data
    slab); ``None`` inherits the filled matrix's dtype.  Passing
    ``float32`` casts the (float64) fill values once, here — the working
    storage of the mixed-precision factor path.
    """
    dtype = np.dtype(dtype) if dtype is not None else filled.dtype
    n = filled.ncols
    if filled.nrows != n:
        raise ValueError("block partition requires a square matrix")
    if np.ndim(bs) == 0:
        bs = int(bs)
        if bs <= 0:
            raise ValueError("block size must be positive")
        bounds = boundaries_from_block_size(n, bs)
    else:
        bounds = _validate_boundaries(n, bs)
        bs = int(np.diff(bounds).max())
    nb = bounds.size - 1

    # per (bi, bj): lists of (local col, local rows, vals, global start)
    # gathered per column; each chunk is one contiguous run of the parent
    # data array beginning at that global start
    col_chunks: dict[tuple[int, int], list] = {}
    data = filled.data
    col_block = np.repeat(np.arange(nb, dtype=np.int64), np.diff(bounds))
    upper = bounds[1:]
    for j in range(n):
        bj = int(col_block[j])
        lc = j - int(bounds[bj])
        sl = filled.col_slice(j)
        rows = filled.indices[sl]
        if rows.size == 0:
            continue
        vals = data[sl]
        # split the sorted rows at block boundaries
        cut = np.searchsorted(rows, upper)
        start = 0
        for bi in range(nb):
            end = int(cut[bi])
            if end > start:
                col_chunks.setdefault((bi, bj), []).append(
                    (lc, rows[start:end] - int(bounds[bi]), vals[start:end],
                     sl.start + start)
                )
            start = end

    # assemble each block's local CSC arrays (plus, for the arena, the
    # parent-data position of every entry)
    blocks_per_col: list[list[tuple]] = [[] for _ in range(nb)]
    for (bi, bj), chunks in col_chunks.items():
        bo_r = int(bounds[bi + 1] - bounds[bi])
        bo_c = int(bounds[bj + 1] - bounds[bj])
        indptr = np.zeros(bo_c + 1, dtype=np.int64)
        for lc, r, _, _ in chunks:
            indptr[lc + 1] = r.size
        np.cumsum(indptr, out=indptr)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        vals_arr = np.empty(nnz, dtype=dtype)
        pos_arr = np.empty(nnz, dtype=np.int64) if arena else None
        for lc, r, v, gstart in chunks:
            dst = slice(int(indptr[lc]), int(indptr[lc + 1]))
            indices[dst] = r
            vals_arr[dst] = v
            if pos_arr is not None:
                pos_arr[dst] = np.arange(gstart, gstart + r.size, dtype=np.int64)
        blocks_per_col[bj].append((bi, (bo_r, bo_c), indptr, indices, vals_arr, pos_arr))

    # layer-1 CSC over blocks, payloads in storage-slot order
    blk_colptr = np.zeros(nb + 1, dtype=np.int64)
    blk_rowidx_parts: list[int] = []
    payloads: list[tuple] = []
    for bj in range(nb):
        entries = sorted(blocks_per_col[bj], key=lambda t: t[0])
        blk_colptr[bj + 1] = blk_colptr[bj] + len(entries)
        for bi, shape, indptr, indices, vals_arr, pos_arr in entries:
            blk_rowidx_parts.append(bi)
            payloads.append((shape, indptr, indices, vals_arr, pos_arr))

    out = BlockMatrix(
        n=n,
        bs=bs,
        nb=nb,
        blk_colptr=blk_colptr,
        blk_rowidx=np.asarray(blk_rowidx_parts, dtype=np.int64),
        blk_values=[],
        dtype=dtype,
        boundaries=bounds,
    )
    if not arena:
        out.blk_values = [
            CSCMatrix(shape, indptr, indices, vals_arr, check=False)
            for shape, indptr, indices, vals_arr, _ in payloads
        ]
        out.col_support, out.row_support = _supports(out.blk_values)
        return out

    # arena layout: concatenate the per-block arrays into the three slabs
    # and the slot→offset tables, then re-expose the blocks as views
    num_blocks = len(payloads)
    ptr_off = np.zeros(num_blocks + 1, dtype=np.int64)
    val_off = np.zeros(num_blocks + 1, dtype=np.int64)
    for slot, (_, indptr, indices, _, _) in enumerate(payloads):
        ptr_off[slot + 1] = ptr_off[slot] + indptr.size
        val_off[slot + 1] = val_off[slot] + indices.size
    empty_i = np.zeros(0, dtype=np.int64)
    empty_v = np.zeros(0, dtype=dtype)
    out.arena = FactorArena(
        indptr=np.concatenate([p[1] for p in payloads]) if payloads else empty_i,
        indices=np.concatenate([p[2] for p in payloads]) if payloads else empty_i,
        data=np.concatenate([p[3] for p in payloads]) if payloads else empty_v,
        ptr_off=ptr_off,
        val_off=val_off,
        gather=np.concatenate([p[4] for p in payloads]) if payloads else empty_i,
    )
    out._attach_arena_views()
    return out
