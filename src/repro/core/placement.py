"""Pluggable block→rank placement policies.

Block ownership used to be a single hardcoded formula — the 2D
block-cyclic rule ``owner(bi, bj) = (bi mod P)·Q + (bj mod Q)`` baked
into every layer that needed an owner (mapping, the distributed engine,
the solve-DAG builder, the simulator bridges).  That rule assumes
*homogeneous* ranks; on a machine where some ranks are 2× faster than
others it provably loses (Tzovas et al.), because every rank receives
the same share of blocks regardless of how fast it can retire them.

This module lifts ownership into a first-class :class:`PlacementPolicy`
with exactly two methods the rest of the stack consumes — ``owner(bi,
bj)`` and ``assign(dag)`` — so every layer asks the *policy* instead of
recomputing the formula (the ``no-direct-owner`` lint rule keeps it that
way):

* :class:`CyclicPlacement` — the paper's regular 2D block-cyclic grid,
  bit-identical to the historical ``ProcessGrid.owner`` behaviour.  The
  default everywhere.
* :class:`CostModelPlacement` — heterogeneous-aware placement: per-block
  costs are aggregated from :func:`repro.core.mapping.task_weights`
  (structural FLOPs floored by block traffic) and blocks are assigned
  greedily, heaviest first, to the rank with the least *time* — load
  divided by the rank's speed factor (LPT over speed-scaled loads).
  Rank speeds come from ``SolverOptions.rank_speeds`` or a
  :class:`repro.runtime.machine.Platform`'s ``rank_speeds``.

Both are deterministic: identical inputs produce identical ownership
maps, which the sync-free protocol (and the tests) rely on.

Ownership is *storage* placement: a task always runs on the rank owning
its target block (remote writes do not exist in the message protocol),
while :func:`repro.core.mapping.balance_loads` may still migrate tasks
in the simulator, where that restriction does not apply.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .mapping import ProcessGrid, task_weights

__all__ = [
    "PlacementPolicy",
    "CyclicPlacement",
    "CostModelPlacement",
    "available_placements",
    "get_placement",
    "resolve_placement",
]


class PlacementPolicy(ABC):
    """Block→rank ownership policy.

    Subclasses set ``name`` (the registry/CLI identifier) and implement
    :meth:`owner`.  :meth:`prepare` is the optional fitting hook: it
    receives the factor DAG and the blocked structure before any owner
    query, so data-dependent policies can compute their map once.
    ``speeds`` carries the per-rank speed factors the policy (and the
    speed-aware load balancer) should honour; ``None`` means
    homogeneous ranks.
    """

    name: str = ""

    def __init__(self, nprocs: int, speeds=None) -> None:
        if nprocs < 1:
            raise ValueError("placement needs at least one rank")
        self._nprocs = int(nprocs)
        self.speeds = _check_speeds(speeds, self._nprocs)

    @property
    def nprocs(self) -> int:
        """Number of ranks blocks are placed onto."""
        return self._nprocs

    def prepare(self, dag=None, blocks=None) -> "PlacementPolicy":
        """Fit the policy to a factor DAG and/or blocked structure
        (no-op for data-independent policies).  Returns ``self``."""
        return self

    @abstractmethod
    def owner(self, bi: int, bj: int) -> int:
        """Owning rank of block ``(bi, bj)``."""

    def assign(self, dag) -> np.ndarray:
        """Task→rank assignment: every task runs on the owner of its
        target block (the protocol's no-remote-writes rule)."""
        return np.asarray(
            [self.owner(t.bi, t.bj) for t in dag.tasks], dtype=np.int64
        )


def _check_speeds(speeds, nprocs: int):
    if speeds is None:
        return None
    out = tuple(float(s) for s in speeds)
    if len(out) != nprocs:
        raise ValueError(
            f"got {len(out)} rank speeds for {nprocs} ranks"
        )
    if any(s <= 0.0 for s in out):
        raise ValueError("rank speeds must be positive")
    return out


class CyclicPlacement(PlacementPolicy):
    """The paper's regular 2D block-cyclic placement over a ``P × Q``
    grid — bit-identical to the historical ``ProcessGrid.owner`` rule.

    >>> CyclicPlacement(ProcessGrid.square(6)).owner(3, 4)
    4
    """

    name = "cyclic"

    def __init__(self, grid: ProcessGrid | int, speeds=None) -> None:
        if isinstance(grid, int):
            grid = ProcessGrid.square(grid)
        self.grid = grid
        super().__init__(grid.nprocs, speeds)

    def owner(self, bi: int, bj: int) -> int:
        return self.grid.owner(bi, bj)


class CostModelPlacement(PlacementPolicy):
    """Cost-model-driven placement for heterogeneous ranks.

    :meth:`prepare` aggregates a per-block cost from the factor DAG
    (:func:`repro.core.mapping.task_weights` summed over each block's
    tasks — structural FLOPs floored by the block's memory traffic) and
    assigns blocks greedily, heaviest first, each to the rank whose
    speed-scaled load ``(load + w) / speed`` is smallest — the classic
    LPT heuristic over machine speeds.  Ties break to the lowest rank,
    and equal-weight blocks are processed in ``(bi, bj)`` order, so the
    map is fully deterministic.

    Without a DAG (``prepare(blocks=...)`` alone, the solve-only path),
    per-block costs fall back to block traffic (``2 · nnz``).  Blocks
    never seen by :meth:`prepare` fall back to the cyclic rule — every
    query has a well-defined owner.
    """

    name = "cost"

    def __init__(self, nprocs: int, speeds=None) -> None:
        super().__init__(nprocs, speeds)
        self._owners: dict[tuple[int, int], int] = {}
        self._fallback = CyclicPlacement(ProcessGrid.square(nprocs))

    def prepare(self, dag=None, blocks=None) -> "CostModelPlacement":
        costs: dict[tuple[int, int], float] = {}
        if dag is not None:
            w = task_weights(dag, blocks)
            for i, t in enumerate(dag.tasks):
                key = (t.bi, t.bj)
                costs[key] = costs.get(key, 0.0) + float(w[i])
        if blocks is not None:
            # storage traffic keeps read-only / untargeted blocks visible
            for bj in range(blocks.nb):
                rows, blks = blocks.blocks_in_column(bj)
                for bi, blk in zip(rows, blks):
                    costs.setdefault((int(bi), bj), 2.0 * float(blk.nnz))
        if not costs:
            raise ValueError(
                "CostModelPlacement.prepare needs a DAG or a blocked "
                "structure to cost blocks from"
            )
        speeds = self.speeds or (1.0,) * self.nprocs
        loads = [0.0] * self.nprocs
        owners: dict[tuple[int, int], int] = {}
        # heaviest first; (bi, bj) tiebreak for a deterministic map
        for key in sorted(costs, key=lambda k: (-costs[k], k)):
            w = costs[key]
            best = min(
                range(self.nprocs),
                key=lambda r: ((loads[r] + w) / speeds[r], r),
            )
            owners[key] = best
            loads[best] += w
        self._owners = owners
        return self

    def owner(self, bi: int, bj: int) -> int:
        got = self._owners.get((bi, bj))
        if got is None:
            return self._fallback.owner(bi, bj)
        return got


_PLACEMENTS: dict[str, type[PlacementPolicy]] = {
    "cyclic": CyclicPlacement,
    "cost": CostModelPlacement,
}


def available_placements() -> list[str]:
    """Sorted names of the registered placement policies."""
    return sorted(_PLACEMENTS)


def get_placement(name: str, nprocs: int, *, speeds=None) -> PlacementPolicy:
    """A fresh policy instance by registry name (``"cyclic"`` /
    ``"cost"``); raises with the known names on a miss."""
    try:
        cls = _PLACEMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown placement {name!r}; available: {available_placements()}"
        ) from None
    return cls(nprocs, speeds)


def resolve_placement(spec, nprocs: int, *, speeds=None) -> PlacementPolicy:
    """Normalise a placement spec — a registry name or an already-built
    :class:`PlacementPolicy` — to a policy instance for ``nprocs`` ranks.

    An instance is returned as-is after a rank-count consistency check
    (a policy fitted for a different rank count would silently misroute
    every block).
    """
    if isinstance(spec, PlacementPolicy):
        if spec.nprocs != nprocs:
            raise ValueError(
                f"placement {spec.name!r} was built for {spec.nprocs} "
                f"ranks, but {nprocs} were requested"
            )
        return spec
    return get_placement(spec, nprocs, speeds=speeds)
