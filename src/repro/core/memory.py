"""Memory accounting for the two-layer block structure.

Section 4.2 of the paper notes that the two-layer sparse structure has
"no significant additional overhead, as we only need three additional
arrays to represent and access the block-level sparse structure", and
that PanguLU preallocates all block storage during preprocessing to
minimise consumption.  This module makes those claims checkable: exact
byte counts for the blocked factors, the layer-1 overhead, the equivalent
supernodal (padded dense-panel) storage, and the per-process footprint
under a mapping.

Every count is derived from the **actual dtypes of the stored arrays**
(``arr.nbytes`` / ``dtype.itemsize``), so the report stays truthful if
the index or value width ever changes — there are no hardcoded "8 bytes
per entry" constants.  For an arena-backed structure
(:class:`~repro.core.blocking.FactorArena`) the slot→offset tables are
counted as layer-1 overhead (they are the paper's block-payload pointer
array made literal) and the refactorisation gather map is reported
separately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocking import BlockMatrix

__all__ = ["MemoryReport", "memory_report", "per_process_bytes"]

#: pointer width charged per stored block for the legacy layout's
#: payload-pointer array (one PyObject*/array pointer per block)
_PTR = np.dtype(np.int64).itemsize


@dataclass(frozen=True)
class MemoryReport:
    """Byte-level storage accounting of a blocked factor matrix.

    Attributes
    ----------
    values_bytes:
        Numeric payload of all blocks (exact ``data`` dtype).
    layer2_index_bytes:
        Within-block CSC overhead (indices + column pointers) at the
        arrays' actual dtypes.
    layer1_index_bytes:
        Block-level CSC overhead — the paper's auxiliary arrays
        (``blk_ColumnPointer``, ``blk_RowIndex`` and the block-payload
        pointers; for an arena these pointers are the ``ptr_off`` /
        ``val_off`` slot→offset tables).
    dense_equivalent_bytes:
        Storing every *stored* block as a dense panel (what a padded
        supernodal layout pays for the same coverage).
    plan_bytes:
        Index arrays of the cached fixed-pattern execution plans
        (:mod:`repro.kernels.plans`), when the structure carries a plan
        cache — the price of precomputed scatter addressing.
    arena_refill_bytes:
        The arena's ``gather`` map (filled-matrix position of every slab
        entry) — the price of in-place value re-injection on
        refactorisation.  0 for the per-block layout.
    lr_value_bytes:
        Numeric payload of the low-rank overlay (the ``U``/``V`` factor
        pairs of compressed GESSM/TSTRF panels).  0 with compression off.
    compressed_csc_bytes:
        Exact CSC payload (values + within-block indices) of the blocks
        that also carry a low-rank overlay — what a consumer that reads
        the overlay *instead* of the CSC arrays avoids touching.
    """

    values_bytes: int
    layer2_index_bytes: int
    layer1_index_bytes: int
    dense_equivalent_bytes: int
    plan_bytes: int = 0
    arena_refill_bytes: int = 0
    lr_value_bytes: int = 0
    compressed_csc_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Full two-layer footprint, plans, refill map and low-rank
        overlay included (the overlay is *additive* storage locally: the
        exact CSC arrays stay authoritative underneath it)."""
        return (
            self.values_bytes
            + self.layer2_index_bytes
            + self.layer1_index_bytes
            + self.plan_bytes
            + self.arena_refill_bytes
            + self.lr_value_bytes
        )

    @property
    def effective_traffic_bytes(self) -> int:
        """Bytes a consumer actually reads with the overlay in force:
        every uncompressed block at its exact CSC size, every compressed
        block at its ``U``/``V`` size.  This — not :attr:`total_bytes` —
        is what shrinks in the filled regime, and it is what the wire
        accounting of the distributed engine realises (compressed panels
        ship as ``U``/``V`` only)."""
        return (
            self.values_bytes
            + self.layer2_index_bytes
            - self.compressed_csc_bytes
            + self.lr_value_bytes
        )

    @property
    def layer1_overhead(self) -> float:
        """Layer-1 arrays relative to the total — the paper's "no
        significant additional overhead" claim, as a number."""
        return self.layer1_index_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def dense_ratio(self) -> float:
        """Dense-equivalent over two-layer storage (≥ 1 for sparse data)."""
        return (
            self.dense_equivalent_bytes / self.total_bytes
            if self.total_bytes
            else 1.0
        )


def memory_report(f: BlockMatrix) -> MemoryReport:
    """Account the storage of a blocked matrix exactly (including any
    execution plans cached on the structure), with every byte count
    derived from the actual array dtypes."""
    values = 0
    layer2 = 0
    dense_eq = 0
    for blk in f.blk_values:
        val_itemsize = blk.value_nbytes // blk.nnz if blk.nnz else _PTR
        values += blk.value_nbytes
        layer2 += blk.index_nbytes
        dense_eq += blk.nrows * blk.ncols * val_itemsize
    layer1 = f.blk_colptr.nbytes + f.blk_rowidx.nbytes
    refill = 0
    if f.arena is not None:
        # the slot→offset tables are the block-payload pointer array of
        # the paper's layer 1; the gather map buys in-place refactorize
        layer1 += f.arena.ptr_off.nbytes + f.arena.val_off.nbytes
        refill = f.arena.gather.nbytes
    else:
        layer1 += f.num_blocks * _PTR  # one payload pointer per block
    plans = f.plan_cache
    lr_bytes = 0
    comp_csc = 0
    for (bi, bj), cb in (getattr(f, "lr_overlay", None) or {}).items():
        lr_bytes += cb.value_nbytes
        blk = f.block(bi, bj)
        if blk is not None:  # values + indices a pure-overlay reader skips
            comp_csc += blk.value_nbytes + blk.index_nbytes
    return MemoryReport(
        values_bytes=int(values),
        layer2_index_bytes=int(layer2),
        layer1_index_bytes=int(layer1),
        dense_equivalent_bytes=int(dense_eq),
        plan_bytes=int(plans.nbytes) if plans is not None else 0,
        arena_refill_bytes=int(refill),
        lr_value_bytes=int(lr_bytes),
        compressed_csc_bytes=int(comp_csc),
    )


def per_process_bytes(f: BlockMatrix, grid) -> np.ndarray:
    """Bytes of block storage owned by each process — the quantity that
    must fit in one device's memory.

    ``grid`` is a :class:`ProcessGrid` (block-cyclic ownership) or any
    :class:`repro.core.placement.PlacementPolicy`.  Ownership is the
    storage layout; the load balancer migrates *tasks*, never block
    storage.  Counts are exact (``nbytes`` of the per-block arrays at
    their real dtypes).
    """
    from .placement import CyclicPlacement, PlacementPolicy

    place = grid if isinstance(grid, PlacementPolicy) else CyclicPlacement(grid)
    out = np.zeros(place.nprocs, dtype=np.int64)
    for bj in range(f.nb):
        rows, blocks = f.blocks_in_column(bj)
        for bi, blk in zip(rows, blocks):
            owner = place.owner(int(bi), bj)
            out[owner] += blk.value_nbytes + blk.index_nbytes
    return out
