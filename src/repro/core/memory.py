"""Memory accounting for the two-layer block structure.

Section 4.2 of the paper notes that the two-layer sparse structure has
"no significant additional overhead, as we only need three additional
arrays to represent and access the block-level sparse structure", and
that PanguLU preallocates all block storage during preprocessing to
minimise consumption.  This module makes those claims checkable: exact
byte counts for the blocked factors, the layer-1 overhead, the equivalent
supernodal (padded dense-panel) storage, and the per-process footprint
under a mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .blocking import BlockMatrix
from .mapping import ProcessGrid

__all__ = ["MemoryReport", "memory_report", "per_process_bytes"]

_IDX = 8   # bytes per stored index (int64 in this implementation)
_VAL = 8   # bytes per stored value (float64)


@dataclass(frozen=True)
class MemoryReport:
    """Byte-level storage accounting of a blocked factor matrix.

    Attributes
    ----------
    values_bytes:
        Numeric payload of all blocks.
    layer2_index_bytes:
        Within-block CSC overhead (indices + column pointers).
    layer1_index_bytes:
        Block-level CSC overhead — the paper's three auxiliary arrays
        (``blk_ColumnPointer``, ``blk_RowIndex``, ``blk_Value`` pointers).
    dense_equivalent_bytes:
        Storing every *stored* block as a dense panel (what a padded
        supernodal layout pays for the same coverage).
    plan_bytes:
        Index arrays of the cached fixed-pattern execution plans
        (:mod:`repro.kernels.plans`), when the structure carries a plan
        cache — the price of precomputed scatter addressing.
    """

    values_bytes: int
    layer2_index_bytes: int
    layer1_index_bytes: int
    dense_equivalent_bytes: int
    plan_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Full two-layer footprint, plans included."""
        return (
            self.values_bytes
            + self.layer2_index_bytes
            + self.layer1_index_bytes
            + self.plan_bytes
        )

    @property
    def layer1_overhead(self) -> float:
        """Layer-1 arrays relative to the total — the paper's "no
        significant additional overhead" claim, as a number."""
        return self.layer1_index_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def dense_ratio(self) -> float:
        """Dense-equivalent over two-layer storage (≥ 1 for sparse data)."""
        return (
            self.dense_equivalent_bytes / self.total_bytes
            if self.total_bytes
            else 1.0
        )


def memory_report(f: BlockMatrix) -> MemoryReport:
    """Account the storage of a blocked matrix exactly (including any
    execution plans cached on the structure)."""
    values = 0
    layer2 = 0
    dense_eq = 0
    for blk in f.blk_values:
        values += blk.nnz * _VAL
        layer2 += blk.nnz * _IDX + (blk.ncols + 1) * _IDX
        dense_eq += blk.nrows * blk.ncols * _VAL
    layer1 = (f.nb + 1) * _IDX + f.num_blocks * (_IDX + _IDX)  # colptr + rowidx + payload ptr
    plans = f.plan_cache
    return MemoryReport(
        values_bytes=int(values),
        layer2_index_bytes=int(layer2),
        layer1_index_bytes=int(layer1),
        dense_equivalent_bytes=int(dense_eq),
        plan_bytes=int(plans.nbytes) if plans is not None else 0,
    )


def per_process_bytes(f: BlockMatrix, grid: ProcessGrid) -> np.ndarray:
    """Bytes of block storage owned by each process under block-cyclic
    mapping — the quantity that must fit in one device's memory.

    Ownership is the storage layout (pure block-cyclic); the load
    balancer migrates *tasks*, never block storage.
    """
    out = np.zeros(grid.nprocs, dtype=np.int64)
    for bj in range(f.nb):
        rows, blocks = f.blocks_in_column(bj)
        for bi, blk in zip(rows, blocks):
            owner = grid.owner(int(bi), bj)
            out[owner] += blk.nnz * (_VAL + _IDX) + (blk.ncols + 1) * _IDX
    return out
