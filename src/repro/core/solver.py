"""PanguLU solver facade — the five phases glued together.

``PanguLU(a).solve(b)`` runs:

1. **Reordering** — MC64 row permutation + scaling for a large diagonal
   (numerical stability under static pivoting), then a fill-reducing
   symmetric permutation (nested dissection by default, AMD/RCM/natural
   selectable).
2. **Symbolic factorisation** — symmetric-pruned fill of the reordered
   matrix (:func:`repro.symbolic.symbolic_symmetric`).
3. **Preprocessing** — block-size selection, regular 2D blocking into the
   two-layer sparse structure, task-DAG construction, block-cyclic
   mapping with static load balancing.
4. **Numeric factorisation** — DAG replay with adaptive sparse kernels.
5. **Triangular solve** — block forward/backward substitution, then
   un-permutation and un-scaling of the solution.

Every phase's wall-clock time is recorded in :attr:`PanguLU.phase_seconds`
(the quantity compared in the paper's Figs. 11 and 15).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..ordering import amd, colamd, mc64, nested_dissection, rcm
from ..sparse.csc import CSCMatrix
from ..sparse.patterns import ensure_diagonal
from ..symbolic import SymbolicResult, symbolic_symmetric
from .blocking import BlockMatrix, block_partition, choose_block_size
from .dag import TaskDAG, build_dag
from .mapping import ProcessGrid, assign_tasks, balance_loads
from .numeric import FactorizeStats, NumericOptions, factorize
from .tsolve import (
    block_backward,
    block_backward_trans,
    block_forward,
    block_forward_trans,
)

__all__ = ["SolverOptions", "PanguLU"]


def _perm_sign(perm: np.ndarray) -> float:
    """Sign (±1) of a permutation via cycle counting."""
    n = perm.size
    seen = np.zeros(n, dtype=bool)
    sign = 1.0
    for start in range(n):
        if seen[start]:
            continue
        length = 0
        j = start
        while not seen[j]:
            seen[j] = True
            j = int(perm[j])
            length += 1
        if length % 2 == 0:
            sign = -sign
    return sign


@dataclass
class SolverOptions:
    """Configuration of the full pipeline.

    Attributes
    ----------
    ordering:
        Fill-reducing ordering: ``"nd"`` (METIS-role nested dissection,
        the paper's choice), ``"amd"``, ``"colamd"``, ``"rcm"``,
        ``"natural"``, or ``"best"`` (evaluate ND and AMD, keep the one
        with least fill).
    use_mc64:
        Run the MC64 permutation/scaling (paper default).  Disable only
        for matrices already diagonally dominant.
    block_size:
        Regular block size; ``None`` applies the order/density heuristic
        of :func:`repro.core.blocking.choose_block_size`.
    numeric:
        Kernel selection and pivoting options for the numeric phase.
    nprocs:
        Logical process count for the mapping and for the
        ``"distributed"`` engine's rank count.
    load_balance:
        Apply the static time-slice balancing to the task assignment.
    engine:
        Execution engine for the numeric phase, resolved through the
        registry in :mod:`repro.runtime.engines`: ``"sequential"``,
        ``"threaded"`` (``n_workers`` threads) or ``"distributed"``
        (``nprocs`` ranks over a message transport).  ``None`` (default)
        picks ``"threaded"`` when ``n_workers > 1``, else
        ``"sequential"``.
    n_workers:
        Worker threads for the ``"threaded"`` engine
        (:func:`repro.runtime.factorize_threaded`).
    trace_events:
        Record structured scheduler events (task start/end, message
        send/recv, ready-queue depth) during the numeric phase; after
        :meth:`PanguLU.factorize` the recorder is available as
        ``solver.recorder`` and can be serialised with
        :func:`repro.runtime.write_recorder_trace`.
    refine_steps:
        Iterative-refinement sweeps after the triangular solves.  Static
        pivoting (MC64 + GESP pivot replacement) trades factorisation-time
        stability for a possibly larger residual; a few cheap refinement
        steps recover it — the same recipe SuperLU_DIST applies.
    validate_concurrency:
        Run the numeric phase under the
        :mod:`repro.devtools.racecheck` invariant checker: single writer
        per block slot, exactly-once task completion, no ready-heap
        re-issue, nothing dropped.  A violation raises
        :class:`~repro.devtools.racecheck.ConcurrencyViolation` naming
        the tasks and workers involved.  Also enabled globally by
        setting the ``REPRO_CHECK`` environment variable to a non-zero
        value.
    """

    ordering: str = "nd"
    use_mc64: bool = True
    block_size: int | None = None
    numeric: NumericOptions = field(default_factory=NumericOptions)
    nprocs: int = 1
    load_balance: bool = True
    refine_steps: int = 2
    n_workers: int = 1
    engine: str | None = None
    trace_events: bool = False
    validate_concurrency: bool = False

    def resolved_engine(self) -> str:
        """The engine name after applying the ``None`` default rule."""
        if self.engine is not None:
            return self.engine
        return "threaded" if self.n_workers > 1 else "sequential"


class PanguLU:
    """Sparse direct solver for ``A x = b`` (square, structurally
    nonsingular ``A``).

    Parameters
    ----------
    a:
        The system matrix.
    options:
        Pipeline configuration; defaults reproduce the paper's setup.

    Examples
    --------
    >>> from repro.sparse import grid_laplacian_2d
    >>> import numpy as np
    >>> a = grid_laplacian_2d(16, 16)
    >>> solver = PanguLU(a)
    >>> x = solver.solve(np.ones(a.nrows))
    >>> float(np.linalg.norm(a.matvec(x) - 1.0)) < 1e-8
    True
    """

    def __init__(self, a: CSCMatrix, options: SolverOptions | None = None) -> None:
        if a.nrows != a.ncols:
            raise ValueError("PanguLU requires a square matrix")
        if a.nnz and not np.all(np.isfinite(a.data)):
            raise ValueError("matrix contains non-finite values (NaN/Inf)")
        self.a = a
        self.options = options or SolverOptions()
        self.phase_seconds: dict[str, float] = {}
        # phase products
        self.row_scale: np.ndarray | None = None
        self.col_scale: np.ndarray | None = None
        self.row_perm: np.ndarray | None = None   # combined row permutation
        self.col_perm: np.ndarray | None = None   # fill-reducing permutation
        self.symbolic: SymbolicResult | None = None
        self.blocks: BlockMatrix | None = None
        self.dag: TaskDAG | None = None
        self.grid: ProcessGrid | None = None
        self.assignment: np.ndarray | None = None
        self.numeric_stats: FactorizeStats | None = None
        self.recorder = None  # EventRecorder of the last factorize, if traced
        self._factorized = False

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def reorder(self) -> CSCMatrix:
        """Phase 1: MC64 + fill-reducing ordering; returns the reordered,
        scaled matrix the later phases factorise."""
        t0 = time.perf_counter()
        a = self.a
        n = a.ncols
        if self.options.use_mc64:
            res = mc64(a)
            self.row_scale = res.row_scale
            self.col_scale = res.col_scale
            work = a.scale(res.row_scale, res.col_scale).permute(res.row_perm, None)
            mc64_perm = res.row_perm
        else:
            self.row_scale = np.ones(n)
            self.col_scale = np.ones(n)
            work = a.copy()
            mc64_perm = np.arange(n, dtype=np.int64)

        ordering = self.options.ordering
        if ordering == "nd":
            p = nested_dissection(work)
        elif ordering == "amd":
            p = amd(work)
        elif ordering == "colamd":
            p = colamd(work)
        elif ordering == "rcm":
            p = rcm(work)
        elif ordering == "natural":
            p = np.arange(n, dtype=np.int64)
        elif ordering == "best":
            # try the serious candidates and keep the one with least fill —
            # ordering cost is small next to numeric factorisation
            from ..symbolic import symbolic_symmetric as _sym

            candidates = {"nd": nested_dissection(work), "amd": amd(work)}
            fills = {
                name: _sym(work.permute(q, q)).nnz_lu
                for name, q in candidates.items()
            }
            p = candidates[min(fills, key=fills.get)]
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        self.col_perm = p
        self.row_perm = mc64_perm[p]
        work = work.permute(p, p)
        work = ensure_diagonal(work)
        self.phase_seconds["reorder"] = time.perf_counter() - t0
        self._reordered = work
        return work

    def symbolic_factorize(self) -> SymbolicResult:
        """Phase 2: symmetric-pruned fill pattern of the reordered matrix."""
        if self.col_perm is None:
            self.reorder()
        t0 = time.perf_counter()
        self.symbolic = symbolic_symmetric(self._reordered)
        self.phase_seconds["symbolic"] = time.perf_counter() - t0
        return self.symbolic

    def preprocess(self) -> BlockMatrix:
        """Phase 3: blocking, DAG construction, mapping + load balance."""
        if self.symbolic is None:
            self.symbolic_factorize()
        t0 = time.perf_counter()
        filled = self.symbolic.filled
        bs = self.options.block_size or choose_block_size(filled.ncols, filled.nnz)
        self.blocks = block_partition(filled, bs)
        self.dag = build_dag(self.blocks)
        self.grid = ProcessGrid.square(self.options.nprocs)
        assignment = assign_tasks(self.dag, self.grid)
        if self.options.load_balance and self.grid.nprocs > 1:
            assignment = balance_loads(self.dag, self.grid, assignment)
        self.assignment = assignment
        self.phase_seconds["preprocess"] = time.perf_counter() - t0
        return self.blocks

    def factorize(self) -> FactorizeStats:
        """Phase 4: numeric factorisation (idempotent).

        Dispatches to the engine named by ``options.engine`` through the
        registry in :mod:`repro.runtime.engines` — every engine drains
        the same DAG through the shared scheduler core and produces the
        same factors.
        """
        if self._factorized:
            return self.numeric_stats
        if self.blocks is None:
            self.preprocess()
        t0 = time.perf_counter()
        from ..runtime.engines import get_engine
        from ..runtime.scheduler import EventRecorder

        engine = get_engine(self.options.resolved_engine())
        self.recorder = EventRecorder() if self.options.trace_events else None
        self.numeric_stats = engine(
            self.blocks, self.dag, self.options, recorder=self.recorder
        )
        self.phase_seconds["numeric"] = time.perf_counter() - t0
        self._factorized = True
        return self.numeric_stats

    def _apply_factors(self, b: np.ndarray) -> np.ndarray:
        """One pass of the permuted/scaled triangular solves: ``x`` with
        ``A x ≈ b`` up to static-pivoting error (vector or multi-RHS)."""
        rs = self.row_scale if b.ndim == 1 else self.row_scale[:, None]
        cs = self.col_scale if b.ndim == 1 else self.col_scale[:, None]
        # Dr A Dc z = Dr b with x = Dc z; rows/cols permuted into block space
        c_hat = (rs * b)[self.row_perm]
        y = block_forward(self.blocks, c_hat)
        z_hat = block_backward(self.blocks, y)
        z = np.empty_like(z_hat)
        z[self.col_perm] = z_hat
        return cs * z

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Phase 5: solve ``A x = b``, with ``refine_steps`` rounds of
        iterative refinement.

        ``b`` may be a vector of length ``n`` or an ``(n, k)`` array of
        ``k`` simultaneous right-hand sides.
        """
        self.factorize()
        t0 = time.perf_counter()
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.a.nrows or b.ndim > 2:
            raise ValueError(
                f"b has shape {b.shape}, expected ({self.a.nrows},) or "
                f"({self.a.nrows}, k)"
            )
        mv = self.a.matmat if b.ndim == 2 else self.a.matvec
        x = self._apply_factors(b)
        for _ in range(max(0, self.options.refine_steps)):
            r = b - mv(x)
            if not np.all(np.isfinite(r)):
                break
            x = x + self._apply_factors(r)
        self.phase_seconds["solve"] = time.perf_counter() - t0
        return x

    def solve_transposed(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` using the same factorisation.

        Uses ``(LU)ᵀ = Uᵀ Lᵀ`` over the block layout — no second
        factorisation.  Needed by the 1-norm condition estimator and by
        adjoint/sensitivity computations in circuit and PDE workloads.
        """
        self.factorize()
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.a.nrows,):
            raise ValueError(f"b has shape {b.shape}, expected ({self.a.nrows},)")
        # Aᵀ x = b  ⇔  Sᵀ w = Dc b with S = Dr A Dc, x = Dr w, and
        # m2ᵀ v = (Dc b)[col_perm], w[row_perm] = v
        c_hat = (self.col_scale * b)[self.col_perm]
        y = block_forward_trans(self.blocks, c_hat)
        v = block_backward_trans(self.blocks, y)
        w = np.empty_like(v)
        w[self.row_perm] = v
        x = self.row_scale * w
        for _ in range(max(0, self.options.refine_steps)):
            r = b - self._matvec_t(x)
            if not np.all(np.isfinite(r)):
                break
            c_hat = (self.col_scale * r)[self.col_perm]
            y = block_forward_trans(self.blocks, c_hat)
            v = block_backward_trans(self.blocks, y)
            w = np.empty_like(v)
            w[self.row_perm] = v
            x = x + self.row_scale * w
        return x

    def _matvec_t(self, x: np.ndarray) -> np.ndarray:
        """``Aᵀ @ x`` for a dense vector."""
        a = self.a
        y = np.zeros(a.ncols, dtype=np.float64)
        cols = np.repeat(np.arange(a.ncols), np.diff(a.indptr))
        np.add.at(y, cols, a.data * x[a.indices])
        return y

    def slogdet(self) -> tuple[float, float]:
        """``(sign, log|det A|)`` from the factorisation (numpy.slogdet
        convention).

        Uses ``det(P₁ · Dr A Dc · P₂ᵀ) = Π diag(U)`` and corrects for the
        permutation signs and the MC64 scalings.
        """
        self.factorize()
        sign = 1.0
        logdet = 0.0
        for k in range(self.blocks.nb):
            diag = self.blocks.block(k, k)
            d = diag.diagonal()
            if np.any(d == 0.0):
                return 0.0, -np.inf
            sign *= float(np.prod(np.sign(d)))
            logdet += float(np.sum(np.log(np.abs(d))))
        sign *= _perm_sign(self.row_perm) * _perm_sign(self.col_perm)
        logdet -= float(np.sum(np.log(self.row_scale)))
        logdet -= float(np.sum(np.log(self.col_scale)))
        return sign, logdet

    def condest_1norm(self, *, max_iter: int = 8) -> float:
        """Estimate ``κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁`` (Hager's method).

        ``‖A⁻¹‖₁`` is estimated by power iteration on the signs of
        ``A⁻¹``/``A⁻ᵀ`` applications — a lower bound that is typically
        within a small factor of the truth, at the cost of a handful of
        triangular solves.
        """
        self.factorize()
        n = self.a.ncols
        norm_a = self.a.norm_1()
        x = np.full(n, 1.0 / n)
        est = 0.0
        for _ in range(max_iter):
            y = self.solve(x)
            new_est = float(np.abs(y).sum())
            xi = np.sign(y)
            xi[xi == 0] = 1.0
            z = self.solve_transposed(xi)
            j = int(np.argmax(np.abs(z)))
            if new_est <= est or float(np.abs(z[j])) <= float(z @ x):
                est = max(est, new_est)
                break
            est = new_est
            x = np.zeros(n)
            x[j] = 1.0
        return norm_a * est

    def refactorize(self, a_new: CSCMatrix) -> FactorizeStats:
        """Re-run only the numeric phase for a matrix with the *same
        pattern* but new values (Newton steps in circuit/device
        simulation — the workload PanguLU's introduction motivates).

        Reuses the reordering, symbolic pattern, blocking, DAG and mapping
        computed for the original matrix; only value injection and the
        numeric factorisation are repeated.
        """
        if a_new.shape != self.a.shape:
            raise ValueError("refactorize requires a same-shape matrix")
        if not (
            np.array_equal(a_new.indptr, self.a.indptr)
            and np.array_equal(a_new.indices, self.a.indices)
        ):
            raise ValueError("refactorize requires the original sparsity pattern")
        if self.blocks is None:
            self.preprocess()
        t0 = time.perf_counter()
        self.a = a_new
        work = a_new.scale(self.row_scale, self.col_scale).permute(
            self.row_perm, self.col_perm
        )
        self._reordered = ensure_diagonal(work)
        from ..symbolic import fill_in_values

        refreshed = fill_in_values(self.symbolic.filled.pattern_copy(), work)
        bs = self.blocks.bs
        plan_cache = self.blocks.plan_cache
        self.blocks = block_partition(refreshed, bs)
        # same pattern ⇒ same blocking ⇒ same storage slots: the execution
        # plans built for the previous factorisation stay valid verbatim
        self.blocks.plan_cache = plan_cache
        self.numeric_stats = factorize(self.blocks, self.dag, self.options.numeric)
        self.phase_seconds["numeric"] = time.perf_counter() - t0
        self._factorized = True
        return self.numeric_stats

    def estimate(
        self,
        *,
        proc_counts: tuple[int, ...] = (1, 4, 16, 64),
        platforms: tuple | None = None,
    ) -> dict:
        """Plan a factorisation without doing the numeric work.

        Runs reordering, symbolic factorisation and preprocessing (all
        cheap relative to numeric factorisation), then reports what the
        numeric phase will look like: fill, FLOPs, storage, and predicted
        times/throughputs on the modelled platforms.  Useful for choosing
        a process count or checking that the factors fit in device memory
        before committing to the expensive phase.
        """
        from ..runtime.adapters import simulate_pangulu
        from ..runtime.machine import A100_PLATFORM, MI50_PLATFORM
        from .memory import memory_report

        if platforms is None:
            platforms = (A100_PLATFORM, MI50_PLATFORM)
        if self.blocks is None:
            self.preprocess()
        rep = memory_report(self.blocks)
        out = {
            "n": self.a.nrows,
            "nnz": self.a.nnz,
            "nnz_lu": self.symbolic.nnz_lu,
            "fill_ratio": self.symbolic.fill_ratio,
            "flops": self.dag.total_flops,
            "tasks": len(self.dag),
            "block_size": self.blocks.bs,
            "block_grid": self.blocks.nb,
            "factor_bytes": rep.total_bytes,
            "predicted": {},
        }
        for platform in platforms:
            for p in proc_counts:
                sim = simulate_pangulu(self.blocks, self.dag, platform, p)
                out["predicted"][(platform.name, p)] = {
                    "seconds": sim.result.makespan,
                    "gflops": sim.gflops,
                    "sync_ratio": sim.result.sync_ratio(),
                }
        return out

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def residual_norm(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual ``‖A x − b‖₂ / ‖b‖₂``."""
        r = self.a.matvec(x) - b
        denom = float(np.linalg.norm(b)) or 1.0
        return float(np.linalg.norm(r)) / denom

    def lu_product_error(self) -> float:
        """Max-norm error ``‖(reordered A) − L·U‖∞ / ‖A‖∞`` — verifies the
        factorisation independently of any right-hand side."""
        self.factorize()
        lu = self.blocks.to_csc().to_dense()
        n = lu.shape[0]
        l = np.tril(lu, -1) + np.eye(n)
        u = np.triu(lu)
        a_re = self._reordered.to_dense()
        scale = np.abs(a_re).max() or 1.0
        return float(np.abs(a_re - l @ u).max() / scale)
