"""PanguLU solver facade — the five phases glued together.

``PanguLU(a).solve(b)`` runs:

1. **Reordering** — MC64 row permutation + scaling for a large diagonal
   (numerical stability under static pivoting), then a fill-reducing
   symmetric permutation (nested dissection by default, AMD/RCM/natural
   selectable).
2. **Symbolic factorisation** — symmetric-pruned fill of the reordered
   matrix (:func:`repro.symbolic.symbolic_symmetric`).
3. **Preprocessing** — block-size selection, regular 2D blocking into the
   two-layer sparse structure, task-DAG construction, block-cyclic
   mapping with static load balancing.
4. **Numeric factorisation** — DAG replay with adaptive sparse kernels.
5. **Triangular solve** — block forward/backward substitution through the
   engine named by ``options.engine`` (the same scheduler core as the
   numeric phase), then un-permutation and un-scaling of the solution.

Every phase's wall-clock time is recorded in :attr:`PanguLU.phase_seconds`
(the quantity compared in the paper's Figs. 11 and 15).

:meth:`PanguLU.factorize` returns a :class:`Factorization` — a picklable
factor-once/solve-many handle that owns phase 5: it can be shipped to
another process and solve fresh right-hand sides there without
refactorising (the Newton-iteration workload of the paper's
introduction).  ``PanguLU.solve`` / ``solve_transposed`` / ``refactorize``
delegate to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..ordering import amd, colamd, mc64, nested_dissection, rcm
from ..sparse.csc import CSCMatrix
from ..sparse.patterns import ensure_diagonal
from ..symbolic import SymbolicResult, symbolic_symmetric
from .blocking import BlockMatrix, block_partition
from .dag import TaskDAG, build_dag
from .mapping import ProcessGrid, balance_loads, task_weights
from .placement import PlacementPolicy, resolve_placement
from .strategy import get_blocking_strategy
from .numeric import FactorizeStats, NumericOptions
from .tsolve import (
    TSolveStats,
    block_backward_trans,
    block_forward_trans,
)
from .tsolve_dag import build_tsolve_dag
from .verify import verify_dag

__all__ = ["SolverOptions", "Factorization", "PanguLU", "RefinementStalled"]


class RefinementStalled(ArithmeticError):
    """Mixed-precision iterative refinement could not reach the requested
    residual tolerance.

    Raised by :meth:`Factorization.solve` on the ``float32`` factor path
    when plain refinement stops contracting *and* the GMRES-IR escalation
    also fails to reach ``SolverOptions.refine_tol`` — typically a sign
    that the matrix is too ill-conditioned for single-precision factors
    (``κ(A) · ε₃₂ ≳ 1``).  The message reports the achieved relative
    residual so callers can decide whether to accept it or refactorise
    at ``factor_dtype="float64"``.

    Attributes
    ----------
    achieved:
        Best relative residual reached (max over right-hand sides).
    tol:
        The tolerance that was requested.
    iterations:
        Total refinement + escalation iterations spent.
    """

    def __init__(self, achieved: float, tol: float, iterations: int) -> None:
        self.achieved = float(achieved)
        self.tol = float(tol)
        self.iterations = int(iterations)
        super().__init__(
            f"mixed-precision refinement stalled at relative residual "
            f"{self.achieved:.3e} (tolerance {self.tol:.3e}, "
            f"{self.iterations} iterations); the matrix is likely too "
            f"ill-conditioned for float32 factors — refactorize with "
            f'factor_dtype="float64" or relax refine_tol'
        )

    def __reduce__(self):
        return (type(self), (self.achieved, self.tol, self.iterations))


def _fgmres(
    matvec,
    precond,
    r0: np.ndarray,
    tol_abs: float,
    maxiter: int,
    restart: int = 20,
) -> tuple[np.ndarray, int]:
    """Solve ``A y = r0`` by restarted FGMRES, right-preconditioned by the
    (low-precision) factor application ``precond``.

    This is the inner loop of GMRES-IR: the Krylov space is built on the
    true operator in working precision, so it converges where plain
    LU-IR with float32 factors stalls (κ(A)·ε₃₂ ≈ 1).  Returns the
    correction and the number of operator applications spent.
    """
    n = r0.size
    dt = r0.dtype
    y = np.zeros(n, dtype=dt)
    r = r0.copy()
    spent = 0
    while spent < maxiter:
        beta = float(np.linalg.norm(r))
        if beta <= tol_abs or not np.isfinite(beta):
            break
        m = min(restart, maxiter - spent)
        if m < 1:
            break
        v = np.zeros((n, m + 1), dtype=dt)
        z = np.zeros((n, m), dtype=dt)
        h = np.zeros((m + 1, m), dtype=dt)
        v[:, 0] = r / beta
        k_used = 0
        for k in range(m):
            z[:, k] = precond(v[:, k])
            w = np.asarray(matvec(z[:, k]), dtype=dt)
            spent += 1
            for i in range(k + 1):
                h[i, k] = float(v[:, i] @ w)
                w = w - h[i, k] * v[:, i]
            h[k + 1, k] = float(np.linalg.norm(w))
            k_used = k + 1
            if h[k + 1, k] <= np.finfo(dt).tiny:
                break
            v[:, k + 1] = w / h[k + 1, k]
        e1 = np.zeros(k_used + 1, dtype=dt)
        e1[0] = beta
        coef, *_ = np.linalg.lstsq(h[: k_used + 1, :k_used], e1, rcond=None)
        y = y + z[:, :k_used] @ coef
        r = r0 - np.asarray(matvec(y), dtype=dt)
        spent += 1
    return y, spent


def _perm_sign(perm: np.ndarray) -> float:
    """Sign (±1) of a permutation via cycle counting."""
    n = perm.size
    seen = np.zeros(n, dtype=bool)
    sign = 1.0
    for start in range(n):
        if seen[start]:
            continue
        length = 0
        j = start
        while not seen[j]:
            seen[j] = True
            j = int(perm[j])
            length += 1
        if length % 2 == 0:
            sign = -sign
    return sign


@dataclass
class SolverOptions:
    """Configuration of the full pipeline.

    Attributes
    ----------
    ordering:
        Fill-reducing ordering: ``"nd"`` (METIS-role nested dissection,
        the paper's choice), ``"amd"``, ``"colamd"``, ``"rcm"``,
        ``"natural"``, or ``"best"`` (evaluate ND and AMD, keep the one
        with least fill).
    use_mc64:
        Run the MC64 permutation/scaling (paper default).  Disable only
        for matrices already diagonally dominant.
    blocking:
        Blocking strategy for the two-layer structure: ``"regular"``
        (uniform block size — the paper's Section 4.1 layout, default)
        or ``"irregular"`` (structure-aware variable-width boundaries
        guided by the fill pattern's relaxed supernodes — Hu et al.).
        A :class:`~repro.core.strategy.BlockingStrategy` instance is
        accepted for full control.
    block_size:
        Regular block size — or, for ``blocking="irregular"``, the block
        width cap.  ``None`` applies the order/density heuristic of
        :func:`repro.core.blocking.choose_block_size`.
    use_arena:
        Back the two-layer structure with a preallocated
        :class:`~repro.core.blocking.FactorArena` (default): one
        contiguous ``indptr``/``indices``/``data`` slab per factor sized
        during preprocessing, every block a zero-copy view — the paper's
        Section 4.2 "preallocates all block storage during
        preprocessing".  Factors and solutions are bit-identical to the
        legacy per-block layout; ``refactorize`` overwrites the value
        slab in place (no per-block allocations) and pickling a
        :class:`Factorization` ships three buffers instead of thousands.
        ``False`` selects the legacy independently-allocated blocks (the
        ablation baseline).
    numeric:
        Kernel selection and pivoting options for the numeric phase.
    nprocs:
        Logical process count for the mapping and for the
        ``"distributed"``/``"hybrid"`` engines' rank count.
    placement:
        Block→rank ownership policy: ``"cyclic"`` (the paper's regular
        2D block-cyclic grid, default), ``"cost"`` (cost-model-driven
        heterogeneous placement honouring ``rank_speeds``), or a
        prebuilt :class:`~repro.core.placement.PlacementPolicy`
        instance.  The policy decides which rank owns (and therefore
        factors) every block, for the mapping, the distributed/hybrid
        engines and the solve DAGs alike.
    rank_speeds:
        Per-rank relative speed factors (length ``nprocs``) describing a
        heterogeneous machine; consumed by the ``"cost"`` placement and
        the speed-aware load balancer.  ``None`` means homogeneous.
        The string ``"auto"`` calibrates the factors from a short
        deterministic kernel warmup at preprocessing time
        (:func:`repro.runtime.calibrate.calibrate_rank_speeds`) and
        stores the resolved tuple back on the options, so every later
        consumer (placement, balancer, engine re-resolution) sees
        concrete floats.
    load_balance:
        Apply the static time-slice balancing to the task assignment.
    engine:
        Execution engine for the numeric phase **and** for the triangular
        solves of phase 5, resolved through the registries in
        :mod:`repro.runtime.engines`: ``"sequential"``, ``"threaded"``
        (``n_workers`` threads), ``"distributed"`` (``nprocs`` ranks
        over a message transport) or ``"hybrid"`` (``nprocs`` ranks ×
        ``n_workers`` threads per rank — HYLU-style mixed parallelism).
        ``None`` (default) picks ``"threaded"`` when ``n_workers > 1``,
        else ``"sequential"``.  All engines produce bit-identical
        solutions — the solve DAG totally orders the writers of every
        RHS segment.
    n_workers:
        Worker threads for the ``"threaded"`` engine
        (:func:`repro.runtime.factorize_threaded`), and threads *per
        rank* for the ``"hybrid"`` engine.
    trace_events:
        Record structured scheduler events (task start/end, message
        send/recv, ready-queue depth) during the numeric phase and the
        triangular solves; after :meth:`PanguLU.factorize` the recorder
        is available as ``solver.recorder`` (solve-task lanes are
        appended to it by each :meth:`PanguLU.solve`) and can be
        serialised with :func:`repro.runtime.write_recorder_trace`.
    refine_steps:
        Iterative-refinement sweeps after the triangular solves.  Static
        pivoting (MC64 + GESP pivot replacement) trades factorisation-time
        stability for a possibly larger residual; a few cheap refinement
        steps recover it — the same recipe SuperLU_DIST applies.  Applies
        to the ``float64`` factor path; the ``float32`` path replaces the
        fixed sweep count with the adaptive loop below.
    factor_dtype:
        Working precision of the numeric factors: ``"float64"`` (default)
        or ``"float32"``.  Single precision halves the arena ``data``
        slab, the per-block value arrays and the transport value bytes;
        accuracy is recovered by iterative refinement in
        ``refine_target_dtype`` (residuals and corrections accumulate in
        double precision — the classic mixed-precision LU-IR recipe,
        mirroring the production solver's paired r32/r64 kernels).
    refine_target_dtype:
        Accumulation dtype of the mixed-precision refinement loop
        (``"float64"`` default).  The triangular solves promote the
        ``float32`` factors against this dtype's right-hand sides.
    refine_tol:
        Relative-residual target ``‖b − A x‖ / ‖b‖`` of the adaptive
        refinement on the ``float32`` factor path.  Plain refinement
        iterates until the tolerance is met; if it stalls, a
        GMRES-IR-style inner loop (FGMRES preconditioned by the low-
        precision factors) takes over; if that also fails,
        :class:`RefinementStalled` is raised with the achieved residual.
    refine_max_iter:
        Iteration budget of the adaptive refinement loop (plain sweeps
        plus escalation matvecs).
    validate_concurrency:
        Run the numeric phase and the triangular solves under the
        :mod:`repro.devtools.racecheck` invariant checker: single writer
        per block slot (RHS segment for the solves), exactly-once task
        completion, no ready-heap re-issue, nothing dropped.  A violation
        raises
        :class:`~repro.devtools.racecheck.ConcurrencyViolation` naming
        the tasks and workers involved.  Also enabled globally by
        setting the ``REPRO_CHECK`` environment variable to a non-zero
        value.
    compress_tol:
        Relative spectral tolerance of the low-rank block overlay
        (:class:`~repro.sparse.blockrep.CompressedBlock`).  0 (default)
        disables compression — every engine is bit-identical to the
        pre-compression solver.  When positive, GESSM/TSTRF output
        panels that compress profitably carry a truncated ``U @ V.T``
        overlay which downstream SSSSM consumers (and the transports)
        use at ``O((m + n) · rank)`` cost; the factors become
        approximate and solves recover accuracy through the adaptive
        refinement loop, escalating to an exact decompressed
        refactorisation if refinement stalls.
    compress_min_order:
        Smallest ``min(m, n)`` a block must reach before a compression
        attempt (the SVD never amortises on small blocks).
    verify_schedule:
        Statically verify every built DAG (the factor DAG at
        preprocessing, each executable solve DAG on first use) with
        :func:`repro.core.verify.verify_dag` before any engine executes
        it: acyclicity, counter-equals-indegree, single-writer block
        chains, and solve-segment write ordering.  A violation raises
        :class:`~repro.core.verify.ScheduleViolation` with a named
        diagnostic instead of deadlocking mid-run.  Also exposed as the
        CLI ``--verify`` flag.
    """

    ordering: str = "nd"
    use_mc64: bool = True
    blocking: str = "regular"
    block_size: int | None = None
    use_arena: bool = True
    numeric: NumericOptions = field(default_factory=NumericOptions)
    nprocs: int = 1
    placement: str | PlacementPolicy = "cyclic"
    rank_speeds: tuple[float, ...] | str | None = None
    load_balance: bool = True
    refine_steps: int = 2
    factor_dtype: str = "float64"
    refine_target_dtype: str = "float64"
    refine_tol: float = 1e-12
    refine_max_iter: int = 40
    compress_tol: float = 0.0
    compress_min_order: int = 32
    n_workers: int = 1
    engine: str | None = None
    trace_events: bool = False
    validate_concurrency: bool = False
    verify_schedule: bool = False

    def resolved_engine(self) -> str:
        """The engine name after applying the ``None`` default rule."""
        if self.engine is not None:
            return self.engine
        return "threaded" if self.n_workers > 1 else "sequential"

    def resolved_factor_dtype(self) -> np.dtype:
        """``factor_dtype`` as a validated :class:`numpy.dtype`."""
        dt = np.dtype(self.factor_dtype)
        if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"factor_dtype must be float32 or float64, got {dt}"
            )
        return dt

    def resolved_refine_dtype(self) -> np.dtype:
        """``refine_target_dtype`` as a validated :class:`numpy.dtype`."""
        dt = np.dtype(self.refine_target_dtype)
        if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"refine_target_dtype must be float32 or float64, got {dt}"
            )
        return dt


class Factorization:
    """A factor-once/solve-many handle: everything phase 5 needs.

    Produced by :meth:`PanguLU.factorize`; owns the factored blocks, the
    scalings/permutations of phase 1, and the executable solve DAGs, and
    solves any number of right-hand sides through the engine named by
    ``options.engine`` — without touching the original :class:`PanguLU`
    (which delegates its own ``solve``/``solve_transposed``/
    ``refactorize`` here).

    The handle is **picklable**: the pattern-bound execution-plan cache
    (which holds a lock and is cheap to rebuild lazily) is dropped on
    serialisation, everything else round-trips, so a factorisation
    computed once can be shipped to worker processes that each solve
    their own right-hand sides.

    Attributes
    ----------
    solve_count, last_solve_seconds, total_solve_seconds:
        Accounting across :meth:`solve`/:meth:`solve_transposed` calls —
        ``total_solve_seconds`` accumulates (it is what
        ``PanguLU.phase_seconds["solve"]`` reports), ``last_solve_seconds``
        is the most recent call alone.
    last_tsolve_stats:
        :class:`~repro.core.tsolve.TSolveStats` of the most recent
        engine-driven sweep pair (task counts, message bytes for the
        distributed engine).
    """

    def __init__(
        self,
        a: CSCMatrix,
        options: SolverOptions,
        *,
        row_scale: np.ndarray,
        col_scale: np.ndarray,
        row_perm: np.ndarray,
        col_perm: np.ndarray,
        symbolic: SymbolicResult,
        reordered: CSCMatrix,
        blocks: BlockMatrix,
        dag: TaskDAG,
        stats: FactorizeStats,
        placement: PlacementPolicy | None = None,
    ) -> None:
        self.a = a
        self.options = options
        self.row_scale = row_scale
        self.col_scale = col_scale
        self.row_perm = row_perm
        self.col_perm = col_perm
        self.symbolic = symbolic
        self.reordered = reordered
        self.blocks = blocks
        self.dag = dag
        self.stats = stats
        self.solve_count = 0
        self.last_solve_seconds = 0.0
        self.total_solve_seconds = 0.0
        self.refactorize_seconds = 0.0
        self.last_tsolve_stats: TSolveStats | None = None
        self.placement = placement
        # executable solve DAGs, keyed by engine placement (the local
        # engines share one single-owner DAG; distributed/hybrid need
        # the ownership map of their rank count)
        self._tsolve_dags: dict = {}

    @property
    def n(self) -> int:
        return self.a.nrows

    # ------------------------------------------------------------------
    # engine dispatch
    # ------------------------------------------------------------------
    def _engine_placement(self) -> PlacementPolicy | None:
        """The fitted placement policy for a multi-rank engine run, or
        ``None`` for the local engines (which own everything).

        Reuses the policy fitted at preprocessing when its rank count
        matches ``options.nprocs``; otherwise resolves and fits a fresh
        one (e.g. the options changed after factorisation) and caches it
        on the handle.
        """
        if self.options.resolved_engine() not in ("distributed", "hybrid"):
            return None
        nprocs = max(1, self.options.nprocs)
        if self.placement is None or self.placement.nprocs != nprocs:
            self.placement = resolve_placement(
                self.options.placement, nprocs,
                speeds=self.options.rank_speeds,
            ).prepare(self.dag, self.blocks)
        return self.placement

    def _tsolve_dag(self):
        """The executable solve DAG for the current engine (cached —
        patterns are immutable post-symbolic, so it survives repeated
        solves and refactorisations)."""
        placement = self._engine_placement()
        if placement is not None:
            key = (placement.name, placement.nprocs)
            owner = placement.owner
        else:
            key = ("local", 1)

            def owner(bi: int, bj: int) -> int:
                return 0

        tdag = self._tsolve_dags.get(key)
        if tdag is None:
            tdag = build_tsolve_dag(self.blocks, owner, executable=True)
            if self.options.verify_schedule:
                verify_dag(tdag)
            self._tsolve_dags[key] = tdag
        return tdag

    def apply(self, b: np.ndarray, *, recorder=None) -> np.ndarray:
        """One pass of the permuted/scaled triangular solves: ``x`` with
        ``A x ≈ b`` up to static-pivoting error (vector or multi-RHS),
        executed by the engine named in the options."""
        from ..runtime.engines import get_tsolve_engine

        rs = self.row_scale if b.ndim == 1 else self.row_scale[:, None]
        cs = self.col_scale if b.ndim == 1 else self.col_scale[:, None]
        # Dr A Dc z = Dr b with x = Dc z; rows/cols permuted into block space
        c_hat = (rs * b)[self.row_perm]
        engine = get_tsolve_engine(self.options.resolved_engine())
        z_hat, tstats = engine(
            self.blocks, self._tsolve_dag(), c_hat, self.options,
            recorder=recorder, placement=self._engine_placement(),
        )
        self.last_tsolve_stats = tstats
        z = np.empty_like(z_hat)
        z[self.col_perm] = z_hat
        return cs * z

    def _apply_transposed(self, b: np.ndarray) -> np.ndarray:
        """One pass of the transposed solves ``Aᵀ x ≈ b`` (legacy loop
        sweeps — the transposed direction has no DAG path)."""
        # Aᵀ x = b  ⇔  Sᵀ w = Dc b with S = Dr A Dc, x = Dr w, and
        # m2ᵀ v = (Dc b)[col_perm], w[row_perm] = v
        c_hat = (self.col_scale * b)[self.col_perm]
        y = block_forward_trans(self.blocks, c_hat)
        v = block_backward_trans(self.blocks, y)
        w = np.empty_like(v)
        w[self.row_perm] = v
        return self.row_scale * w

    # ------------------------------------------------------------------
    # solves
    # ------------------------------------------------------------------
    @property
    def factor_dtype(self) -> np.dtype:
        """Value dtype of the stored factors (``blocks.dtype``)."""
        return self.blocks.dtype

    def _refine(self, x: np.ndarray, b: np.ndarray, apply_fn, matvec):
        """``refine_steps`` rounds of iterative refinement of ``x``
        against ``b``, with ``apply_fn`` the direction-specific factor
        application and ``matvec`` the matching matrix product."""
        for _ in range(max(0, self.options.refine_steps)):
            r = b - matvec(x)
            if not np.all(np.isfinite(r)):
                break
            x = x + apply_fn(r)
        return x

    def _refine_adaptive(self, x: np.ndarray, b: np.ndarray, apply_fn, matvec):
        """Adaptive mixed-precision refinement (the ``float32`` factor
        path): iterate plain LU-IR in ``refine_target_dtype`` until the
        relative residual meets ``refine_tol``; when the sweeps stop
        contracting, escalate to a GMRES-IR inner loop (FGMRES on ``A``
        preconditioned by the low-precision factor application); raise
        :class:`RefinementStalled` when neither reaches the tolerance.
        """
        opts = self.options
        tol = float(opts.refine_tol)
        budget = max(1, int(opts.refine_max_iter))
        target = opts.resolved_refine_dtype()
        x = np.asarray(x, dtype=target)
        b = np.asarray(b, dtype=target)
        multi = b.ndim == 2

        if multi:
            bden = np.linalg.norm(b, axis=0)
            bden = np.where(bden == 0.0, 1.0, bden)
        else:
            bden = float(np.linalg.norm(b)) or 1.0

        def rel(r: np.ndarray) -> float:
            if multi:
                return float(np.max(np.linalg.norm(r, axis=0) / bden))
            return float(np.linalg.norm(r)) / bden

        spent = 0
        r = b - matvec(x)
        worst = rel(r)
        prev = np.inf
        stall = 0
        while worst > tol and spent < budget and np.all(np.isfinite(r)):
            # a sweep that fails to halve the residual is "stalled" —
            # κ(A)·ε₃₂ is biting and more of the same will not converge
            if worst > 0.5 * prev:
                stall += 1
                if stall >= 2:
                    break
            else:
                stall = 0
            prev = worst
            x = x + np.asarray(apply_fn(r), dtype=target)
            spent += 1
            r = b - matvec(x)
            worst = rel(r)
        if worst <= tol:
            return x

        # GMRES-IR escalation, one correction system per unconverged RHS
        if multi:
            mv1 = lambda v: matvec(v[:, None])[:, 0]  # noqa: E731
            ap1 = lambda v: apply_fn(v[:, None])[:, 0]  # noqa: E731
            col_rel = np.linalg.norm(r, axis=0) / bden
            todo = [j for j in range(b.shape[1]) if col_rel[j] > tol]
        else:
            mv1, ap1 = matvec, apply_fn
            todo = [None]
        esc_budget = max(budget, 20)
        for j in todo:
            rj = r[:, j] if multi else r
            dj = bden[j] if multi else bden
            y, used = _fgmres(mv1, ap1, np.asarray(rj, dtype=target),
                              tol * float(dj), esc_budget)
            spent += used
            if multi:
                x[:, j] = x[:, j] + y
            else:
                x = x + y
        r = b - matvec(x)
        worst = rel(r)
        if worst <= tol:
            return x
        raise RefinementStalled(worst, tol, spent)

    def _account(self, t0: float) -> None:
        self.last_solve_seconds = time.perf_counter() - t0
        self.total_solve_seconds += self.last_solve_seconds
        self.solve_count += 1

    def compression_active(self) -> bool:
        """True while the factors were computed with the low-rank block
        overlay enabled (``compress_tol > 0``) — i.e. they are
        tolerance-accurate, not exact, and solves must run the adaptive
        refinement loop.  Judged from the options, not the overlay dict:
        on the distributed engine the compression happened on remote
        ranks and the master's overlay is empty, but the gathered factor
        values are approximate all the same."""
        return self.options.numeric.compress_tol > 0.0

    def decompress(self) -> FactorizeStats:
        """Refinement-escalation path: disable compression, drop every
        low-rank overlay, and refactorise the current matrix exactly.
        After this the handle behaves like a compression-off
        factorisation (bit-identical factors to ``compress_tol=0``);
        the caller retries the solve against the exact factors."""
        self.options.compress_tol = 0.0
        self.options.numeric.compress_tol = 0.0
        if hasattr(self.blocks, "clear_compressed"):
            self.blocks.clear_compressed()
        return self.refactorize(self.a)

    def _refine_compressed(self, x0, b, apply_fn, matvec, *, rebuild):
        """Refinement with the compressed-factor escalation: run the
        adaptive loop; when it stalls, decompress + refactorise exactly
        and retry once from a fresh application of the exact factors
        (``rebuild`` recomputes the initial iterate)."""
        try:
            return self._refine_adaptive(x0, b, apply_fn, matvec)
        except RefinementStalled:
            if not self.compression_active():
                raise
            self.decompress()
            x1 = rebuild()
            if self.factor_dtype == np.dtype(np.float32):
                return self._refine_adaptive(x1, b, apply_fn, matvec)
            return self._refine(x1, b, apply_fn, matvec)

    def solve(self, b: np.ndarray, *, recorder=None) -> np.ndarray:
        """Solve ``A x = b`` (vector or ``(n, k)`` multi-RHS panel) with
        ``refine_steps`` rounds of iterative refinement.  Pass an
        :class:`~repro.runtime.scheduler.EventRecorder` to append
        solve-task trace lanes to it."""
        t0 = time.perf_counter()
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.n or b.ndim > 2:
            raise ValueError(
                f"b has shape {b.shape}, expected ({self.n},) or ({self.n}, k)"
            )
        mv = self.a.matmat if b.ndim == 2 else self.a.matvec
        x0 = self.apply(b, recorder=recorder)
        apply_fn = lambda r: self.apply(r, recorder=recorder)  # noqa: E731
        if self.compression_active():
            x = self._refine_compressed(
                x0, b, apply_fn, mv,
                rebuild=lambda: self.apply(b, recorder=recorder),
            )
        elif self.factor_dtype == np.dtype(np.float32):
            x = self._refine_adaptive(x0, b, apply_fn, mv)
        else:
            x = self._refine(x0, b, apply_fn, mv)
        self._account(t0)
        return x

    def solve_transposed(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` using the same factorisation
        (``(LU)ᵀ = Uᵀ Lᵀ`` over the block layout — no second
        factorisation)."""
        t0 = time.perf_counter()
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise ValueError(f"b has shape {b.shape}, expected ({self.n},)")
        if self.compression_active():
            x = self._refine_compressed(
                self._apply_transposed(b), b,
                self._apply_transposed, self._matvec_t,
                rebuild=lambda: self._apply_transposed(b),
            )
        elif self.factor_dtype == np.dtype(np.float32):
            x = self._refine_adaptive(self._apply_transposed(b), b,
                                      self._apply_transposed, self._matvec_t)
        else:
            x = self._refine(self._apply_transposed(b), b,
                             self._apply_transposed, self._matvec_t)
        self._account(t0)
        return x

    def _matvec_t(self, x: np.ndarray) -> np.ndarray:
        """``Aᵀ @ x`` for a dense vector."""
        a = self.a
        y = np.zeros(a.ncols, dtype=np.float64)
        cols = np.repeat(np.arange(a.ncols), np.diff(a.indptr))
        np.add.at(y, cols, a.data * x[a.indices])
        return y

    # ------------------------------------------------------------------
    # refactorisation
    # ------------------------------------------------------------------
    def refactorize(self, a_new: CSCMatrix) -> FactorizeStats:
        """Re-run only the numeric phase for a matrix with the *same
        pattern* but new values (Newton steps in circuit/device
        simulation — the workload PanguLU's introduction motivates).

        Reuses the reordering, symbolic pattern, blocking, DAG, mapping,
        execution plans **and** the executable solve DAGs computed for
        the original matrix; only value injection and the numeric
        factorisation are repeated.  On the arena layout
        (``options.use_arena``) the value injection is a single in-place
        overwrite of the preallocated value slab — no per-block array is
        allocated or rebound, so every block view, scatter plan and solve
        DAG survives untouched.
        """
        if a_new.shape != self.a.shape:
            raise ValueError("refactorize requires a same-shape matrix")
        if not (
            np.array_equal(a_new.indptr, self.a.indptr)
            and np.array_equal(a_new.indices, self.a.indices)
        ):
            raise ValueError("refactorize requires the original sparsity pattern")
        t0 = time.perf_counter()
        self.a = a_new
        work = a_new.scale(self.row_scale, self.col_scale).permute(
            self.row_perm, self.col_perm
        )
        self.reordered = ensure_diagonal(work)
        from ..runtime.engines import get_engine
        from ..symbolic import fill_in_values

        refreshed = fill_in_values(self.symbolic.filled.pattern_copy(), work)
        if getattr(self.blocks, "lr_overlay", None):
            # stale overlays describe the previous values; the engine
            # re-compresses (into the same arena slab) as it factorises
            self.blocks.clear_compressed()
        if self.blocks.arena is not None:
            self.blocks.arena.refill(refreshed.data)
        else:
            bs = self.blocks.bs
            plan_cache = self.blocks.plan_cache
            self.blocks = block_partition(
                refreshed, self.blocks.boundaries, dtype=self.blocks.dtype
            )
            self.blocks.bs = bs
            # same pattern ⇒ same boundaries ⇒ same storage slots: the
            # execution plans and the solve DAGs (which hold block indices,
            # not block references) built for the previous factorisation
            # stay valid
            self.blocks.plan_cache = plan_cache
        engine = get_engine(self.options.resolved_engine())
        self.stats = engine(
            self.blocks, self.dag, self.options,
            placement=self._engine_placement(),
        )
        self.refactorize_seconds = time.perf_counter() - t0
        return self.stats

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # BlockMatrix.__getstate__ drops the (lock-holding) plan cache and,
        # on the arena layout, serialises the factors as three contiguous
        # slabs instead of thousands of per-block arrays
        return dict(self.__dict__)


class PanguLU:
    """Sparse direct solver for ``A x = b`` (square, structurally
    nonsingular ``A``).

    Parameters
    ----------
    a:
        The system matrix.
    options:
        Pipeline configuration; defaults reproduce the paper's setup.

    Examples
    --------
    >>> from repro.sparse import grid_laplacian_2d
    >>> import numpy as np
    >>> a = grid_laplacian_2d(16, 16)
    >>> solver = PanguLU(a)
    >>> x = solver.solve(np.ones(a.nrows))
    >>> float(np.linalg.norm(a.matvec(x) - 1.0)) < 1e-8
    True
    """

    def __init__(self, a: CSCMatrix, options: SolverOptions | None = None) -> None:
        if a.nrows != a.ncols:
            raise ValueError("PanguLU requires a square matrix")
        if a.nnz and not np.all(np.isfinite(a.data)):
            raise ValueError("matrix contains non-finite values (NaN/Inf)")
        self.a = a
        self.options = options or SolverOptions()
        self.phase_seconds: dict[str, float] = {}
        # phase products
        self.row_scale: np.ndarray | None = None
        self.col_scale: np.ndarray | None = None
        self.row_perm: np.ndarray | None = None   # combined row permutation
        self.col_perm: np.ndarray | None = None   # fill-reducing permutation
        self.symbolic: SymbolicResult | None = None
        self.blocks: BlockMatrix | None = None
        self.dag: TaskDAG | None = None
        self.grid: ProcessGrid | None = None
        self.placement: PlacementPolicy | None = None
        self.assignment: np.ndarray | None = None
        self.numeric_stats: FactorizeStats | None = None
        self.recorder = None  # EventRecorder of the last factorize, if traced
        self._factorized = False
        self._fact: Factorization | None = None

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def reorder(self) -> CSCMatrix:
        """Phase 1: MC64 + fill-reducing ordering; returns the reordered,
        scaled matrix the later phases factorise."""
        t0 = time.perf_counter()
        a = self.a
        n = a.ncols
        if self.options.use_mc64:
            res = mc64(a)
            self.row_scale = res.row_scale
            self.col_scale = res.col_scale
            work = a.scale(res.row_scale, res.col_scale).permute(res.row_perm, None)
            mc64_perm = res.row_perm
        else:
            self.row_scale = np.ones(n, dtype=np.float64)
            self.col_scale = np.ones(n, dtype=np.float64)
            work = a.copy()
            mc64_perm = np.arange(n, dtype=np.int64)

        ordering = self.options.ordering
        if ordering == "nd":
            p = nested_dissection(work)
        elif ordering == "amd":
            p = amd(work)
        elif ordering == "colamd":
            p = colamd(work)
        elif ordering == "rcm":
            p = rcm(work)
        elif ordering == "natural":
            p = np.arange(n, dtype=np.int64)
        elif ordering == "best":
            # try the serious candidates and keep the one with least fill —
            # ordering cost is small next to numeric factorisation
            from ..symbolic import symbolic_symmetric as _sym

            candidates = {"nd": nested_dissection(work), "amd": amd(work)}
            fills = {
                name: _sym(work.permute(q, q)).nnz_lu
                for name, q in candidates.items()
            }
            p = candidates[min(fills, key=fills.get)]
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        self.col_perm = p
        self.row_perm = mc64_perm[p]
        work = work.permute(p, p)
        work = ensure_diagonal(work)
        self.phase_seconds["reorder"] = time.perf_counter() - t0
        self._reordered = work
        return work

    def symbolic_factorize(self) -> SymbolicResult:
        """Phase 2: symmetric-pruned fill pattern of the reordered matrix."""
        if self.col_perm is None:
            self.reorder()
        t0 = time.perf_counter()
        self.symbolic = symbolic_symmetric(self._reordered)
        self.phase_seconds["symbolic"] = time.perf_counter() - t0
        return self.symbolic

    def preprocess(self) -> BlockMatrix:
        """Phase 3: blocking, DAG construction, mapping + load balance."""
        if self.symbolic is None:
            self.symbolic_factorize()
        t0 = time.perf_counter()
        filled = self.symbolic.filled
        strategy = get_blocking_strategy(
            self.options.blocking, block_size=self.options.block_size
        )
        self.blocks = strategy.partition(
            filled,
            arena=self.options.use_arena,
            dtype=self.options.resolved_factor_dtype(),
        )
        if self.options.compress_tol > 0.0:
            # sync the solver-level knobs into the numeric options the
            # engines consume, and pre-size the arena's low-rank slab so
            # compression (and re-compression on refactorize) is
            # alloc-free
            self.options.numeric.compress_tol = self.options.compress_tol
            self.options.numeric.compress_min_order = self.options.compress_min_order
        if self.options.numeric.compress_tol > 0.0:
            self.blocks.enable_lr_overlay()
        self.dag = build_dag(self.blocks)
        self.grid = ProcessGrid.square(self.options.nprocs)
        if self.options.rank_speeds == "auto":
            from ..runtime.calibrate import calibrate_rank_speeds

            # resolve to a concrete tuple *before* any policy is built:
            # placement construction validates speeds as floats, and the
            # Factorization handle re-resolves placements from the same
            # options object later
            self.options.rank_speeds = calibrate_rank_speeds(self.options.nprocs)
        placement = resolve_placement(
            self.options.placement, self.options.nprocs,
            speeds=self.options.rank_speeds,
        ).prepare(self.dag, self.blocks)
        self.placement = placement
        assignment = placement.assign(self.dag)
        if self.options.verify_schedule:
            verify_dag(
                self.dag, assignment=assignment, nprocs=placement.nprocs
            )
        if self.options.load_balance and placement.nprocs > 1:
            weights = task_weights(self.dag, self.blocks)
            assignment = balance_loads(
                self.dag, placement, assignment,
                weights=weights, speeds=placement.speeds,
            )
        self.assignment = assignment
        self.phase_seconds["preprocess"] = time.perf_counter() - t0
        return self.blocks

    def factorize(self) -> Factorization:
        """Phase 4: numeric factorisation (idempotent — repeated calls
        return the same :class:`Factorization` handle).

        Dispatches to the engine named by ``options.engine`` through the
        registry in :mod:`repro.runtime.engines` — every engine drains
        the same DAG through the shared scheduler core and produces the
        same factors.  The returned handle owns phase 5 (and is
        picklable, so it can solve in other processes); ``solve`` /
        ``solve_transposed`` / ``refactorize`` on this object delegate
        to it.
        """
        if self._factorized:
            if self._fact is None:
                # blocks were factorised externally (e.g. by calling an
                # engine directly) — wrap them in a handle all the same
                self._fact = self._make_handle()
            return self._fact
        if self.blocks is None:
            self.preprocess()
        t0 = time.perf_counter()
        from ..runtime.engines import get_engine
        from ..runtime.scheduler import EventRecorder

        engine = get_engine(self.options.resolved_engine())
        self.recorder = EventRecorder() if self.options.trace_events else None
        self.numeric_stats = engine(
            self.blocks, self.dag, self.options, recorder=self.recorder,
            placement=self.placement,
        )
        self.phase_seconds["numeric"] = time.perf_counter() - t0
        self._factorized = True
        self._fact = self._make_handle()
        return self._fact

    def _make_handle(self) -> Factorization:
        return Factorization(
            self.a, self.options,
            row_scale=self.row_scale, col_scale=self.col_scale,
            row_perm=self.row_perm, col_perm=self.col_perm,
            symbolic=self.symbolic, reordered=self._reordered,
            blocks=self.blocks, dag=self.dag, stats=self.numeric_stats,
            placement=self.placement,
        )

    @property
    def solve_count(self) -> int:
        """Solves performed against the current factorisation."""
        return self._fact.solve_count if self._fact is not None else 0

    @property
    def last_solve_seconds(self) -> float:
        """Wall-clock of the most recent solve alone
        (``phase_seconds["solve"]`` accumulates across solves)."""
        return self._fact.last_solve_seconds if self._fact is not None else 0.0

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Phase 5: solve ``A x = b``, with ``refine_steps`` rounds of
        iterative refinement, through the engine named by
        ``options.engine`` (delegates to the :class:`Factorization`).

        ``b`` may be a vector of length ``n`` or an ``(n, k)`` array of
        ``k`` simultaneous right-hand sides.
        """
        fact = self.factorize()
        x = fact.solve(b, recorder=self.recorder)
        self.phase_seconds["solve"] = fact.total_solve_seconds
        return x

    def solve_transposed(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` using the same factorisation.

        Uses ``(LU)ᵀ = Uᵀ Lᵀ`` over the block layout — no second
        factorisation.  Needed by the 1-norm condition estimator and by
        adjoint/sensitivity computations in circuit and PDE workloads.
        """
        fact = self.factorize()
        x = fact.solve_transposed(b)
        self.phase_seconds["solve"] = fact.total_solve_seconds
        return x

    def _apply_factors(self, b: np.ndarray) -> np.ndarray:
        """One pass of the permuted/scaled triangular solves (delegates
        to :meth:`Factorization.apply`)."""
        return self.factorize().apply(b, recorder=self.recorder)

    def _matvec_t(self, x: np.ndarray) -> np.ndarray:
        """``Aᵀ @ x`` for a dense vector."""
        fact = self.factorize()
        return fact._matvec_t(x)

    def slogdet(self) -> tuple[float, float]:
        """``(sign, log|det A|)`` from the factorisation (numpy.slogdet
        convention).

        Uses ``det(P₁ · Dr A Dc · P₂ᵀ) = Π diag(U)`` and corrects for the
        permutation signs and the MC64 scalings.
        """
        self.factorize()
        sign = 1.0
        logdet = 0.0
        for k in range(self.blocks.nb):
            diag = self.blocks.block(k, k)
            d = diag.diagonal()
            if np.any(d == 0.0):
                return 0.0, -np.inf
            sign *= float(np.prod(np.sign(d)))
            logdet += float(np.sum(np.log(np.abs(d))))
        sign *= _perm_sign(self.row_perm) * _perm_sign(self.col_perm)
        logdet -= float(np.sum(np.log(self.row_scale)))
        logdet -= float(np.sum(np.log(self.col_scale)))
        return sign, logdet

    def condest_1norm(self, *, max_iter: int = 8) -> float:
        """Estimate ``κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁`` (Hager's method).

        ``‖A⁻¹‖₁`` is estimated by power iteration on the signs of
        ``A⁻¹``/``A⁻ᵀ`` applications — a lower bound that is typically
        within a small factor of the truth, at the cost of a handful of
        triangular solves.
        """
        self.factorize()
        n = self.a.ncols
        norm_a = self.a.norm_1()
        x = np.full(n, 1.0 / n, dtype=np.float64)
        est = 0.0
        for _ in range(max_iter):
            y = self.solve(x)
            new_est = float(np.abs(y).sum())
            xi = np.sign(y)
            xi[xi == 0] = 1.0
            z = self.solve_transposed(xi)
            j = int(np.argmax(np.abs(z)))
            if new_est <= est or float(np.abs(z[j])) <= float(z @ x):
                est = max(est, new_est)
                break
            est = new_est
            x = np.zeros(n, dtype=np.float64)
            x[j] = 1.0
        return norm_a * est

    def refactorize(self, a_new: CSCMatrix) -> FactorizeStats:
        """Re-run only the numeric phase for a matrix with the *same
        pattern* but new values (Newton steps in circuit/device
        simulation — the workload PanguLU's introduction motivates).

        Delegates to :meth:`Factorization.refactorize`, which reuses the
        reordering, symbolic pattern, blocking, DAG, mapping, execution
        plans and solve DAGs computed for the original matrix; only value
        injection and the numeric factorisation are repeated.
        """
        if self._fact is None:
            if self.blocks is None:
                self.preprocess()
            # value swap before the first numeric run: factorise the new
            # values directly instead of factorising twice
            if a_new.shape != self.a.shape:
                raise ValueError("refactorize requires a same-shape matrix")
            if not (
                np.array_equal(a_new.indptr, self.a.indptr)
                and np.array_equal(a_new.indices, self.a.indices)
            ):
                raise ValueError(
                    "refactorize requires the original sparsity pattern"
                )
            fact = self.factorize()
            stats = fact.refactorize(a_new)
        else:
            stats = self._fact.refactorize(a_new)
        # keep the facade's view of the phase products in step
        self.a = self._fact.a
        self._reordered = self._fact.reordered
        self.blocks = self._fact.blocks
        self.numeric_stats = stats
        self.phase_seconds["numeric"] = self._fact.refactorize_seconds
        self._factorized = True
        return stats

    def estimate(
        self,
        *,
        proc_counts: tuple[int, ...] = (1, 4, 16, 64),
        platforms: tuple | None = None,
    ) -> dict:
        """Plan a factorisation without doing the numeric work.

        Runs reordering, symbolic factorisation and preprocessing (all
        cheap relative to numeric factorisation), then reports what the
        numeric phase will look like: fill, FLOPs, storage, and predicted
        times/throughputs on the modelled platforms.  Useful for choosing
        a process count or checking that the factors fit in device memory
        before committing to the expensive phase.
        """
        from ..runtime.adapters import simulate_pangulu
        from ..runtime.machine import A100_PLATFORM, MI50_PLATFORM
        from .memory import memory_report

        if platforms is None:
            platforms = (A100_PLATFORM, MI50_PLATFORM)
        if self.blocks is None:
            self.preprocess()
        rep = memory_report(self.blocks)
        out = {
            "n": self.a.nrows,
            "nnz": self.a.nnz,
            "nnz_lu": self.symbolic.nnz_lu,
            "fill_ratio": self.symbolic.fill_ratio,
            "flops": self.dag.total_flops,
            "tasks": len(self.dag),
            "block_size": self.blocks.bs,
            "block_grid": self.blocks.nb,
            "blocking": self.options.blocking
            if isinstance(self.options.blocking, str)
            else self.options.blocking.name,
            "factor_bytes": rep.total_bytes,
            "predicted": {},
        }
        for platform in platforms:
            for p in proc_counts:
                sim = simulate_pangulu(self.blocks, self.dag, platform, p)
                out["predicted"][(platform.name, p)] = {
                    "seconds": sim.result.makespan,
                    "gflops": sim.gflops,
                    "sync_ratio": sim.result.sync_ratio(),
                }
        return out

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def residual_norm(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual ``‖A x − b‖₂ / ‖b‖₂``."""
        r = self.a.matvec(x) - b
        denom = float(np.linalg.norm(b)) or 1.0
        return float(np.linalg.norm(r)) / denom

    def lu_product_error(self) -> float:
        """Max-norm error ``‖(reordered A) − L·U‖∞ / ‖A‖∞`` — verifies the
        factorisation independently of any right-hand side."""
        self.factorize()
        lu = self.blocks.to_csc().to_dense()
        n = lu.shape[0]
        l = np.tril(lu, -1) + np.eye(n)
        u = np.triu(lu)
        a_re = self._reordered.to_dense()
        scale = np.abs(a_re).max() or 1.0
        return float(np.abs(a_re - l @ u).max() / scale)
