"""Partial factorisation and Schur complements over the block layout.

Stopping the right-looking block elimination after ``kb`` block steps
leaves the trailing blocks holding exactly the Schur complement
``S = A₂₂ − A₂₁ A₁₁⁻¹ A₁₂`` (with the leading blocks factored) — the
building block of domain-decomposition and hierarchical solvers, and a
natural capability of PanguLU's regular 2D layout: no extra data
structure is needed, the trailing sub-grid *is* the complement.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..kernels.base import Workspace
from ..sparse.csc import CSCMatrix, coo_to_csc
from .blocking import BlockMatrix
from .dag import TaskDAG
from .numeric import (
    _TTYPE_TO_KTYPE,
    FactorizeStats,
    NumericOptions,
    execute_task,
    push_ready,
    resolve_plan_cache,
    task_features,
)

__all__ = ["partial_factorize", "extract_trailing"]


def partial_factorize(
    f: BlockMatrix,
    dag: TaskDAG,
    kb: int,
    options: NumericOptions | None = None,
) -> FactorizeStats:
    """Run the block elimination for steps ``k < kb`` only, in place.

    Afterwards the leading ``kb × kb`` block grid holds its LU factors and
    panels, and every trailing block ``(i, j)`` with ``i, j ≥ kb`` holds
    the corresponding Schur-complement entries.
    """
    if not 0 <= kb <= f.nb:
        raise ValueError(f"kb must be in [0, {f.nb}]")
    options = options or NumericOptions()
    stats = FactorizeStats()
    ws = Workspace()
    plans = resolve_plan_cache(f, options)
    counters = dag.dep_counts()
    ready: list[tuple[int, int, int]] = []
    for tid in dag.roots():
        if dag.tasks[tid].k < kb:
            push_ready(ready, dag, tid)
    while ready:
        _, _, tid = heapq.heappop(ready)
        task = dag.tasks[tid]
        feats = task_features(f, task)
        ktype = _TTYPE_TO_KTYPE[task.ttype]
        version = options.selector.select(ktype, feats)
        replaced, planned = execute_task(
            f, task, version, ws, pivot_floor=options.pivot_floor, plans=plans
        )
        stats.pivots_replaced += replaced
        stats.planned_tasks += planned
        stats.kernel_choices[tid] = f"{ktype.value}/{version}"
        stats.flops_total += task.flops
        stats.tasks_executed += 1
        for s in task.successors:
            counters[s] -= 1
            if counters[s] == 0 and dag.tasks[s].k < kb:
                push_ready(ready, dag, s)
    if plans is not None:
        stats.plan_bytes = plans.nbytes
    return stats


def extract_trailing(f: BlockMatrix, kb: int) -> CSCMatrix:
    """Assemble the trailing sub-matrix (block rows/cols ``≥ kb``) into one
    CSC matrix — after :func:`partial_factorize` this is the Schur
    complement."""
    if not 0 <= kb <= f.nb:
        raise ValueError(f"kb must be in [0, {f.nb}]")
    offset = int(f.boundaries[kb])
    m = f.n - offset
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    for bj in range(kb, f.nb):
        brows, blocks = f.blocks_in_column(bj)
        for bi, blk in zip(brows, blocks):
            bi = int(bi)
            if bi < kb:
                continue
            r, c = blk.rows_cols()
            rows_parts.append(r + f.block_start(bi) - offset)
            cols_parts.append(c + f.block_start(bj) - offset)
            vals_parts.append(blk.data)
    if not rows_parts:
        return CSCMatrix.empty((m, m))
    return coo_to_csc(
        (m, m),
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    )
