"""PanguLU core: 2D blocking (regular or structure-aware irregular),
pluggable block→rank placement (cyclic or cost-model) with static load
balancing, the task DAG, the numeric driver, block triangular solves and
the five-phase solver facade."""

from .blocking import (
    BlockMatrix,
    BlockSizeDecision,
    FactorArena,
    block_partition,
    block_size_decision,
    boundaries_from_block_size,
    choose_block_size,
)
from .dag import Task, TaskDAG, TaskType, build_dag, sync_free_array
from .mapping import (
    ProcessGrid,
    assign_tasks,
    balance_loads,
    load_imbalance,
    task_weights,
)
from .placement import (
    CostModelPlacement,
    CyclicPlacement,
    PlacementPolicy,
    available_placements,
    get_placement,
    resolve_placement,
)
from .strategy import (
    BlockingStrategy,
    IrregularBlocking,
    RegularBlocking,
    get_blocking_strategy,
)
from .numeric import (
    FactorizeStats,
    NumericOptions,
    execute_task,
    factorize,
    resolve_plan_cache,
    run_task,
    task_features,
)
from .schur import extract_trailing, partial_factorize
from .solver import Factorization, PanguLU, SolverOptions
from .memory import MemoryReport, memory_report, per_process_bytes
from .tsolve import (
    TSolveStats,
    block_backward,
    block_forward,
    execute_tsolve_task,
    solve_lower_unit,
    solve_upper,
    tsolve_sequential,
)
from .tsolve_dag import TSolveDAG, TSolveTaskType, build_tsolve_dag

__all__ = [
    "BlockMatrix",
    "BlockSizeDecision",
    "FactorArena",
    "block_partition",
    "block_size_decision",
    "boundaries_from_block_size",
    "choose_block_size",
    "BlockingStrategy",
    "RegularBlocking",
    "IrregularBlocking",
    "get_blocking_strategy",
    "task_weights",
    "Task",
    "TaskDAG",
    "TaskType",
    "build_dag",
    "sync_free_array",
    "ProcessGrid",
    "assign_tasks",
    "balance_loads",
    "load_imbalance",
    "PlacementPolicy",
    "CyclicPlacement",
    "CostModelPlacement",
    "available_placements",
    "get_placement",
    "resolve_placement",
    "NumericOptions",
    "FactorizeStats",
    "factorize",
    "run_task",
    "execute_task",
    "resolve_plan_cache",
    "task_features",
    "partial_factorize",
    "extract_trailing",
    "PanguLU",
    "SolverOptions",
    "Factorization",
    "MemoryReport",
    "memory_report",
    "per_process_bytes",
    "TSolveDAG",
    "TSolveTaskType",
    "build_tsolve_dag",
    "block_backward",
    "block_forward",
    "solve_lower_unit",
    "solve_upper",
    "TSolveStats",
    "execute_tsolve_task",
    "tsolve_sequential",
]
