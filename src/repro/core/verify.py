"""Pre-execution schedule verification for the factor and solve DAGs.

The sync-free counter protocol (paper Section 4.4) executes whatever
graph it is handed with **no runtime safety net**: a wrong dependency
counter deadlocks or double-fires a task, a missing writer-chain edge
lets two kernels race on one block, a cycle hangs every engine.  The
invariants are all decidable from the DAG alone, so this module checks
them *before* a single kernel runs:

* **edges** — every successor tid is a valid task index (``bad-edge``);
* **counters** — each task's ``n_deps`` equals its in-degree, the
  invariant the counter protocol's vectorised decrement relies on
  (``counter-mismatch``);
* **acyclicity** — a Kahn pass covers every task; otherwise the residual
  cycle is extracted and named (``cycle``);
* **single-writer chains** — for a factor DAG, every SSSSM update has a
  direct edge to its target block's panel task, so the panel
  factorisation can never overlap an update into the same block
  (``double-writer``); for an executable solve DAG, the writers of every
  RHS segment carry contiguous ``seq_y``/``seq_x`` positions
  (``segment-order``) and consecutive writers are joined by a direct
  edge (``unchained-writer``), with ``DIAG_F`` seeding the backward
  segment before any ``UPD_B`` lands on it;
* **ownership consistency** — when a task→rank ``assignment`` is passed
  alongside a factor DAG, every task targeting one block must run on a
  single rank (the message protocol never writes a remote block) and
  each rank id must be in range (``split-ownership``).  The check is
  placement-agnostic: *any* single-writer-consistent ownership map
  passes — block-cyclic, cost-model, or hand-rolled.

:func:`verify_dag` accepts either DAG flavour (duck-typed on
``panel_of_block`` vs ``kinds``), raises :class:`ScheduleViolation` —
a ``ValueError`` carrying a stable ``code`` from the list above — on
the first violation, and returns a :class:`ScheduleReport` summary on
success.  It is wired behind ``SolverOptions.verify_schedule`` / the
CLI ``--verify`` flag, and is cheap enough (linear in edges) to leave
on for any run whose DAG came from new blocking or mapping code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScheduleViolation", "ScheduleReport", "verify_dag"]


class ScheduleViolation(ValueError):
    """A DAG failed a pre-execution schedule check.

    ``code`` is a stable machine-readable diagnostic name (``bad-edge``,
    ``counter-mismatch``, ``cycle``, ``double-writer``,
    ``unchained-writer``, ``segment-order``, ``split-ownership``); the
    message names the offending tasks.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


@dataclass(frozen=True)
class ScheduleReport:
    """Summary of a successful verification."""

    kind: str          # "factor" | "tsolve"
    n_tasks: int
    n_edges: int
    n_roots: int
    depth: int         # longest dependency chain, in tasks

    def __str__(self) -> str:
        return (
            f"{self.kind} DAG verified: {self.n_tasks} tasks, "
            f"{self.n_edges} edges, {self.n_roots} roots, "
            f"critical path {self.depth} tasks"
        )


def _successors_and_deps(dag) -> tuple[list[list[int]], np.ndarray, str]:
    if hasattr(dag, "panel_of_block"):
        succ = [list(t.successors) for t in dag.tasks]
        deps = np.asarray([t.n_deps for t in dag.tasks], dtype=np.int64)
        return succ, deps, "factor"
    if hasattr(dag, "kinds"):
        succ = [list(s) for s in dag.successors]
        deps = np.asarray(dag.n_deps, dtype=np.int64)
        return succ, deps, "tsolve"
    raise TypeError(
        f"verify_dag: unsupported DAG type {type(dag).__name__} "
        "(expected TaskDAG or TSolveDAG)"
    )


def _check_edges(succ: list[list[int]]) -> int:
    n = len(succ)
    n_edges = 0
    for tid, outs in enumerate(succ):
        for s in outs:
            if not (0 <= s < n):
                raise ScheduleViolation(
                    "bad-edge",
                    f"task {tid} lists successor {s}, outside the valid "
                    f"tid range [0, {n})",
                )
            n_edges += 1
    return n_edges


def _check_counters(succ: list[list[int]], deps: np.ndarray) -> None:
    indeg = np.zeros(len(succ), dtype=np.int64)
    for outs in succ:
        for s in outs:
            indeg[s] += 1
    bad = np.nonzero(indeg != deps)[0]
    if bad.size:
        t = int(bad[0])
        raise ScheduleViolation(
            "counter-mismatch",
            f"task {t} has dependency counter {int(deps[t])} but "
            f"{int(indeg[t])} incoming edges ({bad.size} task"
            f"{'s' if bad.size != 1 else ''} total) — the sync-free "
            "counter protocol would deadlock or double-fire",
        )


def _check_acyclic(succ: list[list[int]], deps: np.ndarray) -> tuple[int, int]:
    """Kahn pass; returns (n_roots, depth) or raises with a named cycle."""
    n = len(succ)
    indeg = deps.copy()
    stack = [t for t in range(n) if indeg[t] == 0]
    n_roots = len(stack)
    depth = np.ones(n, dtype=np.int64)
    seen = 0
    max_depth = 0
    while stack:
        t = stack.pop()
        seen += 1
        max_depth = max(max_depth, int(depth[t]))
        for s in succ[t]:
            depth[s] = max(depth[s], depth[t] + 1)
            indeg[s] -= 1
            if indeg[s] == 0:
                stack.append(s)
    if seen != n:
        remaining = {t for t in range(n) if indeg[t] > 0}
        cycle = _extract_cycle(succ, remaining)
        raise ScheduleViolation(
            "cycle",
            f"dependency cycle among {len(remaining)} tasks: "
            + " -> ".join(str(t) for t in cycle)
            + " — no engine can ever start them",
        )
    return n_roots, max_depth


def _extract_cycle(succ: list[list[int]], remaining: set[int]) -> list[int]:
    """One concrete cycle inside the non-topological residue.

    The residue holds cycle members *and* everything downstream of them,
    including sinks, so first trim nodes with no successors left in the
    set (reverse Kahn on out-degree) until only cycles remain, then walk
    successors from the smallest survivor until a tid repeats.
    """
    core = set(remaining)
    out = {t: sum(1 for s in succ[t] if s in core) for t in core}
    preds: dict[int, list[int]] = {t: [] for t in core}
    for t in core:
        for s in succ[t]:
            if s in core:
                preds[s].append(t)
    stack = [t for t in core if out[t] == 0]
    while stack:
        t = stack.pop()
        core.discard(t)
        for p in preds[t]:
            out[p] -= 1
            if out[p] == 0 and p in core:
                stack.append(p)
    start = min(core)
    path: list[int] = []
    index: dict[int, int] = {}
    t = start
    while t not in index:
        index[t] = len(path)
        path.append(t)
        t = next(s for s in succ[t] if s in core)
    return path[index[t]:] + [t]


def _check_factor_writers(dag) -> None:
    from .dag import TaskType

    for t in dag.tasks:
        if t.ttype != TaskType.SSSSM:
            continue
        panel = dag.panel_of_block.get((t.bi, t.bj))
        if panel is None:
            raise ScheduleViolation(
                "double-writer",
                f"SSSSM task {t.tid} updates block ({t.bi},{t.bj}), "
                "which has no panel task — the update has no ordered "
                "consumer",
            )
        if panel not in t.successors:
            raise ScheduleViolation(
                "double-writer",
                f"SSSSM task {t.tid} into block ({t.bi},{t.bj}) has no "
                f"direct edge to that block's panel task {panel} — the "
                "panel factorisation could run concurrently with the "
                "update (two writers on one block)",
            )


def _check_tsolve_chains(dag) -> None:
    from .tsolve_dag import TSolveTaskType

    n = len(dag.kinds)
    succ_sets = [set(s) for s in dag.successors]
    for arr, label in ((dag.seq_y, "y"), (dag.seq_x, "x")):
        writers: dict[int, list[int]] = {}
        for tid in range(n):
            if arr[tid] >= 0:
                writers.setdefault(int(dag.target[tid]), []).append(tid)
        for seg, tids in writers.items():
            tids.sort(key=lambda t: int(arr[t]))
            seqs = [int(arr[t]) for t in tids]
            if seqs != list(range(len(tids))):
                raise ScheduleViolation(
                    "segment-order",
                    f"{label}-segment {seg} writer sequence is {seqs} "
                    f"(tasks {tids}) — expected the contiguous order "
                    f"0..{len(tids) - 1}",
                )
            if label == "x":
                first = dag.kinds[tids[0]]
                if first != int(TSolveTaskType.DIAG_F):
                    raise ScheduleViolation(
                        "segment-order",
                        f"x-segment {seg} is first written by task "
                        f"{tids[0]} (kind {int(first)}), not by its "
                        "DIAG_F seed — backward updates would "
                        "accumulate on an unseeded segment",
                    )
            for a, b in zip(tids, tids[1:]):
                if b not in succ_sets[a]:
                    raise ScheduleViolation(
                        "unchained-writer",
                        f"{label}-segment {seg}: consecutive writers "
                        f"{a} (seq {int(arr[a])}) and {b} (seq "
                        f"{int(arr[b])}) have no direct edge — they "
                        "could race on the segment and break "
                        "bit-identical execution",
                    )


def _check_ownership(dag, assignment: np.ndarray, nprocs: int | None) -> None:
    """Single-writer ownership: tasks sharing a target block share a
    rank, rank ids are in range.  Placement-agnostic — any consistent
    map (cyclic, cost-model, custom) passes."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (len(dag.tasks),):
        raise ScheduleViolation(
            "split-ownership",
            f"assignment has {assignment.size} entries for "
            f"{len(dag.tasks)} tasks",
        )
    if assignment.size and (
        int(assignment.min()) < 0
        or (nprocs is not None and int(assignment.max()) >= nprocs)
    ):
        bad = int(np.flatnonzero(
            (assignment < 0)
            | (assignment >= (nprocs if nprocs is not None else np.inf))
        )[0])
        raise ScheduleViolation(
            "split-ownership",
            f"task {bad} is assigned to rank {int(assignment[bad])}, "
            f"outside the valid range [0, {nprocs})",
        )
    owner_of_block: dict[tuple[int, int], tuple[int, int]] = {}
    for t in dag.tasks:
        key = (t.bi, t.bj)
        rank = int(assignment[t.tid])
        seen = owner_of_block.get(key)
        if seen is None:
            owner_of_block[key] = (rank, t.tid)
        elif seen[0] != rank:
            raise ScheduleViolation(
                "split-ownership",
                f"block ({t.bi},{t.bj}) is written from rank {seen[0]} "
                f"(task {seen[1]}) and rank {rank} (task {t.tid}) — the "
                "message protocol cannot write a remote block, so a "
                "split-ownership map deadlocks or corrupts the factor",
            )


def verify_dag(dag, *, assignment=None, nprocs: int | None = None) -> ScheduleReport:
    """Statically verify a factor or solve DAG (module docstring);
    raises :class:`ScheduleViolation` on the first violation.

    ``assignment`` (optional, factor DAGs) is a per-task rank array to
    check for single-writer ownership consistency; ``nprocs`` bounds the
    valid rank range when given.
    """
    succ, deps, kind = _successors_and_deps(dag)
    n_edges = _check_edges(succ)
    _check_counters(succ, deps)
    n_roots, depth = _check_acyclic(succ, deps)
    if kind == "factor":
        _check_factor_writers(dag)
        if assignment is not None:
            _check_ownership(dag, assignment, nprocs)
    elif getattr(dag, "seq_y", None) is not None:
        _check_tsolve_chains(dag)
    return ScheduleReport(
        kind=kind,
        n_tasks=len(succ),
        n_edges=n_edges,
        n_roots=n_roots,
        depth=depth,
    )
