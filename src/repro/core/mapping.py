"""Block→process mapping: 2D block-cyclic layout plus the paper's static
time-slice load balancing (Section 4.2, Fig. 6c/d).

The default assignment is the classic block-cyclic rule
``owner(bi, bj) = (bi mod P) · Q + (bj mod Q)`` over a ``P × Q`` process
grid.  The balancer then walks the elimination steps ("time slices") in
order, tracking each process's cumulative weight (task weight = structural
FLOPs), and for each slice swaps *all* slice tasks between the process
with the highest cumulative weight and the process with the lowest weight
inside the slice — exactly the migration illustrated in Fig. 6(c), where a
GESSM hops from the overloaded process to the underloaded one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .dag import TaskDAG

__all__ = [
    "ProcessGrid",
    "assign_tasks",
    "task_weights",
    "balance_loads",
    "load_imbalance",
]


@dataclass(frozen=True)
class ProcessGrid:
    """A ``P × Q`` logical process grid (``nprocs = P · Q``).

    :meth:`square` factors a process count into the most-square grid, the
    convention both PanguLU and SuperLU_DIST use.

    >>> ProcessGrid.square(6)
    ProcessGrid(p=2, q=3)
    >>> ProcessGrid.square(6).owner(3, 4)
    4
    """

    p: int
    q: int

    @property
    def nprocs(self) -> int:
        return self.p * self.q

    @classmethod
    def square(cls, nprocs: int) -> "ProcessGrid":
        """Most-square factorisation ``P × Q = nprocs`` with ``P ≤ Q``.

        ``P`` is the **largest divisor of** ``nprocs`` **not exceeding**
        ``√nprocs`` (so ``Q − P`` is minimal among exact
        factorisations): perfect squares give ``√n × √n``, 12 gives
        ``3 × 4``, and a prime count degenerates to the ``1 × n`` row —
        there is no padding, every ``nprocs`` is covered exactly.  The
        square root is taken with :func:`math.isqrt`: a float root can
        land *below* the true integer root for large perfect squares,
        which would silently skip the square factorisation.  Zero and
        negative counts are rejected.
        """
        if nprocs <= 0:
            raise ValueError(
                f"process count must be positive, got {nprocs}"
            )
        p = math.isqrt(int(nprocs))
        while nprocs % p:
            p -= 1
        return cls(p, nprocs // p)

    def owner(self, bi: int, bj: int) -> int:
        """Block-cyclic owner of block ``(bi, bj)``."""
        return (bi % self.p) * self.q + (bj % self.q)


def assign_tasks(dag: TaskDAG, grid) -> np.ndarray:
    """Default task→process assignment: each task runs on the owner of its
    target block.

    ``grid`` may be a :class:`ProcessGrid` (the block-cyclic rule) or any
    :class:`repro.core.placement.PlacementPolicy` — the policy's
    :meth:`~repro.core.placement.PlacementPolicy.assign` is the general
    form and this function is its grid-shaped convenience wrapper.
    """
    if hasattr(grid, "assign"):
        return grid.assign(dag)
    return np.asarray(
        [grid.owner(t.bi, t.bj) for t in dag.tasks], dtype=np.int64
    )


def task_weights(dag: TaskDAG, f=None) -> np.ndarray:
    """Per-task balancing weights: structural FLOPs with a per-block
    traffic floor.

    Structural FLOP counts alone under-weight small tasks — a GETRF or
    panel update on a tiny (or ragged trailing) block can have *zero*
    structural FLOPs while still costing a kernel launch and the block's
    memory traffic, so a pure-FLOP balancer treats those tasks as free
    and the imbalance metric under-reports.  With the blocked structure
    ``f`` the floor is the task's target-block traffic (read + write of
    every stored entry); without it, a unit floor still keeps every task
    visible to the balancer.
    """
    w = np.asarray([t.flops for t in dag.tasks], dtype=np.float64)
    if f is None:
        return np.maximum(w, 1.0)
    floor = np.empty(len(dag.tasks), dtype=np.float64)
    for i, t in enumerate(dag.tasks):
        blk = f.block(t.bi, t.bj)
        floor[i] = 2.0 * blk.nnz if blk is not None else 1.0
    return np.maximum(w, np.maximum(floor, 1.0))


def _check_rank_speeds(speeds, nprocs: int) -> np.ndarray | None:
    """Validated per-rank speed factors as a float array (``None``
    passes through — homogeneous ranks)."""
    if speeds is None:
        return None
    out = np.asarray(speeds, dtype=np.float64)
    if out.shape != (nprocs,):
        raise ValueError(f"got {out.size} rank speeds for {nprocs} ranks")
    if np.any(out <= 0.0):
        raise ValueError("rank speeds must be positive")
    return out


def balance_loads(
    dag: TaskDAG,
    grid,
    assignment: np.ndarray | None = None,
    *,
    max_rounds: int = 1,
    weights: np.ndarray | None = None,
    speeds=None,
) -> np.ndarray:
    """Static time-slice load balancing.

    Returns a (new) assignment array.  For each elimination step ``k`` in
    order: if the process with the highest cumulative weight also works in
    this slice, swap its slice tasks with those of the process carrying
    the lowest cumulative weight, provided the swap reduces the eventual
    spread.  Runs in preprocessing — the "small time overhead compared to
    numeric factorisation" the paper notes.

    ``grid`` is a :class:`ProcessGrid` or a
    :class:`repro.core.placement.PlacementPolicy` (both carry ``nprocs``
    and a default assignment).  ``weights`` overrides the per-task
    weights (see :func:`task_weights` for the flop-with-traffic-floor
    weighting the solver passes); the default is the raw structural FLOP
    count.  ``speeds`` supplies per-rank speed factors for heterogeneous
    machines: loads are then compared in *time* (weight ÷ speed of the
    executing rank), so a fast rank absorbs proportionally more work;
    ``None`` keeps the homogeneous behaviour bit-identical.
    """
    nprocs = grid.nprocs
    if assignment is None:
        assignment = assign_tasks(dag, grid)
    assignment = assignment.copy()
    if nprocs == 1:
        return assignment

    if weights is None:
        flops = np.asarray([t.flops for t in dag.tasks], dtype=np.float64)
    else:
        flops = np.asarray(weights, dtype=np.float64)
        if flops.shape != (len(dag.tasks),):
            raise ValueError("weights must have one entry per task")
    speed = _check_rank_speeds(speeds, nprocs)
    # 1/speed per rank; exact ones when homogeneous, so every product
    # below is bit-identical to the historical speed-free arithmetic
    inv = np.ones(nprocs, dtype=np.float64) if speed is None else 1.0 / speed
    slices = np.asarray([t.k for t in dag.tasks], dtype=np.int64)
    nslices = int(slices.max()) + 1 if len(dag.tasks) else 0

    for _ in range(max_rounds):
        changed = False
        cumulative = np.zeros(nprocs, dtype=np.float64)
        for k in range(nslices):
            in_slice = np.flatnonzero(slices == k)
            if in_slice.size == 0:
                continue
            slice_w = np.zeros(nprocs, dtype=np.float64)
            np.add.at(
                slice_w, assignment[in_slice],
                flops[in_slice] * inv[assignment[in_slice]],
            )
            # migrate the heaviest movable tasks from the most loaded to
            # the least loaded process while that closes the gap ("tasks
            # with high weights are migrated to less loaded processes")
            for _attempt in range(in_slice.size):
                loads = cumulative + slice_w
                heavy = int(np.argmax(loads))
                light = int(np.argmin(loads))
                gap = float(loads[heavy] - loads[light])
                if heavy == light or gap <= 0.0:
                    break
                cand = in_slice[assignment[in_slice] == heavy]
                if cand.size == 0:
                    break
                # the best single migration halves the gap at most; pick
                # the heaviest task whose cost *on the light rank* does
                # not exceed the gap
                w = flops[cand] * inv[light]
                movable = cand[w <= gap]
                if movable.size == 0:
                    break
                t = int(movable[int(np.argmax(flops[movable]))])
                assignment[t] = light
                slice_w[heavy] -= flops[t] * inv[heavy]
                slice_w[light] += flops[t] * inv[light]
                changed = True
            cumulative += slice_w
        if not changed:
            break
    return assignment


def load_imbalance(
    dag: TaskDAG,
    assignment: np.ndarray,
    nprocs: int,
    *,
    weights: np.ndarray | None = None,
    speeds=None,
) -> float:
    """Imbalance metric ``max(load) / mean(load)`` (1.0 = perfect).

    ``weights`` overrides the per-task weights (default: structural
    FLOPs; see :func:`task_weights`), and must match what the balancer
    optimised for the metric to be meaningful.  With ``speeds`` the
    loads are speed-scaled times (weight ÷ executing rank's speed), the
    quantity a heterogeneous placement minimises.
    """
    loads = np.zeros(nprocs, dtype=np.float64)
    if weights is None:
        flops = np.asarray([t.flops for t in dag.tasks], dtype=np.float64)
    else:
        flops = np.asarray(weights, dtype=np.float64)
    np.add.at(loads, assignment, flops)
    speed = _check_rank_speeds(speeds, nprocs)
    if speed is not None:
        loads /= speed
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0
