"""Task DAG of the distributed block triangular solves (phase 5).

The paper's final phase solves ``L y = b`` and ``U x = y`` over the same
two-layer block layout and process mapping as the factorisation.  This
module builds the corresponding task graph so the distributed runtime can
schedule and simulate it:

* ``DIAG_F(k)`` — within-block forward solve on segment ``k``; runnable
  once every update from earlier block columns has landed.
* ``UPD_F(k, i)`` — ``y_i −= L(i,k) · y_k`` for each stored L block.
* ``DIAG_B(k)`` / ``UPD_B(k, i)`` — the mirrored backward sweep
  (``UPD_B`` pushes ``x_k`` up through ``U(i,k)``, ``i < k``).

The backward sweep chains off the forward one per segment (``DIAG_B(k)``
additionally waits for ``DIAG_F(k)``), so the two solves pipeline the way
the real distributed phase does.

Two consumers share this graph.  The *simulator* (``runtime/adapters.py``)
prices the default build, whose dependencies capture mathematical
readiness only.  The *real engines* (sequential / threaded / distributed,
see :mod:`repro.core.tsolve` and :mod:`repro.runtime.engines`) request
``executable=True``, which adds the edges actual concurrent execution
needs on top:

* the updates into each target segment are **chained** in the order the
  legacy sequential sweeps apply them (ascending source ``k`` forward,
  descending backward) — every segment then has a totally ordered writer
  sequence, making any topological execution *bit-identical* to
  :func:`repro.core.tsolve.block_forward` / ``block_backward``;
* ``DIAG_F(i)`` precedes the first backward update into segment ``i``
  (``DIAG_F`` seeds the backward array from the forward result, so the
  seed must land before ``UPD_B`` writes accumulate on it);
* per-task write sequence numbers (``seq_y`` / ``seq_x``) record each
  writer's position in its segment's order, letting the distributed
  engine discard stale segment payloads delivered out of order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .blocking import BlockMatrix

__all__ = ["TSolveTaskType", "TSolveDAG", "build_tsolve_dag"]


class TSolveTaskType(enum.IntEnum):
    DIAG_F = 0
    UPD_F = 1
    DIAG_B = 2
    UPD_B = 3


@dataclass
class TSolveDAG:
    """Flat arrays describing the triangular-solve task graph.

    ``seq_y`` / ``seq_x`` are only populated by ``executable=True``
    builds: the position of each task in its target segment's total write
    order on the forward (``y``) and backward (``x``) arrays, −1 for
    tasks that do not write the array.  ``DIAG_F`` appears in both — it
    finishes the ``y`` segment and seeds the matching ``x`` segment.
    """

    kinds: np.ndarray
    k_of: np.ndarray          # source segment
    target: np.ndarray        # segment written by the task
    flops: np.ndarray
    out_bytes: np.ndarray     # segment bytes carried to consumers
    n_deps: np.ndarray
    successors: list[list[int]]
    owner: np.ndarray
    total_flops: float
    seq_y: np.ndarray | None = None
    seq_x: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.kinds)


def _diag_solve_flops(f: BlockMatrix, k: int, *, lower: bool) -> float:
    diag = f.block(k, k)
    assert diag is not None
    n = diag.ncols
    strict = 0
    for j in range(n):
        rows = diag.indices[diag.col_slice(j)]
        pos = int(np.searchsorted(rows, j))
        strict += (rows.size - pos - 1) if lower else pos
    return 2.0 * strict + (0.0 if lower else n)


def build_tsolve_dag(
    f: BlockMatrix, owner_of_block, *, executable: bool = False
) -> TSolveDAG:
    """Build the solve DAG; ``owner_of_block(bi, bj) -> proc`` sets task
    placement (diag tasks on the diagonal block's owner, updates on the
    off-diagonal block's owner — data stays put, vectors move).

    ``executable=True`` additionally chains same-target updates in the
    legacy sequential application order, orders the backward seed, and
    fills ``seq_y``/``seq_x`` — the extra structure the real engines need
    for race-free, bit-identical concurrent execution (module docstring).
    The default build is the looser graph the simulator prices.
    """
    nb = f.nb
    kinds: list[int] = []
    k_of: list[int] = []
    target: list[int] = []
    flops: list[float] = []
    out_b: list[float] = []
    owner: list[int] = []

    def add(kind: TSolveTaskType, k: int, tgt: int, fl: float, p: int) -> int:
        tid = len(kinds)
        kinds.append(int(kind))
        k_of.append(k)
        target.append(tgt)
        flops.append(fl)
        out_b.append(8.0 * f.block_order(tgt))
        owner.append(p)
        return tid

    diag_f: dict[int, int] = {}
    diag_b: dict[int, int] = {}
    upd_f: list[tuple[int, int, int]] = []  # (tid, k, i)
    upd_b: list[tuple[int, int, int]] = []

    for k in range(nb):
        diag_f[k] = add(
            TSolveTaskType.DIAG_F, k, k,
            _diag_solve_flops(f, k, lower=True),
            owner_of_block(k, k),
        )
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi > k:
                tid = add(
                    TSolveTaskType.UPD_F, k, bi, 2.0 * blk.nnz,
                    owner_of_block(bi, k),
                )
                upd_f.append((tid, k, bi))
    for k in range(nb - 1, -1, -1):
        diag_b[k] = add(
            TSolveTaskType.DIAG_B, k, k,
            _diag_solve_flops(f, k, lower=False),
            owner_of_block(k, k),
        )
        rows, blocks = f.blocks_in_column(k)
        for bi, blk in zip(rows, blocks):
            bi = int(bi)
            if bi < k:
                tid = add(
                    TSolveTaskType.UPD_B, k, bi, 2.0 * blk.nnz,
                    owner_of_block(bi, k),
                )
                upd_b.append((tid, k, bi))

    n = len(kinds)
    n_deps = np.zeros(n, dtype=np.int64)
    successors: list[list[int]] = [[] for _ in range(n)]

    def dep(pred: int, succ: int) -> None:
        successors[pred].append(succ)
        n_deps[succ] += 1

    # forward: DIAG_F(k) <- every UPD_F(j, k); UPD_F(k, i) <- DIAG_F(k)
    for tid, k, i in upd_f:
        dep(diag_f[k], tid)
        dep(tid, diag_f[i])
    # backward mirrors, plus the forward->backward chain per segment
    for tid, k, i in upd_b:
        dep(diag_b[k], tid)
        dep(tid, diag_b[i])
    for k in range(nb):
        dep(diag_f[k], diag_b[k])

    seq_y = seq_x = None
    if executable:
        seq_y = np.full(n, -1, dtype=np.int64)
        seq_x = np.full(n, -1, dtype=np.int64)
        # forward writers of y[i]: UPD_F(k, i) ascending k (the order the
        # upd_f list already carries), then DIAG_F(i)
        fwd_chain: dict[int, list[int]] = {}
        for tid, _k, i in upd_f:
            fwd_chain.setdefault(i, []).append(tid)
        for i, chain in fwd_chain.items():
            for pos, tid in enumerate(chain):
                seq_y[tid] = pos
                if pos:
                    dep(chain[pos - 1], tid)
        for i in range(nb):
            seq_y[diag_f[i]] = len(fwd_chain.get(i, ()))
        # backward writers of x[i]: the DIAG_F(i) seed, UPD_B(k, i)
        # descending k (the upd_b list order), then DIAG_B(i)
        bwd_chain: dict[int, list[int]] = {}
        for tid, _k, i in upd_b:
            bwd_chain.setdefault(i, []).append(tid)
        for i in range(nb):
            seq_x[diag_f[i]] = 0
        for i, chain in bwd_chain.items():
            dep(diag_f[i], chain[0])  # the seed lands before updates
            for pos, tid in enumerate(chain):
                seq_x[tid] = pos + 1
                if pos:
                    dep(chain[pos - 1], tid)
        for i in range(nb):
            seq_x[diag_b[i]] = len(bwd_chain.get(i, ())) + 1

    return TSolveDAG(
        kinds=np.asarray(kinds, dtype=np.int64),
        k_of=np.asarray(k_of, dtype=np.int64),
        target=np.asarray(target, dtype=np.int64),
        flops=np.asarray(flops),
        out_bytes=np.asarray(out_b),
        n_deps=n_deps,
        successors=successors,
        owner=np.asarray(owner, dtype=np.int64),
        total_flops=float(np.sum(flops)),
        seq_y=seq_y,
        seq_x=seq_x,
    )
