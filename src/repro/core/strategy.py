"""Blocking strategies — how the filled matrix is cut into blocks.

PanguLU's preprocessing (Section 4.1) uses one *regular* block size
computed from the matrix order and post-symbolic density.  That is simple
and cache-friendly, but on matrices with skewed fill it pads thin
supernodal structure into half-empty blocks and concentrates dense
separators into a few overloaded ones — the loss Hu et al. ("A
Structure-Aware Irregular Blocking Method for Sparse LU Factorization")
quantify and fix with pattern-chosen, variable-width boundaries.

This module is the seam between the two: a :class:`BlockingStrategy`
produces a block-boundary array from the filled pattern, and
:func:`~repro.core.blocking.block_partition` (plus everything downstream —
arena storage, mapping, kernels, runtime) consumes boundaries without
assuming uniform spacing.

* :class:`RegularBlocking` — equispaced boundaries; reproduces the
  historical scalar-``block_size`` behaviour bit-identically.
* :class:`IrregularBlocking` — supernode-guided boundaries: detect
  relaxed supernodes on the exact fill (``baseline/supernodes.py``),
  merge thin ones up to a width cap, and split dense separators that
  exceed it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..sparse.csc import CSCMatrix
from .blocking import (
    BlockMatrix,
    block_partition,
    boundaries_from_block_size,
    choose_block_size,
)

__all__ = [
    "BlockingStrategy",
    "RegularBlocking",
    "IrregularBlocking",
    "get_blocking_strategy",
    "BLOCKING_STRATEGIES",
]


class BlockingStrategy(ABC):
    """Chooses block boundaries for a filled (post-symbolic) matrix.

    Subclasses implement :meth:`boundaries`; :meth:`partition` then builds
    the two-layer :class:`~repro.core.blocking.BlockMatrix` from them.
    """

    #: registry key / user-facing name (``SolverOptions.blocking``)
    name: str = ""

    @abstractmethod
    def boundaries(self, filled: CSCMatrix) -> np.ndarray:
        """Block-boundary array (length ``nb + 1``, from 0 to ``n``)."""

    def partition(
        self,
        filled: CSCMatrix,
        *,
        arena: bool = False,
        dtype: np.dtype | type | None = None,
    ) -> BlockMatrix:
        """Partition ``filled`` along this strategy's boundaries."""
        return block_partition(
            filled, self.boundaries(filled), arena=arena, dtype=dtype
        )


class RegularBlocking(BlockingStrategy):
    """Uniform block size — the paper's Section 4.1 regular layout.

    ``block_size=None`` defers to :func:`choose_block_size` on the filled
    pattern (order + density heuristic); an explicit size is used as-is.
    """

    name = "regular"

    def __init__(self, block_size: int | None = None):
        self.block_size = block_size

    def chosen_size(self, filled: CSCMatrix) -> int:
        return self.block_size or choose_block_size(filled.ncols, filled.nnz)

    def boundaries(self, filled: CSCMatrix) -> np.ndarray:
        return boundaries_from_block_size(
            filled.ncols, self.chosen_size(filled)
        )

    def partition(
        self,
        filled: CSCMatrix,
        *,
        arena: bool = False,
        dtype: np.dtype | type | None = None,
    ) -> BlockMatrix:
        # pass the scalar through so the structure's nominal ``bs`` keeps
        # the requested value even when it exceeds the matrix order
        return block_partition(
            filled, self.chosen_size(filled), arena=arena, dtype=dtype
        )


class IrregularBlocking(BlockingStrategy):
    """Structure-aware variable-width blocking (Hu et al.).

    Boundaries follow the filled pattern's relaxed supernodes instead of a
    fixed stride, in three steps:

    1. detect relaxed supernodes on the exact fill with a *loose* width
       cap (``split_factor ×`` the target cap) so dense separators are
       allowed to form their natural wide panels;
    2. merge runs of thin supernodes into blocks: a neighbour is absorbed
       while the combined width stays within the cap and either side is
       still thinner than ``min_width`` (natural boundaries between two
       already-thick supernodes are kept);
    3. split any block still wider than the cap — the dense separators —
       into near-even chunks of at most ``max_width`` columns.

    The result keeps supernodal columns (identical row structure) inside
    one block, so blocks are either densely filled or hardly filled —
    less padding for dense-mapped kernels and more uniform per-block work
    than slicing the same pattern at arbitrary multiples of ``bs``.
    """

    name = "irregular"

    def __init__(
        self,
        max_width: int | None = None,
        *,
        min_width: int | None = None,
        relax_pad: float = 0.30,
        split_factor: int = 4,
    ):
        if max_width is not None and max_width <= 0:
            raise ValueError("max_width must be positive")
        self.max_width = max_width
        self.min_width = min_width
        self.relax_pad = relax_pad
        self.split_factor = max(1, int(split_factor))

    def boundaries(self, filled: CSCMatrix) -> np.ndarray:
        from ..baseline.supernodes import detect_supernodes

        n = filled.ncols
        cap = self.max_width or choose_block_size(n, filled.nnz)
        cap = max(1, min(cap, n))
        min_w = self.min_width or max(1, cap // 4)
        sn = detect_supernodes(
            filled,
            max_width=cap * self.split_factor,
            relax_pad=self.relax_pad,
        )
        merged = _merge_thin(sn.boundaries, cap=cap, min_width=min_w)
        return _split_wide(merged, cap=cap)


def _merge_thin(
    boundaries: np.ndarray, *, cap: int, min_width: int
) -> np.ndarray:
    """Greedy amalgamation of consecutive intervals.

    Absorb the next interval while the combined width fits the cap and at
    least one of the two sides is thinner than ``min_width`` — thin
    supernodes are folded into a neighbour, but a boundary between two
    already-thick supernodes survives.
    """
    widths = np.diff(boundaries)
    out = [0]
    acc = 0
    for w in widths:
        w = int(w)
        if acc and not (acc + w <= cap and (acc < min_width or w < min_width)):
            out.append(out[-1] + acc)
            acc = 0
        acc += w
    if acc:
        out.append(out[-1] + acc)
    return np.asarray(out, dtype=np.int64)


def _split_wide(boundaries: np.ndarray, *, cap: int) -> np.ndarray:
    """Split every interval wider than ``cap`` into near-even chunks."""
    out = [int(boundaries[0])]
    for b in boundaries[1:]:
        start, stop = out[-1], int(b)
        width = stop - start
        if width > cap:
            pieces = -(-width // cap)
            cuts = np.linspace(start, stop, pieces + 1).round().astype(np.int64)
            out.extend(int(c) for c in cuts[1:])
        else:
            out.append(stop)
    return np.asarray(out, dtype=np.int64)


BLOCKING_STRATEGIES: dict[str, type[BlockingStrategy]] = {
    RegularBlocking.name: RegularBlocking,
    IrregularBlocking.name: IrregularBlocking,
}


def get_blocking_strategy(
    blocking: str | BlockingStrategy, *, block_size: int | None = None
) -> BlockingStrategy:
    """Resolve an options-level spec to a strategy instance.

    ``blocking`` is a registry name (``"regular"`` / ``"irregular"``) or
    an already-constructed :class:`BlockingStrategy` (returned as-is —
    ``block_size`` is ignored then).  For names, ``block_size`` becomes
    the regular size or the irregular width cap respectively.
    """
    if isinstance(blocking, BlockingStrategy):
        return blocking
    try:
        cls = BLOCKING_STRATEGIES[blocking]
    except KeyError:
        raise ValueError(
            f"unknown blocking strategy {blocking!r}; "
            f"expected one of {sorted(BLOCKING_STRATEGIES)}"
        ) from None
    if cls is RegularBlocking:
        return RegularBlocking(block_size)
    return IrregularBlocking(block_size)
