"""Symbolic factorisation — fill-pattern computation.

Two paths, mirroring the two solvers under test:

* :func:`symbolic_symmetric` — PanguLU's path (Section 4.1/5.2): symmetrise
  the pattern and compute the exact Cholesky-style fill of ``A + A^T`` via
  elimination-tree row-subtree walks.  This *is* the symmetric-pruning
  formulation: walking the etree visits each structural row entry once,
  which is exactly what Eisenstat–Liu symmetric pruning achieves for
  symmetric structures — no redundant reachability searches.

* :func:`symbolic_gilbert_peierls` (in :mod:`repro.symbolic.gp`) — the
  unsymmetric column-DFS fill used by the SuperLU_DIST-like baseline.

The result carries the filled pattern ``F = pattern(L) ∪ pattern(U)`` as a
:class:`~repro.sparse.csc.CSCMatrix` whose values hold the entries of the
input ``A`` (zeros at fill positions), ready for regular 2D blocking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csc import CSCMatrix, coo_to_csc
from ..sparse.patterns import symmetrize_pattern
from .etree import elimination_tree

__all__ = ["SymbolicResult", "symbolic_symmetric", "fill_in_values"]


@dataclass(frozen=True)
class SymbolicResult:
    """Outcome of a symbolic factorisation.

    Attributes
    ----------
    filled:
        Pattern of ``L + U`` (diagonal included once) with the numeric
        values of the input matrix injected; fill-in positions hold 0.
    etree:
        Elimination-tree parent array of the symmetrised pattern.
    nnz_l, nnz_u:
        Nonzeros of the strict lower / upper triangles plus the diagonal
        counted in both (matching the paper's ``nnz(L+U)`` convention where
        ``L`` is unit-lower and ``U`` carries the diagonal).
    """

    filled: CSCMatrix
    etree: np.ndarray
    nnz_l: int
    nnz_u: int

    @property
    def nnz_lu(self) -> int:
        """Total ``nnz(L) + nnz(U)`` with ``L`` unit-diagonal implicit."""
        return self.nnz_l + self.nnz_u

    @property
    def fill_ratio(self) -> float:
        """``nnz(filled) / nnz`` of the original pattern (≥ 1)."""
        base = int(np.count_nonzero(self.filled.data)) or 1
        return self.filled.nnz / base


def symbolic_symmetric(a: CSCMatrix) -> SymbolicResult:
    """Exact fill pattern of the symmetrised matrix (PanguLU's symbolic).

    The row-subtree walk enumerates, for each row ``i``, the columns
    ``j < i`` where ``L[i, j]`` is structurally nonzero; ``U``'s pattern is
    the transpose.  Complexity O(|L|) after the etree.
    """
    if a.nrows != a.ncols:
        raise ValueError("symbolic factorisation requires a square matrix")
    n = a.ncols
    s = symmetrize_pattern(a)
    parent = elimination_tree(s, symmetrize=False)

    # pass 1: count entries per row of L (strict lower part)
    mark = np.full(n, -1, dtype=np.int64)
    row_counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        rows = s.indices[s.col_slice(i)]
        for r in rows[rows < i]:
            j = int(r)
            while j != -1 and mark[j] != i:
                mark[j] = i
                row_counts[i] += 1
                j = int(parent[j])

    # pass 2: collect the column indices per row
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(row_counts, out=row_ptr[1:])
    lower_cols = np.empty(int(row_ptr[-1]), dtype=np.int64)
    fill_pos = row_ptr[:-1].copy()
    mark[:] = -1
    for i in range(n):
        mark[i] = i
        rows = s.indices[s.col_slice(i)]
        for r in rows[rows < i]:
            j = int(r)
            while j != -1 and mark[j] != i:
                mark[j] = i
                lower_cols[fill_pos[i]] = j
                fill_pos[i] += 1
                j = int(parent[j])

    lower_rows = np.repeat(np.arange(n, dtype=np.int64), row_counts)
    # full pattern = strict lower + its transpose + diagonal, with A's values
    rows_all = np.concatenate(
        [lower_rows, lower_cols, np.arange(n, dtype=np.int64)]
    )
    cols_all = np.concatenate(
        [lower_cols, lower_rows, np.arange(n, dtype=np.int64)]
    )
    pattern = coo_to_csc(
        (n, n), rows_all, cols_all, np.zeros(rows_all.size), sum_duplicates=True
    )
    filled = fill_in_values(pattern, a)
    nnz_strict = int(lower_rows.size)
    return SymbolicResult(
        filled=filled,
        etree=parent,
        nnz_l=nnz_strict + n,
        nnz_u=nnz_strict + n,
    )


def fill_in_values(pattern: CSCMatrix, a: CSCMatrix) -> CSCMatrix:
    """Inject the values of ``a`` into (a superset) ``pattern``.

    Every stored entry of ``a`` must exist in ``pattern``; fill positions
    keep value 0.  Returns a new matrix sharing ``pattern``'s arrays shape.
    """
    if pattern.shape != a.shape:
        raise ValueError("shape mismatch")
    out = pattern.pattern_copy()
    data = out.data  # allocates zeros
    for j in range(a.ncols):
        sl_a = a.col_slice(j)
        rows_a = a.indices[sl_a]
        if rows_a.size == 0:
            continue
        sl_p = out.col_slice(j)
        rows_p = out.indices[sl_p]
        pos = np.searchsorted(rows_p, rows_a)
        if np.any(pos >= rows_p.size) or np.any(rows_p[np.minimum(pos, rows_p.size - 1)] != rows_a):
            raise ValueError(f"pattern does not cover column {j} of the input")
        data[int(out.indptr[j]) + pos] = a.data[sl_a]
    return out
