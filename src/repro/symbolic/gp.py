"""Gilbert–Peierls column-DFS symbolic factorisation (baseline path).

SuperLU_DIST determines the exact unsymmetric fill of ``L`` and ``U`` (for
its static-pivoting factorisation) by, for every column ``j``, computing
the vertices reachable from ``pattern(A[:, j])`` in the directed graph of
the already-computed columns of ``L``.  This module implements that
column-DFS, with optional Eisenstat–Liu symmetric pruning of the searched
structures (the optimisation SuperLU uses to cut the traversal cost).

The returned pattern is exact for LU *without pivoting* — both solvers in
this reproduction factorise after MC64 + fill-reducing reordering with
static pivoting, matching the paper's setup.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSCMatrix, coo_to_csc
from .fill import SymbolicResult, fill_in_values
from .etree import elimination_tree

__all__ = ["symbolic_gilbert_peierls"]


def symbolic_gilbert_peierls(a: CSCMatrix, *, prune: bool = True) -> SymbolicResult:
    """Exact unsymmetric LU fill via Gilbert–Peierls reachability.

    Parameters
    ----------
    a:
        Square matrix with a zero-free diagonal (run MC64 first).
    prune:
        Apply symmetric pruning to the traversed structures.  The result
        pattern is identical either way; pruning only shortens the DFS.

    Returns
    -------
    SymbolicResult
        With ``filled`` = exact pattern of ``L + U`` holding ``a``'s values.
    """
    if a.nrows != a.ncols:
        raise ValueError("symbolic factorisation requires a square matrix")
    n = a.ncols

    # L columns discovered so far: for each column v, the strictly-below-
    # diagonal row indices, and the pruned search length (Eisenstat–Liu).
    l_struct: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    search_len = np.zeros(n, dtype=np.int64)
    # U columns (strictly above diagonal), collected per column
    u_cols: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n

    mark = np.full(n, -1, dtype=np.int64)
    nnz_l = n  # diagonal
    nnz_u = n

    for j in range(n):
        visited: list[int] = []
        # iterative DFS; each stack frame is (vertex, next edge position)
        stack: list[tuple[int, int]] = []
        rows_aj = a.indices[a.col_slice(j)]
        for r0 in rows_aj:
            v = int(r0)
            if mark[v] == j:
                continue
            mark[v] = j
            stack.append((v, 0))
            while stack:
                v, k = stack.pop()
                struct = l_struct[v] if v < j else None
                limit = int(search_len[v]) if (prune and v < j) else (
                    struct.size if struct is not None else 0
                )
                pushed = False
                while struct is not None and k < limit:
                    w = int(struct[k])
                    k += 1
                    if mark[w] != j:
                        mark[w] = j
                        stack.append((v, k))
                        stack.append((w, 0))
                        pushed = True
                        break
                if not pushed:
                    visited.append(v)

        vis = np.asarray(visited, dtype=np.int64)
        below = np.sort(vis[vis > j])
        above = np.sort(vis[vis < j])
        l_struct[j] = below
        if prune:
            # prune point: search may stop after the first row r in L[:,j]
            # that also appears in U[j, :] — i.e. U[r... symmetric entry:
            # L[r, j] != 0 and U[j, r] != 0.  U[j, r] != 0 means j appears
            # in u_cols[r] — detect lazily below when each later column r
            # records its U pattern.  Initialise unpruned:
            search_len[j] = below.size
        u_cols[j] = above
        # update prune points of columns s that gained a symmetric match:
        # U[s, j] != 0 (s in `above`) and L[j, s] != 0 (j in l_struct[s])
        if prune:
            for s in above:
                s = int(s)
                struct = l_struct[s]
                sl = int(search_len[s])
                pos = int(np.searchsorted(struct, j))
                if pos < struct.size and struct[pos] == j and pos + 1 < sl:
                    search_len[s] = pos + 1
        nnz_l += below.size
        nnz_u += above.size

    # assemble the filled pattern
    total = nnz_l + nnz_u - n  # diagonal counted once structurally
    rows = np.empty(total, dtype=np.int64)
    cols = np.empty(total, dtype=np.int64)
    k = 0
    for j in range(n):
        below, above = l_struct[j], u_cols[j]
        cnt = below.size + above.size + 1
        rows[k : k + above.size] = above
        rows[k + above.size] = j
        rows[k + above.size + 1 : k + cnt] = below
        cols[k : k + cnt] = j
        k += cnt
    pattern = coo_to_csc((n, n), rows[:k], cols[:k], np.zeros(k))
    filled = fill_in_values(pattern, a)
    return SymbolicResult(
        filled=filled,
        etree=elimination_tree(a),
        nnz_l=nnz_l,
        nnz_u=nnz_u,
    )
