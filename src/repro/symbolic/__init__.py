"""Symbolic-factorisation substrate: elimination trees, symmetric-pruned
fill (PanguLU path) and Gilbert–Peierls column-DFS fill (baseline path)."""

from .etree import column_counts, elimination_tree, postorder, tree_levels
from .fill import SymbolicResult, fill_in_values, symbolic_symmetric
from .gp import symbolic_gilbert_peierls

__all__ = [
    "elimination_tree",
    "postorder",
    "tree_levels",
    "column_counts",
    "SymbolicResult",
    "symbolic_symmetric",
    "symbolic_gilbert_peierls",
    "fill_in_values",
]
