"""Elimination tree computation (Liu's algorithm) and related traversals.

The elimination tree of a (symmetrised) sparse matrix drives both symbolic
factorisation paths in this reproduction: PanguLU's symmetric-pruned fill
computation walks row subtrees of the etree, and the supernodal baseline
uses the etree's postorder to detect supernodes.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSCMatrix
from ..sparse.patterns import symmetrize_pattern

__all__ = ["elimination_tree", "postorder", "tree_levels", "column_counts"]


def elimination_tree(a: CSCMatrix, *, symmetrize: bool = True) -> np.ndarray:
    """Elimination tree of the pattern of ``A`` (or ``A + A^T``).

    Returns ``parent`` where ``parent[j]`` is the etree parent of column
    ``j`` (−1 for roots).  Uses Liu's algorithm with path compression
    (virtual ancestors), O(nnz · α(n)).
    """
    s = symmetrize_pattern(a) if symmetrize else a
    n = s.ncols
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        rows = s.indices[s.col_slice(j)]
        for r in rows[rows < j]:
            # climb from r to the root of its current subtree, compressing
            i = int(r)
            while True:
                anc = int(ancestor[i])
                ancestor[i] = j
                if anc < 0:
                    if parent[i] < 0 and i != j:
                        parent[i] = j
                    break
                if anc == j:
                    break
                i = anc
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder permutation of a forest given parent pointers.

    Returns ``post`` such that ``post[k]`` is the k-th vertex in postorder
    (children before parents; the forest roots appear last within their
    trees).
    """
    n = parent.size
    # build children lists (in increasing vertex order for determinism)
    first_child = np.full(n, -1, dtype=np.int64)
    next_sibling = np.full(n, -1, dtype=np.int64)
    for v in range(n - 1, -1, -1):
        p = int(parent[v])
        if p >= 0:
            next_sibling[v] = first_child[p]
            first_child[p] = v
    post = np.empty(n, dtype=np.int64)
    k = 0
    for root in range(n):
        if parent[root] >= 0:
            continue
        # iterative DFS
        stack = [root]
        while stack:
            v = stack[-1]
            c = int(first_child[v])
            if c >= 0:
                stack.append(c)
                first_child[v] = next_sibling[c]  # consume child
            else:
                post[k] = stack.pop()
                k += 1
    if k != n:
        raise ValueError("parent array does not describe a forest")
    return post


def tree_levels(parent: np.ndarray) -> np.ndarray:
    """Depth of every vertex in the forest (roots have depth 0)."""
    n = parent.size
    depth = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        # climb until a vertex with a known depth or a root
        path = []
        i = v
        while i >= 0 and depth[i] < 0:
            path.append(i)
            i = int(parent[i])
        base = 0 if i < 0 else int(depth[i]) + 1
        for off, u in enumerate(reversed(path)):
            depth[u] = base + off
    return depth


def column_counts(a: CSCMatrix, parent: np.ndarray) -> np.ndarray:
    """Nonzero count of each column of the Cholesky factor ``L`` of the
    symmetrised pattern (including the diagonal).

    Computed by the row-subtree marking pass — the same walk that builds
    the fill pattern, counting instead of collecting.
    """
    s = symmetrize_pattern(a)
    n = s.ncols
    counts = np.ones(n, dtype=np.int64)  # diagonal
    mark = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        mark[i] = i
        rows = s.indices[s.col_slice(i)]
        for r in rows[rows < i]:
            j = int(r)
            while mark[j] != i:
                mark[j] = i
                counts[j] += 1  # L[i, j] is a nonzero of column j
                j = int(parent[j])
                if j < 0:  # pragma: no cover - broken etree safety
                    break
    return counts
