"""SuperLU_DIST-role baseline: supernode detection with relaxation,
dense-panel supernodal factorisation, its task DAG with dense costs, and
the level-set distributed simulation."""

from .dag import (
    GATHER_BANDWIDTH,
    SupernodalDAG,
    build_sn_dag,
    simulate_superlu,
    sn_etree_levels,
)
from .solver import BaselineOptions, SuperLUBaseline
from .supernodal import (
    GEMMRecord,
    SupernodalMatrix,
    SupernodalStats,
    sn_factorize,
    sn_partition,
)
from .supernodes import (
    SupernodePartition,
    detect_supernodes,
    supernode_size_histogram,
)

__all__ = [
    "SupernodePartition",
    "detect_supernodes",
    "supernode_size_histogram",
    "SupernodalMatrix",
    "SupernodalStats",
    "GEMMRecord",
    "sn_partition",
    "sn_factorize",
    "SupernodalDAG",
    "build_sn_dag",
    "sn_etree_levels",
    "simulate_superlu",
    "GATHER_BANDWIDTH",
    "BaselineOptions",
    "SuperLUBaseline",
]
