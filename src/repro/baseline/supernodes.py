"""Supernode detection with relaxation — the baseline's column aggregation.

SuperLU_DIST groups contiguous columns whose ``L`` structures (nearly)
match into *supernodes* and stores each supernode as a dense panel so it
can call dense BLAS.  "Nearly" is the relaxation: columns are admitted
into a supernode even when their structures differ, at the price of
explicit zero padding (the crosses in Fig. 1d).  This module reproduces
that mechanism on the exact Gilbert–Peierls fill:

* :func:`detect_supernodes` — greedy contiguous grouping with a width cap
  and a padding budget;
* :class:`SupernodePartition` — the resulting uneven column partition,
  with the padded nonzero count (Table 3's larger SuperLU ``nnz(L+U)``)
  and the size statistics plotted in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csc import CSCMatrix

__all__ = ["SupernodePartition", "detect_supernodes", "supernode_size_histogram"]


@dataclass
class SupernodePartition:
    """An uneven column partition of a filled matrix into supernodes.

    Attributes
    ----------
    boundaries:
        ``len = ns + 1``; supernode ``s`` covers columns
        ``boundaries[s]:boundaries[s+1]``.
    panel_rows:
        For each supernode, the sorted global row indices of its dense
        ``L`` panel *below* the supernode's trailing column (the union
        row structure all member columns are padded to).
    nnz_actual:
        Structural nonzeros of ``L + U`` (exact fill, no padding).
    nnz_padded:
        Stored nonzeros after padding every column of a supernode to the
        union structure — the baseline's effective ``nnz(L+U)``.
    """

    boundaries: np.ndarray
    panel_rows: list[np.ndarray]
    nnz_actual: int
    nnz_padded: int

    @property
    def n_supernodes(self) -> int:
        return len(self.boundaries) - 1

    def widths(self) -> np.ndarray:
        """Column counts of all supernodes."""
        return np.diff(self.boundaries)

    def heights(self) -> np.ndarray:
        """Row counts of all supernode panels (width + below-panel rows)."""
        return np.asarray(
            [
                int(self.boundaries[s + 1] - self.boundaries[s]) + r.size
                for s, r in enumerate(self.panel_rows)
            ],
            dtype=np.int64,
        )

    def supernode_of_column(self) -> np.ndarray:
        """Map from column index to supernode index."""
        n = int(self.boundaries[-1])
        out = np.empty(n, dtype=np.int64)
        for s in range(self.n_supernodes):
            out[self.boundaries[s] : self.boundaries[s + 1]] = s
        return out

    @property
    def padding_ratio(self) -> float:
        """Padded-over-actual nonzero ratio (≥ 1)."""
        return self.nnz_padded / self.nnz_actual if self.nnz_actual else 1.0


def detect_supernodes(
    filled: CSCMatrix,
    *,
    max_width: int = 64,
    relax_pad: float = 0.30,
    relax_small: int = 4,
) -> SupernodePartition:
    """Greedy relaxed supernode detection on an exactly-filled pattern.

    A column joins the current supernode when it is contiguous, the width
    cap is not hit, and the panel padding that admitting it would cause
    stays within ``relax_pad`` of the actual nonzeros — except that
    supernodes up to ``relax_small`` columns may always form (SuperLU's
    relaxed snodes for small etree subtrees).
    """
    n = filled.ncols
    # strictly-below-diagonal row structure per column
    below: list[np.ndarray] = []
    above_count = np.zeros(n, dtype=np.int64)
    for j in range(n):
        rows = filled.indices[filled.col_slice(j)]
        pos = int(np.searchsorted(rows, j + 1))
        below.append(rows[pos:])
        above_count[j] = int(np.searchsorted(rows, j))

    boundaries = [0]
    panel_rows: list[np.ndarray] = []
    nnz_padded = 0

    s = 0
    while s < n:
        e = s + 1
        union = below[s]
        actual = below[s].size
        while e < n and e - s < max_width:
            cand_union = np.union1d(union[union >= e + 1], below[e])
            width = e - s + 1
            cand_actual = actual + below[e].size
            # stored cells below the supernode after padding: every member
            # column is padded to the union rows (plus its internal
            # triangle, which padding also fills)
            cand_padded = cand_union.size * width + width * (width - 1) // 2
            small = width <= relax_small
            inside_budget = cand_padded <= (1.0 + relax_pad) * max(cand_actual, 1)
            if small or inside_budget:
                union = cand_union
                actual = cand_actual
                e += 1
            else:
                break
        width = e - s
        rows_below = union[union >= e]
        panel_rows.append(rows_below)
        boundaries.append(e)
        # padded storage of this supernode: dense trapezoid in L …
        nnz_padded += rows_below.size * width + width * (width + 1) // 2
        # … plus the (unpadded) U rows above the diagonal block
        nnz_padded += int(above_count[s:e].sum())
        s = e

    return SupernodePartition(
        boundaries=np.asarray(boundaries, dtype=np.int64),
        panel_rows=panel_rows,
        nnz_actual=filled.nnz,
        nnz_padded=int(nnz_padded),
    )


def supernode_size_histogram(
    part: SupernodePartition,
    *,
    row_edges: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    col_edges: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> np.ndarray:
    """2-D histogram of supernode (height, width) — the Fig. 3 heatmap.

    Bin ``[i, j]`` counts supernodes with height in
    ``[row_edges[i], row_edges[i+1])`` (last bin open-ended), analogously
    for widths.
    """
    heights = part.heights()
    widths = part.widths()
    r_edges = np.asarray(row_edges + (np.iinfo(np.int64).max,), dtype=np.float64)
    c_edges = np.asarray(col_edges + (np.iinfo(np.int64).max,), dtype=np.float64)
    hist, _, _ = np.histogram2d(heights, widths, bins=[r_edges, c_edges])
    return hist.astype(np.int64)
