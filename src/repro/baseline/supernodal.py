"""Supernodal dense-panel LU — the SuperLU_DIST-role numeric baseline.

The comparator the paper measures against aggregates columns into
supernodes and computes with dense BLAS.  This module implements that
honestly over the supernode partition of the exact fill:

* the filled matrix is cut into an *uneven* 2D grid by the supernode
  column boundaries (heights = widths, so diagonal blocks are square);
* every structurally nonzero block is stored **dense** — including all
  padding zeros (this is the storage Fig. 1d depicts);
* numeric factorisation is the same right-looking block algorithm as
  PanguLU's, but with dense kernels: LAPACK-style dense LU on diagonal
  blocks, dense triangular solves on panels, and dense GEMM for Schur
  updates (wasting multiply-adds on every padding zero);
* per-GEMM statistics (operand densities, shapes, moved bytes) are
  recorded — they feed the Fig. 4 density histograms and the baseline's
  simulated task costs.

Correctness is identical to PanguLU (padding cells provably stay zero:
any position a kernel could make nonzero is fill, and fill is inside the
pattern), which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import SingularBlockError
from ..sparse.csc import CSCMatrix
from .supernodes import SupernodePartition

__all__ = ["SupernodalMatrix", "GEMMRecord", "SupernodalStats", "sn_partition", "sn_factorize"]


@dataclass(frozen=True)
class GEMMRecord:
    """Shape/density record of one dense Schur GEMM (``C −= A·B``)."""

    m: int
    n: int
    k: int
    density_a: float
    density_b: float
    density_c: float

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    @property
    def moved_bytes(self) -> float:
        """Gather + scatter traffic of the dense panels."""
        return 8.0 * (self.m * self.k + self.k * self.n + 2 * self.m * self.n)


@dataclass
class SupernodalStats:
    """Aggregated accounting of one supernodal factorisation.

    ``seconds_panel`` / ``seconds_schur`` are real wall-clock splits of
    the panel factorisation vs. Schur-complement work — the comparison of
    Table 4.
    """

    gemms: list[GEMMRecord] = field(default_factory=list)
    panel_flops: float = 0.0
    schur_flops: float = 0.0
    moved_bytes: float = 0.0
    seconds_panel: float = 0.0
    seconds_schur: float = 0.0


@dataclass
class SupernodalMatrix:
    """Uneven dense-block matrix cut at supernode boundaries.

    ``dense[(i, j)]`` holds the dense payload of block ``(i, j)``;
    ``pattern_nnz[(i, j)]`` its structural (unpadded) nonzero count.
    """

    n: int
    boundaries: np.ndarray
    dense: dict[tuple[int, int], np.ndarray]
    pattern_nnz: dict[tuple[int, int], int]

    @property
    def ns(self) -> int:
        return len(self.boundaries) - 1

    def width(self, s: int) -> int:
        return int(self.boundaries[s + 1] - self.boundaries[s])

    def block(self, i: int, j: int) -> np.ndarray | None:
        return self.dense.get((i, j))

    def block_density(self, i: int, j: int) -> float:
        blk = self.dense.get((i, j))
        if blk is None:
            return 0.0
        return self.pattern_nnz[(i, j)] / blk.size

    def to_dense(self) -> np.ndarray:
        """Reassemble the global dense matrix (verification only)."""
        out = np.zeros((self.n, self.n))
        b = self.boundaries
        for (i, j), blk in self.dense.items():
            out[b[i] : b[i + 1], b[j] : b[j + 1]] = blk
        return out


def sn_partition(filled: CSCMatrix, part: SupernodePartition) -> SupernodalMatrix:
    """Cut the filled matrix into dense blocks at supernode boundaries."""
    n = filled.ncols
    b = part.boundaries
    ns = part.n_supernodes
    col_to_sn = part.supernode_of_column()
    dense: dict[tuple[int, int], np.ndarray] = {}
    nnz: dict[tuple[int, int], int] = {}
    data = filled.data
    for j in range(n):
        sj = int(col_to_sn[j])
        lc = j - int(b[sj])
        sl = filled.col_slice(j)
        rows = filled.indices[sl]
        vals = data[sl]
        if rows.size == 0:
            continue
        cut = np.searchsorted(rows, b[1:])
        start = 0
        for si in range(ns):
            end = int(cut[si])
            if end > start:
                blk = dense.get((si, sj))
                if blk is None:
                    blk = np.zeros(
                        (int(b[si + 1] - b[si]), int(b[sj + 1] - b[sj]))
                    )
                    dense[(si, sj)] = blk
                    nnz[(si, sj)] = 0
                blk[rows[start:end] - int(b[si]), lc] = vals[start:end]
                nnz[(si, sj)] += end - start
            start = end
    return SupernodalMatrix(n=n, boundaries=b.copy(), dense=dense, pattern_nnz=nnz)


def _dense_getrf(d: np.ndarray, pivot_floor: float) -> None:
    """In-place dense LU without pivoting (static pivoting upstream)."""
    n = d.shape[0]
    scale = float(np.abs(d).max()) or 1.0
    for k in range(n):
        piv = d[k, k]
        if piv == 0.0 or abs(piv) < pivot_floor * scale:
            if pivot_floor <= 0.0:
                raise SingularBlockError("zero pivot in supernodal GETRF")
            piv = pivot_floor * scale if piv >= 0 else -pivot_floor * scale
            d[k, k] = piv
        if k + 1 < n:
            d[k + 1 :, k] /= piv
            d[k + 1 :, k + 1 :] -= np.outer(d[k + 1 :, k], d[k, k + 1 :])


def _trsm_right_upper(u: np.ndarray, b: np.ndarray) -> None:
    """``B ← B · U⁻¹`` in place (dense, column sweep)."""
    n = u.shape[0]
    for c in range(n):
        if c:
            b[:, c] -= b[:, :c] @ u[:c, c]
        b[:, c] /= u[c, c]


def _trsm_left_lower_unit(l: np.ndarray, b: np.ndarray) -> None:
    """``B ← L⁻¹ · B`` in place with unit-lower ``L`` (dense, row sweep)."""
    n = l.shape[0]
    for r in range(n):
        if r:
            b[r, :] -= l[r, :r] @ b[:r, :]


def sn_factorize(
    m: SupernodalMatrix, *, pivot_floor: float = 1e-12
) -> SupernodalStats:
    """Right-looking supernodal factorisation in place, with accounting."""
    import time

    stats = SupernodalStats()
    ns = m.ns
    for k in range(ns):
        diag = m.block(k, k)
        if diag is None:
            raise ValueError(f"empty diagonal supernode block ({k},{k})")
        w = m.width(k)
        t0 = time.perf_counter()
        _dense_getrf(diag, pivot_floor)
        stats.panel_flops += (2.0 / 3.0) * w**3
        row_blocks = [i for i in range(k + 1, ns) if (i, k) in m.dense]
        col_blocks = [j for j in range(k + 1, ns) if (k, j) in m.dense]
        for i in row_blocks:
            blk = m.dense[(i, k)]
            _trsm_right_upper(diag, blk)
            stats.panel_flops += float(blk.shape[0]) * w * w
        for j in col_blocks:
            blk = m.dense[(k, j)]
            _trsm_left_lower_unit(diag, blk)
            stats.panel_flops += float(blk.shape[1]) * w * w
        stats.seconds_panel += time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in row_blocks:
            a = m.dense[(i, k)]
            for j in col_blocks:
                bb = m.dense[(k, j)]
                c = m.dense.get((i, j))
                if c is None:
                    continue  # structurally empty target: product is zero
                c -= a @ bb
                rec = GEMMRecord(
                    m=a.shape[0],
                    n=bb.shape[1],
                    k=w,
                    density_a=m.block_density(i, k),
                    density_b=m.block_density(k, j),
                    density_c=m.block_density(i, j),
                )
                stats.gemms.append(rec)
                stats.schur_flops += rec.flops
                stats.moved_bytes += rec.moved_bytes
        stats.seconds_schur += time.perf_counter() - t0
    return stats
