"""Baseline solver facade — the SuperLU_DIST-role pipeline.

Mirrors :class:`repro.core.solver.PanguLU` phase for phase so every
comparison in the paper's evaluation has a like-for-like counterpart:

1. reordering — *identical* to PanguLU (MC64 + the same fill-reducing
   ordering), so differences downstream are attributable to the methods
   under test, not the permutation;
2. symbolic — Gilbert–Peierls column-DFS fill (the baseline's exact
   unsymmetric pattern) — slower than PanguLU's etree walk, as Fig. 11
   measures;
3. preprocessing — supernode detection with relaxation, dense-panel
   partitioning at the supernode boundaries;
4. numeric — right-looking dense-panel factorisation;
5. solve — dense forward/backward substitution over the panels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..ordering import amd, colamd, mc64, nested_dissection, rcm
from ..sparse.csc import CSCMatrix
from ..sparse.patterns import ensure_diagonal
from ..symbolic import SymbolicResult, symbolic_gilbert_peierls
from .supernodal import (
    SupernodalMatrix,
    SupernodalStats,
    sn_factorize,
    sn_partition,
)
from .supernodes import SupernodePartition, detect_supernodes

__all__ = ["BaselineOptions", "SuperLUBaseline"]


@dataclass
class BaselineOptions:
    """Configuration of the baseline pipeline (defaults match the paper's
    SuperLU_DIST setup as closely as this reproduction allows)."""

    ordering: str = "nd"
    use_mc64: bool = True
    max_supernode_width: int = 64
    relax_pad: float = 0.30
    relax_small: int = 4
    pivot_floor: float = 1e-12


class SuperLUBaseline:
    """Supernodal dense-BLAS direct solver (the paper's comparator).

    Shares the reordering phase with PanguLU; diverges at symbolic
    factorisation (exact unsymmetric fill via column DFS), preprocessing
    (supernode aggregation with padding) and numeric factorisation (dense
    panels, level-set scheduling when simulated).
    """

    def __init__(self, a: CSCMatrix, options: BaselineOptions | None = None) -> None:
        if a.nrows != a.ncols:
            raise ValueError("baseline requires a square matrix")
        if a.nnz and not np.all(np.isfinite(a.data)):
            raise ValueError("matrix contains non-finite values (NaN/Inf)")
        self.a = a
        self.options = options or BaselineOptions()
        self.phase_seconds: dict[str, float] = {}
        self.row_scale: np.ndarray | None = None
        self.col_scale: np.ndarray | None = None
        self.row_perm: np.ndarray | None = None
        self.col_perm: np.ndarray | None = None
        self.symbolic: SymbolicResult | None = None
        self.partition: SupernodePartition | None = None
        self.panels: SupernodalMatrix | None = None
        self.numeric_stats: SupernodalStats | None = None
        self._factorized = False

    def reorder(self) -> CSCMatrix:
        """Phase 1 — identical policy to PanguLU's."""
        t0 = time.perf_counter()
        a = self.a
        n = a.ncols
        if self.options.use_mc64:
            res = mc64(a)
            self.row_scale, self.col_scale = res.row_scale, res.col_scale
            work = a.scale(res.row_scale, res.col_scale).permute(res.row_perm, None)
            mc64_perm = res.row_perm
        else:
            self.row_scale = np.ones(n)
            self.col_scale = np.ones(n)
            work = a.copy()
            mc64_perm = np.arange(n, dtype=np.int64)
        ordering = self.options.ordering
        if ordering == "nd":
            p = nested_dissection(work)
        elif ordering == "amd":
            p = amd(work)
        elif ordering == "colamd":
            p = colamd(work)
        elif ordering == "rcm":
            p = rcm(work)
        elif ordering == "natural":
            p = np.arange(n, dtype=np.int64)
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        self.col_perm = p
        self.row_perm = mc64_perm[p]
        work = ensure_diagonal(work.permute(p, p))
        self._reordered = work
        self.phase_seconds["reorder"] = time.perf_counter() - t0
        return work

    def symbolic_factorize(self) -> SymbolicResult:
        """Phase 2 — Gilbert–Peierls exact unsymmetric fill."""
        if self.col_perm is None:
            self.reorder()
        t0 = time.perf_counter()
        self.symbolic = symbolic_gilbert_peierls(self._reordered)
        self.phase_seconds["symbolic"] = time.perf_counter() - t0
        return self.symbolic

    def preprocess(self) -> SupernodalMatrix:
        """Phase 3 — supernode detection + dense panel partitioning."""
        if self.symbolic is None:
            self.symbolic_factorize()
        t0 = time.perf_counter()
        opts = self.options
        self.partition = detect_supernodes(
            self.symbolic.filled,
            max_width=opts.max_supernode_width,
            relax_pad=opts.relax_pad,
            relax_small=opts.relax_small,
        )
        self.panels = sn_partition(self.symbolic.filled, self.partition)
        self.phase_seconds["preprocess"] = time.perf_counter() - t0
        return self.panels

    def factorize(self) -> SupernodalStats:
        """Phase 4 — dense-panel right-looking factorisation."""
        if self._factorized:
            return self.numeric_stats
        if self.panels is None:
            self.preprocess()
        t0 = time.perf_counter()
        self.numeric_stats = sn_factorize(
            self.panels, pivot_floor=self.options.pivot_floor
        )
        self.phase_seconds["numeric"] = time.perf_counter() - t0
        self._factorized = True
        return self.numeric_stats

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Phase 5 — dense panel forward/backward substitution."""
        self.factorize()
        t0 = time.perf_counter()
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.a.nrows,):
            raise ValueError(f"b has shape {b.shape}, expected ({self.a.nrows},)")
        m = self.panels
        bd = m.boundaries
        c = (self.row_scale * b)[self.row_perm]
        y = c.copy()
        # forward: L y = c (unit lower)
        for k in range(m.ns):
            seg = slice(int(bd[k]), int(bd[k + 1]))
            diag = m.block(k, k)
            n_k = diag.shape[0]
            for r in range(n_k):
                if r:
                    y[seg][r] -= diag[r, :r] @ y[seg][:r]
            for i in range(k + 1, m.ns):
                blk = m.block(i, k)
                if blk is not None:
                    tgt = slice(int(bd[i]), int(bd[i + 1]))
                    y[tgt] -= blk @ y[seg]
        # backward: U x = y
        x_hat = y
        for k in range(m.ns - 1, -1, -1):
            seg = slice(int(bd[k]), int(bd[k + 1]))
            diag = m.block(k, k)
            n_k = diag.shape[0]
            for r in range(n_k - 1, -1, -1):
                if r + 1 < n_k:
                    x_hat[seg][r] -= diag[r, r + 1 :] @ x_hat[seg][r + 1 :]
                x_hat[seg][r] /= diag[r, r]
            for i in range(k):
                blk = m.block(i, k)
                if blk is not None:
                    tgt = slice(int(bd[i]), int(bd[i + 1]))
                    x_hat[tgt] -= blk @ x_hat[seg]
        z = np.empty_like(x_hat)
        z[self.col_perm] = x_hat
        x = self.col_scale * z
        self.phase_seconds["solve"] = time.perf_counter() - t0
        return x

    def residual_norm(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual ``‖A x − b‖₂ / ‖b‖₂``."""
        r = self.a.matvec(x) - b
        denom = float(np.linalg.norm(b)) or 1.0
        return float(np.linalg.norm(r)) / denom
