"""Task DAG and simulation bridge for the supernodal baseline.

Builds the same four-role task graph as PanguLU (factor / two solves /
Schur update) but over the *uneven* supernode partition with *dense*
costs:

* every task's FLOP count is the dense operation count of its panel
  shapes — padding zeros are paid for (the paper's core criticism);
* every GEMM additionally pays gather/scatter transfer of its dense
  panels over the host↔accelerator link (SuperLU_DIST's
  gather→GEMM→scatter pipeline, Section 5.4);
* messages carry dense panels (``rows · cols · 8`` bytes);
* the schedule is **level-set**: tasks inherit the supernodal
  elimination-tree level of their source supernode and a global barrier
  separates levels — the synchronisation the paper measures in Figs. 5
  and 13.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.placement import CyclicPlacement
from ..runtime.machine import Platform
from ..runtime.simulator import SimResult, SimSpec, simulate
from .supernodal import SupernodalMatrix
from .supernodes import SupernodePartition

__all__ = ["SupernodalDAG", "build_sn_dag", "sn_etree_levels", "simulate_superlu"]

#: host↔accelerator gather/scatter bandwidth for the baseline's Schur
#: pipeline (PCIe-gen3-ish), bytes/s
GATHER_BANDWIDTH = 1.2e10

_FACT, _TRSM_L, _TRSM_U, _GEMM = 0, 1, 2, 3


@dataclass
class SupernodalDAG:
    """Flat arrays describing the baseline task graph (simulator input)."""

    kinds: np.ndarray
    k_of: np.ndarray
    bi: np.ndarray
    bj: np.ndarray
    flops: np.ndarray
    gather_bytes: np.ndarray
    out_bytes: np.ndarray
    n_deps: np.ndarray
    successors: list[list[int]]
    levels: np.ndarray
    total_dense_flops: float

    def __len__(self) -> int:
        return len(self.kinds)


def sn_etree_levels(part: SupernodePartition) -> np.ndarray:
    """Level (height above the leaves) of each supernode in the supernodal
    elimination tree; parent = supernode owning the first below-panel row."""
    ns = part.n_supernodes
    col_to_sn = part.supernode_of_column()
    level = np.zeros(ns, dtype=np.int64)
    for k in range(ns):
        rows = part.panel_rows[k]
        if rows.size == 0:
            continue
        parent = int(col_to_sn[int(rows[0])])
        level[parent] = max(level[parent], level[k] + 1)
    return level


def _dependency_levels(m: SupernodalMatrix) -> np.ndarray:
    """Supernode levels from the actual block dependency relation.

    ``level[t] = 1 + max(level[k])`` over every step ``k < t`` whose Schur
    update or panel output feeds supernode ``t``.  For structurally
    symmetric fill this coincides with the elimination-tree levels
    (:func:`sn_etree_levels`); for unsymmetric Gilbert–Peierls fill it is
    the correct generalisation — every dependency points from a lower to
    a strictly higher level, which the barrier scheduling requires.
    """
    ns = m.ns
    level = np.zeros(ns, dtype=np.int64)
    for k in range(ns):
        row_blocks = [i for i in range(k + 1, ns) if (i, k) in m.dense]
        col_blocks = [j for j in range(k + 1, ns) if (k, j) in m.dense]
        for i in row_blocks:
            level[i] = max(level[i], level[k] + 1)
        for j in col_blocks:
            level[j] = max(level[j], level[k] + 1)
        for i in row_blocks:
            for j in col_blocks:
                if (i, j) in m.dense:
                    t = min(i, j)
                    level[t] = max(level[t], level[k] + 1)
    return level


def build_sn_dag(m: SupernodalMatrix, part: SupernodePartition) -> SupernodalDAG:
    """Construct the supernodal task DAG with dense costs."""
    ns = m.ns
    sn_level = _dependency_levels(m)

    kinds: list[int] = []
    k_of: list[int] = []
    bi_l: list[int] = []
    bj_l: list[int] = []
    flops: list[float] = []
    gather: list[float] = []
    out_b: list[float] = []
    levels: list[int] = []
    panel_of_block: dict[tuple[int, int], int] = {}
    gemm_into: dict[tuple[int, int], list[int]] = {}

    def add(kind: int, k: int, i: int, j: int, fl: float, gb: float) -> int:
        tid = len(kinds)
        kinds.append(kind)
        k_of.append(k)
        bi_l.append(i)
        bj_l.append(j)
        flops.append(fl)
        gather.append(gb)
        blk = m.block(i, j)
        out_b.append(8.0 * blk.size if blk is not None else 0.0)
        levels.append(int(sn_level[k]))
        return tid

    for k in range(ns):
        w = m.width(k)
        panel_of_block[(k, k)] = add(_FACT, k, k, k, (2.0 / 3.0) * w**3, 0.0)
        row_blocks = [i for i in range(k + 1, ns) if (i, k) in m.dense]
        col_blocks = [j for j in range(k + 1, ns) if (k, j) in m.dense]
        for i in row_blocks:
            blk = m.dense[(i, k)]
            panel_of_block[(i, k)] = add(
                _TRSM_L, k, i, k, float(blk.shape[0]) * w * w, 0.0
            )
        for j in col_blocks:
            blk = m.dense[(k, j)]
            panel_of_block[(k, j)] = add(
                _TRSM_U, k, k, j, float(blk.shape[1]) * w * w, 0.0
            )
        for i in row_blocks:
            a = m.dense[(i, k)]
            for j in col_blocks:
                if (i, j) not in m.dense:
                    continue
                bb = m.dense[(k, j)]
                fl = 2.0 * a.shape[0] * bb.shape[1] * w
                gb = 8.0 * (
                    a.size + bb.size + 2.0 * a.shape[0] * bb.shape[1]
                )
                tid = add(_GEMM, k, i, j, fl, gb)
                gemm_into.setdefault((i, j), []).append(tid)

    n = len(kinds)
    n_deps = np.zeros(n, dtype=np.int64)
    successors: list[list[int]] = [[] for _ in range(n)]
    for tid in range(n):
        kind = kinds[tid]
        i, j, k = bi_l[tid], bj_l[tid], k_of[tid]
        if kind == _FACT:
            preds = gemm_into.get((k, k), [])
        elif kind in (_TRSM_L, _TRSM_U):
            preds = gemm_into.get((i, j), [])
            successors[panel_of_block[(k, k)]].append(tid)
            n_deps[tid] += 1
        else:
            preds = []
            successors[panel_of_block[(i, k)]].append(tid)
            successors[panel_of_block[(k, j)]].append(tid)
            n_deps[tid] += 2
        for p in preds:
            successors[p].append(tid)
        n_deps[tid] += len(preds)

    return SupernodalDAG(
        kinds=np.asarray(kinds, dtype=np.int64),
        k_of=np.asarray(k_of, dtype=np.int64),
        bi=np.asarray(bi_l, dtype=np.int64),
        bj=np.asarray(bj_l, dtype=np.int64),
        flops=np.asarray(flops),
        gather_bytes=np.asarray(gather),
        out_bytes=np.asarray(out_b),
        n_deps=n_deps,
        successors=successors,
        levels=np.asarray(levels, dtype=np.int64),
        total_dense_flops=float(np.sum(flops)),
    )


def price_sn_tasks(dag: SupernodalDAG, platform: Platform) -> np.ndarray:
    """Simulated durations: dense kernels on the GPU at dense efficiency,
    plus gather/scatter transfer for GEMMs."""
    gpu = platform.gpu
    t_compute = dag.flops / (gpu.flops_peak * gpu.dense_efficiency)
    # dense panels stream through device memory
    t_mem = (dag.gather_bytes + dag.out_bytes) / gpu.mem_bw
    t = gpu.launch_overhead + np.maximum(t_compute, t_mem)
    t = t + dag.gather_bytes / GATHER_BANDWIDTH
    return t


def simulate_superlu(
    m: SupernodalMatrix,
    part: SupernodePartition,
    platform: Platform,
    nprocs: int,
    *,
    schedule: str = "levelset",
    dag: SupernodalDAG | None = None,
) -> tuple[SimResult, SupernodalDAG]:
    """Simulate the baseline's numeric factorisation.

    Default schedule is level-set with barriers (SuperLU_DIST's strategy);
    ``schedule="syncfree"`` isolates the scheduling contribution when
    comparing against PanguLU.
    """
    if dag is None:
        dag = build_sn_dag(m, part)
    durations = price_sn_tasks(dag, platform)
    place = CyclicPlacement(nprocs)
    owner = np.asarray(
        [place.owner(int(i), int(j)) for i, j in zip(dag.bi, dag.bj)],
        dtype=np.int64,
    )
    priority = dag.k_of * 8 + dag.kinds
    spec = SimSpec(
        durations=durations,
        owner=owner,
        out_bytes=dag.out_bytes,
        n_deps=dag.n_deps.copy(),
        successors=dag.successors,
        priority=priority.astype(np.float64),
        nprocs=nprocs,
        levels=dag.levels,
    )
    return simulate(spec, platform, schedule=schedule), dag
