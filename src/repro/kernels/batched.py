"""Batched panel kernels — aggregating small solves (extension).

The paper's related-work section credits Sao et al. [69] with "the
ability to aggregate small dense BLAS operations into larger ones to
utilise GPU".  The same idea applies to PanguLU's panel phase: after
GETRF factors a diagonal block, *every* block in its row and column is
solved against the same factors, so the per-call preparation (splitting
the packed factors, building CSR views, computing level sets) can be
paid once per step instead of once per block.

These wrappers implement that aggregation for the GESSM and TSTRF
variants whose preparation is expensive, falling back to plain loops for
the cheap ones.  They are drop-in optimisations: results are identical to
calling the per-block kernels — asserted by the tests — and the
ablation bench measures the amortisation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..sparse.csc import CSCMatrix
from .base import Workspace, split_lu
from .gessm import GESSM_VARIANTS
from .tstrf import TSTRF_VARIANTS

__all__ = ["gessm_batched", "tstrf_batched"]


def gessm_batched(
    diag: CSCMatrix,
    blocks: list[CSCMatrix],
    ws: Workspace,
    *,
    version: str = "G_V3",
) -> None:
    """Solve ``L·Xᵢ = Bᵢ`` for every block of one block column, in place.

    For the compiled variant (``G_V3``) the factor split and the SciPy
    structure are built once and the right-hand sides are concatenated
    into a single panel — one triangular solve instead of one per block.
    Other versions amortise what they can and loop otherwise.
    """
    if not blocks:
        return
    if version == "G_V3":
        l, _ = split_lu(diag)
        lc = sp.csc_matrix((l.data, l.indices, l.indptr), shape=l.shape).tocsr()
        widths = [b.ncols for b in blocks]
        panel = np.zeros((diag.ncols, int(np.sum(widths))), dtype=diag.data.dtype)
        offset = 0
        for b in blocks:
            rows, cols = b.rows_cols()
            panel[rows, cols + offset] = b.data
            offset += b.ncols
        x = spla.spsolve_triangular(lc, panel, lower=True, unit_diagonal=True)
        offset = 0
        for b in blocks:
            rows, cols = b.rows_cols()
            b.data[...] = x[rows, cols + offset]
            offset += b.ncols
        return
    kernel = GESSM_VARIANTS[version]
    for b in blocks:
        kernel(diag, b, ws)


def tstrf_batched(
    diag: CSCMatrix,
    blocks: list[CSCMatrix],
    ws: Workspace,
    *,
    version: str = "G_V3",
) -> None:
    """Solve ``Xᵢ·U = Bᵢ`` for every block of one block row, in place.

    The ``G_V3`` path builds ``Uᵀ`` and its CSR once and stacks the
    transposed right-hand sides into one panel.
    """
    if not blocks:
        return
    if version == "G_V3":
        _, u = split_lu(diag)
        ut = u.transpose()
        ut_csr = sp.csc_matrix(
            (ut.data, ut.indices, ut.indptr), shape=ut.shape
        ).tocsr()
        heights = [b.nrows for b in blocks]
        panel = np.zeros((diag.ncols, int(np.sum(heights))), dtype=diag.data.dtype)
        offset = 0
        for b in blocks:
            rows, cols = b.rows_cols()
            panel[cols, rows + offset] = b.data
            offset += b.nrows
        x = spla.spsolve_triangular(ut_csr, panel, lower=True, unit_diagonal=False)
        offset = 0
        for b in blocks:
            rows, cols = b.rows_cols()
            b.data[...] = x[cols, rows + offset]
            offset += b.nrows
        return
    kernel = TSTRF_VARIANTS[version]
    for b in blocks:
        kernel(diag, b, ws)
