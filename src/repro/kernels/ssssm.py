"""SSSSM — Schur-complement update ``C ← C − A·B`` with sparse operands.

``A`` is a block of ``L`` (from TSTRF), ``B`` a block of ``U`` (from
GESSM), and ``C`` the target block whose fixed symbolic pattern is
guaranteed (by fill closure) to contain the structural product pattern.
This is where the paper's "sparse rather than dense BLAS" argument lives:
supernodal solvers gather blocks into dense panels and run GEMM including
all the padding zeros; these kernels multiply only the stored entries.

The four variants follow Table 1 of the paper:

=======  ==========  =================================  =============
version  addressing  parallelising method               dense mapping
=======  ==========  =================================  =============
C_V1     Direct      approx. equal-load column blocks   C only
C_V2     Bin-search  adaptive split-bin                 no
G_V1     Bin-search  adaptive multi-level               no
G_V2     Direct      warp-level column                  C only
=======  ==========  =================================  =============
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..sparse.csc import CSCMatrix
from .base import Workspace, gather_dense, scatter_dense

__all__ = [
    "ssssm_c_v1",
    "ssssm_c_v2",
    "ssssm_g_v1",
    "ssssm_g_v2",
    "SSSSM_VARIANTS",
    "ssssm_flops",
]


def ssssm_flops(a: CSCMatrix, b: CSCMatrix) -> int:
    """Exact multiply-add count of the sparse product ``A·B``.

    ``2 · Σ_t nnz(A[:, t]) · nnz(B[t, :])`` — the per-task weight used by
    both the load balancer and the decision-tree kernel selector.
    """
    a_colnnz = np.diff(a.indptr)
    b_rownnz = np.zeros(a.ncols, dtype=np.int64)
    np.add.at(b_rownnz, b.indices, 1)
    return int(2 * np.dot(a_colnnz, b_rownnz))


def ssssm_c_v1(c: CSCMatrix, a: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Dense GEMM with pattern gather (CPU V1, "Direct").

    Scatters all three operands dense and runs one vectorised matmul.
    Wins when the blocks are dense (audikw_1-style matrices) — exactly the
    regime where supernodal dense BLAS is competitive.
    """
    wa = ws.dense("a", a.shape, a.data.dtype)
    wb = ws.dense("b", b.shape, b.data.dtype)
    wc = ws.dense("c", c.shape, c.data.dtype)
    scatter_dense(a, wa)
    scatter_dense(b, wb)
    scatter_dense(c, wc)
    wc -= wa @ wb
    gather_dense(c, wc)


def ssssm_c_v2(c: CSCMatrix, a: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Bin-search scatter (CPU V2, "adaptive split-bin").

    Fully sparse: for every entry ``B[t, j]`` the column ``A[:, t]`` is
    accumulated into ``C[:, j]``, locating targets by binary search in
    ``C``'s fixed column pattern.  Cheapest at very low FLOP counts.
    """
    c_indptr, c_indices, c_data = c.indptr, c.indices, c.data
    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    for j in range(b.ncols):
        slb = b.col_slice(j)
        b_rows = b.indices[slb]
        b_vals = b.data[slb]
        if b_rows.size == 0:
            continue
        lo, hi = int(c_indptr[j]), int(c_indptr[j + 1])
        rows_cj = c_indices[lo:hi]
        for p in range(b_rows.size):
            v = b_vals[p]
            if v == 0.0:
                continue
            t = int(b_rows[p])
            lo_a, hi_a = int(a_indptr[t]), int(a_indptr[t + 1])
            if lo_a == hi_a:
                continue
            ar = a_indices[lo_a:hi_a]
            av = a_data[lo_a:hi_a]
            pos = np.searchsorted(rows_cj, ar)
            valid = pos < rows_cj.size
            np.minimum(pos, rows_cj.size - 1, out=pos)
            valid &= rows_cj[pos] == ar
            c_data[lo + pos[valid]] -= av[valid] * v


def ssssm_g_v1(c: CSCMatrix, a: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Compiled SpGEMM + pattern merge (GPU V1, "adaptive multi-level").

    Offloads the product to SciPy's compiled sparse×sparse kernel, then
    merges the product into ``C``'s pattern with one vectorised
    ``searchsorted`` per column.  The launch/conversion overhead is the
    analogue of a GPU kernel launch; throughput dominates at high FLOPs.
    """
    asp = sp.csc_matrix((a.data, a.indices, a.indptr), shape=a.shape, copy=False)
    bsp = sp.csc_matrix((b.data, b.indices, b.indptr), shape=b.shape, copy=False)
    p = (asp @ bsp).tocsc()
    p.sort_indices()
    c_indptr, c_indices, c_data = c.indptr, c.indices, c.data
    for j in range(c.ncols):
        lo_p, hi_p = int(p.indptr[j]), int(p.indptr[j + 1])
        if lo_p == hi_p:
            continue
        pr = p.indices[lo_p:hi_p]
        pv = p.data[lo_p:hi_p]
        lo, hi = int(c_indptr[j]), int(c_indptr[j + 1])
        rows_cj = c_indices[lo:hi]
        pos = np.searchsorted(rows_cj, pr)
        valid = pos < rows_cj.size
        np.minimum(pos, rows_cj.size - 1, out=pos)
        valid &= rows_cj[pos] == pr
        c_data[lo + pos[valid]] -= pv[valid]


def ssssm_g_v2(c: CSCMatrix, a: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Dense-C accumulation (GPU V2, "Direct warp-level column").

    Only the *target* is dense-mapped; the product is accumulated column
    by column with direct (dense) addressing — no searches, no full GEMM.
    Strong when ``C`` is dense but ``A``/``B`` are sparse.
    """
    wc = ws.dense("c", c.shape, c.data.dtype)
    scatter_dense(c, wc)
    a_indptr, a_indices, a_data = a.indptr, a.indices, a.data
    for j in range(b.ncols):
        slb = b.col_slice(j)
        b_rows = b.indices[slb]
        b_vals = b.data[slb]
        col = wc[:, j]
        for p in range(b_rows.size):
            v = b_vals[p]
            if v == 0.0:
                continue
            t = int(b_rows[p])
            lo_a, hi_a = int(a_indptr[t]), int(a_indptr[t + 1])
            if lo_a == hi_a:
                continue
            col[a_indices[lo_a:hi_a]] -= a_data[lo_a:hi_a] * v
    gather_dense(c, wc)


SSSSM_VARIANTS = {
    "C_V1": ssssm_c_v1,
    "C_V2": ssssm_c_v2,
    "G_V1": ssssm_g_v1,
    "G_V2": ssssm_g_v2,
}
