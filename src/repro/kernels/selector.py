"""Decision-tree kernel selection (Fig. 8 of the paper).

PanguLU picks one of the 17 kernel variants per task from cheap structural
features: ``nnz`` of the operand for the panel kernels (GETRF / GESSM /
TSTRF) and the FLOP count for SSSSM.  The paper derives its thresholds
from a large sweep of measured kernel times on the target GPU; this module

* represents such trees as explicit data (:class:`DecisionTree` /
  :class:`Split` / leaf strings) so the paper's topology is preserved;
* ships :func:`default_trees` with thresholds calibrated for *this*
  implementation's kernels (the absolute crossover points of CUDA kernels
  on an A100 obviously differ from NumPy kernels — what is reproduced is
  the mechanism and its effect, see the Fig. 14 ablation bench);
* provides :func:`calibrate` to rebuild the thresholds from fresh
  measurements, mirroring the paper's data-driven construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .registry import KernelType

__all__ = [
    "Split",
    "DecisionTree",
    "TaskFeatures",
    "default_trees",
    "calibrate",
    "SelectorPolicy",
]


@dataclass(frozen=True)
class TaskFeatures:
    """Structural features available to the selector before numeric work.

    Attributes
    ----------
    nnz_a:
        nnz of the primary operand (the block for GETRF, the factored
        diagonal block for GESSM/TSTRF, the L-block for SSSSM).
    nnz_b:
        nnz of the secondary operand (0 when not applicable).
    flops:
        structural FLOP count of the task.
    n:
        block order (rows of the diagonal block).
    density:
        nnz of the *output* block over its dense capacity.
    lr_operands:
        how many SSSSM operands are low-rank compressed (0, 1 or 2);
        always 0 with compression disabled, keeping the default trees
        bit-identical to the pre-compression selector.
    rank:
        estimated/retained low-rank rank — the actual rank of the
        compressed operands for SSSSM, or the profitable-rank cap
        ``(nnz − 1) // (m + n)`` when choosing a COMPRESS kernel.
    """

    nnz_a: int
    nnz_b: int = 0
    flops: int = 0
    n: int = 1
    density: float = 0.0
    lr_operands: int = 0
    rank: int = 0

    def get(self, feature: str) -> float:
        value = getattr(self, feature, None)
        if value is None:
            raise KeyError(f"unknown feature {feature!r}")
        return float(value)


Node = Union["Split", str]


@dataclass(frozen=True)
class Split:
    """Internal decision node: go ``left`` when ``feature < threshold``."""

    feature: str
    threshold: float
    left: Node
    right: Node


@dataclass(frozen=True)
class DecisionTree:
    """A per-kernel-type decision tree selecting a kernel version string.

    >>> tree = DecisionTree(Split("nnz_a", 100.0, "C_V1", "G_V1"))
    >>> tree.select(TaskFeatures(nnz_a=10))
    'C_V1'
    >>> tree.select(TaskFeatures(nnz_a=1000))
    'G_V1'
    """

    root: Node

    def select(self, feats: TaskFeatures) -> str:
        node: Node = self.root
        while isinstance(node, Split):
            node = node.left if feats.get(node.feature) < node.threshold else node.right
        return node

    def leaves(self) -> list[str]:
        """All version strings reachable from this tree."""
        out: list[str] = []
        stack: list[Node] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, Split):
                stack.extend([node.left, node.right])
            else:
                out.append(node)
        return out


def default_trees() -> dict[KernelType, DecisionTree]:
    """Default selection trees.

    Topology follows Fig. 8 (small-nnz → CPU-class sparse kernels,
    mid-range → bin-search/level GPU kernels, large/dense → dense-mapped or
    compiled kernels); thresholds are calibrated to this implementation
    (see ``benchmarks/bench_fig08_selector.py`` for the measured sweep).
    """
    # Thresholds below come from the measured sweep over block orders
    # 16–256 and densities 0.01–1.0 (see bench_fig07_kernels.py): the
    # sparse left-looking kernels win tiny/very sparse blocks, the
    # dense-workspace variants win medium densities, and the dense /
    # compiled paths win dense or very large panels.
    getrf = DecisionTree(
        Split(
            "nnz_a",
            100.0,
            "G_V1",
            Split("density", 0.22, "G_V2", "C_V1"),
        )
    )
    gessm = DecisionTree(
        Split(
            "nnz_b",
            30.0,
            Split("nnz_b", 12.0, "C_V1", "G_V1"),
            Split("nnz_b", 20_000.0, "C_V2", "G_V3"),
        )
    )
    tstrf = DecisionTree(
        Split("nnz_b", 25_000.0, "C_V2", "G_V3")
    )
    # dense-operand subtree — unchanged from the pre-compression
    # selector so runs with compression disabled stay bit-identical
    ssssm_dense = Split(
        "n",
        96.0,
        "C_V1",
        Split(
            "density",
            0.2,
            Split("flops", 100.0, "C_V2", "G_V1"),
            "C_V1",
        ),
    )
    ssssm = DecisionTree(
        Split(
            "lr_operands",
            1.0,
            ssssm_dense,
            Split("lr_operands", 2.0, "LR_V1", "LR_V2"),
        )
    )
    # COMPRESS: exact SVD for small orders; for large blocks the
    # randomised range finder wins when the profitable rank is small
    # relative to the order, otherwise the projection step dominates
    # and exact SVD is no worse
    compress = DecisionTree(
        Split(
            "n",
            192.0,
            "SVD_V1",
            Split("rank", 48.0, "RSVD_V1", "SVD_V1"),
        )
    )
    return {
        KernelType.GETRF: getrf,
        KernelType.GESSM: gessm,
        KernelType.TSTRF: tstrf,
        KernelType.SSSSM: ssssm,
        KernelType.COMPRESS: compress,
    }


def fixed_trees(versions: dict[KernelType, str]) -> dict[KernelType, DecisionTree]:
    """Degenerate trees that always pick one version per type — the paper's
    "baseline" configuration in the Fig. 14 ablation."""
    return {k: DecisionTree(v) for k, v in versions.items()}


@dataclass
class SelectorPolicy:
    """Kernel selection policy used by the numeric driver.

    ``adaptive=True`` consults the decision trees; ``adaptive=False``
    always returns the fixed baseline version (ablation mode).
    """

    trees: dict[KernelType, DecisionTree]
    adaptive: bool = True
    baseline: dict[KernelType, str] | None = None

    @classmethod
    def default(cls) -> "SelectorPolicy":
        return cls(trees=default_trees())

    @classmethod
    def fixed(cls, versions: dict[KernelType, str] | None = None) -> "SelectorPolicy":
        """The non-adaptive baseline of the Fig. 14 ablation."""
        if versions is None:
            versions = {
                KernelType.GETRF: "G_V1",
                KernelType.GESSM: "G_V1",
                KernelType.TSTRF: "G_V1",
                KernelType.SSSSM: "C_V2",
                KernelType.COMPRESS: "SVD_V1",
            }
        return cls(trees=fixed_trees(versions), adaptive=False, baseline=versions)

    def select(self, ktype: KernelType, feats: TaskFeatures) -> str:
        return self.trees[ktype].select(feats)


def calibrate(
    measurements: dict[KernelType, list[tuple[TaskFeatures, dict[str, float]]]],
    *,
    feature_by_type: dict[KernelType, str] | None = None,
    max_depth: int = 3,
) -> dict[KernelType, DecisionTree]:
    """Rebuild decision trees from measured per-variant kernel times.

    ``measurements[ktype]`` is a list of ``(features, {version: seconds})``
    samples.  A small exact CART over one feature per type (the paper uses
    nnz for panel kernels, FLOPs for SSSSM) greedily picks thresholds
    minimising the total time of the selected kernels.
    """
    if feature_by_type is None:
        feature_by_type = {
            KernelType.GETRF: "nnz_a",
            KernelType.GESSM: "nnz_b",
            KernelType.TSTRF: "nnz_b",
            KernelType.SSSSM: "flops",
            KernelType.COMPRESS: "n",
        }

    def best_leaf(samples: list[tuple[TaskFeatures, dict[str, float]]]) -> tuple[str, float]:
        totals: dict[str, float] = {}
        for _, times in samples:
            for v, t in times.items():
                totals[v] = totals.get(v, 0.0) + t
        version = min(totals, key=totals.get)  # type: ignore[arg-type]
        return version, totals[version]

    def build(samples, feature, depth) -> Node:
        leaf, leaf_cost = best_leaf(samples)
        if depth >= max_depth or len(samples) < 4:
            return leaf
        xs = sorted({s.get(feature) for s, _ in samples})
        best: tuple[float, Node] = (leaf_cost, leaf)
        for i in range(1, len(xs)):
            thr = 0.5 * (xs[i - 1] + xs[i])
            left = [s for s in samples if s[0].get(feature) < thr]
            right = [s for s in samples if s[0].get(feature) >= thr]
            if not left or not right:
                continue
            _, cl = best_leaf(left)
            _, cr = best_leaf(right)
            if cl + cr < best[0] - 1e-12:
                best = (
                    cl + cr,
                    Split(
                        feature,
                        thr,
                        build(left, feature, depth + 1),
                        build(right, feature, depth + 1),
                    ),
                )
        return best[1]

    out: dict[KernelType, DecisionTree] = {}
    for ktype, samples in measurements.items():
        if not samples:
            raise ValueError(f"no samples for {ktype}")
        out[ktype] = DecisionTree(build(samples, feature_by_type[ktype], 0))
    return out
