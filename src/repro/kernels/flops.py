"""Structural FLOP counts for the four kernel types.

All counts derive from the *fixed symbolic patterns* of the blocks, so they
are available before any numeric work — this is what makes the paper's
static load balancing (weights = task FLOPs, Section 4.2) and the
decision-tree kernel selection (Section 4.3) purely preprocessing-time
computations.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSCMatrix

__all__ = [
    "getrf_flops",
    "gessm_flops",
    "tstrf_flops",
    "ssssm_flops_structural",
    "DiagCounts",
    "diag_counts",
    "gessm_flops_from_counts",
    "tstrf_flops_from_counts",
]


def _lower_upper_counts(
    block: CSCMatrix,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pivot structural counts of a (diagonal) block pattern.

    Returns ``(lower_col, upper_col, upper_row)``: strict-lower nnz per
    column, strict-upper nnz per column, strict-upper nnz per row.
    """
    n = block.ncols
    lower_col = np.zeros(n, dtype=np.int64)
    upper_col = np.zeros(n, dtype=np.int64)
    upper_row = np.zeros(n, dtype=np.int64)
    for j in range(n):
        rows = block.indices[block.col_slice(j)]
        pos = int(np.searchsorted(rows, j))
        has_diag = 1 if pos < rows.size and rows[pos] == j else 0
        lower_col[j] = rows.size - pos - has_diag
        upper_col[j] = pos
        np.add.at(upper_row, rows[:pos], 1)
    return lower_col, upper_col, upper_row


def getrf_flops(block: CSCMatrix) -> int:
    """FLOPs of in-place block LU: per pivot ``t``, one division per
    strict-lower entry plus a multiply-add per (lower, upper) pair.

    This upper-bounds the true count (pattern positions with numeric zeros
    still count), matching how the paper derives task weights symbolically.
    """
    lower_col, _, upper_row = _lower_upper_counts(block)
    return int(np.sum(lower_col) + 2 * np.dot(lower_col, upper_row))


def gessm_flops(diag: CSCMatrix, b: CSCMatrix) -> int:
    """FLOPs of ``L·X = B``: each entry ``(t, c)`` of ``B`` triggers a
    multiply-add against the strict-lower column ``t`` of the factored
    diagonal block."""
    lower_col, _, _ = _lower_upper_counts(diag)
    return int(2 * np.sum(lower_col[b.indices]))


def tstrf_flops(diag: CSCMatrix, b: CSCMatrix) -> int:
    """FLOPs of ``X·U = B``: one division per entry of ``B`` plus a
    multiply-add against the strict-upper row of the pivot column."""
    _, upper_col, _ = _lower_upper_counts(diag)
    cols = np.repeat(np.arange(b.ncols, dtype=np.int64), np.diff(b.indptr))
    return int(b.nnz + 2 * np.sum(upper_col[cols]))


def ssssm_flops_structural(a: CSCMatrix, b: CSCMatrix) -> int:
    """FLOPs of ``C −= A·B``: ``2 Σ_t nnz(A[:,t]) · nnz(B[t,:])``."""
    a_colnnz = np.diff(a.indptr)
    b_rownnz = np.zeros(a.ncols, dtype=np.int64)
    np.add.at(b_rownnz, b.indices, 1)
    return int(2 * np.dot(a_colnnz, b_rownnz))


class DiagCounts:
    """Precomputed per-pivot counts of a diagonal block.

    ``build_dag`` creates one per elimination step and prices every panel
    task of that step against it, avoiding the repeated
    :func:`_lower_upper_counts` pass the one-shot helpers would perform.
    """

    __slots__ = ("lower_col", "upper_col", "upper_row")

    def __init__(self, block: CSCMatrix) -> None:
        self.lower_col, self.upper_col, self.upper_row = _lower_upper_counts(block)


def diag_counts(block: CSCMatrix) -> DiagCounts:
    """Counts of a diagonal block, reusable across its panel tasks."""
    return DiagCounts(block)


def gessm_flops_from_counts(counts: DiagCounts, b: CSCMatrix) -> int:
    """:func:`gessm_flops` with precomputed diagonal counts."""
    return int(2 * np.sum(counts.lower_col[b.indices]))


def tstrf_flops_from_counts(counts: DiagCounts, b: CSCMatrix) -> int:
    """:func:`tstrf_flops` with precomputed diagonal counts."""
    cols = np.repeat(np.arange(b.ncols, dtype=np.int64), np.diff(b.indptr))
    return int(b.nnz + 2 * np.sum(counts.upper_col[cols]))
