"""Block sparse BLAS: the 17 kernel variants of Table 1 (GETRF×3,
GESSM×5, TSTRF×5, SSSSM×4) plus the low-rank extension family
(SSSSM LR×2, COMPRESS×3), structural FLOP counters, the kernel
registry, the decision-tree selector of Fig. 8, and fixed-pattern
execution plans (precomputed scatter addressing) for the sparse
variants."""

from .base import SingularBlockError, Workspace, split_lu
from .batched import gessm_batched, tstrf_batched
from .compress import (
    COMPRESS_VARIANTS,
    LR_SSSSM_VARIANTS,
    CompressPolicy,
    compress_rsvd_v1,
    compress_svd_v1,
    decompress_v1,
    lr_ssssm_flops,
    ssssm_lr_v1,
    ssssm_lr_v2,
    try_compress,
)
from .flops import (
    gessm_flops,
    getrf_flops,
    ssssm_flops_structural,
    tstrf_flops,
)
from .getrf import GETRF_VARIANTS, getrf_c_v1, getrf_g_v1, getrf_g_v2
from .gessm import (
    GESSM_VARIANTS,
    gessm_c_v1,
    gessm_c_v2,
    gessm_g_v1,
    gessm_g_v2,
    gessm_g_v3,
)
from .plans import (
    PLANNABLE_VERSIONS,
    GETRFPlan,
    PlanCache,
    SolvePlan,
    SSSSMPlan,
    build_getrf_plan,
    build_gessm_plan,
    build_ssssm_plan,
    build_tstrf_plan,
    run_getrf_plan,
    run_gessm_plan,
    run_ssssm_plan,
    run_tstrf_plan,
)
from .registry import (
    KERNEL_REGISTRY,
    KernelType,
    get_kernel,
    is_gpu_version,
    kernel_names,
    plan_capable,
)
from .selector import (
    DecisionTree,
    SelectorPolicy,
    Split,
    TaskFeatures,
    calibrate,
    default_trees,
)
from .ssssm import (
    SSSSM_VARIANTS,
    ssssm_c_v1,
    ssssm_c_v2,
    ssssm_g_v1,
    ssssm_g_v2,
)
from .tstrf import (
    TSTRF_VARIANTS,
    tstrf_c_v1,
    tstrf_c_v2,
    tstrf_g_v1,
    tstrf_g_v2,
    tstrf_g_v3,
)
from .tsolve_kernels import (
    SpMVPlan,
    build_spmv_plan,
    diagb_seg,
    diagf_seg,
    updb_seg,
    updf_seg,
)

__all__ = [
    "KernelType",
    "KERNEL_REGISTRY",
    "kernel_names",
    "get_kernel",
    "is_gpu_version",
    "Workspace",
    "SingularBlockError",
    "split_lu",
    "gessm_batched",
    "tstrf_batched",
    "getrf_flops",
    "gessm_flops",
    "tstrf_flops",
    "ssssm_flops_structural",
    "GETRF_VARIANTS",
    "GESSM_VARIANTS",
    "TSTRF_VARIANTS",
    "SSSSM_VARIANTS",
    "COMPRESS_VARIANTS",
    "LR_SSSSM_VARIANTS",
    "CompressPolicy",
    "compress_svd_v1",
    "compress_rsvd_v1",
    "decompress_v1",
    "ssssm_lr_v1",
    "ssssm_lr_v2",
    "lr_ssssm_flops",
    "try_compress",
    "DecisionTree",
    "Split",
    "TaskFeatures",
    "SelectorPolicy",
    "default_trees",
    "calibrate",
    "PlanCache",
    "PLANNABLE_VERSIONS",
    "plan_capable",
    "SSSSMPlan",
    "SolvePlan",
    "GETRFPlan",
    "build_ssssm_plan",
    "run_ssssm_plan",
    "build_gessm_plan",
    "run_gessm_plan",
    "build_tstrf_plan",
    "run_tstrf_plan",
    "build_getrf_plan",
    "run_getrf_plan",
    "SpMVPlan",
    "build_spmv_plan",
    "diagf_seg",
    "diagb_seg",
    "updf_seg",
    "updb_seg",
]
