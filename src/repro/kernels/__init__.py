"""Block sparse BLAS: the 17 kernel variants (GETRF×3, GESSM×5, TSTRF×5,
SSSSM×4), structural FLOP counters, the kernel registry, and the
decision-tree selector of Fig. 8."""

from .base import SingularBlockError, Workspace, split_lu
from .batched import gessm_batched, tstrf_batched
from .flops import (
    gessm_flops,
    getrf_flops,
    ssssm_flops_structural,
    tstrf_flops,
)
from .getrf import GETRF_VARIANTS, getrf_c_v1, getrf_g_v1, getrf_g_v2
from .gessm import (
    GESSM_VARIANTS,
    gessm_c_v1,
    gessm_c_v2,
    gessm_g_v1,
    gessm_g_v2,
    gessm_g_v3,
)
from .registry import (
    KERNEL_REGISTRY,
    KernelType,
    get_kernel,
    is_gpu_version,
    kernel_names,
)
from .selector import (
    DecisionTree,
    SelectorPolicy,
    Split,
    TaskFeatures,
    calibrate,
    default_trees,
)
from .ssssm import (
    SSSSM_VARIANTS,
    ssssm_c_v1,
    ssssm_c_v2,
    ssssm_g_v1,
    ssssm_g_v2,
)
from .tstrf import (
    TSTRF_VARIANTS,
    tstrf_c_v1,
    tstrf_c_v2,
    tstrf_g_v1,
    tstrf_g_v2,
    tstrf_g_v3,
)

__all__ = [
    "KernelType",
    "KERNEL_REGISTRY",
    "kernel_names",
    "get_kernel",
    "is_gpu_version",
    "Workspace",
    "SingularBlockError",
    "split_lu",
    "gessm_batched",
    "tstrf_batched",
    "getrf_flops",
    "gessm_flops",
    "tstrf_flops",
    "ssssm_flops_structural",
    "GETRF_VARIANTS",
    "GESSM_VARIANTS",
    "TSTRF_VARIANTS",
    "SSSSM_VARIANTS",
    "DecisionTree",
    "Split",
    "TaskFeatures",
    "SelectorPolicy",
    "default_trees",
    "calibrate",
]
