"""GETRF — in-place sparse LU factorisation of a diagonal block.

The three variants follow Table 1 of the paper:

=======  ==========  ====================  =============
version  addressing  parallelising method  dense mapping
=======  ==========  ====================  =============
C_V1     Direct      row-wise              yes
G_V1     Bin-search  un-synchronised SFLU  no
G_V2     Direct      un-synchronised SFLU  yes
=======  ==========  ====================  =============

All variants factor the block ``A = L·U`` in place: afterwards the strict
lower triangle holds ``L`` (unit diagonal implicit) and the upper triangle
plus diagonal holds ``U``.  No pivoting — stability comes from the MC64
preprocessing (static pivoting), with an optional tiny-pivot replacement
mirroring SuperLU's GESP when ``pivot_floor > 0``.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSCMatrix
from .base import SingularBlockError, Workspace, gather_dense, scatter_dense

__all__ = ["getrf_c_v1", "getrf_g_v1", "getrf_g_v2", "GETRF_VARIANTS"]


def _fix_pivot(value: float, pivot_floor: float, scale: float) -> tuple[float, bool]:
    """Replace an exactly/near-zero pivot per static-pivoting policy.

    Returns ``(pivot, replaced)`` — the second flag feeds the GESP
    diagnostics (count of perturbed pivots) in the factorisation stats.
    """
    if value == 0.0 or abs(value) < pivot_floor * scale:
        if pivot_floor <= 0.0:
            raise SingularBlockError("zero pivot in GETRF (run MC64 first)")
        return (pivot_floor * scale if value >= 0 else -pivot_floor * scale), True
    return value, False


def getrf_c_v1(
    block: CSCMatrix, ws: Workspace, *, pivot_floor: float = 0.0
) -> int:
    """Dense-mapped right-looking LU (CPU V1, "Direct" + "Row" in Table 1).

    Scatters the block into the dense workspace, runs a vectorised
    rank-1-update LU, gathers back.  Wins when the block is dense enough
    that the O(n³/3) dense work beats sparse bookkeeping.
    """
    n = block.ncols
    w = ws.dense("a", (n, n), block.data.dtype)
    scatter_dense(block, w)
    scale = (float(np.abs(block.data).max()) if block.nnz else 0.0) or 1.0
    replaced = 0
    for k in range(n):
        piv, rep = _fix_pivot(float(w[k, k]), pivot_floor, scale)
        replaced += rep
        w[k, k] = piv
        if k + 1 < n:
            w[k + 1 :, k] /= piv
            # rank-1 Schur update of the trailing matrix
            w[k + 1 :, k + 1 :] -= np.outer(w[k + 1 :, k], w[k, k + 1 :])
    gather_dense(block, w)
    return replaced


def getrf_g_v1(
    block: CSCMatrix, ws: Workspace, *, pivot_floor: float = 0.0
) -> int:
    """Sparse left-looking LU with bin-search addressing (GPU V1, SFLU-style).

    Processes columns left to right; each column ``j`` is updated by every
    factored column ``t`` appearing in its own pattern (``t < j``), locating
    the update targets with ``searchsorted`` into column ``j``'s index list.
    Never touches a dense workspace — the fast choice for very sparse
    blocks.
    """
    n = block.ncols
    indptr, indices, data = block.indptr, block.indices, block.data
    scale = (float(np.abs(data).max()) if data.size else 0.0) or 1.0
    replaced = 0
    for j in range(n):
        lo, hi = int(indptr[j]), int(indptr[j + 1])
        rows_j = indices[lo:hi]
        vals_j = data[lo:hi]
        diag_pos = int(np.searchsorted(rows_j, j))
        # left-looking update: for each upper entry t (< j) in this column,
        # in increasing row order, apply column t of L
        for p in range(diag_pos):
            t = int(rows_j[p])
            xt = vals_j[p]
            if xt == 0.0:
                continue
            lo_t, hi_t = int(indptr[t]), int(indptr[t + 1])
            rows_t = indices[lo_t:hi_t]
            start = int(np.searchsorted(rows_t, t + 1))
            l_rows = rows_t[start:hi_t - lo_t]
            if l_rows.size == 0:
                continue
            l_vals = data[lo_t + start : hi_t]
            pos = np.searchsorted(rows_j, l_rows)
            valid = pos < rows_j.size
            # fill closure guarantees structural targets exist; the mask
            # only guards numerically-impossible positions
            np.minimum(pos, rows_j.size - 1, out=pos)
            valid &= rows_j[pos] == l_rows
            vals_j[pos[valid]] -= l_vals[valid] * xt
        if diag_pos >= rows_j.size or rows_j[diag_pos] != j:
            raise SingularBlockError(f"missing structural pivot at column {j}")
        piv, rep = _fix_pivot(float(vals_j[diag_pos]), pivot_floor, scale)
        replaced += rep
        vals_j[diag_pos] = piv
        if diag_pos + 1 < rows_j.size:
            vals_j[diag_pos + 1 :] /= piv
    return replaced


def getrf_g_v2(
    block: CSCMatrix, ws: Workspace, *, pivot_floor: float = 0.0
) -> int:
    """Sparse left-looking LU with a dense column workspace (GPU V2).

    Same traversal as :func:`getrf_g_v1` but each column is scattered into
    a dense vector so updates use direct addressing — the paper's "Direct"
    + "Un-sync SFLU" combination, best at medium densities.
    """
    n = block.ncols
    indptr, indices, data = block.indptr, block.indices, block.data
    scale = (float(np.abs(data).max()) if data.size else 0.0) or 1.0
    replaced = 0
    x = ws.vector(n, data.dtype)
    for j in range(n):
        lo, hi = int(indptr[j]), int(indptr[j + 1])
        rows_j = indices[lo:hi]
        vals_j = data[lo:hi]
        x[rows_j] = vals_j
        diag_pos = int(np.searchsorted(rows_j, j))
        for p in range(diag_pos):
            t = int(rows_j[p])
            xt = x[t]
            if xt == 0.0:
                continue
            lo_t, hi_t = int(indptr[t]), int(indptr[t + 1])
            rows_t = indices[lo_t:hi_t]
            start = int(np.searchsorted(rows_t, t + 1))
            if start < rows_t.size:
                x[rows_t[start:]] -= data[lo_t + start : hi_t] * xt
        if diag_pos >= rows_j.size or rows_j[diag_pos] != j:
            raise SingularBlockError(f"missing structural pivot at column {j}")
        piv, rep = _fix_pivot(float(x[j]), pivot_floor, scale)
        replaced += rep
        x[j] = piv
        below = rows_j[diag_pos + 1 :]
        if below.size:
            x[below] /= piv
        vals_j[...] = x[rows_j]
        x[rows_j] = 0.0
    return replaced


GETRF_VARIANTS = {
    "C_V1": getrf_c_v1,
    "G_V1": getrf_g_v1,
    "G_V2": getrf_g_v2,
}
