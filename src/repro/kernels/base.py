"""Shared infrastructure for the block sparse kernels.

Every numeric kernel operates on :class:`~repro.sparse.csc.CSCMatrix`
blocks whose pattern is *fixed* by the symbolic factorisation.  The fill
closure property (if ``F[r,t]`` and ``F[t,c]`` are present with
``t < min(r, c)`` then ``F[r,c]`` is present) guarantees that every value a
kernel produces has a preallocated slot, which is what makes the paper's
three addressing methods well-defined:

* **Direct / dense mapping** — scatter the block into a reusable dense
  workspace, compute with dense vectorised operations, gather back into
  the pattern.
* **Bin-search** — stay sparse and locate update targets with binary
  search (``numpy.searchsorted``) in the target column's sorted indices.
* **Merge** — locate targets by merging two sorted index lists
  (``numpy.intersect1d`` on sorted-unique arrays).

This module provides the dense workspace, scatter/gather helpers, and
the L/U split views of a factored diagonal block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.csc import CSCMatrix

__all__ = [
    "Workspace",
    "scatter_dense",
    "gather_dense",
    "split_lu",
    "solve_levels",
    "csc_to_csr_arrays",
    "SingularBlockError",
]


class SingularBlockError(ArithmeticError):
    """A diagonal pivot was exactly zero during GETRF.

    With MC64 preprocessing this indicates severe cancellation; callers may
    retry with a perturbed pivot (static pivoting à la SuperLU GESP).
    """


@dataclass
class Workspace:
    """Reusable dense scratch space for the dense-mapping kernel variants.

    One instance per executing worker; kernels may freely overwrite the
    arrays.  Grown on demand, never shrunk.
    """

    _dense_a: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), dtype=np.float64))
    _dense_b: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), dtype=np.float64))
    _dense_c: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), dtype=np.float64))
    _vec: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.float64))

    def dense(
        self,
        which: str,
        shape: tuple[int, int],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Return a zeroed dense scratch array of at least ``shape``.

        ``which`` selects one of three independent buffers (``"a"``,
        ``"b"``, ``"c"``) so a kernel can hold three operands at once.
        ``dtype`` must match the operand blocks' value dtype — computing
        dense in float64 and gathering back into float32 storage would
        round differently from the sparse variants of the same kernel and
        break cross-variant (and planned-vs-unplanned) bit identity.
        """
        dtype = np.dtype(dtype)
        attr = f"_dense_{which}"
        buf = getattr(self, attr)
        if buf.shape[0] < shape[0] or buf.shape[1] < shape[1] or buf.dtype != dtype:
            newshape = (max(buf.shape[0], shape[0]), max(buf.shape[1], shape[1]))
            buf = np.zeros(newshape, dtype=dtype)
            setattr(self, attr, buf)
        view = buf[: shape[0], : shape[1]]
        view[...] = 0.0
        return view

    def vector(self, n: int, dtype: np.dtype | type = np.float64) -> np.ndarray:
        """Zeroed 1-D scratch of length ``n`` and dtype ``dtype``."""
        dtype = np.dtype(dtype)
        if self._vec.size < n or self._vec.dtype != dtype:
            self._vec = np.zeros(n, dtype=dtype)
        v = self._vec[:n]
        v[...] = 0.0
        return v

    def presize(
        self, n: int, m: int | None = None, dtype: np.dtype | type = np.float64
    ) -> None:
        """Grow all scratch buffers to at least ``(n, m)`` up front.

        Worker threads call this once with the block size (and the factor
        dtype) before entering the task loop so no allocation (and no
        allocator contention) happens inside the numeric hot path.
        """
        m = n if m is None else m
        for which in ("a", "b", "c"):
            self.dense(which, (n, m), dtype)
        self.vector(n, dtype)


def scatter_dense(block: CSCMatrix, out: np.ndarray) -> None:
    """Scatter the block values into ``out`` (must be zeroed, block-shaped)."""
    rows, cols = block.rows_cols()
    out[rows, cols] = block.data


def gather_dense(block: CSCMatrix, dense: np.ndarray) -> None:
    """Gather values from ``dense`` back into the block's fixed pattern."""
    rows, cols = block.rows_cols()
    block.data[...] = dense[rows, cols]


def split_lu(diag: CSCMatrix) -> tuple[CSCMatrix, CSCMatrix]:
    """Split a factored diagonal block into ``(L, U)``.

    ``L`` is unit-lower (unit diagonal stored explicitly), ``U`` is upper
    including the diagonal.  Both are fresh CSC matrices.
    """
    n = diag.ncols
    l_indptr = np.zeros(n + 1, dtype=np.int64)
    u_indptr = np.zeros(n + 1, dtype=np.int64)
    l_idx: list[np.ndarray] = []
    l_val: list[np.ndarray] = []
    u_idx: list[np.ndarray] = []
    u_val: list[np.ndarray] = []
    data = diag.data
    # the stored unit diagonal must be built in the factor dtype —
    # np.concatenate([[1.0], float32_vals]) would silently promote the
    # whole L value array to float64
    unit = np.ones(1, dtype=data.dtype)
    for j in range(n):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        vals = data[sl]
        below = rows > j
        upto = rows <= j
        l_idx.append(np.concatenate([[j], rows[below]]))
        l_val.append(np.concatenate([unit, vals[below]]))
        u_idx.append(rows[upto])
        u_val.append(vals[upto])
        l_indptr[j + 1] = l_indptr[j] + l_idx[-1].size
        u_indptr[j + 1] = u_indptr[j] + u_idx[-1].size
    l = CSCMatrix(
        diag.shape,
        l_indptr,
        np.concatenate(l_idx) if l_idx else np.zeros(0, np.int64),
        np.concatenate(l_val) if l_val else np.zeros(0, dtype=data.dtype),
        check=False,
    )
    u = CSCMatrix(
        diag.shape,
        u_indptr,
        np.concatenate(u_idx) if u_idx else np.zeros(0, np.int64),
        np.concatenate(u_val) if u_val else np.zeros(0, dtype=data.dtype),
        check=False,
    )
    return l, u


def csc_to_csr_arrays(
    m: CSCMatrix,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(indptr, col_indices, data)`` of the CSR form of ``m``."""
    t = m.transpose()
    return t.indptr, t.indices, t.data


def solve_levels(l_csr_indptr: np.ndarray, l_csr_cols: np.ndarray, n: int) -> list[np.ndarray]:
    """Level sets of a lower-triangular solve DAG given CSR of strict-L.

    ``level[r] = 1 + max(level[c])`` over the strictly-lower columns ``c``
    in row ``r``; rows with no dependencies are level 0.  Returns the rows
    grouped per level — rows within one level can be solved in parallel
    (the paper's "un-sync row" parallelisation).
    """
    level = np.zeros(n, dtype=np.int64)
    for r in range(n):
        cols = l_csr_cols[l_csr_indptr[r] : l_csr_indptr[r + 1]]
        cols = cols[cols < r]
        if cols.size:
            level[r] = int(level[cols].max()) + 1
    nlev = int(level.max()) + 1 if n else 0
    return [np.flatnonzero(level == d).astype(np.int64) for d in range(nlev)]
