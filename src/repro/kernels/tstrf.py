"""TSTRF — sparse upper-triangular solve ``X·U = B`` on a block row.

After GETRF factors the diagonal block ``D`` (upper triangle plus diagonal
= ``U``), TSTRF turns every block ``B`` in the same block *row* into the
corresponding block of ``L`` by solving ``X·U = B`` in place.

A right solve against upper-triangular ``U`` is a left solve against the
non-unit lower-triangular ``U^T``: the sparse variants transpose the block,
run a forward substitution mirror of the GESSM variants, and transpose
back; the dense variants sweep columns of ``U`` directly.

The five variants follow Table 1 of the paper (same addressing split as
GESSM: merge / direct / bin-search / level-scheduled rows / compiled).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..sparse.csc import CSCMatrix
from .base import (
    SingularBlockError,
    Workspace,
    csc_to_csr_arrays,
    gather_dense,
    scatter_dense,
    solve_levels,
    split_lu,
)

__all__ = [
    "tstrf_c_v1",
    "tstrf_c_v2",
    "tstrf_g_v1",
    "tstrf_g_v2",
    "tstrf_g_v3",
    "TSTRF_VARIANTS",
]


def _upper_transposed(diag: CSCMatrix) -> CSCMatrix:
    """``U^T`` (non-unit lower triangular) of a factored diagonal block."""
    _, u = split_lu(diag)
    return u.transpose()


def _forward_solve_nonunit(
    ut: CSCMatrix, bt: CSCMatrix, *, addressing: str
) -> None:
    """In-place forward substitution ``U^T · X = B^T`` on transposed blocks.

    ``addressing`` selects how update targets are located: ``"merge"``
    (sorted-list intersection) or ``"binsearch"`` (binary search), the two
    sparse methods of Table 1.
    """
    ut_indptr, ut_indices, ut_data = ut.indptr, ut.indices, ut.data
    for c in range(bt.ncols):
        sl = bt.col_slice(c)
        rows_c = bt.indices[sl]
        vals_c = bt.data[sl]
        for p in range(rows_c.size):
            t = int(rows_c[p])
            lo, hi = int(ut_indptr[t]), int(ut_indptr[t + 1])
            urows = ut_indices[lo:hi]
            uvals = ut_data[lo:hi]
            # diagonal of U^T column t is its first entry (smallest row = t)
            if urows.size == 0 or urows[0] != t or uvals[0] == 0.0:
                raise SingularBlockError(f"zero/missing U diagonal at {t}")
            xt = vals_c[p] / uvals[0]
            vals_c[p] = xt
            if xt == 0.0 or urows.size == 1:
                continue
            l_rows = urows[1:]
            l_vals = uvals[1:]
            if addressing == "merge":
                common, pos_l, pos_c = np.intersect1d(
                    l_rows, rows_c, assume_unique=True, return_indices=True
                )
                if common.size:
                    vals_c[pos_c] -= l_vals[pos_l] * xt
            else:
                pos = np.searchsorted(rows_c, l_rows)
                valid = pos < rows_c.size
                np.minimum(pos, rows_c.size - 1, out=pos)
                valid &= rows_c[pos] == l_rows
                vals_c[pos[valid]] -= l_vals[valid] * xt


def tstrf_c_v1(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Merge-addressed row solve (CPU V1): transpose, merge-forward-solve,
    transpose back."""
    ut = _upper_transposed(diag)
    bt = b.transpose()
    _forward_solve_nonunit(ut, bt, addressing="merge")
    b.data[...] = bt.transpose().data


def tstrf_c_v2(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Dense-mapped column sweep (CPU V2, "Direct").

    Works on ``B`` directly: columns of ``U`` are processed left to right;
    each solved column of ``X`` immediately updates the later columns.
    """
    n, m = b.shape  # b is n-rows tall, m = diag order? no: X U = B, U m×m
    w = ws.dense("a", (n, m), b.data.dtype)
    scatter_dense(b, w)
    data = diag.data
    for c in range(m):
        sl = diag.col_slice(c)
        rows = diag.indices[sl]
        vals = data[sl]
        upto = int(np.searchsorted(rows, c))
        if upto >= rows.size or rows[upto] != c or vals[upto] == 0.0:
            raise SingularBlockError(f"zero/missing U diagonal at {c}")
        above = rows[:upto]
        if above.size:
            w[:, c] -= w[:, above] @ vals[:upto]
        w[:, c] /= vals[upto]
    gather_dense(b, w)


def tstrf_g_v1(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Bin-search row solve (GPU V1, "warp-level column")."""
    ut = _upper_transposed(diag)
    bt = b.transpose()
    _forward_solve_nonunit(ut, bt, addressing="binsearch")
    b.data[...] = bt.transpose().data


def tstrf_g_v2(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Level-scheduled solve (GPU V2, "un-sync warp-level row").

    Builds the level sets of the ``U^T`` solve DAG and processes levels on
    a dense panel of ``B^T``.
    """
    ut = _upper_transposed(diag)
    n = ut.ncols
    m = b.nrows
    indptr, cols, vals = csc_to_csr_arrays(ut)
    levels = solve_levels(indptr, cols, n)
    # dense panel of B^T: shape (n, m)
    w = ws.dense("a", (n, m), b.data.dtype)
    rows_b, cols_b = b.rows_cols()
    w[cols_b, rows_b] = b.data
    for lev in levels:
        for r in lev:
            r = int(r)
            sl = slice(int(indptr[r]), int(indptr[r + 1]))
            cs = cols[sl]
            vv = vals[sl]
            strict = cs < r
            if strict.any():
                w[r, :] -= vv[strict] @ w[cs[strict], :]
            dpos = int(np.searchsorted(cs, r))
            if dpos >= cs.size or cs[dpos] != r or vv[dpos] == 0.0:
                raise SingularBlockError(f"zero/missing U diagonal at {r}")
            w[r, :] /= vv[dpos]
    b.data[...] = w[cols_b, rows_b]


def tstrf_g_v3(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Compiled dense-panel solve (GPU V3): SciPy triangular solve on
    ``U^T · X^T = B^T``."""
    ut = _upper_transposed(diag)
    n = ut.ncols
    m = b.nrows
    w = ws.dense("a", (n, m), b.data.dtype)
    rows_b, cols_b = b.rows_cols()
    w[cols_b, rows_b] = b.data
    ut_csr = sp.csc_matrix(
        (ut.data, ut.indices, ut.indptr), shape=ut.shape
    ).tocsr()
    x = spla.spsolve_triangular(ut_csr, w, lower=True, unit_diagonal=False)
    b.data[...] = x[cols_b, rows_b]


TSTRF_VARIANTS = {
    "C_V1": tstrf_c_v1,
    "C_V2": tstrf_c_v2,
    "G_V1": tstrf_g_v1,
    "G_V2": tstrf_g_v2,
    "G_V3": tstrf_g_v3,
}
