"""COMPRESS kernel family + low-rank SSSSM variants.

The 18th kernel family of the registry (ROADMAP item 3): transition
kernels that move a panel block between its exact CSC form and the
low-rank :class:`~repro.sparse.blockrep.CompressedBlock` overlay, plus
the SSSSM variants that consume compressed operands at
``O((m + n) · rank)`` cost instead of the sparse-product cost.

Compression targets are the GESSM/TSTRF output panels — the near-dense
separator blocks of filled matrices that Zhu & Lai and Li & Liu show
are numerically low-rank.  The compress kernels run inside the same
write-lock window as the panel kernel that produced the block, so the
RaceChecker sees a single writer; the low-rank SSSSM kernels only
*read* the overlay and scatter into the target's stored pattern
(out-of-pattern mass is dropped and recovered by iterative refinement,
exactly like the drop-tolerance semantics of the sparse kernels).

All kernels here are deterministic (the randomised SVD draws a probe
seeded from the block shape) and dtype-generic: a float32 factor block
compresses and multiplies in float32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np
import scipy.sparse as sp

from ..sparse.blockrep import (
    CompressedBlock,
    lr_profit_cap,
    randomized_svd,
    truncated_svd,
)
from ..sparse.csc import CSCMatrix
from .base import Workspace

__all__ = [
    "CompressPolicy",
    "COMPRESS_VARIANTS",
    "LR_SSSSM_VARIANTS",
    "compress_svd_v1",
    "compress_rsvd_v1",
    "decompress_v1",
    "ssssm_lr_v1",
    "ssssm_lr_v2",
    "lr_ssssm_flops",
    "try_compress",
]


# ---------------------------------------------------------------------------
# policy


@dataclass(frozen=True)
class CompressPolicy:
    """Resolved compression settings handed to ``execute_task``.

    Built once per factorization by
    :func:`repro.core.numeric.resolve_compress` (``None`` when
    ``compress_tol == 0`` — the bit-identical default path never sees
    this object).  Frozen and picklable so distributed workers can
    reconstruct it from two scalars plus their local selector.

    ``tree`` is the ``KernelType.COMPRESS`` decision tree of the active
    selector (features: ``n`` = min block order, ``density``, ``rank``
    = profitable-rank estimate); ``None`` falls back to exact SVD.
    """

    tol: float
    min_order: int = 32
    tree: Any = field(default=None, compare=False)

    def version_for(self, feats) -> str:
        """Pick the compress-kernel version for one block's features."""
        if self.tree is None:
            return "SVD_V1"
        return self.tree.select(feats)


# ---------------------------------------------------------------------------
# COMPRESS transition kernels


def compress_svd_v1(
    blk: CSCMatrix, tol: float, max_rank: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Exact truncated-SVD compression of one CSC block.

    Returns ``(u, v)`` factors honouring the relative spectral bound
    ``‖blk − u vᵀ‖₂ ≤ tol · ‖blk‖₂`` with ``rank ≤ max_rank``, or
    ``None`` when no profitable rank meets the tolerance (the caller
    keeps the exact CSC form).  The dense staging array here is the
    unavoidable cost of a rank-revealing factorisation and lives only
    for the duration of the kernel.
    """
    return truncated_svd(blk.to_dense(), tol, max_rank)


def compress_rsvd_v1(
    blk: CSCMatrix, tol: float, max_rank: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Randomised-SVD compression (deterministic seeded range finder).

    Cheaper than :func:`compress_svd_v1` for large blocks with small
    profitable rank; same return contract and tolerance guarantee.
    """
    return randomized_svd(blk.to_dense(), tol, max_rank)


def decompress_v1(cb: CompressedBlock) -> np.ndarray:
    """Expand a compressed block back to a dense array.

    The *only* approved dense round-trip for a compressed block (the
    ``no-dense-roundtrip`` lint rule flags ``.dense()`` everywhere
    else).  Used by the refinement escalation path and by tests that
    check the tolerance bound.
    """
    return cb.dense()


def try_compress(
    blk: CSCMatrix, policy: CompressPolicy, feats=None
) -> CompressedBlock | None:
    """Apply ``policy`` to one exact block; ``None`` when not profitable.

    Enforces the two gates that make compression safe and worthwhile:
    the block order must reach ``min_order``, and the retained rank is
    capped at :func:`~repro.sparse.blockrep.lr_profit_cap` so the
    ``U``/``V`` payload is strictly smaller than the CSC values it
    stands in for (which is also what lets the arena pre-size its
    low-rank slab from the CSC capacity).
    """
    m, n = blk.shape
    if min(m, n) < policy.min_order:
        return None
    cap = lr_profit_cap(m, n, blk.nnz)
    if cap < 1:
        return None
    version = policy.version_for(feats) if feats is not None else "SVD_V1"
    kernel = COMPRESS_VARIANTS.get(version, compress_svd_v1)
    got = kernel(blk, policy.tol, cap)
    if got is None:
        return None
    u, v = got
    return CompressedBlock(shape=(m, n), u=u, v=v, src_nnz=blk.nnz)


# ---------------------------------------------------------------------------
# low-rank SSSSM


def lr_ssssm_flops(c_nnz: int, a, b) -> int:
    """Flop estimate for one low-rank Schur update ``C -= A @ B`` with
    at least one compressed operand — the quantity the ablation bench
    compares against :func:`~repro.kernels.ssssm.ssssm_flops`."""
    a_lr = isinstance(a, CompressedBlock)
    b_lr = isinstance(b, CompressedBlock)
    if a_lr and b_lr:
        ra, rb = a.rank, b.rank
        mid = 2 * ra * rb * a.ncols  # Vaᵀ @ Ub
        left = 2 * a.nrows * ra * rb  # Ua @ mid
        return mid + left + 2 * c_nnz * rb
    if a_lr:
        return 2 * b.nnz * a.rank + 2 * c_nnz * a.rank
    if b_lr:
        return 2 * a.nnz * b.rank + 2 * c_nnz * b.rank
    from .ssssm import ssssm_flops

    return ssssm_flops(a, b)


def ssssm_lr_v1(c: CSCMatrix, a, b, ws: Workspace) -> None:
    """Schur update ``C -= A @ B`` with one or two compressed operands.

    Never materialises a dense product: the update is assembled as a
    thin ``left @ right.T`` pair (``left (m, r)``, ``right (n, r)``)
    and scattered straight onto C's stored pattern via the COO index
    views — ``O((m + n) · r)`` storage, ``O(nnz(C) · r)`` scatter.
    Mass outside C's pattern is dropped (recovered by refinement).

    Handles every operand mix defensively; with two exact CSC operands
    it defers to the sparse ``ssssm_c_v2`` kernel so arbitrary callers
    cannot crash on an uncompressed pair.
    """
    a_lr = isinstance(a, CompressedBlock)
    b_lr = isinstance(b, CompressedBlock)
    if not a_lr and not b_lr:
        from .ssssm import ssssm_c_v2

        ssssm_c_v2(c, a, b, ws)
        return
    if c.nnz == 0:
        return
    if a_lr and b_lr:
        mid = a.v.T @ b.u  # (ra, rb) — the tiny core product
        left = a.u @ mid  # (m, rb)
        right = b.v  # (n, rb)
    elif a_lr:
        bsp = sp.csc_matrix((b.data, b.indices, b.indptr), shape=b.shape, copy=False)
        left = a.u  # (m, ra)
        right = bsp.T @ a.v  # (n, ra) == (Vaᵀ B)ᵀ, compiled sparse product
    else:
        asp = sp.csc_matrix((a.data, a.indices, a.indptr), shape=a.shape, copy=False)
        left = asp @ b.u  # (m, rb)
        right = b.v  # (n, rb)
    if left.shape[1] == 0:
        return
    rows, cols = c.rows_cols()
    c.data[...] -= np.einsum("er,er->e", left[rows], right[cols])


def ssssm_lr_v2(c: CSCMatrix, a, b, ws: Workspace) -> None:
    """Two-compressed-operand variant.

    Same scatter contract as :func:`ssssm_lr_v1`; registered separately
    so the selector tree (and the choice histograms the benches read)
    distinguish the one-operand and two-operand regimes.
    """
    ssssm_lr_v1(c, a, b, ws)


# ---------------------------------------------------------------------------
# registry tables (imported by kernels.registry — keep import-light)

COMPRESS_VARIANTS = {
    "SVD_V1": compress_svd_v1,
    "RSVD_V1": compress_rsvd_v1,
    "EXPAND_V1": decompress_v1,
}

LR_SSSSM_VARIANTS = {
    "LR_V1": ssssm_lr_v1,
    "LR_V2": ssssm_lr_v2,
}
