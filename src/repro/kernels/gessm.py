"""GESSM — sparse lower-triangular solve ``L·X = B`` on a block column.

After GETRF factors the diagonal block ``D`` (strict lower = unit-lower
``L``), GESSM turns every block ``B`` in the same block *column* into the
corresponding block of ``U`` by solving ``L·X = B`` in place.

The five variants follow Table 1 of the paper:

=======  ==========  ==========================  =============
version  addressing  parallelising method        dense mapping
=======  ==========  ==========================  =============
C_V1     Merge       column-wise                 no
C_V2     Direct      column-wise                 yes
G_V1     Bin-search  warp-level column           no
G_V2     Bin-search  un-sync warp-level row      no
G_V3     Direct      warp-level column           yes
=======  ==========  ==========================  =============
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..sparse.csc import CSCMatrix
from .base import (
    Workspace,
    csc_to_csr_arrays,
    gather_dense,
    scatter_dense,
    solve_levels,
    split_lu,
)

__all__ = [
    "gessm_c_v1",
    "gessm_c_v2",
    "gessm_g_v1",
    "gessm_g_v2",
    "gessm_g_v3",
    "GESSM_VARIANTS",
]


def _strict_lower_cols(diag: CSCMatrix, t: int) -> tuple[np.ndarray, np.ndarray]:
    """Row indices/values of the strictly-lower part of column ``t`` of a
    factored diagonal block (the ``L`` multipliers of pivot ``t``)."""
    sl = diag.col_slice(t)
    rows = diag.indices[sl]
    start = int(np.searchsorted(rows, t + 1))
    return rows[start:], diag.data[sl][start:]


def gessm_c_v1(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Merge-addressed column solve (CPU V1).

    Pure sparse forward substitution; update targets are located by merging
    the pivot's L-column index list with the B-column index list
    (``numpy.intersect1d`` on sorted-unique arrays).
    """
    for c in range(b.ncols):
        sl = b.col_slice(c)
        rows_c = b.indices[sl]
        vals_c = b.data[sl]
        for p in range(rows_c.size):
            xt = vals_c[p]
            if xt == 0.0:
                continue
            t = int(rows_c[p])
            l_rows, l_vals = _strict_lower_cols(diag, t)
            if l_rows.size == 0:
                continue
            common, pos_l, pos_c = np.intersect1d(
                l_rows, rows_c, assume_unique=True, return_indices=True
            )
            if common.size:
                vals_c[pos_c] -= l_vals[pos_l] * xt


def gessm_c_v2(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Dense-mapped column solve (CPU V2, "Direct").

    Scatters ``B`` into a dense panel and sweeps the pivots once, updating
    all right-hand-side columns simultaneously with vectorised rows.
    """
    n, m = b.shape
    w = ws.dense("a", (n, m), b.data.dtype)
    scatter_dense(b, w)
    for t in range(n):
        xt = w[t, :]
        l_rows, l_vals = _strict_lower_cols(diag, t)
        if l_rows.size:
            w[l_rows, :] -= np.outer(l_vals, xt)
    gather_dense(b, w)


def gessm_g_v1(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Bin-search column solve (GPU V1, "warp-level column").

    Like :func:`gessm_c_v1` but targets are located with ``searchsorted``
    into the B column's pattern (binary search rather than a full merge) —
    cheaper when the L columns are much shorter than the B columns.
    """
    for c in range(b.ncols):
        sl = b.col_slice(c)
        rows_c = b.indices[sl]
        vals_c = b.data[sl]
        for p in range(rows_c.size):
            xt = vals_c[p]
            if xt == 0.0:
                continue
            t = int(rows_c[p])
            l_rows, l_vals = _strict_lower_cols(diag, t)
            if l_rows.size == 0:
                continue
            pos = np.searchsorted(rows_c, l_rows)
            valid = pos < rows_c.size
            np.minimum(pos, rows_c.size - 1, out=pos)
            valid &= rows_c[pos] == l_rows
            vals_c[pos[valid]] -= l_vals[valid] * xt


def gessm_g_v2(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Level-scheduled row solve (GPU V2, "un-sync warp-level row").

    Computes the level sets of the triangular-solve DAG of ``L`` and
    processes one level at a time on a dense panel; rows inside a level
    are independent (this is the synchronisation-free row algorithm of
    SFLU applied to the solve).
    """
    n, m = b.shape
    l, _ = split_lu(diag)
    indptr, cols, vals = csc_to_csr_arrays(l)
    levels = solve_levels(indptr, cols, n)
    w = ws.dense("a", (n, m), b.data.dtype)
    scatter_dense(b, w)
    for lev in levels:
        for r in lev:
            r = int(r)
            sl = slice(int(indptr[r]), int(indptr[r + 1]))
            cs = cols[sl]
            strict = cs < r
            if strict.any():
                w[r, :] -= vals[sl][strict] @ w[cs[strict], :]
    gather_dense(b, w)


def gessm_g_v3(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Compiled dense-panel solve (GPU V3, "Direct warp-level column").

    Offloads to SciPy's compiled sparse triangular solve on a dense
    right-hand side — the analogue of handing the panel to a vendor
    library: a conversion/launch overhead up front, the highest throughput
    on large dense-ish panels.
    """
    n, m = b.shape
    l, _ = split_lu(diag)
    w = ws.dense("a", (n, m), b.data.dtype)
    scatter_dense(b, w)
    lc = sp.csr_matrix(
        (l.data, l.indices, l.indptr), shape=l.shape
    ).T.tocsr()  # CSC arrays reinterpreted then transposed -> true CSR of L
    x = spla.spsolve_triangular(lc, w, lower=True, unit_diagonal=True)
    gather_dense(b, x)


GESSM_VARIANTS = {
    "C_V1": gessm_c_v1,
    "C_V2": gessm_c_v2,
    "G_V1": gessm_g_v1,
    "G_V2": gessm_g_v2,
    "G_V3": gessm_g_v3,
}
