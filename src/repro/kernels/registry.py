"""Kernel registry: the 17 sparse kernel variants of Table 1.

Each variant is addressed as ``(KernelType, version)`` — e.g.
``(KernelType.SSSSM, "G_V1")``.  Versions starting with ``C_`` are the
CPU-class algorithms (pure sparse loops, merge addressing); versions
starting with ``G_`` are the GPU-class algorithms (throughput-oriented:
dense workspaces, level scheduling, compiled offload).  The distinction
feeds the heterogeneous cost model in :mod:`repro.runtime.costmodel`.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from .getrf import GETRF_VARIANTS
from .gessm import GESSM_VARIANTS
from .ssssm import SSSSM_VARIANTS
from .tstrf import TSTRF_VARIANTS

__all__ = [
    "KernelType",
    "KERNEL_REGISTRY",
    "kernel_names",
    "get_kernel",
    "is_gpu_version",
    "plan_capable",
]


class KernelType(enum.Enum):
    """The four block-kernel roles of PanguLU's numeric factorisation."""

    GETRF = "GETRF"   # diagonal-block LU
    GESSM = "GESSM"   # lower triangular solve (block column of U)
    TSTRF = "TSTRF"   # upper triangular solve (block row of L)
    SSSSM = "SSSSM"   # sparse-sparse Schur update

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.value


KERNEL_REGISTRY: dict[KernelType, dict[str, Callable]] = {
    KernelType.GETRF: dict(GETRF_VARIANTS),
    KernelType.GESSM: dict(GESSM_VARIANTS),
    KernelType.TSTRF: dict(TSTRF_VARIANTS),
    KernelType.SSSSM: dict(SSSSM_VARIANTS),
}


def kernel_names() -> list[tuple[KernelType, str]]:
    """All 17 ``(type, version)`` pairs, in Table 1 order."""
    return [
        (ktype, version)
        for ktype, versions in KERNEL_REGISTRY.items()
        for version in versions
    ]


def get_kernel(ktype: KernelType, version: str) -> Callable:
    """Look up a kernel implementation; raises ``KeyError`` with the list of
    valid versions on a miss."""
    versions = KERNEL_REGISTRY[ktype]
    try:
        return versions[version]
    except KeyError:
        raise KeyError(
            f"{ktype} has no version {version!r}; valid: {sorted(versions)}"
        ) from None


def is_gpu_version(version: str) -> bool:
    """True for the GPU-class (throughput-oriented) variants."""
    return version.startswith("G_")


def plan_capable(ktype: KernelType, version: str) -> bool:
    """True when the variant has a fixed-pattern execution plan that
    reproduces its arithmetic bit-for-bit (see :mod:`repro.kernels.plans`)."""
    from .plans import PLANNABLE_VERSIONS  # deferred: plans imports this module

    return version in PLANNABLE_VERSIONS[ktype]
