"""Kernel registry: the 17 sparse kernel variants of Table 1, plus the
low-rank extension family.

Each variant is addressed as ``(KernelType, version)`` — e.g.
``(KernelType.SSSSM, "G_V1")``.  Versions starting with ``C_`` are the
CPU-class algorithms (pure sparse loops, merge addressing); versions
starting with ``G_`` are the GPU-class algorithms (throughput-oriented:
dense workspaces, level scheduling, compiled offload).  The distinction
feeds the heterogeneous cost model in :mod:`repro.runtime.costmodel`.

Beyond Table 1, the compressed-block layer (ROADMAP item 3) adds a
fifth family — ``COMPRESS`` transition kernels (truncated/randomised
SVD and the approved decompress) — and two low-rank SSSSM versions
(``LR_V1``/``LR_V2``) that consume :class:`~repro.sparse.blockrep.
CompressedBlock` operands at ``O((m + n) · rank)`` cost.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from .compress import COMPRESS_VARIANTS, LR_SSSSM_VARIANTS
from .getrf import GETRF_VARIANTS
from .gessm import GESSM_VARIANTS
from .ssssm import SSSSM_VARIANTS
from .tstrf import TSTRF_VARIANTS

__all__ = [
    "KernelType",
    "KERNEL_REGISTRY",
    "kernel_names",
    "get_kernel",
    "is_gpu_version",
    "plan_capable",
]


class KernelType(enum.Enum):
    """The four block-kernel roles of PanguLU's numeric factorisation."""

    GETRF = "GETRF"   # diagonal-block LU
    GESSM = "GESSM"   # lower triangular solve (block column of U)
    TSTRF = "TSTRF"   # upper triangular solve (block row of L)
    SSSSM = "SSSSM"   # sparse-sparse Schur update
    COMPRESS = "COMPRESS"  # low-rank representation transitions

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.value


KERNEL_REGISTRY: dict[KernelType, dict[str, Callable]] = {
    KernelType.GETRF: dict(GETRF_VARIANTS),
    KernelType.GESSM: dict(GESSM_VARIANTS),
    KernelType.TSTRF: dict(TSTRF_VARIANTS),
    KernelType.SSSSM: dict(SSSSM_VARIANTS) | dict(LR_SSSSM_VARIANTS),
    KernelType.COMPRESS: dict(COMPRESS_VARIANTS),
}


def kernel_names() -> list[tuple[KernelType, str]]:
    """All 22 ``(type, version)`` pairs: the 17 of Table 1 in table
    order, then the low-rank SSSSM versions and the COMPRESS family."""
    return [
        (ktype, version)
        for ktype, versions in KERNEL_REGISTRY.items()
        for version in versions
    ]


def get_kernel(ktype: KernelType, version: str) -> Callable:
    """Look up a kernel implementation; raises ``KeyError`` with the list of
    valid versions on a miss."""
    versions = KERNEL_REGISTRY[ktype]
    try:
        return versions[version]
    except KeyError:
        raise KeyError(
            f"{ktype} has no version {version!r}; valid: {sorted(versions)}"
        ) from None


def is_gpu_version(version: str) -> bool:
    """True for the GPU-class (throughput-oriented) variants."""
    return version.startswith("G_")


def plan_capable(ktype: KernelType, version: str) -> bool:
    """True when the variant has a fixed-pattern execution plan that
    reproduces its arithmetic bit-for-bit (see :mod:`repro.kernels.plans`)."""
    from .plans import PLANNABLE_VERSIONS  # deferred: plans imports this module

    return version in PLANNABLE_VERSIONS.get(ktype, ())
