"""Triangular-solve kernels — the phase-5 analogues of Table 1.

The scheduler-driven triangular solve (see :mod:`repro.core.tsolve_dag`)
executes two kernel roles over RHS *segments* of the block layout:

* ``diagf_*`` / ``diagb_*`` — within-block substitutions with a factored
  diagonal block: unit-lower forward (``y ← L⁻¹ y``) and upper backward
  (``x ← U⁻¹ x``);
* ``updf_*`` / ``updb_*`` — off-diagonal mat-vec updates
  (``tgt −= blk · src``) over stored entries only, pushing a solved
  segment through an ``L`` (forward) or ``U`` (backward) block.

All four accept a vector segment or a 2-D multi-RHS panel and write only
their designated output segment (``diagf``/``diagb``: second parameter,
``updf``/``updb``: first), the convention the ``kernel-purity`` lint rule
enforces.  The scatter addressing of the update kernels (the expanded
column index of every stored entry) depends only on the block pattern, so
it can be precomputed once per block as a :class:`SpMVPlan` and reused
across every solve and every right-hand side — the phase-5 counterpart of
the factorisation's fixed-pattern execution plans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csc import CSCMatrix

__all__ = [
    "SpMVPlan",
    "build_spmv_plan",
    "diagf_seg",
    "diagb_seg",
    "updf_seg",
    "updb_seg",
]


@dataclass(frozen=True)
class SpMVPlan:
    """Fixed-pattern scatter addressing of one off-diagonal update block.

    ``cols[e]`` is the local column of the block's ``e``-th stored entry —
    the ``np.repeat`` expansion of the CSC column pointer, hoisted out of
    the per-solve hot path.  Patterns are immutable after symbolic
    factorisation, so a plan stays valid for the life of the structure
    (including across :meth:`~repro.core.solver.Factorization.refactorize`).
    """

    cols: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.cols.nbytes)


def build_spmv_plan(blk: CSCMatrix) -> SpMVPlan:
    """Precompute the entry-to-column expansion of a block's pattern."""
    return SpMVPlan(
        cols=np.repeat(
            np.arange(blk.ncols, dtype=np.int64), np.diff(blk.indptr)
        )
    )


def diagf_seg(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← L⁻¹ y`` with the unit-lower part of a factored
    diagonal block.  ``y`` may be a vector or a 2-D multi-RHS panel."""
    n = diag.ncols
    data = diag.data
    multi = y.ndim == 2
    for j in range(n):
        yj = y[j]
        if not (yj.any() if multi else yj != 0.0):
            continue
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        start = int(np.searchsorted(rows, j + 1))
        if start < rows.size:
            if multi:
                y[rows[start:]] -= np.outer(data[sl][start:], yj)
            else:
                y[rows[start:]] -= data[sl][start:] * yj


def diagb_seg(diag: CSCMatrix, x: np.ndarray) -> None:
    """In-place ``x ← U⁻¹ x`` with the upper part (incl. diagonal) of a
    factored diagonal block.  ``x`` may be a vector or a 2-D panel."""
    n = diag.ncols
    data = diag.data
    multi = x.ndim == 2
    for j in range(n - 1, -1, -1):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        vals = data[sl]
        dpos = int(np.searchsorted(rows, j))
        if dpos >= rows.size or rows[dpos] != j or vals[dpos] == 0.0:
            raise ZeroDivisionError(f"zero or missing U diagonal at {j}")
        x[j] /= vals[dpos]
        xj = x[j]
        if dpos > 0 and (xj.any() if multi else xj != 0.0):
            if multi:
                x[rows[:dpos]] -= np.outer(vals[:dpos], xj)
            else:
                x[rows[:dpos]] -= vals[:dpos] * xj


def updf_seg(
    tgt: np.ndarray,
    blk: CSCMatrix,
    src: np.ndarray,
    plan: SpMVPlan | None = None,
) -> None:
    """``tgt −= blk @ src`` over stored entries only (vector or panel):
    the forward-sweep push of a solved segment through an ``L`` block."""
    cols = (
        plan.cols
        if plan is not None
        else np.repeat(np.arange(blk.ncols), np.diff(blk.indptr))
    )
    if src.ndim == 2:
        np.subtract.at(tgt, blk.indices, blk.data[:, None] * src[cols])
    else:
        np.subtract.at(tgt, blk.indices, blk.data * src[cols])


def updb_seg(
    tgt: np.ndarray,
    blk: CSCMatrix,
    src: np.ndarray,
    plan: SpMVPlan | None = None,
) -> None:
    """``tgt −= blk @ src`` over stored entries only: the backward-sweep
    push of a solved segment through a ``U`` block.  Identical arithmetic
    to :func:`updf_seg` — kept as its own role so each task kind names
    the kernel it runs (trace categories, lint conventions)."""
    updf_seg(tgt, blk, src, plan)
