"""Fixed-pattern execution plans: precomputed scatter addressing.

The paper's central performance argument is that every numeric kernel
writes only inside a *fixed, preallocated* symbolic pattern (fill closure
guarantees each product term a destination slot).  The sparse kernel
variants nevertheless *rediscover* that pattern on every invocation —
per-entry Python loops with a ``numpy.searchsorted`` (bin-search
addressing) or ``numpy.intersect1d`` (merge addressing) per pivot.  Since
patterns never change after symbolic factorisation, all of that address
arithmetic can be done **once per block (pair/triple)** and amortised
across the numeric phase — in particular across the refactorisations of
Newton/time-stepping loops, the workload PanguLU's introduction
motivates.

A *plan* is a set of flattened ``int64`` index arrays mapping source
entries directly to destination ``data`` slots:

* :class:`SSSSMPlan` — one ``(src_a, src_b, dst)`` triple per structural
  product term of ``C ← C − A·B``; execution is a single elementwise
  multiply plus one ``np.subtract.at`` scatter.
* :class:`SolvePlan` — the solve order of GESSM/TSTRF (one step per
  pivot entry) with per-step update targets and, for TSTRF, the divisor
  index and the transpose gather permutation.
* :class:`GETRFPlan` — the left-looking column/pivot schedule of the
  sparse GETRF variants with per-step source/target index segments.

Plans replicate the *exact* floating-point operation sequence of the
sparse kernel variants they replace (same products, same order, same
structural-validity masking), so planned execution is bit-identical to
the unplanned kernels — asserted by ``tests/test_plans.py``.  Only the
sparse-addressing variants are plannable (see :data:`PLANNABLE_VERSIONS`);
the dense-mapped and compiled variants already run at vendor-library
speed and use different summation orders.

Plans are built lazily on first use and cached in a :class:`PlanCache`
keyed by the storage slots of the participating blocks (patterns are
immutable post-symbolic), shared by all three engines — sequential
:func:`repro.core.numeric.factorize`, the threaded executor, and the
distributed executor — and accounted by :func:`repro.core.memory.memory_report`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..sparse.csc import CSCMatrix
from .base import SingularBlockError
from .getrf import _fix_pivot
from .registry import KernelType

__all__ = [
    "SSSSMPlan",
    "SolvePlan",
    "GETRFPlan",
    "PlanCache",
    "PLANNABLE_VERSIONS",
    "build_ssssm_plan",
    "run_ssssm_plan",
    "rebase_ssssm_plan",
    "run_ssssm_plan_arena",
    "build_gessm_plan",
    "run_gessm_plan",
    "build_tstrf_plan",
    "run_tstrf_plan",
    "build_getrf_plan",
    "run_getrf_plan",
]

# registered for the `lock-discipline` lint rule: the plan dict is only
# written under the cache lock (reads stay lock-free — see PlanCache.get)
__guarded_by__ = {
    "self._lock": ("self._plans", "self.builds"),
}

#: Kernel versions whose numeric behaviour a plan reproduces exactly.
#: Dense-mapped (``C_V1`` GEMM, ``C_V2``/``G_V3`` panels) and compiled
#: (``G_V1`` SpGEMM, ``G_V3`` solves) variants use different summation
#: orders and stay unplanned.
PLANNABLE_VERSIONS: dict[KernelType, frozenset[str]] = {
    KernelType.GETRF: frozenset({"G_V1", "G_V2"}),
    KernelType.GESSM: frozenset({"C_V1", "G_V1"}),
    KernelType.TSTRF: frozenset({"C_V1", "G_V1"}),
    KernelType.SSSSM: frozenset({"C_V2", "G_V2"}),
}


# ----------------------------------------------------------------------
# SSSSM — Schur update scatter maps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SSSSMPlan:
    """Flattened scatter map for ``C ← C − A·B``.

    ``c.data[dst[i]] -= a.data[src_a[i]] * b.data[src_b[i]]`` applied in
    order — exactly the operation sequence of ``ssssm_c_v2``.
    """

    src_a: np.ndarray
    src_b: np.ndarray
    dst: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.src_a.nbytes + self.src_b.nbytes + self.dst.nbytes


def _flatten_segments(
    seg_start: np.ndarray, seg_count: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten variable-length index ranges ``[start, start+count)``.

    Returns ``(owner, flat)`` where ``flat`` concatenates the ranges in
    order and ``owner[i]`` is the segment that produced ``flat[i]`` —
    the vectorised equivalent of a loop of ``arange`` concatenations.
    """
    total = int(seg_count.sum())
    owner = np.repeat(np.arange(seg_count.size, dtype=np.int64), seg_count)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(seg_count) - seg_count, seg_count
    )
    return owner, np.repeat(seg_start, seg_count) + offs


def _colkeys(indptr: np.ndarray, indices: np.ndarray, nrows: int) -> np.ndarray:
    """Globally-sorted ``column * nrows + row`` keys of a CSC pattern.

    Sorted-unique rows per column make this strictly increasing across
    the whole array, so one global binary search replaces a per-column
    one — the locate step of every plan build.
    """
    cols = np.repeat(
        np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr)
    )
    return cols * nrows + indices


def _locate(keys: np.ndarray, tgt_key: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Positions of ``keys`` in the sorted ``tgt_key`` plus a validity
    mask — the same structural masking as the bin-search kernels."""
    pos = np.searchsorted(tgt_key, keys)
    valid = pos < tgt_key.size
    np.minimum(pos, max(tgt_key.size - 1, 0), out=pos)
    if tgt_key.size:
        valid &= tgt_key[pos] == keys
    else:
        valid[:] = False
    return pos, valid


def build_ssssm_plan(
    c: CSCMatrix, a: CSCMatrix, b: CSCMatrix, *, entry_limit: int | None = None
) -> SSSSMPlan | None:
    """Precompute the scatter map of the structural product ``A·B`` into
    ``C``'s fixed pattern.

    Returns ``None`` when the map would exceed ``entry_limit`` entries
    (the caller falls back to unplanned execution) — a memory valve for
    near-dense products whose plan would rival the factors in size.
    """
    a_colnnz = np.diff(a.indptr)
    counts = a_colnnz[b.indices]
    total = int(counts.sum())
    if entry_limit is not None and total > entry_limit:
        return None
    empty = np.zeros(0, dtype=np.int64)
    if total == 0:
        return SSSSMPlan(src_a=empty, src_b=empty, dst=empty)
    # one flat entry per product term, in ssssm_c_v2 loop order:
    # B entries column-major, then the A[:, t] column for each
    src_b, src_a = _flatten_segments(a.indptr[:-1][b.indices], counts)
    b_cols = np.repeat(np.arange(b.ncols, dtype=np.int64), np.diff(b.indptr))
    keys = b_cols[src_b] * c.nrows + a.indices[src_a]
    pos, valid = _locate(keys, _colkeys(c.indptr, c.indices, c.nrows))
    if valid.all():
        return SSSSMPlan(src_a=src_a, src_b=src_b, dst=pos)
    return SSSSMPlan(src_a=src_a[valid], src_b=src_b[valid], dst=pos[valid])


def run_ssssm_plan(plan: SSSSMPlan, c: CSCMatrix, a: CSCMatrix, b: CSCMatrix) -> None:
    """Execute a planned Schur update: one multiply, one ordered scatter."""
    prod = a.data[plan.src_a]
    prod *= b.data[plan.src_b]
    np.subtract.at(c.data, plan.dst, prod)


def rebase_ssssm_plan(
    plan: SSSSMPlan | None, a_off: int, b_off: int, c_off: int
) -> SSSSMPlan | None:
    """Translate a block-local scatter map into **arena-global** offsets.

    On the arena layout every block's ``data`` is a view into one shared
    value slab; adding each block's slab offset to the plan's index arrays
    yields a plan that addresses the slab directly
    (:func:`run_ssssm_plan_arena`), skipping the three per-call view
    lookups.  The indexing order is unchanged, so execution remains
    bit-identical to the view-based form.  ``None`` (a declined plan)
    passes through.
    """
    if plan is None:
        return None
    return SSSSMPlan(
        src_a=plan.src_a + a_off,
        src_b=plan.src_b + b_off,
        dst=plan.dst + c_off,
    )


def run_ssssm_plan_arena(plan: SSSSMPlan, data: np.ndarray) -> None:
    """Execute an offset-rebased Schur update directly on the value slab."""
    prod = data[plan.src_a]
    prod *= data[plan.src_b]
    np.subtract.at(data, plan.dst, prod)


# ----------------------------------------------------------------------
# GESSM / TSTRF — planned triangular solves
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolvePlan:
    """Solve-order plan of a block triangular solve.

    One *step* per pivot entry of the right-hand-side block (in solve
    order).  Step ``i`` reads ``x_t`` at ``work[piv[i]]``, divides by
    ``diag.data[div[i]]`` when ``div`` is present (TSTRF's non-unit
    diagonal), and applies ``work[dst[s:e]] -= diag.data[src[s:e]] * x_t``
    with ``s, e = seg_ptr[i], seg_ptr[i+1]``.  ``gather`` (TSTRF only) is
    the permutation taking ``b.data`` into the transposed work order.
    """

    piv: np.ndarray
    seg_ptr: np.ndarray
    dst: np.ndarray
    src: np.ndarray
    div: np.ndarray | None = None
    gather: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        n = self.piv.nbytes + self.seg_ptr.nbytes + self.dst.nbytes + self.src.nbytes
        if self.div is not None:
            n += self.div.nbytes
        if self.gather is not None:
            n += self.gather.nbytes
        return n


def _upper_counts(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per column, the number of entries with ``row <= column``.

    Rows are sorted within a column, so these are the leading entries:
    ``indptr[:-1] + _upper_counts(...)`` is the start of each column's
    strict-lower segment.
    """
    n = indptr.size - 1
    cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    return np.bincount(cols[indices <= cols], minlength=n)


def _plan_steps(
    step_t: np.ndarray,
    step_col: np.ndarray,
    src_start: np.ndarray,
    src_end: np.ndarray,
    src_indices: np.ndarray,
    tgt_key: np.ndarray,
    tgt_nrows: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve the update targets of a batch of solve steps at once.

    Step ``i`` eliminates pivot ``step_t[i]`` from target column
    ``step_col[i]``: each source entry ``src_start[t]:src_end[t]`` is
    bin-searched into the target pattern (global keys, same validity
    masking as the sparse kernels).  Returns ``(src, dst, seg)`` — the
    flattened valid source/destination indices in step order plus the
    per-step segment lengths.
    """
    counts = src_end[step_t] - src_start[step_t]
    step_idx, src_flat = _flatten_segments(src_start[step_t], counts)
    keys = step_col[step_idx] * tgt_nrows + src_indices[src_flat]
    pos, valid = _locate(keys, tgt_key)
    seg = np.bincount(step_idx[valid], minlength=step_t.size)
    return src_flat[valid], pos[valid], seg


def build_gessm_plan(diag: CSCMatrix, b: CSCMatrix) -> SolvePlan:
    """Plan the forward solve ``L·X = B`` (unit-lower ``L`` from the
    factored diagonal block).

    One candidate step per entry of ``B`` in data order; update targets
    are resolved once with the same bin-search + validity masking as
    ``gessm_g_v1``, and steps with no targets are dropped (they are
    no-ops — GESSM has no division).
    """
    l_start = diag.indptr[:-1] + _upper_counts(diag.indptr, diag.indices)
    step_t = b.indices.astype(np.int64, copy=False)
    b_cols = np.repeat(np.arange(b.ncols, dtype=np.int64), np.diff(b.indptr))
    src, dst, seg = _plan_steps(
        step_t, b_cols, l_start, diag.indptr[1:], diag.indices,
        _colkeys(b.indptr, b.indices, b.nrows), b.nrows,
    )
    keep = np.flatnonzero(seg > 0)
    seg_ptr = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(seg[keep], out=seg_ptr[1:])
    return SolvePlan(piv=keep, seg_ptr=seg_ptr, dst=dst, src=src)


def run_gessm_plan(plan: SolvePlan, diag: CSCMatrix, b: CSCMatrix) -> None:
    """Execute a planned GESSM solve in place on ``b.data``."""
    data = b.data
    dd = diag.data
    piv, seg_ptr, dst, src = plan.piv, plan.seg_ptr, plan.dst, plan.src
    for i in range(piv.size):
        xt = data[piv[i]]
        if xt == 0.0:
            continue
        s, e = seg_ptr[i], seg_ptr[i + 1]
        data[dst[s:e]] -= dd[src[s:e]] * xt


def _upper_transposed_map(diag: CSCMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Structural ``U^T`` of a factored diagonal block, as index maps.

    Returns ``(indptr, indices, tau)`` where column ``t`` of ``U^T``
    holds rows ``indices[indptr[t]:indptr[t+1]]`` and values
    ``diag.data[tau[indptr[t]:indptr[t+1]]]`` — the same entries, in the
    same order, as ``split_lu(diag)[1].transpose()``, but without copying
    any numeric data.
    """
    rows_d, cols_d = diag.rows_cols()
    upper = np.flatnonzero(rows_d <= cols_d)
    # U^T column = original row; within a column sorted by original column
    order = np.lexsort((cols_d[upper], rows_d[upper]))
    tau = upper[order]
    ut_cols = rows_d[tau]
    indptr = np.zeros(diag.ncols + 1, dtype=np.int64)
    np.add.at(indptr, ut_cols + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols_d[tau], tau


def build_tstrf_plan(diag: CSCMatrix, b: CSCMatrix) -> SolvePlan:
    """Plan the row solve ``X·U = B`` as the forward solve
    ``U^T·X^T = B^T`` of the transpose-based TSTRF variants.

    Every entry of ``B`` is a step (division by the ``U`` diagonal always
    happens); structurally missing diagonals raise at build time, exactly
    zero ones at run time.
    """
    ut_indptr, ut_indices, tau = _upper_transposed_map(diag)
    rows_b, cols_b = b.rows_cols()
    # permutation taking b.data into B^T (CSC-of-transpose) entry order
    gather = np.lexsort((cols_b, rows_b)).astype(np.int64)
    bt_cols = rows_b[gather]  # column of B^T per work entry, non-decreasing
    bt_rows = cols_b[gather]  # row of B^T per work entry
    # every U^T column a step touches must lead with its diagonal
    n = diag.ncols
    diag_ok = np.zeros(n, dtype=bool)
    nonempty = np.flatnonzero(ut_indptr[:-1] < ut_indptr[1:])
    diag_ok[nonempty] = ut_indices[ut_indptr[nonempty]] == nonempty
    if bt_rows.size and not diag_ok[bt_rows].all():
        t = int(bt_rows[~diag_ok[bt_rows]][0])
        raise SingularBlockError(f"zero/missing U diagonal at {t}")
    # one step per B^T entry, in work order; seg lengths may be zero
    src_flat, dst, seg = _plan_steps(
        bt_rows, bt_cols, ut_indptr[:-1] + 1, ut_indptr[1:], ut_indices,
        bt_cols * b.ncols + bt_rows, b.ncols,
    )
    seg_ptr = np.zeros(bt_rows.size + 1, dtype=np.int64)
    np.cumsum(seg, out=seg_ptr[1:])
    return SolvePlan(
        piv=np.arange(bt_rows.size, dtype=np.int64),
        seg_ptr=seg_ptr,
        dst=dst,
        src=tau[src_flat],
        div=tau[ut_indptr[:-1][bt_rows]],
        gather=gather,
    )


def run_tstrf_plan(plan: SolvePlan, diag: CSCMatrix, b: CSCMatrix) -> None:
    """Execute a planned TSTRF solve in place on ``b.data``."""
    dd = diag.data
    w = b.data[plan.gather]
    piv, div, seg_ptr = plan.piv, plan.div, plan.seg_ptr
    dst, src = plan.dst, plan.src
    for i in range(piv.size):
        uv = dd[div[i]]
        if uv == 0.0:
            raise SingularBlockError(f"zero/missing U diagonal (step {i})")
        xt = w[piv[i]] / uv
        w[piv[i]] = xt
        if xt == 0.0:
            continue
        s, e = seg_ptr[i], seg_ptr[i + 1]
        if e > s:
            w[dst[s:e]] -= dd[src[s:e]] * xt
    b.data[plan.gather] = w


# ----------------------------------------------------------------------
# GETRF — planned left-looking factorisation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GETRFPlan:
    """Left-looking schedule of the sparse GETRF variants.

    Column ``j`` runs the update steps ``col_step_ptr[j]`` to
    ``col_step_ptr[j+1]`` (each as in :class:`SolvePlan`), then fixes the
    pivot at ``data[diag_idx[j]]`` and divides the contiguous
    ``data[below_lo[j]:below_hi[j]]`` sub-diagonal segment.
    """

    col_step_ptr: np.ndarray
    piv: np.ndarray
    seg_ptr: np.ndarray
    dst: np.ndarray
    src: np.ndarray
    diag_idx: np.ndarray
    below_lo: np.ndarray
    below_hi: np.ndarray

    @property
    def nbytes(self) -> int:
        return (
            self.col_step_ptr.nbytes
            + self.piv.nbytes
            + self.seg_ptr.nbytes
            + self.dst.nbytes
            + self.src.nbytes
            + self.diag_idx.nbytes
            + self.below_lo.nbytes
            + self.below_hi.nbytes
        )


def build_getrf_plan(block: CSCMatrix) -> GETRFPlan:
    """Plan the sparse left-looking LU of a diagonal block.

    Mirrors ``getrf_g_v1``'s traversal: for each column, one step per
    factored upper entry ``t < j`` with precomputed source (column ``t``'s
    ``L`` segment) and destination (bin-searched into column ``j``'s
    pattern) indices.  Structurally missing pivots raise here, at plan
    time.
    """
    n = block.ncols
    indptr, indices = block.indptr, block.indices
    if indices.size == 0 and n:
        raise SingularBlockError("missing structural pivot at column 0")
    upper = _upper_counts(indptr, indices)
    diag_idx = indptr[:-1] + upper - 1
    bad = np.flatnonzero((upper == 0) | (indices[np.maximum(diag_idx, 0)] != np.arange(n)))
    if bad.size:
        raise SingularBlockError(f"missing structural pivot at column {int(bad[0])}")
    # one candidate step per strict-upper entry, in data (column-major)
    # order — the traversal order of getrf_g_v1
    rows_d = indices
    cols_d = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    strict = np.flatnonzero(rows_d < cols_d)
    step_t = rows_d[strict]
    step_col = cols_d[strict]
    src, dst, seg = _plan_steps(
        step_t, step_col, diag_idx + 1, indptr[1:], indices,
        _colkeys(indptr, indices, block.nrows), block.nrows,
    )
    keep = np.flatnonzero(seg > 0)
    seg_ptr = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(seg[keep], out=seg_ptr[1:])
    col_step_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(step_col[keep], minlength=n), out=col_step_ptr[1:])
    return GETRFPlan(
        col_step_ptr=col_step_ptr,
        piv=strict[keep],
        seg_ptr=seg_ptr,
        dst=dst,
        src=src,
        diag_idx=diag_idx,
        below_lo=diag_idx + 1,
        below_hi=indptr[1:].astype(np.int64, copy=False),
    )


def run_getrf_plan(
    plan: GETRFPlan, block: CSCMatrix, *, pivot_floor: float = 0.0
) -> int:
    """Execute a planned GETRF in place; returns the replaced-pivot count."""
    data = block.data
    scale = (float(np.abs(data).max()) if data.size else 0.0) or 1.0
    replaced = 0
    csp = plan.col_step_ptr
    piv, seg_ptr = plan.piv, plan.seg_ptr
    dst, src = plan.dst, plan.src
    for j in range(plan.diag_idx.size):
        for i in range(csp[j], csp[j + 1]):
            xt = data[piv[i]]
            if xt == 0.0:
                continue
            s, e = seg_ptr[i], seg_ptr[i + 1]
            data[dst[s:e]] -= data[src[s:e]] * xt
        dpos = plan.diag_idx[j]
        piv_v, rep = _fix_pivot(float(data[dpos]), pivot_floor, scale)
        replaced += rep
        data[dpos] = piv_v
        lo, hi = plan.below_lo[j], plan.below_hi[j]
        if hi > lo:
            data[lo:hi] /= piv_v
    return replaced


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
_MISSING = object()


class PlanCache:
    """Thread-safe lazy cache of execution plans, keyed by block slots.

    Patterns are immutable after symbolic factorisation, so a plan built
    for a ``(kernel role, block slots)`` key stays valid for the life of
    the block structure — including across :meth:`PanguLU.refactorize`
    calls, which re-inject values into the same pattern.

    Reads are lock-free (a dict read is atomic under the GIL); builds are
    raced optimistically and resolved with ``setdefault``, so two workers
    may occasionally build the same plan but never see a torn one.
    """

    def __init__(self, *, ssssm_entry_limit: int | None = 4_000_000) -> None:
        self._plans: dict = {}
        self._lock = threading.Lock()
        #: per-task cap on SSSSM scatter-map entries (memory valve)
        self.ssssm_entry_limit = ssssm_entry_limit
        #: number of builder invocations (≥ cache size; lets tests assert
        #: that refactorize reuses every plan instead of rebuilding)
        self.builds = 0

    def get(self, key, builder):
        """The cached plan for ``key``, building it via ``builder()`` on a
        miss.  A cached ``None`` (plan declined, e.g. over the entry
        limit) is returned as ``None`` without rebuilding."""
        plan = self._plans.get(key, _MISSING)
        if plan is not _MISSING:
            return plan
        plan = builder()
        with self._lock:
            self.builds += 1
            return self._plans.setdefault(key, plan)

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def nbytes(self) -> int:
        """Total index-array bytes held by the cached plans."""
        return sum(p.nbytes for p in self._plans.values() if p is not None)
