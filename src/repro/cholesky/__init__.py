"""SPD extension: block Cholesky over the regular 2D layout (the
factorisation PanguLU's own later releases added for symmetric positive
definite systems)."""

from .kernels import NotPositiveDefiniteError, potrf, potrf_flops, syrk, syrk_flops, trsm
from .solver import CholeskyOptions, PanguLLt

__all__ = [
    "PanguLLt",
    "CholeskyOptions",
    "potrf",
    "trsm",
    "syrk",
    "potrf_flops",
    "syrk_flops",
    "NotPositiveDefiniteError",
]
