"""Block Cholesky driver and solver facade (SPD extension).

Reuses PanguLU's pipeline wholesale: fill-reducing ordering, symmetric
symbolic factorisation, regular 2D blocking — then factors only the
lower-triangular blocks with the three Cholesky kernels and solves
``L y = b`` / ``Lᵀ x = y`` over the block layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.blocking import BlockMatrix, block_partition, choose_block_size
from ..kernels.base import Workspace
from ..ordering import amd, nested_dissection, rcm
from ..sparse.csc import CSCMatrix
from ..symbolic import SymbolicResult, symbolic_symmetric
from .kernels import NotPositiveDefiniteError, potrf, syrk, syrk_flops, trsm

__all__ = ["CholeskyOptions", "PanguLLt"]


@dataclass
class CholeskyOptions:
    """Configuration of the SPD pipeline (no MC64 — SPD matrices need no
    static pivoting; symmetric permutation preserves definiteness)."""

    ordering: str = "nd"
    block_size: int | None = None
    refine_steps: int = 1


class PanguLLt:
    """Sparse Cholesky solver ``A = L·Lᵀ`` over the regular 2D block layout.

    Requires a symmetric positive definite matrix (symmetry of values is
    the caller's contract; definiteness is verified by the factorisation,
    which raises :class:`NotPositiveDefiniteError` otherwise).
    """

    def __init__(self, a: CSCMatrix, options: CholeskyOptions | None = None) -> None:
        if a.nrows != a.ncols:
            raise ValueError("Cholesky requires a square matrix")
        if a.nnz and not np.all(np.isfinite(a.data)):
            raise ValueError("matrix contains non-finite values (NaN/Inf)")
        self.a = a
        self.options = options or CholeskyOptions()
        self.phase_seconds: dict[str, float] = {}
        self.perm: np.ndarray | None = None
        self.symbolic: SymbolicResult | None = None
        self.blocks: BlockMatrix | None = None
        self.flops: int = 0
        self._factorized = False

    # ------------------------------------------------------------------
    def preprocess(self) -> BlockMatrix:
        """Ordering + symbolic + blocking of the lower triangle."""
        t0 = time.perf_counter()
        ordering = self.options.ordering
        if ordering == "nd":
            p = nested_dissection(self.a)
        elif ordering == "amd":
            p = amd(self.a)
        elif ordering == "rcm":
            p = rcm(self.a)
        elif ordering == "natural":
            p = np.arange(self.a.ncols, dtype=np.int64)
        else:
            raise ValueError(f"unknown ordering {ordering!r}")
        self.perm = p
        work = self.a.permute(p, p)
        self.symbolic = symbolic_symmetric(work)
        filled = self.symbolic.filled
        # keep only the lower triangle (diagonal included)
        lower = _lower_triangle(filled)
        bs = self.options.block_size or choose_block_size(lower.ncols, lower.nnz)
        self.blocks = block_partition(lower, bs)
        self.phase_seconds["preprocess"] = time.perf_counter() - t0
        return self.blocks

    def factorize(self) -> int:
        """Right-looking block Cholesky in place; returns the structural
        FLOP count."""
        if self._factorized:
            return self.flops
        if self.blocks is None:
            self.preprocess()
        t0 = time.perf_counter()
        f = self.blocks
        ws = Workspace()
        total = 0
        for k in range(f.nb):
            diag = f.block(k, k)
            if diag is None:
                raise ValueError(f"empty diagonal block ({k},{k})")
            potrf(diag, ws)
            rows, blocks = f.blocks_in_column(k)
            panel = [(int(bi), blk) for bi, blk in zip(rows, blocks) if bi > k]
            for _, blk in panel:
                trsm(diag, blk, ws)
            for ai, (i, a_blk) in enumerate(panel):
                csup_a = np.diff(a_blk.indptr) > 0
                for j, b_blk in panel[: ai + 1]:
                    csup_b = np.diff(b_blk.indptr) > 0
                    if not bool(np.any(csup_a & csup_b)):
                        continue
                    target = f.block(i, j)
                    if target is None:
                        continue  # structurally empty product (mirror part)
                    syrk(target, a_blk, b_blk, ws)
                    total += syrk_flops(a_blk, b_blk)
        self.flops = total
        self.phase_seconds["numeric"] = time.perf_counter() - t0
        self._factorized = True
        return total

    # ------------------------------------------------------------------
    def _forward(self, b: np.ndarray) -> np.ndarray:
        """``L y = b`` (non-unit lower) over the block layout."""
        f = self.blocks
        y = b.copy()
        for k in range(f.nb):
            seg = f.block_slice(k)
            diag = f.block(k, k)
            _solve_lower_nonunit(diag, y[seg])
            rows, blocks = f.blocks_in_column(k)
            for bi, blk in zip(rows, blocks):
                bi = int(bi)
                if bi <= k:
                    continue
                tgt = f.block_slice(bi)
                cols = blk.cols_expanded()
                np.subtract.at(y[tgt], blk.indices, blk.data * y[seg][cols])
        return y

    def _backward(self, y: np.ndarray) -> np.ndarray:
        """``Lᵀ x = y`` over the block layout (transposed sweeps)."""
        f = self.blocks
        x = y.copy()
        for k in range(f.nb - 1, -1, -1):
            seg = f.block_slice(k)
            # contributions of later segments through L(i,k)ᵀ, i > k
            rows, blocks = f.blocks_in_column(k)
            for bi, blk in zip(rows, blocks):
                bi = int(bi)
                if bi <= k:
                    continue
                src = f.block_slice(bi)
                cols = blk.cols_expanded()
                np.subtract.at(x[seg], cols, blk.data * x[src][blk.indices])
            diag = f.block(k, k)
            _solve_lower_trans(diag, x[seg])
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` with optional iterative refinement."""
        self.factorize()
        t0 = time.perf_counter()
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.a.nrows,):
            raise ValueError(f"b has shape {b.shape}, expected ({self.a.nrows},)")

        def apply(rhs: np.ndarray) -> np.ndarray:
            z = self._backward(self._forward(rhs[self.perm]))
            out = np.empty_like(z)
            out[self.perm] = z
            return out

        x = apply(b)
        for _ in range(max(0, self.options.refine_steps)):
            r = b - self.a.matvec(x)
            if not np.all(np.isfinite(r)):
                break
            x = x + apply(r)
        self.phase_seconds["solve"] = time.perf_counter() - t0
        return x

    def residual_norm(self, x: np.ndarray, b: np.ndarray) -> float:
        """Relative residual ``‖A x − b‖₂ / ‖b‖₂``."""
        r = self.a.matvec(x) - b
        return float(np.linalg.norm(r)) / (float(np.linalg.norm(b)) or 1.0)

    def factor_error(self) -> float:
        """``‖P A Pᵀ − L Lᵀ‖∞ / ‖A‖∞`` — factorisation check."""
        self.factorize()
        low = self.blocks.to_csc().to_dense()
        l = np.tril(low)
        ref = self.a.permute(self.perm, self.perm).to_dense()
        scale = np.abs(ref).max() or 1.0
        return float(np.abs(ref - (l @ l.T)).max() / scale)


def _lower_triangle(m: CSCMatrix) -> CSCMatrix:
    """Lower triangle (incl. diagonal) of a CSC matrix."""
    keep_idx: list[np.ndarray] = []
    indptr = np.zeros(m.ncols + 1, dtype=np.int64)
    vals: list[np.ndarray] = []
    data = m.data
    for j in range(m.ncols):
        sl = m.col_slice(j)
        rows = m.indices[sl]
        start = int(np.searchsorted(rows, j))
        keep_idx.append(rows[start:])
        vals.append(data[sl][start:])
        indptr[j + 1] = indptr[j] + keep_idx[-1].size
    return CSCMatrix(
        m.shape,
        indptr,
        np.concatenate(keep_idx) if keep_idx else np.zeros(0, np.int64),
        np.concatenate(vals) if vals else np.zeros(0),
        check=False,
    )


def _solve_lower_nonunit(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← L⁻¹ y`` for a POTRF'd block (non-unit lower)."""
    data = diag.data
    for j in range(diag.ncols):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        vals = data[sl]
        if rows.size == 0 or rows[0] != j or vals[0] == 0.0:
            raise NotPositiveDefiniteError(f"missing/zero L diagonal at {j}")
        y[j] /= vals[0]
        yj = y[j]
        if rows.size > 1 and yj != 0.0:
            y[rows[1:]] -= vals[1:] * yj


def _solve_lower_trans(diag: CSCMatrix, y: np.ndarray) -> None:
    """In-place ``y ← L⁻ᵀ y`` for a POTRF'd block (backward sweep)."""
    data = diag.data
    for j in range(diag.ncols - 1, -1, -1):
        sl = diag.col_slice(j)
        rows = diag.indices[sl]
        vals = data[sl]
        if rows.size == 0 or rows[0] != j or vals[0] == 0.0:
            raise NotPositiveDefiniteError(f"missing/zero L diagonal at {j}")
        acc = y[j]
        if rows.size > 1:
            acc = acc - float(vals[1:] @ y[rows[1:]])
        y[j] = acc / vals[0]
