"""Block kernels for the sparse Cholesky extension.

PanguLU's regular 2D layout is not LU-specific: for symmetric positive
definite systems the same two-layer structure over the *lower triangle*
of the symmetric fill supports a block Cholesky factorisation
``A = L·Lᵀ`` at half the storage and FLOPs.  (The PanguLU project itself
added an SPD path in later releases; this module reproduces the idea.)

Three kernel roles replace the four of LU:

* :func:`potrf`  — in-place Cholesky of a diagonal block;
* :func:`trsm`   — panel solve ``X·Lᵀ = B`` turning a below-diagonal
  block into its slice of ``L``;
* :func:`syrk`   — symmetric Schur update ``C −= A·Bᵀ`` (``A = L(i,k)``,
  ``B = L(j,k)``, target ``(i, j)`` with ``i ≥ j``).

All kernels write only inside the blocks' fixed symbolic patterns; the
fill-closure argument is the same as for the LU kernels.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..kernels.base import Workspace, gather_dense, scatter_dense
from ..sparse.csc import CSCMatrix

__all__ = ["potrf", "trsm", "syrk", "NotPositiveDefiniteError", "potrf_flops", "syrk_flops"]


class NotPositiveDefiniteError(ArithmeticError):
    """A diagonal pivot was non-positive during POTRF."""


def potrf(block: CSCMatrix, ws: Workspace) -> None:
    """In-place Cholesky of a diagonal block (lower storage).

    Dense-mapped right-looking sweep; afterwards the block holds ``L``
    (its stored pattern is the lower triangle including the diagonal).
    """
    n = block.ncols
    w = ws.dense("a", (n, n))
    scatter_dense(block, w)
    for k in range(n):
        piv = w[k, k]
        if piv <= 0.0 or not np.isfinite(piv):
            raise NotPositiveDefiniteError(
                f"non-positive pivot {piv!r} at column {k} (matrix not SPD?)"
            )
        d = np.sqrt(piv)
        w[k, k] = d
        if k + 1 < n:
            w[k + 1 :, k] /= d
            # symmetric rank-1 update of the trailing lower triangle
            w[k + 1 :, k + 1 :] -= np.outer(w[k + 1 :, k], w[k + 1 :, k])
    gather_dense(block, w)


def trsm(diag: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """In-place ``X·Lᵀ = B`` against a POTRF'd diagonal block.

    Column sweep using ``L``'s columns directly (column ``c`` of ``L``
    is row ``c`` of ``Lᵀ``): ``X[:,c] = (B[:,c] − X[:,below]·L[below,c]) / L[c,c]``
    …processed in *increasing* ``c`` with already-solved columns feeding
    later ones.
    """
    n, m = b.shape  # m == diag order
    w = ws.dense("a", (n, m))
    scatter_dense(b, w)
    data = diag.data
    for c in range(m):
        sl = diag.col_slice(c)
        rows = diag.indices[sl]
        vals = data[sl]
        # lower storage: first entry of column c is the diagonal
        if rows.size == 0 or rows[0] != c or vals[0] == 0.0:
            raise NotPositiveDefiniteError(f"missing/zero L diagonal at {c}")
        w[:, c] /= vals[0]
        below = rows[1:]
        if below.size:
            w[:, below] -= np.outer(w[:, c], vals[1:])
    gather_dense(b, w)


def syrk(c: CSCMatrix, a: CSCMatrix, b: CSCMatrix, ws: Workspace) -> None:
    """Symmetric Schur update ``C −= A·Bᵀ`` inside ``C``'s fixed pattern.

    Entries of the product falling outside the stored pattern are the
    (mirror) upper-triangle positions of a diagonal target — skipping
    them is exactly the symmetry saving.
    """
    asp = sp.csc_matrix((a.data, a.indices, a.indptr), shape=a.shape, copy=False)
    bsp = sp.csc_matrix((b.data, b.indices, b.indptr), shape=b.shape, copy=False)
    p = (asp @ bsp.T).tocsc()
    p.sort_indices()
    c_indptr, c_indices, c_data = c.indptr, c.indices, c.data
    for j in range(c.ncols):
        lo_p, hi_p = int(p.indptr[j]), int(p.indptr[j + 1])
        if lo_p == hi_p:
            continue
        pr = p.indices[lo_p:hi_p]
        pv = p.data[lo_p:hi_p]
        lo, hi = int(c_indptr[j]), int(c_indptr[j + 1])
        rows_cj = c_indices[lo:hi]
        pos = np.searchsorted(rows_cj, pr)
        valid = pos < rows_cj.size
        np.minimum(pos, rows_cj.size - 1, out=pos)
        valid &= rows_cj[pos] == pr
        c_data[lo + pos[valid]] -= pv[valid]


def potrf_flops(block: CSCMatrix) -> int:
    """Structural FLOPs of a block Cholesky (pattern-based)."""
    n = block.ncols
    total = 0
    for j in range(n):
        below = int(block.indptr[j + 1] - block.indptr[j]) - 1
        total += 1 + below + below * (below + 1)  # sqrt + scale + update
    return total


def syrk_flops(a: CSCMatrix, b: CSCMatrix) -> int:
    """Structural FLOPs of ``C −= A·Bᵀ``: ``2 Σ_t nnz(A[:,t]) nnz(B[:,t])``."""
    return int(2 * np.dot(np.diff(a.indptr), np.diff(b.indptr)))
