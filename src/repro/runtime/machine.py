"""Platform models for the distributed heterogeneous simulation.

The paper evaluates on two 32-node clusters (Table 2): 4 × NVIDIA A100
(40 GB, 1555 GB/s) or 4 × AMD MI50 (16 GB, 1024 GB/s) per node, four MPI
processes per node, one GPU per process, nodes connected by 100 G links.
No GPUs exist in this reproduction environment, so the experiments that
need them run on a calibrated machine model: each simulated process owns
one GPU-class device plus a share of the host CPU, and kernel/communication
times come from roofline-style cost models rather than wall clocks.

The *relative* results the paper reports (speedups, scaling curves, sync
shares) depend on task-DAG shape, task weights and schedule policy — all
computed exactly from the real factorisation — with the device model only
setting the time scale.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Device", "Platform", "A100_PLATFORM", "MI50_PLATFORM", "CPU_PLATFORM"]


@dataclass(frozen=True)
class Device:
    """A compute device inside one process.

    Attributes
    ----------
    flops_peak:
        Peak double-precision FLOP/s.
    mem_bw:
        Device memory bandwidth, bytes/s.
    launch_overhead:
        Fixed cost per kernel invocation, seconds (GPU kernel launch /
        CPU function-call cost).
    dense_efficiency:
        Achievable fraction of peak for regular dense kernels (GEMM-like).
    sparse_efficiency:
        Achievable fraction of peak for irregular sparse kernels.
    """

    name: str
    flops_peak: float
    mem_bw: float
    launch_overhead: float
    dense_efficiency: float
    sparse_efficiency: float


@dataclass(frozen=True)
class Platform:
    """One cluster configuration: per-process GPU + host CPU + network.

    Attributes
    ----------
    gpu, cpu:
        Device models; GPU-class kernel versions (``G_*``) run on ``gpu``,
        CPU-class versions (``C_*``) on ``cpu``.
    procs_per_node:
        Processes (= GPUs) per node; determines which messages cross the
        node boundary.
    intra_latency / intra_bandwidth:
        Same-node message latency (s) and bandwidth (bytes/s).
    inter_latency / inter_bandwidth:
        Cross-node message latency and bandwidth.
    rank_speeds:
        Per-rank relative speed factors for a *heterogeneous* machine
        (e.g. ``(1.0, 1.0, 0.4, 0.4)`` models two full-speed and two
        2.5×-slower ranks).  ``None`` (default) keeps every rank at
        speed 1.0 — bit-identical to the historical homogeneous model.
        Cycled when there are more ranks than entries, mirroring how a
        node type repeats across a cluster.
    """

    name: str
    gpu: Device
    cpu: Device
    procs_per_node: int = 4
    intra_latency: float = 4e-6
    intra_bandwidth: float = 4.0e10
    inter_latency: float = 1.8e-5
    inter_bandwidth: float = 1.2e10
    rank_speeds: tuple[float, ...] | None = None

    def rank_speed(self, rank: int) -> float:
        """Relative speed factor of ``rank`` (1.0 when homogeneous)."""
        if not self.rank_speeds:
            return 1.0
        return float(self.rank_speeds[rank % len(self.rank_speeds)])

    def message_time(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time of one message between two processes."""
        if src == dst:
            return 0.0
        same_node = (src // self.procs_per_node) == (dst // self.procs_per_node)
        if same_node:
            return self.intra_latency + nbytes / self.intra_bandwidth
        return self.inter_latency + nbytes / self.inter_bandwidth


# NVIDIA A100: 9.7 TF fp64, 1555 GB/s HBM2e; host share of 2×Xeon 8180
A100_PLATFORM = Platform(
    name="A100",
    gpu=Device(
        name="A100",
        flops_peak=9.7e12,
        mem_bw=1.555e12,
        launch_overhead=6e-6,
        dense_efficiency=0.65,
        sparse_efficiency=0.035,
    ),
    cpu=Device(
        name="Xeon-8180-share",
        flops_peak=6.0e10,
        mem_bw=2.5e10,
        launch_overhead=3e-7,
        dense_efficiency=0.75,
        sparse_efficiency=0.30,
    ),
)

# AMD MI50: 6.6 TF fp64, 1024 GB/s HBM2; host share of an Epyc 7601
MI50_PLATFORM = Platform(
    name="MI50",
    gpu=Device(
        name="MI50",
        flops_peak=6.6e12,
        mem_bw=1.024e12,
        launch_overhead=9e-6,
        dense_efficiency=0.55,
        sparse_efficiency=0.028,
    ),
    cpu=Device(
        name="Epyc-7601-share",
        flops_peak=3.5e10,
        mem_bw=2.0e10,
        launch_overhead=3e-7,
        dense_efficiency=0.70,
        sparse_efficiency=0.28,
    ),
)

# A homogeneous CPU platform, useful for sanity checks / ablations
CPU_PLATFORM = Platform(
    name="CPU",
    gpu=Device(
        name="cpu-as-gpu",
        flops_peak=6.0e10,
        mem_bw=2.5e10,
        launch_overhead=3e-7,
        dense_efficiency=0.75,
        sparse_efficiency=0.30,
    ),
    cpu=Device(
        name="cpu",
        flops_peak=6.0e10,
        mem_bw=2.5e10,
        launch_overhead=3e-7,
        dense_efficiency=0.75,
        sparse_efficiency=0.30,
    ),
)
