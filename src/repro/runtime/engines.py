"""Execution-engine registry.

One engine = one way of draining the task DAG through the shared
:class:`~repro.runtime.scheduler.SchedulerCore`.  The registry maps the
``SolverOptions.engine`` string to a callable with the uniform signature

``engine(blocks, dag, solver_options, *, recorder=None) -> FactorizeStats``

so the :class:`~repro.core.solver.PanguLU` facade (and the CLI's
``--engine`` flag) dispatch by name instead of special-casing worker
counts.  A future engine — async, sharded, multi-backend — is a
transport plus one :func:`register_engine` call.

Built-ins:

========== ==========================================================
name        substrate
========== ==========================================================
sequential  one thread, one core (the correctness reference)
threaded    ``options.n_workers`` threads sharing one core
distributed ``options.nprocs`` ranks over a message transport
========== ==========================================================
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.numeric import FactorizeStats, factorize
from .distributed import factorize_distributed
from .scheduler import EventRecorder
from .threaded import factorize_threaded

__all__ = ["register_engine", "get_engine", "available_engines"]

_ENGINES: dict[str, Callable] = {}


def register_engine(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering an engine under ``name`` (last wins)."""

    def deco(fn: Callable) -> Callable:
        _ENGINES[name] = fn
        return fn

    return deco


def get_engine(name: str) -> Callable:
    """The engine registered under ``name``; raises with the list of
    known names on a miss."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None


def available_engines() -> list[str]:
    """Sorted names of all registered engines."""
    return sorted(_ENGINES)


def _resolve_checker(options, label: str):
    """A fresh :class:`~repro.devtools.racecheck.RaceChecker` when the
    options (or the ``REPRO_CHECK`` environment variable) request
    concurrency validation, else ``None``."""
    from ..devtools.racecheck import RaceChecker, validation_enabled

    if not validation_enabled(options):
        return None
    return RaceChecker(label=label)


@register_engine("sequential")
def _sequential(
    f, dag, options, *, recorder: EventRecorder | None = None
) -> FactorizeStats:
    return factorize(
        f, dag, options.numeric, recorder=recorder,
        checker=_resolve_checker(options, "sequential"),
    )


@register_engine("threaded")
def _threaded(
    f, dag, options, *, recorder: EventRecorder | None = None
) -> FactorizeStats:
    tstats = factorize_threaded(
        f, dag, options.numeric,
        n_workers=max(1, options.n_workers), recorder=recorder,
        checker=_resolve_checker(options, "threaded"),
    )
    return FactorizeStats(
        kernel_choices=tstats.kernel_choices,
        tasks_executed=tstats.tasks_executed,
        flops_total=dag.total_flops,
        pivots_replaced=tstats.pivots_replaced,
        planned_tasks=tstats.planned_tasks,
        plan_bytes=tstats.plan_bytes,
    )


@register_engine("distributed")
def _distributed(
    f, dag, options, *, recorder: EventRecorder | None = None
) -> FactorizeStats:
    from ..devtools.racecheck import validation_enabled

    dstats = factorize_distributed(
        f, dag, max(1, options.nprocs),
        options=options.numeric, recorder=recorder,
        validate=validation_enabled(options),
    )
    return FactorizeStats(
        kernel_choices=dstats.kernel_choices,
        tasks_executed=sum(dstats.tasks_per_proc),
        flops_total=dag.total_flops,
        pivots_replaced=dstats.pivots_replaced,
        planned_tasks=dstats.planned_tasks,
    )
