"""Execution-engine registry.

One engine = one way of draining the task DAG through the shared
:class:`~repro.runtime.scheduler.SchedulerCore`.  The registry maps the
``SolverOptions.engine`` string to a callable with the uniform signature

``engine(blocks, dag, solver_options, *, recorder=None, placement=None)
-> FactorizeStats``

so the :class:`~repro.core.solver.PanguLU` facade (and the CLI's
``--engine`` flag) dispatch by name instead of special-casing worker
counts.  ``placement`` is the fitted
:class:`~repro.core.placement.PlacementPolicy` deciding block→rank
ownership for the multi-rank engines (the local engines ignore it).  A
future engine — async, sharded, multi-backend — is a transport plus one
:func:`register_engine` call.

Phase 5 has a parallel registry: the same names map to
*triangular-solve* engines with the signature

``tsolve_engine(blocks, tdag, b, solver_options, *, recorder=None,
placement=None) -> (x, TSolveStats)``

registered via :func:`register_tsolve_engine` and dispatched by the
:class:`~repro.core.solver.Factorization` handle, so one
``SolverOptions.engine`` string governs both the factorisation and every
subsequent solve.  All engines produce bit-identical solutions (the
solve DAG totally orders each RHS segment's writers).

Built-ins (both registries):

========== ==========================================================
name        substrate
========== ==========================================================
sequential  one thread, one core (the correctness reference)
threaded    ``options.n_workers`` threads sharing one core
distributed ``options.nprocs`` ranks over a message transport
hybrid      ``options.nprocs`` ranks × ``options.n_workers`` threads
            per rank, each rank's thread pool draining one shared
            scheduler core (HYLU-style mixed parallelism)
========== ==========================================================
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.numeric import FactorizeStats, factorize, resolve_plan_cache
from ..core.tsolve import TSolveStats, tsolve_sequential
from .distributed import factorize_distributed, tsolve_distributed
from .scheduler import EventRecorder
from .threaded import factorize_threaded, tsolve_threaded

__all__ = [
    "register_engine",
    "get_engine",
    "available_engines",
    "register_tsolve_engine",
    "get_tsolve_engine",
    "available_tsolve_engines",
]

_ENGINES: dict[str, Callable] = {}


def register_engine(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering an engine under ``name`` (last wins)."""

    def deco(fn: Callable) -> Callable:
        _ENGINES[name] = fn
        return fn

    return deco


def get_engine(name: str) -> Callable:
    """The engine registered under ``name``; raises with the list of
    known names on a miss."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None


def available_engines() -> list[str]:
    """Sorted names of all registered engines."""
    return sorted(_ENGINES)


def _compression_counters(f, options) -> tuple[int, int]:
    """``(blocks_compressed, lr_value_bytes)`` of a local engine run —
    read off the structure's overlay after the fact.  ``(0, 0)`` with
    compression disabled or on structures without an overlay."""
    if getattr(options.numeric, "compress_tol", 0.0) <= 0.0:
        return 0, 0
    stats = getattr(f, "compression_stats", None)
    if stats is None:
        return 0, 0
    comp = stats()
    return comp["blocks_compressed"], comp["lr_value_bytes"]


def _resolve_checker(options, label: str):
    """A fresh :class:`~repro.devtools.racecheck.RaceChecker` when the
    options (or the ``REPRO_CHECK`` environment variable) request
    concurrency validation, else ``None``."""
    from ..devtools.racecheck import RaceChecker, validation_enabled

    if not validation_enabled(options):
        return None
    return RaceChecker(label=label)


@register_engine("sequential")
def _sequential(
    f, dag, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> FactorizeStats:
    return factorize(
        f, dag, options.numeric, recorder=recorder,
        checker=_resolve_checker(options, "sequential"),
    )


@register_engine("threaded")
def _threaded(
    f, dag, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> FactorizeStats:
    tstats = factorize_threaded(
        f, dag, options.numeric,
        n_workers=max(1, options.n_workers), recorder=recorder,
        checker=_resolve_checker(options, "threaded"),
    )
    comp = _compression_counters(f, options)
    return FactorizeStats(
        kernel_choices=tstats.kernel_choices,
        tasks_executed=tstats.tasks_executed,
        flops_total=dag.total_flops,
        pivots_replaced=tstats.pivots_replaced,
        planned_tasks=tstats.planned_tasks,
        plan_bytes=tstats.plan_bytes,
        blocks_compressed=comp[0],
        lr_value_bytes=comp[1],
    )


@register_engine("distributed")
def _distributed(
    f, dag, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> FactorizeStats:
    from ..devtools.racecheck import validation_enabled

    dstats = factorize_distributed(
        f, dag, max(1, options.nprocs),
        options=options.numeric, recorder=recorder,
        validate=validation_enabled(options), placement=placement,
    )
    return FactorizeStats(
        kernel_choices=dstats.kernel_choices,
        tasks_executed=sum(dstats.tasks_per_proc),
        flops_total=dag.total_flops,
        pivots_replaced=dstats.pivots_replaced,
        planned_tasks=dstats.planned_tasks,
        blocks_compressed=dstats.blocks_compressed,
        lr_value_bytes=dstats.lr_value_bytes,
    )


@register_engine("hybrid")
def _hybrid(
    f, dag, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> FactorizeStats:
    from ..devtools.racecheck import validation_enabled

    dstats = factorize_distributed(
        f, dag, max(1, options.nprocs),
        options=options.numeric, recorder=recorder,
        validate=validation_enabled(options), placement=placement,
        n_threads=max(1, options.n_workers),
    )
    return FactorizeStats(
        kernel_choices=dstats.kernel_choices,
        tasks_executed=sum(dstats.tasks_per_proc),
        flops_total=dag.total_flops,
        pivots_replaced=dstats.pivots_replaced,
        planned_tasks=dstats.planned_tasks,
        blocks_compressed=dstats.blocks_compressed,
        lr_value_bytes=dstats.lr_value_bytes,
    )


# ----------------------------------------------------------------------
# phase-5 triangular-solve engines
# ----------------------------------------------------------------------

_TSOLVE_ENGINES: dict[str, Callable] = {}


def register_tsolve_engine(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering a triangular-solve engine (last wins)."""

    def deco(fn: Callable) -> Callable:
        _TSOLVE_ENGINES[name] = fn
        return fn

    return deco


def get_tsolve_engine(name: str) -> Callable:
    """The solve engine registered under ``name``; raises with the list
    of known names on a miss."""
    try:
        return _TSOLVE_ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown tsolve engine {name!r}; "
            f"available: {available_tsolve_engines()}"
        ) from None


def available_tsolve_engines() -> list[str]:
    """Sorted names of all registered triangular-solve engines."""
    return sorted(_TSOLVE_ENGINES)


@register_tsolve_engine("sequential")
def _tsolve_sequential(
    f, tdag, b, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> tuple:
    return tsolve_sequential(
        f, b, tdag=tdag, plans=resolve_plan_cache(f, options.numeric),
        recorder=recorder,
        checker=_resolve_checker(options, "tsolve-sequential"),
    )


@register_tsolve_engine("threaded")
def _tsolve_threaded(
    f, tdag, b, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> tuple:
    return tsolve_threaded(
        f, tdag, b, n_workers=max(1, options.n_workers),
        plans=resolve_plan_cache(f, options.numeric), recorder=recorder,
        checker=_resolve_checker(options, "tsolve-threaded"),
    )


@register_tsolve_engine("distributed")
def _tsolve_distributed(
    f, tdag, b, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> tuple:
    from ..devtools.racecheck import validation_enabled

    return tsolve_distributed(
        f, tdag, b, max(1, options.nprocs),
        use_plans=options.numeric.use_plans, recorder=recorder,
        validate=validation_enabled(options), placement=placement,
    )


@register_tsolve_engine("hybrid")
def _tsolve_hybrid(
    f, tdag, b, options, *, recorder: EventRecorder | None = None,
    placement=None,
) -> tuple:
    from ..devtools.racecheck import validation_enabled

    return tsolve_distributed(
        f, tdag, b, max(1, options.nprocs),
        use_plans=options.numeric.use_plans, recorder=recorder,
        validate=validation_enabled(options), placement=placement,
        n_threads=max(1, options.n_workers),
    )
