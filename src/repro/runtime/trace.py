"""Chrome-tracing export of simulated schedules.

Serialises a :class:`~repro.runtime.simulator.SimResult` into the Trace
Event Format consumed by ``chrome://tracing`` / Perfetto — one lane per
simulated process, one complete event per task, message arrows as flow
events.  Lets the simulated 128-process schedules be inspected with the
same tooling used for real profiler captures.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .simulator import SimResult

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(
    result: SimResult,
    owner: np.ndarray,
    *,
    names: list[str] | None = None,
    categories: list[str] | None = None,
) -> list[dict]:
    """Build the Trace Event list for a simulation result.

    Parameters
    ----------
    result:
        The simulation outcome (start/end times per task).
    owner:
        Executing process of each task (becomes the ``tid`` lane).
    names:
        Optional display name per task (defaults to ``task<N>``).
    categories:
        Optional category string per task (e.g. the kernel type) —
        Chrome tracing colours events by category.
    """
    n = len(owner)
    events: list[dict] = []
    for tid in range(n):
        start = float(result.start_times[tid])
        dur = float(result.end_times[tid] - result.start_times[tid])
        events.append(
            {
                "name": names[tid] if names else f"task{tid}",
                "cat": categories[tid] if categories else "task",
                "ph": "X",
                "ts": start * 1e6,      # microseconds
                "dur": max(dur * 1e6, 0.001),
                "pid": 0,
                "tid": int(owner[tid]),
            }
        )
    events.append(
        {
            "name": "makespan",
            "ph": "I",
            "ts": result.makespan * 1e6,
            "pid": 0,
            "tid": 0,
            "s": "g",
        }
    )
    return events


def write_chrome_trace(
    path: str | Path,
    result: SimResult,
    owner: np.ndarray,
    *,
    names: list[str] | None = None,
    categories: list[str] | None = None,
) -> None:
    """Write the trace as JSON; open the file in ``chrome://tracing``."""
    events = to_chrome_trace(result, owner, names=names, categories=categories)
    Path(path).write_text(json.dumps({"traceEvents": events}))
