"""Chrome-tracing export of simulated schedules and real runs.

Serialises both a :class:`~repro.runtime.simulator.SimResult` *and* the
structured events recorded from a real threaded or distributed run
(:class:`~repro.runtime.scheduler.EventRecorder`) into the Trace Event
Format consumed by ``chrome://tracing`` / Perfetto — one lane per
process/worker/rank, one complete event per task, message arrows as flow
events (``ph: "s"`` at the sender, ``ph: "f"`` at the receiver), and
ready-queue depth as counter tracks.  Lets the simulated 128-process
schedules and the actually-executed runs be inspected with the same
tooling used for real profiler captures.  Triangular-solve engines feed
the same recorder: with ``SolverOptions(trace_events=True)`` each solve
appends its DIAG_F/UPD_F/DIAG_B/UPD_B task lanes (and, distributed, its
segment send/recv flows) after the factorisation's.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .scheduler import EventRecorder
from .simulator import SimResult

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "recorder_to_chrome_trace",
    "write_recorder_trace",
]


def _flow_pair(
    flow_id: int, name: str, ts_send: float, lane_send: int,
    ts_recv: float, lane_recv: int,
) -> list[dict]:
    """A matched ``s``/``f`` flow-event pair (times in microseconds)."""
    common = {"name": name, "cat": "message", "id": flow_id, "pid": 0}
    return [
        {**common, "ph": "s", "ts": ts_send, "tid": lane_send},
        {**common, "ph": "f", "bp": "e", "ts": ts_recv, "tid": lane_recv},
    ]


def to_chrome_trace(
    result: SimResult,
    owner: np.ndarray,
    *,
    names: list[str] | None = None,
    categories: list[str] | None = None,
    successors: list[list[int]] | None = None,
) -> list[dict]:
    """Build the Trace Event list for a simulation result.

    Parameters
    ----------
    result:
        The simulation outcome (start/end times per task).
    owner:
        Executing process of each task (becomes the ``tid`` lane).
    names:
        Optional display name per task (defaults to ``task<N>``).
    categories:
        Optional category string per task (e.g. the kernel type) —
        Chrome tracing colours events by category.
    successors:
        Optional DAG adjacency; when given, every cross-process edge
        becomes a flow-event arrow (``ph: "s"`` at the producer's end
        time, ``ph: "f"`` at the consumer's start) — the simulated
        message traffic, drawn the way Perfetto draws real async edges.
    """
    n = len(owner)
    events: list[dict] = []
    for tid in range(n):
        start = float(result.start_times[tid])
        dur = float(result.end_times[tid] - result.start_times[tid])
        events.append(
            {
                "name": names[tid] if names else f"task{tid}",
                "cat": categories[tid] if categories else "task",
                "ph": "X",
                "ts": start * 1e6,      # microseconds
                "dur": max(dur * 1e6, 0.001),
                "pid": 0,
                "tid": int(owner[tid]),
            }
        )
    if successors is not None:
        flow_id = 0
        for tid in range(n):
            src = int(owner[tid])
            for s in successors[tid]:
                dst = int(owner[s])
                if dst == src:
                    continue  # local dependency, no message
                events.extend(
                    _flow_pair(
                        flow_id,
                        f"msg:{names[tid] if names else f'task{tid}'}",
                        float(result.end_times[tid]) * 1e6, src,
                        float(result.start_times[s]) * 1e6, dst,
                    )
                )
                flow_id += 1
    events.append(
        {
            "name": "makespan",
            "ph": "I",
            "ts": result.makespan * 1e6,
            "pid": 0,
            "tid": 0,
            "s": "g",
        }
    )
    return events


def write_chrome_trace(
    path: str | Path,
    result: SimResult,
    owner: np.ndarray,
    *,
    names: list[str] | None = None,
    categories: list[str] | None = None,
    successors: list[list[int]] | None = None,
) -> None:
    """Write the trace as JSON; open the file in ``chrome://tracing``."""
    events = to_chrome_trace(
        result, owner, names=names, categories=categories, successors=successors
    )
    Path(path).write_text(json.dumps({"traceEvents": events}))


def recorder_to_chrome_trace(recorder: EventRecorder) -> list[dict]:
    """Trace Event list from a *real* run's recorded events.

    Task events become complete (``X``) slices on per-worker/per-rank
    lanes, matched message send/recv pairs become flow arrows, unmatched
    sends (dropped or still in flight at teardown) become instants, and
    ready-queue depth becomes a counter track per scheduling lane.  All
    timestamps are rebased to the earliest recorded event.
    """
    times = (
        [e.t0 for e in recorder.task_events]
        + [e.t for e in recorder.message_events]
        + [e.t for e in recorder.depth_events]
    )
    base = min(times) if times else 0.0
    us = lambda t: (t - base) * 1e6  # noqa: E731
    events: list[dict] = []
    for e in recorder.task_events:
        events.append(
            {
                "name": e.name,
                "cat": e.cat,
                "ph": "X",
                "ts": us(e.t0),
                "dur": max((e.t1 - e.t0) * 1e6, 0.001),
                "pid": 0,
                "tid": e.worker,
                "args": {"tid": e.tid},
            }
        )
    # pair sends with their receives: one producing task fans out to
    # possibly many ranks, so key on (producer task, destination rank)
    recvs = {
        (e.tid, e.rank): e
        for e in recorder.message_events
        if e.kind == "recv"
    }
    flow_id = 0
    for e in recorder.message_events:
        if e.kind != "send":
            continue
        got = recvs.get((e.tid, e.peer))
        if got is not None:
            events.extend(
                _flow_pair(
                    flow_id, f"msg:task{e.tid}",
                    us(e.t), e.rank, us(got.t), got.rank,
                )
            )
            flow_id += 1
        else:  # dropped / in-flight at teardown: still show the attempt
            events.append(
                {
                    "name": f"msg:task{e.tid} (unreceived)",
                    "cat": "message",
                    "ph": "I",
                    "ts": us(e.t),
                    "pid": 0,
                    "tid": e.rank,
                    "s": "t",
                }
            )
    for e in recorder.depth_events:
        events.append(
            {
                "name": f"ready[{e.lane}]",
                "ph": "C",
                "ts": us(e.t),
                "pid": 0,
                "tid": e.lane,
                "args": {"depth": e.depth},
            }
        )
    return events


def write_recorder_trace(path: str | Path, recorder: EventRecorder) -> None:
    """Write a real run's recorded events as Chrome-trace JSON."""
    events = recorder_to_chrome_trace(recorder)
    Path(path).write_text(json.dumps({"traceEvents": events}))
