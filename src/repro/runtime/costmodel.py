"""Roofline-style kernel cost models for the simulated platforms.

Each kernel variant's simulated time on a device is

``t = launch · launch_scale + max(work / (peak · eff), bytes / mem_bw)``

where *work* is either the structural FLOP count (sparse variants) or the
dense operation count of the block shape (dense-mapped variants — these
really do spend the padded FLOPs, which is the paper's core argument
against dense BLAS on sparse blocks), *eff* is the device's dense or
sparse efficiency times a per-variant factor, and *bytes* counts the data
the variant actually touches (pattern+values for sparse, full block
panels for dense-mapped).

``C_*`` variants run on the host CPU share, ``G_*`` on the process's GPU —
so variant choice decides the executing device, exactly the heterogeneous
trade-off PanguLU's decision trees navigate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.blocking import BlockMatrix
from ..core.dag import TaskDAG, TaskType
from ..kernels.registry import KERNEL_REGISTRY, KernelType, is_gpu_version
from .machine import Device, Platform

__all__ = [
    "SimTask",
    "VariantProfile",
    "VARIANT_PROFILES",
    "kernel_time",
    "best_version",
    "extract_sim_tasks",
    "partition_flop_stats",
    "simulated_trees",
    "BYTES_PER_ENTRY",
    "INDEX_BYTES",
    "bytes_per_entry",
]

#: bytes of one stored row index (amortised column pointers ignored)
INDEX_BYTES = 4.0


def bytes_per_entry(value_itemsize: float = 8.0) -> float:
    """Model bytes of one stored sparse entry: value + row index.

    ``value_itemsize`` is the factor dtype's itemsize — 8 for the float64
    default, 4 on the mixed-precision float32 path (halving the value
    stream the roofline charges).
    """
    return float(value_itemsize) + INDEX_BYTES


#: bytes of one stored sparse entry at the float64 model default
#: (8-byte value + 4-byte index); dtype-aware callers should use
#: :func:`bytes_per_entry` with the factor's actual itemsize instead
BYTES_PER_ENTRY = bytes_per_entry(8.0)


@dataclass(frozen=True)
class SimTask:
    """Device-independent record of one task for the simulator."""

    tid: int
    ttype: TaskType
    k: int
    bi: int
    bj: int
    flops: int          # structural (sparse) FLOPs
    dense_flops: float  # FLOPs a dense-mapped variant performs
    nnz_a: int
    nnz_b: int
    nnz_target: int
    rows: int           # target block rows
    cols: int           # target block cols
    inner: int          # contraction dimension (diag/block order)
    out_bytes: float    # message size when the result must move
    operand_density: float = 0.0  # max operand density (regularity proxy)
    value_itemsize: float = 8.0   # factor value bytes (4 on the f32 path)


@dataclass(frozen=True)
class VariantProfile:
    """How one kernel variant maps onto the device model."""

    dense_work: bool        # charge dense_flops instead of structural flops
    dense_bytes: bool       # touch full dense panels instead of nnz entries
    eff_scale: float = 1.0  # multiplier on the device efficiency
    launch_scale: float = 1.0


VARIANT_PROFILES: dict[tuple[KernelType, str], VariantProfile] = {
    (KernelType.GETRF, "C_V1"): VariantProfile(True, True),
    (KernelType.GETRF, "G_V1"): VariantProfile(False, False),
    (KernelType.GETRF, "G_V2"): VariantProfile(False, False, eff_scale=1.6),
    (KernelType.GESSM, "C_V1"): VariantProfile(False, False, eff_scale=0.7),
    (KernelType.GESSM, "C_V2"): VariantProfile(True, True),
    (KernelType.GESSM, "G_V1"): VariantProfile(False, False),
    (KernelType.GESSM, "G_V2"): VariantProfile(False, True, eff_scale=1.4, launch_scale=1.5),
    (KernelType.GESSM, "G_V3"): VariantProfile(True, True, launch_scale=2.0),
    (KernelType.TSTRF, "C_V1"): VariantProfile(False, False, eff_scale=0.7),
    (KernelType.TSTRF, "C_V2"): VariantProfile(True, True),
    (KernelType.TSTRF, "G_V1"): VariantProfile(False, False),
    (KernelType.TSTRF, "G_V2"): VariantProfile(False, True, eff_scale=1.4, launch_scale=1.5),
    (KernelType.TSTRF, "G_V3"): VariantProfile(True, True, launch_scale=2.0),
    (KernelType.SSSSM, "C_V1"): VariantProfile(True, True),
    (KernelType.SSSSM, "C_V2"): VariantProfile(False, False),
    (KernelType.SSSSM, "G_V1"): VariantProfile(False, False, eff_scale=3.0, launch_scale=2.0),
    (KernelType.SSSSM, "G_V2"): VariantProfile(False, True, eff_scale=1.5),
}

_TTYPE_TO_KTYPE = {
    TaskType.GETRF: KernelType.GETRF,
    TaskType.GESSM: KernelType.GESSM,
    TaskType.TSTRF: KernelType.TSTRF,
    TaskType.SSSSM: KernelType.SSSSM,
}


def _device_for(platform: Platform, version: str) -> Device:
    return platform.gpu if is_gpu_version(version) else platform.cpu


def kernel_time(task: SimTask, version: str, platform: Platform) -> float:
    """Simulated execution time of ``task`` under kernel ``version``."""
    ktype = _TTYPE_TO_KTYPE[task.ttype]
    profile = VARIANT_PROFILES[(ktype, version)]
    device = _device_for(platform, version)
    if profile.dense_work:
        work = task.dense_flops
        eff = device.dense_efficiency * profile.eff_scale
    else:
        work = float(task.flops)
        # Sparse kernels on dense operands access memory almost as
        # regularly as dense kernels do, so the achievable efficiency
        # interpolates from the sparse floor towards the dense ceiling as
        # the operands fill up (this is why the paper's sparse SSSSM stays
        # within ~10% of dense GEMM on audikw_1-class blocks).
        d = min(1.0, max(0.0, task.operand_density))
        base = device.sparse_efficiency + (d**2) * 0.85 * (
            device.dense_efficiency - device.sparse_efficiency
        )
        eff = base * profile.eff_scale
    if profile.dense_bytes:
        nbytes = task.value_itemsize * (
            task.rows * task.cols
            + task.inner * task.cols
            + task.rows * task.inner
        )
    else:
        nbytes = bytes_per_entry(task.value_itemsize) * (
            task.nnz_a + task.nnz_b + 2 * task.nnz_target
        )
    t_compute = work / (device.flops_peak * eff) if work else 0.0
    t_memory = nbytes / device.mem_bw
    return device.launch_overhead * profile.launch_scale + max(t_compute, t_memory)


def best_version(task: SimTask, platform: Platform) -> tuple[str, float]:
    """The cost-minimising variant for a task on a platform.

    This plays the role of the decision trees in the *simulated* setting:
    the paper's trees are fitted to measured kernel times on the target
    GPU, which for a model platform is equivalent to consulting the model
    directly.  The Fig. 14 ablation compares this against a fixed
    baseline version.
    """
    ktype = _TTYPE_TO_KTYPE[task.ttype]
    best_v, best_t = "", np.inf
    for version in KERNEL_REGISTRY[ktype]:
        # the low-rank SSSSM variants have no simulated profile — they
        # only apply when an operand is compressed, which the purely
        # structural simulator never models
        if (ktype, version) not in VARIANT_PROFILES:
            continue
        t = kernel_time(task, version, platform)
        if t < best_t:
            best_v, best_t = version, t
    return best_v, best_t


def extract_sim_tasks(f: BlockMatrix, dag: TaskDAG) -> list[SimTask]:
    """Build the device-independent task records from the blocked matrix.

    Uses only patterns — callable before (or without) any numeric work,
    which is how the scalability benches sweep process counts cheaply.
    The byte model is priced at the structure's value dtype, so a
    float32-partitioned matrix is simulated with its actual (halved)
    value traffic.
    """
    itemsize = float(getattr(f, "dtype", np.dtype(np.float64)).itemsize)
    out: list[SimTask] = []
    for t in dag.tasks:
        target = f.block(t.bi, t.bj)
        assert target is not None
        rows_n, cols_n = target.shape
        if t.ttype == TaskType.GETRF:
            nnz_a, nnz_b = target.nnz, 0
            inner = rows_n
            dense = (2.0 / 3.0) * rows_n**3
        elif t.ttype == TaskType.GESSM:
            diag = f.block(t.k, t.k)
            nnz_a, nnz_b = diag.nnz, target.nnz
            inner = diag.ncols
            dense = float(inner) ** 2 * cols_n
        elif t.ttype == TaskType.TSTRF:
            diag = f.block(t.k, t.k)
            nnz_a, nnz_b = diag.nnz, target.nnz
            inner = diag.ncols
            dense = float(inner) ** 2 * rows_n
        else:
            a_blk = f.block(t.bi, t.k)
            b_blk = f.block(t.k, t.bj)
            nnz_a, nnz_b = a_blk.nnz, b_blk.nnz
            inner = a_blk.ncols
            dense = 2.0 * rows_n * cols_n * inner
        if t.ttype == TaskType.GETRF:
            op_density = target.density
        elif t.ttype in (TaskType.GESSM, TaskType.TSTRF):
            op_density = target.density
        else:
            op_density = max(
                nnz_a / (rows_n * inner), nnz_b / (inner * cols_n)
            )
        out.append(
            SimTask(
                tid=t.tid,
                ttype=t.ttype,
                k=t.k,
                bi=t.bi,
                bj=t.bj,
                flops=t.flops,
                dense_flops=dense,
                nnz_a=int(nnz_a),
                nnz_b=int(nnz_b),
                nnz_target=target.nnz,
                rows=rows_n,
                cols=cols_n,
                inner=int(inner),
                out_bytes=bytes_per_entry(itemsize) * target.nnz,
                operand_density=float(op_density),
                value_itemsize=itemsize,
            )
        )
    return out


def partition_flop_stats(f: BlockMatrix, dag: TaskDAG) -> dict:
    """Work profile of a partition — the blocking-ablation comparison row.

    From the per-task extents (actual block shapes, not a nominal block
    size): structural FLOPs (what sparse kernels execute), dense-mapped
    FLOPs (what dense-panel kernels would execute on the same cut — the
    *padded* work), and their ratio.  A structure-aware blocking lowers
    the padded total by aligning block boundaries with the fill pattern,
    which is exactly what this summary is meant to show.
    """
    sim = extract_sim_tasks(f, dag)
    structural = float(sum(t.flops for t in sim))
    dense = float(sum(t.dense_flops for t in sim))
    return {
        "tasks": len(sim),
        "blocks": f.num_blocks,
        "grid": f.nb,
        "structural_flops": structural,
        "dense_flops": dense,
        "padding_ratio": dense / structural if structural else 1.0,
    }


def simulated_trees(platform: Platform, sim_tasks: list[SimTask]):
    """Fit Fig.-8-style decision trees to the platform's *modelled* kernel
    times — the exact construction the paper performs with measured GPU
    times, run against the cost model instead.

    Returns ``{KernelType: DecisionTree}`` suitable for a
    :class:`~repro.kernels.selector.SelectorPolicy`; on the samples used
    for fitting, tree selection approximates the per-task optimum
    (`best_version`).
    """
    from ..kernels.selector import TaskFeatures, calibrate

    measurements: dict[KernelType, list] = {k: [] for k in KernelType}
    for st in sim_tasks:
        ktype = _TTYPE_TO_KTYPE[st.ttype]
        times = {
            version: kernel_time(st, version, platform)
            for version in KERNEL_REGISTRY[ktype]
            if (ktype, version) in VARIANT_PROFILES
        }
        feats = TaskFeatures(
            nnz_a=st.nnz_a,
            nnz_b=st.nnz_b,
            flops=st.flops,
            n=st.inner,
            density=st.operand_density,
        )
        measurements[ktype].append((feats, times))
    return calibrate({k: v for k, v in measurements.items() if v})
