"""Distributed-memory synchronisation-free executor (multiprocessing).

The closest in-repo analogue of PanguLU's MPI execution: the factorisation
runs on ``n_procs`` separate OS processes, each of which

* initially holds **only the blocks it owns** under the 2D block-cyclic
  rule (distributed memory, not shared);
* executes the tasks targeting its blocks, picking the highest-priority
  (earliest elimination step) ready task — the Section 4.4 discipline;
* on completing a panel task, **sends the factored block** to exactly the
  processes that consume it, piggybacking the dependency-counter
  decrement on the data message (the paper's "sends the sub-matrix block
  to the other required process", Fig. 10 step 2c);
* decrements counters and releases tasks on receipt (Fig. 10 step 3b) —
  no barriers, no global synchronisation of any kind.

Messages travel over ``multiprocessing`` queues; block payloads are the
raw ``(indices, data)`` arrays.  The master scatters the owned blocks,
gathers the factored ones back, and patches them into the caller's
:class:`~repro.core.blocking.BlockMatrix`, so the result is
indistinguishable from a sequential factorisation (asserted by the
tests).

This executor is about protocol fidelity, not speed: Python processes
pay pickling costs that real MPI ranks do not.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from ..core.blocking import BlockMatrix
from ..core.dag import TaskDAG, TaskType
from ..core.mapping import ProcessGrid
from ..core.numeric import _TTYPE_TO_KTYPE, NumericOptions, run_task, task_features
from ..kernels.base import Workspace
from ..sparse.csc import CSCMatrix

__all__ = ["DistributedStats", "factorize_distributed"]


@dataclass
class DistributedStats:
    """Accounting of one distributed factorisation."""

    n_procs: int
    tasks_per_proc: list[int]
    messages_sent: int
    block_bytes_sent: float


class _LocalView:
    """A worker's partial view of the block matrix.

    Quacks like :class:`BlockMatrix` for the needs of ``run_task`` /
    ``task_features`` (``block``/``block_slot``/``blk_values``), but holds
    only owned + received blocks; touching an absent block is a protocol
    bug and raises immediately.
    """

    def __init__(self, nb: int, bs: int, n: int) -> None:
        self.nb, self.bs, self.n = nb, bs, n
        self._blocks: dict[tuple[int, int], CSCMatrix] = {}

    def add(self, bi: int, bj: int, blk: CSCMatrix) -> None:
        self._blocks[(bi, bj)] = blk

    def block(self, bi: int, bj: int) -> CSCMatrix:
        try:
            return self._blocks[(bi, bj)]
        except KeyError:
            raise RuntimeError(
                f"worker touched block ({bi},{bj}) it neither owns nor received"
            ) from None

    def block_slot(self, bi: int, bj: int) -> int:
        """Virtual storage slot: dense block-grid index.

        Stable and unique per block coordinate, so it serves as a plan
        cache key exactly like a real slot (each worker holds its own
        cache — plans are process-local index arrays).
        """
        return bi * self.nb + bj


def _worker_main(
    rank: int,
    nb: int,
    bs: int,
    n: int,
    owned: list[tuple[int, int, CSCMatrix]],
    tasks: list[tuple[int, int, int, int, int, int]],
    successors: list[list[int]],
    owner_of_task: np.ndarray,
    pivot_floor: float,
    use_plans: bool,
    plan_entry_limit: int | None,
    inboxes: list[mp.Queue],
    result_q: mp.Queue,
) -> None:
    """Worker loop: compute own tasks, exchange blocks, ship results back.

    ``tasks[tid] = (ttype, k, bi, bj, n_deps, flops)``.
    """
    from ..core.dag import Task
    from ..kernels.plans import PlanCache
    from ..kernels.selector import SelectorPolicy

    view = _LocalView(nb, bs, n)
    owned_keys: set[tuple[int, int]] = set()
    for bi, bj, blk in owned:
        view.add(bi, bj, blk)
        owned_keys.add((bi, bj))

    selector = SelectorPolicy.default()
    ws = Workspace()
    # plans are rank-local: each process addresses only blocks it holds
    plans = PlanCache(ssssm_entry_limit=plan_entry_limit) if use_plans else None
    my_tasks = [t for t in range(len(tasks)) if owner_of_task[t] == rank]
    counters = {t: tasks[t][4] for t in my_tasks}
    ready: list[tuple[int, int, int]] = []
    for t in my_tasks:
        if counters[t] == 0:
            heapq.heappush(ready, (tasks[t][1], tasks[t][0], t))
    remaining = len(my_tasks)
    sent_msgs = 0
    sent_bytes = 0.0

    def consumers(tid: int) -> set[int]:
        return {
            int(owner_of_task[s]) for s in successors[tid]
        } - {rank}

    def on_pred_done(tid: int) -> None:
        for s in successors[tid]:
            if int(owner_of_task[s]) == rank:
                counters[s] -= 1
                if counters[s] == 0:
                    heapq.heappush(ready, (tasks[s][1], tasks[s][0], s))

    import queue as queue_mod

    def absorb(msg) -> None:
        src_tid, bi, bj, indptr, indices, data = msg
        blk = CSCMatrix(
            (min(bs, n - bi * bs), min(bs, n - bj * bs)),
            indptr,
            indices,
            data,
            check=False,
        )
        view.add(bi, bj, blk)
        on_pred_done(src_tid)

    try:
        while remaining > 0:
            # execute everything currently runnable (priority order)
            while ready:
                _, _, tid = heapq.heappop(ready)
                ttype, k, bi, bj, _, flops = tasks[tid]
                task = Task(tid, TaskType(ttype), k, bi, bj, flops)
                feats = task_features(view, task)
                version = selector.select(_TTYPE_TO_KTYPE[task.ttype], feats)
                run_task(view, task, version, ws, pivot_floor=pivot_floor, plans=plans)
                remaining -= 1
                on_pred_done(tid)
                dests = consumers(tid)
                if dests:
                    target = view.block(bi, bj)
                    payload = (
                        tid, bi, bj,
                        target.indptr, target.indices, target.data,
                    )
                    for w in dests:
                        inboxes[w].put(payload)
                        sent_msgs += 1
                        sent_bytes += target.nnz * 12.0
            if remaining <= 0:
                break
            # nothing runnable: block for one message, then drain extras
            absorb(inboxes[rank].get())
            while True:
                try:
                    absorb(inboxes[rank].get_nowait())
                except queue_mod.Empty:
                    break
        # ship factored owned blocks home (received operand copies stay)
        out = [
            (bi, bj, blk.indptr, blk.indices, blk.data)
            for (bi, bj), blk in view._blocks.items()
            if (bi, bj) in owned_keys
        ]
        result_q.put(("ok", rank, len(my_tasks), sent_msgs, sent_bytes, out))
    except Exception as exc:  # pragma: no cover - surfaced in the master
        result_q.put(("error", rank, repr(exc)))


def factorize_distributed(
    f: BlockMatrix,
    dag: TaskDAG,
    n_procs: int = 2,
    *,
    options: NumericOptions | None = None,
    timeout: float = 300.0,
) -> DistributedStats:
    """Factorise ``f`` in place across ``n_procs`` OS processes.

    Tasks and block storage follow the pure 2D block-cyclic owner rule
    (the load balancer is not applied here: migrating a task away from
    its block's owner would require remote writes, which the message
    protocol — like PanguLU's — does not do for targets).

    ``timeout`` bounds the wait for each rank's result; a dead or hung
    rank (failure injection, OOM kill, …) terminates the remaining pool
    and raises instead of hanging the caller.
    """
    import queue as queue_mod

    options = options or NumericOptions()
    if n_procs < 1:
        raise ValueError("need at least one process")
    grid = ProcessGrid.square(n_procs)
    owner_of_block: dict[tuple[int, int], int] = {}
    for bj in range(f.nb):
        rows, _ = f.blocks_in_column(bj)
        for bi in rows:
            owner_of_block[(int(bi), bj)] = grid.owner(int(bi), bj)
    owner_of_task = np.asarray(
        [owner_of_block[(t.bi, t.bj)] for t in dag.tasks], dtype=np.int64
    )

    tasks = [
        (int(t.ttype), t.k, t.bi, t.bj, t.n_deps, t.flops) for t in dag.tasks
    ]
    successors = [t.successors for t in dag.tasks]

    ctx = mp.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(n_procs)]
    result_q = ctx.Queue()

    owned_per_rank: list[list[tuple[int, int, CSCMatrix]]] = [
        [] for _ in range(n_procs)
    ]
    for (bi, bj), rank in owner_of_block.items():
        owned_per_rank[rank].append((bi, bj, f.block(bi, bj)))

    procs = []
    for rank in range(n_procs):
        p = ctx.Process(
            target=_worker_main,
            args=(
                rank, f.nb, f.bs, f.n, owned_per_rank[rank], tasks,
                successors, owner_of_task, options.pivot_floor,
                options.use_plans, options.plan_entry_limit,
                inboxes, result_q,
            ),
            daemon=True,
        )
        p.start()
        procs.append(p)

    tasks_per_proc = [0] * n_procs
    messages = 0
    total_bytes = 0.0
    errors: list[str] = []
    for _ in range(n_procs):
        try:
            msg = result_q.get(timeout=timeout)
        except queue_mod.Empty:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            dead = [r for r, p in enumerate(procs) if not p.is_alive()]
            raise RuntimeError(
                f"distributed factorisation timed out after {timeout}s "
                f"(ranks no longer alive: {dead}) — worker crash or deadlock"
            ) from None
        if msg[0] == "error":
            # a failed rank can no longer feed its consumers, so the rest
            # of the pool would block forever on their inboxes — tear the
            # whole pool down immediately and surface the failure
            errors.append(f"rank {msg[1]}: {msg[2]}")
            for p in procs:
                if p.is_alive():
                    p.terminate()
            break
        _, rank, ntasks, sent, nbytes, blocks = msg
        tasks_per_proc[rank] = ntasks
        messages += sent
        total_bytes += nbytes
        for bi, bj, _indptr, _indices, data in blocks:
            if owner_of_block.get((bi, bj)) != rank:
                continue  # received operand copy, not authoritative
            f.block(bi, bj).data[...] = data
    for p in procs:
        p.join(timeout=30)
        if p.is_alive():  # pragma: no cover - stuck feeder safety net
            p.terminate()
    if errors:
        raise RuntimeError("; ".join(errors))
    return DistributedStats(
        n_procs=n_procs,
        tasks_per_proc=tasks_per_proc,
        messages_sent=messages,
        block_bytes_sent=total_bytes,
    )
