"""Distributed-memory synchronisation-free executor.

The closest in-repo analogue of PanguLU's MPI execution: the factorisation
runs on ``n_procs`` ranks, each of which

* initially holds **only the blocks it owns** under the configured
  :class:`~repro.core.placement.PlacementPolicy` (2D block-cyclic by
  default; distributed memory, not shared);
* executes the tasks targeting its blocks, picking the highest-priority
  (earliest elimination step) ready task — the Section 4.4 discipline,
  run by a rank-local :class:`~repro.runtime.scheduler.SchedulerCore`
  restricted to the rank's own tasks;
* on completing a panel task, **sends the factored block** to exactly the
  processes that consume it, piggybacking the dependency-counter
  decrement on the data message (the paper's "sends the sub-matrix block
  to the other required process", Fig. 10 step 2c);
* decrements counters and releases tasks on receipt (Fig. 10 step 3b) —
  no barriers, no global synchronisation of any kind.

The message substrate is a pluggable :class:`~repro.runtime.transports.
Transport`: by default one OS process per rank with ``multiprocessing``
queues (block payloads are the raw ``(indptr, indices, data)`` arrays —
on the arena layout these are zero-copy slab slices, and the wire-byte
accounting is unchanged because a view's ``nbytes`` is the slice's size);
the in-process :class:`~repro.runtime.transports.LoopbackTransport` runs
the identical protocol on threads for deterministic testing and fault
injection.  The master scatters the owned blocks, gathers the factored
ones back, and patches them into the caller's
:class:`~repro.core.blocking.BlockMatrix`, so the result is
indistinguishable from a sequential factorisation (asserted by the
tests).

With ``n_threads > 1`` each rank becomes a **hybrid** rank (HYLU-style
mixed parallelism): a dedicated receiver thread absorbs inbound block
messages while ``n_threads`` compute threads drain the rank's one shared
:class:`~repro.runtime.scheduler.SchedulerCore` under a condition lock —
the exact threading policy of :mod:`repro.runtime.threaded` — so the
message protocol, trace lanes and RaceChecker instrumentation are reused
unchanged.

This executor is about protocol fidelity, not speed: Python processes
pay pickling costs that real MPI ranks do not.
"""

from __future__ import annotations

import logging
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.blocking import BlockMatrix
from ..core.dag import TaskDAG, TaskType
from ..core.placement import CyclicPlacement, PlacementPolicy
from ..core.numeric import (
    _TTYPE_TO_KTYPE,
    NumericOptions,
    execute_task,
    resolve_compress,
    task_features,
)
from ..core.tsolve import (
    TSolveStats,
    _check_rhs,
    _KIND_NAMES,
    execute_tsolve_task,
    tsolve_core,
    tsolve_task_label,
    tsolve_write_slots,
)
from ..core.tsolve_dag import TSolveDAG, TSolveTaskType
from ..kernels.base import Workspace
from ..sparse.blockrep import CompressedBlock
from ..sparse.csc import CSCMatrix
from .scheduler import EventRecorder, SchedulerCore, ready_entry
from .transports import (
    Endpoint,
    MultiprocessingTransport,
    Transport,
    TransportStopped,
    TransportTimeout,
)

__all__ = ["DistributedStats", "factorize_distributed", "tsolve_distributed"]

logger = logging.getLogger(__name__)


@dataclass
class DistributedStats:
    """Accounting of one distributed factorisation."""

    n_procs: int
    tasks_per_proc: list[int]
    messages_sent: int
    block_bytes_sent: float
    kernel_choices: dict[int, str] = field(default_factory=dict)
    pivots_replaced: int = 0
    planned_tasks: int = 0
    blocks_compressed: int = 0
    lr_value_bytes: int = 0


def _block_nbytes(blk: CSCMatrix) -> int:
    """Actual wire size of a block payload: the ``indptr``, ``indices``
    and ``data`` arrays at their real dtypes."""
    return blk.indptr.nbytes + blk.indices.nbytes + blk.data.nbytes


class _LocalView:
    """A worker's partial view of the block matrix.

    Quacks like :class:`BlockMatrix` for the needs of ``run_task`` /
    ``task_features`` (``block``/``block_slot``/``blk_values``), but holds
    only owned + received blocks; touching an absent block is a protocol
    bug and raises immediately.
    """

    def __init__(self, boundaries: np.ndarray) -> None:
        self.boundaries = np.asarray(boundaries, dtype=np.int64)
        self.nb = self.boundaries.size - 1
        self.n = int(self.boundaries[-1])
        self._blocks: dict[tuple[int, int], CSCMatrix] = {}
        # low-rank overlay, same contract as BlockMatrix.lr_overlay: for
        # owned blocks it sits *beside* the exact CSC data; for received
        # panels it may be the only representation (the owner shipped
        # U/V instead of the CSC arrays)
        self._compressed: dict[tuple[int, int], CompressedBlock] = {}

    def add(self, bi: int, bj: int, blk: CSCMatrix) -> None:
        self._blocks[(bi, bj)] = blk

    def compressed_block(self, bi: int, bj: int) -> CompressedBlock | None:
        """The low-rank overlay of ``(bi, bj)``, or ``None``."""
        return self._compressed.get((bi, bj))

    def set_compressed(
        self, bi: int, bj: int, u: np.ndarray, v: np.ndarray, *, src_nnz: int
    ) -> CompressedBlock:
        """Install a ``U @ V.T`` overlay for block ``(bi, bj)``."""
        cb = CompressedBlock(
            shape=(self.block_order(bi), self.block_order(bj)),
            u=u, v=v, src_nnz=int(src_nnz),
        )
        self._compressed[(bi, bj)] = cb
        return cb

    def block(self, bi: int, bj: int) -> CSCMatrix:
        try:
            return self._blocks[(bi, bj)]
        except KeyError:
            raise RuntimeError(
                f"worker touched block ({bi},{bj}) it neither owns nor received"
            ) from None

    def block_slot(self, bi: int, bj: int) -> int:
        """Virtual storage slot: dense block-grid index.

        Stable and unique per block coordinate, so it serves as a plan
        cache key exactly like a real slot (each worker holds its own
        cache — plans are process-local index arrays).
        """
        return bi * self.nb + bj

    def block_start(self, b: int) -> int:
        """First global row/column of block index ``b``."""
        return int(self.boundaries[b])

    def block_order(self, b: int) -> int:
        """Row/column count of block index ``b``."""
        return int(self.boundaries[b + 1] - self.boundaries[b])

    def block_slice(self, b: int) -> slice:
        """Global row/column slice covered by block index ``b``."""
        return slice(int(self.boundaries[b]), int(self.boundaries[b + 1]))


def _block_payload(
    view: _LocalView, tid: int, bi: int, bj: int
) -> tuple[tuple, int]:
    """``(payload, wire_bytes)`` for shipping block ``(bi, bj)``.

    A compressed panel travels as its low-rank factors — tag ``"lr"``,
    ``u.nbytes + v.nbytes`` real bytes (plus ``src_nnz`` so the receiver
    computes the same :class:`~repro.kernels.selector.TaskFeatures` as
    the owner) — everything else as the exact CSC triplet under tag
    ``"csc"``.  This is where the compression actually saves wire
    traffic: consumers of a rank-``r`` panel receive ``r·(m+n)`` values
    instead of ``nnz`` values plus the index arrays.
    """
    cb = view.compressed_block(bi, bj)
    if cb is not None:
        return (tid, bi, bj, "lr", cb.u, cb.v, cb.src_nnz), (
            cb.u.nbytes + cb.v.nbytes
        )
    target = view.block(bi, bj)
    payload = (tid, bi, bj, "csc", target.indptr, target.indices, target.data)
    return payload, _block_nbytes(target)


def _worker_main(
    rank: int,
    endpoint: Endpoint,
    boundaries: np.ndarray,
    owned: list[tuple[int, int, CSCMatrix]],
    tasks: list[tuple[int, int, int, int, int, int]],
    successors: list[list[int]],
    owner_of_task: np.ndarray,
    pivot_floor: float,
    use_plans: bool,
    plan_entry_limit: int | None,
    trace: bool,
    validate: bool = False,
    n_threads: int = 1,
    compress_tol: float = 0.0,
    compress_min_order: int = 32,
) -> None:
    """Worker loop: compute own tasks, exchange blocks, ship results back.

    ``tasks[tid] = (ttype, k, bi, bj, n_deps, flops)``.  With
    ``validate`` a rank-local :class:`~repro.devtools.racecheck.
    RaceChecker` audits the counter protocol; a violation is posted to
    the master as this rank's failure.  With ``n_threads > 1`` the rank
    runs the hybrid mode: a receiver thread absorbs inbound messages
    while ``n_threads`` compute threads share this rank's scheduler core
    (the :mod:`repro.runtime.threaded` policy, per-target-block locks
    included).  With ``compress_tol > 0`` the rank compresses its own
    GESSM/TSTRF panel outputs and ships low-rank ``"lr"`` payloads to
    their consumers; the gathered factors are unaffected (owners keep
    and return the exact CSC arrays).
    """
    from ..core.dag import Task
    from ..kernels.plans import PlanCache
    from ..kernels.selector import SelectorPolicy

    checker = None
    if validate:
        from ..devtools.racecheck import CheckedSchedulerCore, RaceChecker

        checker = RaceChecker(label=f"rank {rank}")

    view = _LocalView(boundaries)
    owned_keys: set[tuple[int, int]] = set()
    for bi, bj, blk in owned:
        view.add(bi, bj, blk)
        owned_keys.add((bi, bj))

    selector = SelectorPolicy.default()
    ws = Workspace()
    # plans are rank-local: each process addresses only blocks it holds
    plans = PlanCache(ssssm_entry_limit=plan_entry_limit) if use_plans else None
    # the compression policy is rebuilt from the two scalars the master
    # shipped (policies hold a selector tree — cheaper to reconstruct
    # than to pickle) against this rank's own selector instance
    compress = resolve_compress(NumericOptions(
        selector=selector,
        compress_tol=compress_tol,
        compress_min_order=compress_min_order,
    ))
    recorder = EventRecorder() if trace else None

    class _T:  # entry shim so ready_entry works on the serialised tuples
        __slots__ = ("k", "ttype")

        def __init__(self, k, ttype):
            self.k, self.ttype = k, ttype

    entries = [ready_entry(_T(t[1], t[0]), tid) for tid, t in enumerate(tasks)]
    succ_arrays = [np.asarray(s, dtype=np.int64) for s in successors]
    n_deps = np.asarray([t[4] for t in tasks], dtype=np.int64)
    my_tasks = np.flatnonzero(owner_of_task == rank)
    core = SchedulerCore(
        entries, succ_arrays, n_deps,
        owned=my_tasks, recorder=recorder, lane=rank,
    )
    if checker is not None:
        core = CheckedSchedulerCore.adopt(core, checker)
    sent_msgs = 0
    sent_bytes = 0
    choices: dict[int, str] = {}
    pivots = 0
    planned_count = 0

    def consumers(tid: int) -> set[int]:
        return {int(owner_of_task[s]) for s in successors[tid]} - {rank}

    def absorb(msg) -> None:
        src_tid, bi, bj, tag = msg[:4]
        if tag == "lr":
            # low-rank panel: install the overlay only — there is no CSC
            # representation of this block on the wire, and none is
            # needed (its sole consumers are SSSSM reads, which the
            # LR kernels serve straight from U/V)
            u, v, src_nnz = msg[4:]
            view.set_compressed(bi, bj, u, v, src_nnz=src_nnz)
            nbytes = u.nbytes + v.nbytes
        else:
            indptr, indices, data = msg[4:]
            # wrap the payload arrays directly (zero-copy): over loopback
            # these are the sender's live block arrays — slab slices on
            # the arena layout — and sent blocks are final (panel results
            # are never rewritten), so aliasing them is safe; over
            # multiprocessing they are fresh arrays off the queue
            blk = CSCMatrix.from_views(
                (view.block_order(bi), view.block_order(bj)),
                indptr,
                indices,
                data,
            )
            view.add(bi, bj, blk)
            nbytes = indptr.nbytes + indices.nbytes + data.nbytes
        if recorder is not None:
            recorder.recv(rank, int(owner_of_task[src_tid]), src_tid, nbytes)
        core.complete(src_tid)  # remote predecessor: releases local tasks

    def run_single_lane() -> None:
        nonlocal sent_msgs, sent_bytes, pivots, planned_count
        while not core.done():
            tid = core.pop()
            if tid is None:
                # nothing runnable: block for one message, then drain extras
                absorb(endpoint.recv())
                while True:
                    try:
                        absorb(endpoint.recv(block=False))
                    except queue_mod.Empty:
                        break
                continue
            ttype, k, bi, bj, _, flops = tasks[tid]
            task = Task(tid, TaskType(ttype), k, bi, bj, flops)
            feats = task_features(view, task)
            ktype = _TTYPE_TO_KTYPE[task.ttype]
            version = selector.select(ktype, feats)
            t0 = time.perf_counter() if recorder else 0.0
            slot = view.block_slot(bi, bj)
            if checker is not None:
                checker.begin_write(slot, tid, rank)
            try:
                replaced, planned = execute_task(
                    view, task, version, ws, pivot_floor=pivot_floor,
                    plans=plans, compress=compress,
                )
            finally:
                if checker is not None:
                    checker.end_write(slot, tid, rank)
            if recorder is not None:
                recorder.task(
                    rank, f"{task.ttype.name}(k={k},{bi},{bj})",
                    task.ttype.name, t0, time.perf_counter(), tid,
                )
            choices[tid] = f"{ktype.value}/{version}"
            pivots += replaced
            planned_count += int(planned)
            core.complete(tid)
            endpoint.on_task_executed(core.executed)
            dests = consumers(tid)
            if dests:
                payload, nbytes = _block_payload(view, tid, bi, bj)
                for w in dests:
                    endpoint.send(w, payload)
                    sent_msgs += 1
                    sent_bytes += nbytes
                    if recorder is not None:
                        recorder.send(rank, w, tid, nbytes)

    def run_hybrid() -> None:
        nonlocal sent_msgs, sent_bytes, pivots, planned_count
        cond = threading.Condition()
        errors: list[BaseException] = []
        # one lock per block this rank's tasks write (virtual slots)
        slot_locks: dict[int, threading.Lock] = {}
        for t in my_tasks:
            slot_locks.setdefault(
                view.block_slot(tasks[t][2], tasks[t][3]), threading.Lock()
            )
        # each remote task with a locally-owned successor sends exactly
        # one message here, so the receiver's lifetime is a fixed count
        expected = sum(
            1
            for t in range(len(tasks))
            if owner_of_task[t] != rank
            and any(owner_of_task[s] == rank for s in successors[t])
        )

        def receive() -> None:
            for _ in range(expected):
                try:
                    msg = endpoint.recv()
                except TransportStopped:
                    return
                with cond:
                    absorb(msg)
                    cond.notify_all()

        def compute(wid: int) -> None:
            nonlocal sent_msgs, sent_bytes, pivots, planned_count
            ws_local = Workspace()
            try:
                while True:
                    with cond:
                        tid = core.pop()
                        while tid is None and not core.done() and not errors:
                            cond.wait()
                            tid = core.pop()
                        if errors or tid is None:
                            return
                    ttype, k, bi, bj, _, flops = tasks[tid]
                    task = Task(tid, TaskType(ttype), k, bi, bj, flops)
                    feats = task_features(view, task)
                    ktype = _TTYPE_TO_KTYPE[task.ttype]
                    version = selector.select(ktype, feats)
                    t0 = time.perf_counter() if recorder else 0.0
                    slot = view.block_slot(bi, bj)
                    with slot_locks[slot]:
                        if checker is not None:
                            checker.begin_write(slot, tid, wid)
                        try:
                            replaced, planned = execute_task(
                                view, task, version, ws_local,
                                pivot_floor=pivot_floor, plans=plans,
                                compress=compress,
                            )
                        finally:
                            if checker is not None:
                                checker.end_write(slot, tid, wid)
                    if recorder is not None:
                        recorder.task(
                            rank, f"{task.ttype.name}(k={k},{bi},{bj})",
                            task.ttype.name, t0, time.perf_counter(), tid,
                        )
                    with cond:
                        choices[tid] = f"{ktype.value}/{version}"
                        pivots += replaced
                        planned_count += int(planned)
                        newly_ready = core.complete(tid)
                        if core.done():
                            cond.notify_all()
                        elif newly_ready:
                            cond.notify(newly_ready)
                    endpoint.on_task_executed(core.executed)
                    dests = consumers(tid)
                    if dests:
                        # panel results are final (the panel is its
                        # block's last writer), so the live arrays are
                        # stable by the time any consumer reads them
                        payload, nbytes = _block_payload(view, tid, bi, bj)
                        for w in dests:
                            endpoint.send(w, payload)
                            with cond:
                                sent_msgs += 1
                                sent_bytes += nbytes
                            if recorder is not None:
                                recorder.send(rank, w, tid, nbytes)
            except BaseException as exc:  # surface via the master
                with cond:
                    errors.append(exc)
                    cond.notify_all()

        rx = threading.Thread(target=receive, daemon=True)
        rx.start()
        pool = [
            threading.Thread(target=compute, args=(wid,), daemon=True)
            for wid in range(n_threads)
        ]
        for th in pool:
            th.start()
        for th in pool:
            th.join()
        if errors:
            raise errors[0]

    try:
        if n_threads > 1:
            run_hybrid()
        else:
            run_single_lane()
        if checker is not None:
            checker.final_check(core)
        # ship factored owned blocks home (received operand copies stay);
        # owners always keep the exact CSC arrays, so the gathered
        # factors are compression-free regardless of compress_tol
        out = [
            (bi, bj, blk.indptr, blk.indices, blk.data)
            for (bi, bj), blk in view._blocks.items()
            if (bi, bj) in owned_keys
        ]
        # overlays this rank computed itself (received copies would
        # double-count the owner's work across the pool)
        n_compressed = sum(
            1 for key in view._compressed if key in owned_keys
        )
        lr_bytes = sum(
            cb.value_nbytes
            for key, cb in view._compressed.items()
            if key in owned_keys
        )
        endpoint.post_result(
            (
                "ok", rank, int(my_tasks.size), sent_msgs, sent_bytes, out,
                choices, pivots, planned_count, n_compressed, lr_bytes,
                recorder,
            )
        )
    except TransportStopped:  # master tore the pool down; exit quietly
        return
    except BaseException as exc:
        try:
            endpoint.post_result(("error", rank, repr(exc)))
        except (OSError, ValueError, TransportStopped) as post_exc:
            # pragma: no cover - result channel gone (master died or
            # closed the queue); the original failure would otherwise
            # vanish, so log both before exiting
            logger.error(
                "rank %d failed with %r and could not report it "
                "(result channel gone: %r)", rank, exc, post_exc,
            )


def factorize_distributed(
    f: BlockMatrix,
    dag: TaskDAG,
    n_procs: int = 2,
    *,
    options: NumericOptions | None = None,
    timeout: float = 300.0,
    transport: Transport | None = None,
    recorder: EventRecorder | None = None,
    validate: bool = False,
    placement: PlacementPolicy | None = None,
    n_threads: int = 1,
) -> DistributedStats:
    """Factorise ``f`` in place across ``n_procs`` ranks.

    Tasks and block storage follow the block→rank map of ``placement``
    (a fitted :class:`~repro.core.placement.PlacementPolicy`; ``None``
    selects the paper's 2D block-cyclic rule).  The load balancer is not
    applied here: migrating a task away from its block's owner would
    require remote writes, which the message protocol — like PanguLU's —
    does not do for targets.  With ``n_threads > 1`` each rank drives a
    pool of that many compute threads over its shared scheduler core
    (the ``"hybrid"`` engine).

    ``transport`` selects the message substrate: the default
    :class:`~repro.runtime.transports.MultiprocessingTransport` (one OS
    process per rank) or a
    :class:`~repro.runtime.transports.LoopbackTransport` (threads in this
    process, deterministic, fault-injectable).  ``timeout`` bounds the
    wait for each rank's result; a dead or hung rank (failure injection,
    OOM kill, …) terminates the remaining pool and raises instead of
    hanging the caller.  Pass a ``recorder`` to collect per-rank task and
    message send/recv events from the real run (merged into it on
    success) for Chrome-trace export.  With ``validate`` each rank runs
    a local :class:`~repro.devtools.racecheck.RaceChecker`; protocol
    violations (duplicate completions, double writes, dropped messages)
    surface as that rank's error instead of silent corruption.
    """
    options = options or NumericOptions()
    if n_procs < 1:
        raise ValueError("need at least one process")
    if n_threads < 1:
        raise ValueError("need at least one thread per rank")
    if placement is None:
        placement = CyclicPlacement(n_procs)
    elif placement.nprocs != n_procs:
        raise ValueError(
            f"placement {placement.name!r} was built for "
            f"{placement.nprocs} ranks, but {n_procs} were requested"
        )
    owner_of_block: dict[tuple[int, int], int] = {}
    for bj in range(f.nb):
        rows, _ = f.blocks_in_column(bj)
        for bi in rows:
            owner_of_block[(int(bi), bj)] = placement.owner(int(bi), bj)
    owner_of_task = np.asarray(
        [owner_of_block[(t.bi, t.bj)] for t in dag.tasks], dtype=np.int64
    )

    tasks = [
        (int(t.ttype), t.k, t.bi, t.bj, t.n_deps, t.flops) for t in dag.tasks
    ]
    successors = [t.successors for t in dag.tasks]

    owned_per_rank: list[list[tuple[int, int, CSCMatrix]]] = [
        [] for _ in range(n_procs)
    ]
    for (bi, bj), rank in owner_of_block.items():
        owned_per_rank[rank].append((bi, bj, f.block(bi, bj)))

    transport = transport or MultiprocessingTransport()

    def args_of_rank(rank: int) -> tuple:
        return (
            f.boundaries, owned_per_rank[rank], tasks, successors,
            owner_of_task, options.pivot_floor, options.use_plans,
            options.plan_entry_limit, recorder is not None, validate,
            n_threads, options.compress_tol, options.compress_min_order,
        )

    transport.start(n_procs, _worker_main, args_of_rank)

    stats = DistributedStats(
        n_procs=n_procs,
        tasks_per_proc=[0] * n_procs,
        messages_sent=0,
        block_bytes_sent=0.0,
    )
    errors: list[str] = []
    for _ in range(n_procs):
        try:
            msg = transport.get_result(timeout)
        except TransportTimeout as exc:
            transport.terminate()
            transport.join(timeout=5)
            raise RuntimeError(
                f"distributed factorisation timed out after {timeout}s "
                f"(ranks no longer alive: {exc.dead_ranks}) — "
                "worker crash or deadlock"
            ) from None
        if msg[0] == "error":
            # a failed rank can no longer feed its consumers, so the rest
            # of the pool would block forever on their inboxes — tear the
            # whole pool down immediately and surface the failure
            errors.append(f"rank {msg[1]}: {msg[2]}")
            transport.terminate()
            break
        (_, rank, ntasks, sent, nbytes, blocks, choices, pivots,
         planned, n_compressed, lr_bytes, rank_recorder) = msg
        stats.tasks_per_proc[rank] = ntasks
        stats.messages_sent += sent
        stats.block_bytes_sent += nbytes
        stats.kernel_choices.update(choices)
        stats.pivots_replaced += pivots
        stats.planned_tasks += planned
        stats.blocks_compressed += n_compressed
        stats.lr_value_bytes += lr_bytes
        if recorder is not None and rank_recorder is not None:
            recorder.merge(rank_recorder)
        for bi, bj, _indptr, _indices, data in blocks:
            if owner_of_block.get((bi, bj)) != rank:
                continue  # received operand copy, not authoritative
            f.block(bi, bj).data[...] = data
    transport.join(timeout=30)
    if errors:
        raise RuntimeError("; ".join(errors))
    return stats


# ----------------------------------------------------------------------
# distributed triangular solve (phase 5 over the same transports)
# ----------------------------------------------------------------------

def _tsolve_worker_main(
    rank: int,
    endpoint: Endpoint,
    boundaries: np.ndarray,
    owned: list[tuple[int, int, CSCMatrix]],
    dag_arrays: tuple,
    b: np.ndarray,
    use_plans: bool,
    trace: bool,
    validate: bool = False,
    n_threads: int = 1,
) -> None:
    """Solve-phase worker loop: run owned solve tasks, exchange RHS
    segments, ship solved ``x`` segments back.

    Each message carries the *segment* a task just wrote (real byte
    accounting: the segment array's ``nbytes``).  Because transports only
    order messages per sender, a slow producer's payload can arrive after
    a newer write to the same segment already landed; the per-task write
    sequence numbers (``seq_y``/``seq_x`` of the executable DAG) make the
    receive path idempotent — stale payloads still decrement the
    dependency counter but no longer touch the array.
    """
    (kinds, k_of, target, n_deps, successors, owner_of_task,
     seq_y, seq_x) = dag_arrays
    tdag = TSolveDAG(
        kinds=kinds, k_of=k_of, target=target,
        flops=np.zeros(len(kinds)), out_bytes=np.zeros(len(kinds)),
        n_deps=n_deps, successors=successors, owner=owner_of_task,
        total_flops=0.0, seq_y=seq_y, seq_x=seq_x,
    )
    checker = None
    if validate:
        from ..devtools.racecheck import CheckedSchedulerCore, RaceChecker

        checker = RaceChecker(label=f"rank {rank}")

    view = _LocalView(boundaries)
    for bi, bj, blk in owned:
        view.add(bi, bj, blk)

    from ..kernels.plans import PlanCache

    plans = PlanCache() if use_plans else None
    recorder = EventRecorder() if trace else None
    y = np.array(b, dtype=np.float64)
    x = np.zeros_like(y)
    my_tasks = np.flatnonzero(owner_of_task == rank)
    core = tsolve_core(
        tdag, view.nb, owned=my_tasks, recorder=recorder, lane=rank
    )
    if checker is not None:
        core = CheckedSchedulerCore.adopt(core, checker)

    # highest write-sequence applied per segment of each RHS array —
    # local writes and accepted messages both advance it
    applied_y: dict[int, int] = {}
    applied_x: dict[int, int] = {}
    sent_msgs = 0
    sent_bytes = 0

    def seg_of(tgt: int) -> slice:
        return view.block_slice(tgt)

    def mark_written(tid: int, tgt: int) -> None:
        if seq_y[tid] >= 0:
            applied_y[tgt] = max(applied_y.get(tgt, -1), int(seq_y[tid]))
        if seq_x[tid] >= 0:
            applied_x[tgt] = max(applied_x.get(tgt, -1), int(seq_x[tid]))

    def absorb(msg) -> None:
        src_tid, tgt, arr = msg
        seg = seg_of(tgt)
        if seq_y[src_tid] >= 0 and seq_y[src_tid] > applied_y.get(tgt, -1):
            y[seg] = arr
            applied_y[tgt] = int(seq_y[src_tid])
        if seq_x[src_tid] >= 0 and seq_x[src_tid] > applied_x.get(tgt, -1):
            # a DIAG_F payload doubles as the backward seed (x = y there)
            x[seg] = arr
            applied_x[tgt] = int(seq_x[src_tid])
        if recorder is not None:
            recorder.recv(rank, int(owner_of_task[src_tid]), src_tid, arr.nbytes)
        core.complete(src_tid)  # remote predecessor: releases local tasks

    def consumers(tid: int) -> set[int]:
        return {int(owner_of_task[s]) for s in successors[tid]} - {rank}

    def run_single_lane() -> None:
        nonlocal sent_msgs, sent_bytes
        while not core.done():
            tid = core.pop()
            if tid is None:
                absorb(endpoint.recv())
                while True:
                    try:
                        absorb(endpoint.recv(block=False))
                    except queue_mod.Empty:
                        break
                continue
            kind = int(kinds[tid])
            tgt = int(target[tid])
            slots = tsolve_write_slots(tdag, tid, view.nb)
            t0 = time.perf_counter() if recorder else 0.0
            if checker is not None:
                for s in slots:
                    checker.begin_write(s, tid, rank)
            try:
                execute_tsolve_task(view, tdag, tid, y, x, plans)
            finally:
                if checker is not None:
                    for s in slots:
                        checker.end_write(s, tid, rank)
            mark_written(tid, tgt)
            if recorder is not None:
                recorder.task(
                    rank, tsolve_task_label(tdag, tid), _KIND_NAMES[kind],
                    t0, time.perf_counter(), tid,
                )
            core.complete(tid)
            endpoint.on_task_executed(core.executed)
            dests = consumers(tid)
            if dests:
                seg = seg_of(tgt)
                # y for forward writers (a DIAG_F seed equals its y), the
                # x segment for backward writers
                arr = np.array(y[seg] if kind in (
                    TSolveTaskType.DIAG_F, TSolveTaskType.UPD_F
                ) else x[seg])
                for w in dests:
                    endpoint.send(w, (tid, tgt, arr))
                    sent_msgs += 1
                    sent_bytes += arr.nbytes
                    if recorder is not None:
                        recorder.send(rank, w, tid, arr.nbytes)

    def run_hybrid() -> None:
        nonlocal sent_msgs, sent_bytes
        cond = threading.Condition()
        errors: list[BaseException] = []
        # y slots [0, nb), x slots [nb, 2·nb) — same layout as
        # tsolve_write_slots, shared by writers and the receiver
        seg_locks = [threading.Lock() for _ in range(2 * view.nb)]
        expected = sum(
            1
            for t in range(len(kinds))
            if owner_of_task[t] != rank
            and any(owner_of_task[s] == rank for s in successors[t])
        )

        def absorb_locked(msg) -> None:
            src_tid, tgt, arr = msg
            seg = seg_of(tgt)
            if seq_y[src_tid] >= 0:
                with seg_locks[tgt]:
                    if seq_y[src_tid] > applied_y.get(tgt, -1):
                        y[seg] = arr
                        applied_y[tgt] = int(seq_y[src_tid])
            if seq_x[src_tid] >= 0:
                with seg_locks[view.nb + tgt]:
                    if seq_x[src_tid] > applied_x.get(tgt, -1):
                        x[seg] = arr
                        applied_x[tgt] = int(seq_x[src_tid])
            if recorder is not None:
                recorder.recv(
                    rank, int(owner_of_task[src_tid]), src_tid, arr.nbytes
                )
            with cond:
                core.complete(src_tid)
                cond.notify_all()

        def receive() -> None:
            for _ in range(expected):
                try:
                    msg = endpoint.recv()
                except TransportStopped:
                    return
                absorb_locked(msg)

        def compute(wid: int) -> None:
            nonlocal sent_msgs, sent_bytes
            try:
                while True:
                    with cond:
                        tid = core.pop()
                        while tid is None and not core.done() and not errors:
                            cond.wait()
                            tid = core.pop()
                        if errors or tid is None:
                            return
                    kind = int(kinds[tid])
                    tgt = int(target[tid])
                    slots = tsolve_write_slots(tdag, tid, view.nb)
                    dests = consumers(tid)
                    t0 = time.perf_counter() if recorder else 0.0
                    payload = None
                    for s in slots:
                        seg_locks[s].acquire()
                    if checker is not None:
                        for s in slots:
                            checker.begin_write(s, tid, wid)
                    try:
                        execute_tsolve_task(view, tdag, tid, y, x, plans)
                        mark_written(tid, tgt)
                        if dests:
                            # snapshot the outgoing segment while the
                            # write locks are still held: once the task
                            # completes, a chained successor writer on
                            # another thread may overwrite it before the
                            # send reads it
                            seg = seg_of(tgt)
                            payload = np.array(y[seg] if kind in (
                                TSolveTaskType.DIAG_F, TSolveTaskType.UPD_F
                            ) else x[seg])
                    finally:
                        if checker is not None:
                            for s in slots:
                                checker.end_write(s, tid, wid)
                        for s in reversed(slots):
                            seg_locks[s].release()
                    if recorder is not None:
                        recorder.task(
                            rank, tsolve_task_label(tdag, tid),
                            _KIND_NAMES[kind], t0, time.perf_counter(), tid,
                        )
                    with cond:
                        newly_ready = core.complete(tid)
                        if core.done():
                            cond.notify_all()
                        elif newly_ready:
                            cond.notify(newly_ready)
                    endpoint.on_task_executed(core.executed)
                    for w in dests:
                        endpoint.send(w, (tid, tgt, payload))
                        with cond:
                            sent_msgs += 1
                            sent_bytes += payload.nbytes
                        if recorder is not None:
                            recorder.send(rank, w, tid, payload.nbytes)
            except BaseException as exc:  # surface via the master
                with cond:
                    errors.append(exc)
                    cond.notify_all()

        rx = threading.Thread(target=receive, daemon=True)
        rx.start()
        pool = [
            threading.Thread(target=compute, args=(wid,), daemon=True)
            for wid in range(n_threads)
        ]
        for th in pool:
            th.start()
        for th in pool:
            th.join()
        if errors:
            raise errors[0]

    try:
        if n_threads > 1:
            run_hybrid()
        else:
            run_single_lane()
        if checker is not None:
            checker.final_check(core)
        # ship home the x segments this rank finished (its DIAG_B tasks)
        xparts = [
            (int(target[t]), np.array(x[seg_of(int(target[t]))]))
            for t in my_tasks
            if int(kinds[t]) == TSolveTaskType.DIAG_B
        ]
        endpoint.post_result(
            ("ok", rank, int(core.executed), sent_msgs, sent_bytes,
             xparts, recorder)
        )
    except TransportStopped:  # master tore the pool down; exit quietly
        return
    except BaseException as exc:
        try:
            endpoint.post_result(("error", rank, repr(exc)))
        except (OSError, ValueError, TransportStopped) as post_exc:
            # pragma: no cover - result channel gone (master died or
            # closed the queue); log both failures before exiting
            logger.error(
                "tsolve rank %d failed with %r and could not report it "
                "(result channel gone: %r)", rank, exc, post_exc,
            )


def tsolve_distributed(
    f: BlockMatrix,
    tdag: TSolveDAG,
    b,
    n_procs: int = 2,
    *,
    use_plans: bool = True,
    timeout: float = 300.0,
    transport: Transport | None = None,
    recorder: EventRecorder | None = None,
    validate: bool = False,
    placement: PlacementPolicy | None = None,
    n_threads: int = 1,
) -> tuple:
    """Both triangular sweeps across ``n_procs`` ranks.

    ``tdag`` must be the *executable* solve DAG built with this run's
    block→rank owner map (``build_tsolve_dag(f, placement.owner,
    executable=True)``; ``placement=None`` selects the paper's 2D
    block-cyclic rule) — diag solves run on the diagonal block's owner,
    updates on the off-diagonal block's owner, so factor blocks stay put
    and only RHS segments travel.  Messages carry real segment bytes
    (``arr.nbytes``), accounted in the returned stats; the write-sequence
    guard of :func:`_tsolve_worker_main` keeps out-of-order deliveries
    harmless, so the gathered solution is bit-identical to
    :func:`repro.core.tsolve.tsolve_sequential`.  With ``n_threads > 1``
    each rank drains its scheduler core with a thread pool (the
    ``"hybrid"`` engine).  ``transport`` / ``timeout`` / ``recorder`` /
    ``validate`` behave exactly as in :func:`factorize_distributed`.
    Returns ``(x, TSolveStats)``.
    """
    if n_procs < 1:
        raise ValueError("need at least one process")
    if n_threads < 1:
        raise ValueError("need at least one thread per rank")
    if tdag.seq_y is None:
        raise ValueError("tsolve_distributed needs an executable solve DAG "
                         "(build_tsolve_dag(..., executable=True))")
    y0 = _check_rhs(f.n, b)
    if placement is None:
        placement = CyclicPlacement(n_procs)
    elif placement.nprocs != n_procs:
        raise ValueError(
            f"placement {placement.name!r} was built for "
            f"{placement.nprocs} ranks, but {n_procs} were requested"
        )
    owned_per_rank: list[list[tuple[int, int, CSCMatrix]]] = [
        [] for _ in range(n_procs)
    ]
    for bj in range(f.nb):
        rows, blocks = f.blocks_in_column(bj)
        for bi, blk in zip(rows, blocks):
            owned_per_rank[placement.owner(int(bi), bj)].append(
                (int(bi), bj, blk)
            )

    dag_arrays = (
        tdag.kinds, tdag.k_of, tdag.target, tdag.n_deps,
        tdag.successors, tdag.owner, tdag.seq_y, tdag.seq_x,
    )
    transport = transport or MultiprocessingTransport()

    def args_of_rank(rank: int) -> tuple:
        return (
            f.boundaries, owned_per_rank[rank], dag_arrays, y0,
            use_plans, recorder is not None, validate, n_threads,
        )

    t_start = time.perf_counter()
    transport.start(n_procs, _tsolve_worker_main, args_of_rank)

    stats = TSolveStats(
        engine="distributed" if n_threads == 1 else "hybrid",
        n_procs=n_procs,
        nrhs=1 if y0.ndim == 1 else y0.shape[1],
    )
    x = np.empty_like(y0)
    filled = np.zeros(f.nb, dtype=bool)
    errors: list[str] = []
    for _ in range(n_procs):
        try:
            msg = transport.get_result(timeout)
        except TransportTimeout as exc:
            transport.terminate()
            transport.join(timeout=5)
            raise RuntimeError(
                f"distributed tsolve timed out after {timeout}s "
                f"(ranks no longer alive: {exc.dead_ranks}) — "
                "worker crash or deadlock"
            ) from None
        if msg[0] == "error":
            errors.append(f"rank {msg[1]}: {msg[2]}")
            transport.terminate()
            break
        _, rank, ntasks, sent, nbytes, xparts, rank_recorder = msg
        stats.tasks_executed += ntasks
        stats.messages_sent += sent
        stats.seg_bytes_sent += nbytes
        if recorder is not None and rank_recorder is not None:
            recorder.merge(rank_recorder)
        for k, arr in xparts:
            x[f.block_slice(k)] = arr
            filled[k] = True
    transport.join(timeout=30)
    if errors:
        raise RuntimeError("; ".join(errors))
    if not np.all(filled):
        raise RuntimeError(
            f"distributed tsolve returned {int(filled.sum())} of {f.nb} "
            "solution segments"
        )
    stats.seconds = time.perf_counter() - t_start
    return x, stats
