"""Distributed heterogeneous runtime substrate: platform/network models,
kernel cost models, the discrete-event simulator, and the real threaded
synchronisation-free executor."""

from .adapters import (
    PanguLUSimulation,
    price_tasks,
    simulate_pangulu,
    simulate_tsolve,
)
from .distributed import DistributedStats, factorize_distributed
from .costmodel import (
    BYTES_PER_ENTRY,
    SimTask,
    VARIANT_PROFILES,
    VariantProfile,
    best_version,
    extract_sim_tasks,
    kernel_time,
    simulated_trees,
)
from .machine import (
    A100_PLATFORM,
    CPU_PLATFORM,
    MI50_PLATFORM,
    Device,
    Platform,
)
from .simulator import SimResult, SimSpec, simulate
from .trace import to_chrome_trace, write_chrome_trace
from .threaded import ThreadedStats, factorize_threaded

__all__ = [
    "Device",
    "Platform",
    "A100_PLATFORM",
    "MI50_PLATFORM",
    "CPU_PLATFORM",
    "SimTask",
    "VariantProfile",
    "VARIANT_PROFILES",
    "kernel_time",
    "best_version",
    "extract_sim_tasks",
    "simulated_trees",
    "BYTES_PER_ENTRY",
    "SimSpec",
    "SimResult",
    "simulate",
    "to_chrome_trace",
    "write_chrome_trace",
    "PanguLUSimulation",
    "simulate_pangulu",
    "simulate_tsolve",
    "price_tasks",
    "DistributedStats",
    "factorize_distributed",
    "ThreadedStats",
    "factorize_threaded",
]
