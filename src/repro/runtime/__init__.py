"""Distributed heterogeneous runtime substrate: the shared scheduler
core, platform/network models, kernel cost models, the discrete-event
simulator, the real threaded and distributed synchronisation-free
executors with pluggable transports, the engine registry, and
Chrome-trace export of simulated *and* real runs.

Re-exports resolve lazily (PEP 562): :mod:`repro.core` depends on
:mod:`repro.runtime.scheduler`, and the executors here depend on
:mod:`repro.core` — loading submodules on attribute access instead of at
package import keeps that mutual dependency acyclic.
"""

_EXPORTS = {
    # machine / cost models
    "Device": ".machine",
    "Platform": ".machine",
    "A100_PLATFORM": ".machine",
    "MI50_PLATFORM": ".machine",
    "CPU_PLATFORM": ".machine",
    "SimTask": ".costmodel",
    "VariantProfile": ".costmodel",
    "VARIANT_PROFILES": ".costmodel",
    "kernel_time": ".costmodel",
    "best_version": ".costmodel",
    "extract_sim_tasks": ".costmodel",
    "partition_flop_stats": ".costmodel",
    "simulated_trees": ".costmodel",
    "BYTES_PER_ENTRY": ".costmodel",
    # simulator + bridges
    "SimSpec": ".simulator",
    "SimResult": ".simulator",
    "simulate": ".simulator",
    "PanguLUSimulation": ".adapters",
    "simulate_pangulu": ".adapters",
    "simulate_tsolve": ".adapters",
    "price_tasks": ".adapters",
    # scheduler core + events
    "SchedulerCore": ".scheduler",
    "WorkerLocal": ".scheduler",
    "EventRecorder": ".scheduler",
    "ready_entry": ".scheduler",
    # tracing
    "to_chrome_trace": ".trace",
    "write_chrome_trace": ".trace",
    "recorder_to_chrome_trace": ".trace",
    "write_recorder_trace": ".trace",
    # engines + transports
    "register_engine": ".engines",
    "get_engine": ".engines",
    "available_engines": ".engines",
    "register_tsolve_engine": ".engines",
    "get_tsolve_engine": ".engines",
    "available_tsolve_engines": ".engines",
    "Transport": ".transports",
    "MultiprocessingTransport": ".transports",
    "LoopbackTransport": ".transports",
    "FaultPlan": ".transports",
    "InjectedFault": ".transports",
    "DistributedStats": ".distributed",
    "factorize_distributed": ".distributed",
    "tsolve_distributed": ".distributed",
    "ThreadedStats": ".threaded",
    "factorize_threaded": ".threaded",
    "tsolve_threaded": ".threaded",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name, __name__), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
