"""Pluggable transports for the distributed engine.

The distributed executor (:mod:`repro.runtime.distributed`) is the
Section 4.4 protocol over *some* message substrate.  This module is that
substrate, factored out:

* :class:`MultiprocessingTransport` — the production path: one OS
  process per rank, block payloads over ``multiprocessing`` queues (the
  in-repo analogue of MPI ranks).
* :class:`LoopbackTransport` — every rank is a thread in the calling
  process, messages travel over plain ``queue.Queue``.  Deterministic,
  debuggable with an ordinary debugger, and the host for **fault
  injection** (:class:`FaultPlan`): kill a rank before it starts, make a
  rank raise mid-run, silently drop its messages, or delay/reorder
  deliveries — so the timeout and teardown paths of the engine are
  testable in-process without real process crashes.

A transport owns the execution substrate (it launches the per-rank
worker function) and hands each worker an :class:`Endpoint` with
``send``/``recv``/``post_result``.  Adding an engine substrate (e.g. a
socket or MPI transport) means implementing these two classes — the
protocol itself is untouched.

Both distributed consumers ride the same transports: the numeric phase
(:func:`~repro.runtime.distributed.factorize_distributed`, factor-block
payloads) and the triangular solves
(:func:`~repro.runtime.distributed.tsolve_distributed`, RHS-segment
payloads).
"""

from __future__ import annotations

import queue as queue_mod
import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TransportTimeout",
    "TransportStopped",
    "InjectedFault",
    "FaultPlan",
    "Endpoint",
    "Transport",
    "MultiprocessingTransport",
    "LoopbackTransport",
]


class TransportTimeout(Exception):
    """No rank result arrived within the deadline.

    ``dead_ranks`` lists ranks that are no longer running — the master
    folds them into its diagnostic.
    """

    def __init__(self, timeout: float, dead_ranks: list[int]) -> None:
        super().__init__(f"no result within {timeout}s")
        self.timeout = timeout
        self.dead_ranks = dead_ranks


class TransportStopped(Exception):
    """The master tore the transport down; the worker should exit quietly."""


class InjectedFault(RuntimeError):
    """Deliberate failure raised inside a rank by a :class:`FaultPlan`."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for :class:`LoopbackTransport`.

    Attributes
    ----------
    dead_ranks:
        Ranks that never run — their consumers starve, exercising the
        master's timeout/teardown path.
    fail_after:
        ``{rank: n}`` — rank raises :class:`InjectedFault` after
        executing ``n`` tasks (the mid-factorisation crash path).
    drop_from:
        Ranks whose sends are silently discarded (a lossy link; again a
        starvation → timeout scenario).
    duplicate_from:
        Ranks whose every send is delivered **twice** (a retransmitting
        link).  The counter protocol is *not* idempotent — a duplicate
        completion over-decrements successor counters — so this exercises
        the :class:`~repro.runtime.scheduler.CounterUnderflowError` guard
        and the :mod:`repro.devtools.racecheck` duplicate-completion
        detector.
    delay_seconds:
        Added delivery latency per message.
    stagger:
        With ``delay_seconds``, delay only every second message — later
        messages overtake earlier ones, testing reorder tolerance (the
        counter protocol never relies on arrival order).
    """

    dead_ranks: frozenset[int] = frozenset()
    fail_after: dict[int, int] = field(default_factory=dict)
    drop_from: frozenset[int] = frozenset()
    duplicate_from: frozenset[int] = frozenset()
    delay_seconds: float = 0.0
    stagger: bool = False


class Endpoint:
    """A rank's handle on the transport.

    ``send``/``recv`` move protocol messages between ranks;
    ``post_result`` ships the rank's final report to the master;
    ``on_task_executed`` is a hook the engine calls after every task
    (no-op here; the loopback transport uses it for fault injection).
    """

    rank: int

    def send(self, dst: int, payload) -> None:
        raise NotImplementedError

    def recv(self, block: bool = True):
        """Next inbound message; raises ``queue.Empty`` when
        ``block=False`` and the inbox is empty, :class:`TransportStopped`
        after a teardown."""
        raise NotImplementedError

    def post_result(self, msg) -> None:
        raise NotImplementedError

    def on_task_executed(self, count: int) -> None:
        return None


class Transport:
    """Factory/lifecycle interface the distributed engine drives.

    ``start`` launches one worker per rank; ``get_result`` returns rank
    reports as they arrive (raising :class:`TransportTimeout` on a
    deadline); ``terminate`` tears everything down; ``join`` reaps.
    """

    def start(self, n_ranks: int, target, args_of_rank) -> None:
        raise NotImplementedError

    def get_result(self, timeout: float):
        raise NotImplementedError

    def terminate(self) -> None:
        raise NotImplementedError

    def join(self, timeout: float = 30.0) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# multiprocessing (the production substrate)
# ----------------------------------------------------------------------

class _MPEndpoint(Endpoint):
    def __init__(self, rank: int, inboxes, result_q) -> None:
        self.rank = rank
        self._inboxes = inboxes
        self._result_q = result_q

    def send(self, dst: int, payload) -> None:
        self._inboxes[dst].put(payload)

    def recv(self, block: bool = True):
        if block:
            return self._inboxes[self.rank].get()
        return self._inboxes[self.rank].get_nowait()

    def post_result(self, msg) -> None:
        self._result_q.put(msg)


def _mp_entry(target, rank, inboxes, result_q, args) -> None:
    target(rank, _MPEndpoint(rank, inboxes, result_q), *args)


class MultiprocessingTransport(Transport):
    """One ``fork``-context OS process per rank, queues for messages."""

    def __init__(self) -> None:
        self._procs: list = []
        self._result_q = None

    def start(self, n_ranks: int, target, args_of_rank) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        inboxes = [ctx.Queue() for _ in range(n_ranks)]
        self._result_q = ctx.Queue()
        for rank in range(n_ranks):
            p = ctx.Process(
                target=_mp_entry,
                args=(target, rank, inboxes, self._result_q, args_of_rank(rank)),
                daemon=True,
            )
            p.start()
            self._procs.append(p)

    def get_result(self, timeout: float):
        try:
            return self._result_q.get(timeout=timeout)
        except queue_mod.Empty:
            dead = [r for r, p in enumerate(self._procs) if not p.is_alive()]
            raise TransportTimeout(timeout, dead) from None

    def terminate(self) -> None:
        for p in self._procs:
            if p.is_alive():
                p.terminate()

    def join(self, timeout: float = 30.0) -> None:
        for p in self._procs:
            p.join(timeout=timeout)
            if p.is_alive():  # pragma: no cover - stuck feeder safety net
                p.terminate()


# ----------------------------------------------------------------------
# in-process loopback (deterministic testing + fault injection)
# ----------------------------------------------------------------------

class _LoopbackEndpoint(Endpoint):
    def __init__(self, rank: int, transport: LoopbackTransport) -> None:
        self.rank = rank
        self._t = transport
        self._sends = 0

    def send(self, dst: int, payload) -> None:
        t = self._t
        if self.rank in t.faults.drop_from:
            return
        self._sends += 1
        copies = 2 if self.rank in t.faults.duplicate_from else 1
        delay = t.faults.delay_seconds
        if delay > 0.0 and (not t.faults.stagger or self._sends % 2 == 1):
            # a real link serialises at send time: snapshot array members
            # so a delayed delivery carries the values being sent, not
            # whatever a shared (arena-slab-view) buffer holds when the
            # timer fires
            if isinstance(payload, tuple):
                payload = tuple(
                    np.array(p) if isinstance(p, np.ndarray) else p
                    for p in payload
                )
            for _ in range(copies):
                timer = threading.Timer(
                    delay, t.inboxes[dst].put, args=(payload,)
                )
                timer.daemon = True
                timer.start()
                t._timers.append(timer)
        else:
            for _ in range(copies):
                t.inboxes[dst].put(payload)

    def recv(self, block: bool = True):
        t = self._t
        if not block:
            if t.stop_event.is_set():
                raise TransportStopped
            return t.inboxes[self.rank].get_nowait()
        while True:
            if t.stop_event.is_set():
                raise TransportStopped
            try:
                return t.inboxes[self.rank].get(timeout=0.05)
            except queue_mod.Empty:
                continue

    def post_result(self, msg) -> None:
        self._t.result_q.put(msg)

    def on_task_executed(self, count: int) -> None:
        limit = self._t.faults.fail_after.get(self.rank)
        if limit is not None and count >= limit:
            raise InjectedFault(
                f"injected fault: rank {self.rank} failed after {count} tasks"
            )


class LoopbackTransport(Transport):
    """All ranks as threads of the calling process.

    Single-process and GIL-interleaved, hence deterministic enough to
    debug and to assert on fault scenarios; the factors produced are
    identical to the multiprocessing transport's because the protocol is
    order-insensitive by construction.
    """

    def __init__(self, *, faults: FaultPlan | None = None) -> None:
        self.faults = faults or FaultPlan()
        self.inboxes: list[queue_mod.Queue] = []
        self.result_q: queue_mod.Queue = queue_mod.Queue()
        self.stop_event = threading.Event()
        self._threads: list[threading.Thread] = []
        self._timers: list[threading.Timer] = []

    def start(self, n_ranks: int, target, args_of_rank) -> None:
        self.inboxes = [queue_mod.Queue() for _ in range(n_ranks)]
        for rank in range(n_ranks):
            if rank in self.faults.dead_ranks:
                continue  # the rank "crashed" before doing any work
            th = threading.Thread(
                target=target,
                args=(rank, _LoopbackEndpoint(rank, self), *args_of_rank(rank)),
                daemon=True,
            )
            th.start()
            self._threads.append(th)

    def get_result(self, timeout: float):
        try:
            return self.result_q.get(timeout=timeout)
        except queue_mod.Empty:
            dead = sorted(self.faults.dead_ranks)
            raise TransportTimeout(timeout, dead) from None

    def terminate(self) -> None:
        self.stop_event.set()
        for timer in self._timers:
            timer.cancel()

    def join(self, timeout: float = 30.0) -> None:
        for th in self._threads:
            th.join(timeout=timeout)
