"""Warmup calibration of per-rank speed factors (ROADMAP item-4 follow-up).

``SolverOptions.rank_speeds="auto"`` resolves here during
:meth:`~repro.core.solver.PanguLU.preprocess`: a short deterministic
kernel warmup measures each rank slot's sustained block-kernel
throughput and returns the normalised relative speeds the
``CostModelPlacement`` and the speed-aware load balancer consume.

On a homogeneous host every slot measures (close to) the same
throughput and the calibrated tuple is ≈``(1.0, …, 1.0)`` — i.e. the
same placement the ``None`` default produces.  On a machine where rank
processes land on unequal devices (pinned cores, mixed CPU/GPU ranks),
re-running the probe per slot captures the skew without any manual
speed table.  The probe matrix is seeded, so the *work* is identical
across ranks and runs; only the measured wall-clock differs.
"""

from __future__ import annotations

import time

import numpy as np

from ..kernels.base import Workspace
from ..kernels.getrf import getrf_c_v1
from ..sparse.csc import CSCMatrix

__all__ = ["calibrate_rank_speeds"]

#: floor on a calibrated relative speed — a glitched probe (timer
#: hiccup, page fault storm) must not starve a rank of work entirely
MIN_RELATIVE_SPEED = 0.05


def _probe_block(order: int) -> CSCMatrix:
    """Deterministic diagonally-dominant dense-ish probe block."""
    rng = np.random.default_rng(0xCA1B)
    dense = rng.standard_normal((order, order))
    dense += order * np.eye(order)
    return CSCMatrix.from_dense(dense)


def _time_probe(blk: CSCMatrix, ws: Workspace, repeats: int) -> float:
    """Best-of-``repeats`` seconds for one GETRF of the probe block.

    The minimum (not the mean) is the standard microbenchmark estimator
    of sustained throughput — outliers are interference, never speed.
    """
    template = blk.data.copy()
    best = np.inf
    for _ in range(repeats):
        blk.data[...] = template  # the kernel factors in place
        t0 = time.perf_counter()
        getrf_c_v1(blk, ws, pivot_floor=0.0)
        best = min(best, time.perf_counter() - t0)
    return best


def calibrate_rank_speeds(
    nprocs: int, *, order: int = 96, repeats: int = 3
) -> tuple[float, ...]:
    """Measure relative per-rank speeds from a short kernel warmup.

    Runs ``repeats`` seeded GETRF probes per rank slot and converts the
    best times to speeds relative to the fastest slot (fastest = 1.0,
    floored at ``MIN_RELATIVE_SPEED``).  Costs a few milliseconds per
    rank — noise next to a real factorisation, which is why ``"auto"``
    can afford to run it inside every preprocess.
    """
    nprocs = max(1, int(nprocs))
    blk = _probe_block(order)
    ws = Workspace()
    _time_probe(blk, ws, 1)  # untimed warmup: JIT caches, allocator, TLB
    times = np.array([_time_probe(blk, ws, repeats) for _ in range(nprocs)])
    fastest = float(times.min())
    if fastest <= 0.0:  # timer resolution floor — call it homogeneous
        return (1.0,) * nprocs
    speeds = np.maximum(fastest / times, MIN_RELATIVE_SPEED)
    return tuple(float(s) for s in speeds)
