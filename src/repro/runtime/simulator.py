"""Discrete-event simulator for distributed task-DAG execution.

This is the substrate that stands in for the paper's 128-GPU clusters:
it replays a task DAG (PanguLU's block kernels or the baseline's
supernodal panels) over ``P`` simulated processes with

* per-task durations from the platform cost models, divided by the
  executing rank's ``Platform.rank_speed`` factor (heterogeneous
  machines run slow ranks proportionally longer; the default
  homogeneous speeds leave durations untouched),
* point-to-point message delays from the network model (a task's output
  travels to every consumer on another process),
* one of two scheduling policies:

  - ``"syncfree"`` — PanguLU's strategy (Section 4.4): tasks become
    runnable the instant their dependency counter reaches zero; each
    process always picks the highest-priority (earliest elimination step)
    ready task.
  - ``"levelset"`` — the SuperLU_DIST-style policy: tasks carry a level,
    and no process may start a level-``ℓ+1`` task before *every*
    level-``ℓ`` task has completed (a global barrier per level).

The simulator reports the makespan and a per-process time breakdown:
``busy`` (computing) and ``sync`` (idle while work remained — the
quantity Figs. 5 and 13 compare).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .machine import Platform

__all__ = ["SimSpec", "SimResult", "simulate"]


@dataclass
class SimSpec:
    """Input of one simulation run.

    All arrays are indexed by task id; ``successors`` is the adjacency of
    the DAG and ``n_deps`` its in-degrees.  ``priority`` orders ready
    tasks (smaller = more urgent).  ``levels`` is required for the
    ``"levelset"`` schedule and ignored otherwise.
    """

    durations: np.ndarray
    owner: np.ndarray
    out_bytes: np.ndarray
    n_deps: np.ndarray
    successors: list[list[int]]
    priority: np.ndarray
    nprocs: int
    levels: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.durations)
        for name in ("owner", "out_bytes", "n_deps", "priority"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch")
        if len(self.successors) != n:
            raise ValueError("successors length mismatch")
        if n and int(self.owner.max()) >= self.nprocs:
            raise ValueError("owner id exceeds process count")


@dataclass
class SimResult:
    """Outcome of one simulation run.

    ``sync_seconds`` counts, per process, the idle gaps before and between
    its task executions (waiting on dependencies, messages or barriers);
    idle time after a process has finished its last task is not counted.
    """

    makespan: float
    busy_seconds: np.ndarray
    sync_seconds: np.ndarray
    comm_bytes: float
    messages: int
    start_times: np.ndarray
    end_times: np.ndarray

    @property
    def total_busy(self) -> float:
        return float(self.busy_seconds.sum())

    @property
    def mean_sync(self) -> float:
        """Mean per-process sync time — the Fig. 13 metric."""
        return float(self.sync_seconds.mean()) if self.sync_seconds.size else 0.0

    def sync_ratio(self) -> float:
        """Mean sync time over makespan — the Fig. 5 metric."""
        return self.mean_sync / self.makespan if self.makespan > 0 else 0.0

    def gflops(self, useful_flops: float) -> float:
        """Throughput in GFLOP/s given a useful-work numerator."""
        return useful_flops / self.makespan / 1e9 if self.makespan > 0 else 0.0


_DONE, _DEC = 0, 1


def simulate(spec: SimSpec, platform: Platform, *, schedule: str = "syncfree") -> SimResult:
    """Run the event-driven simulation; see module docstring."""
    if schedule not in ("syncfree", "levelset"):
        raise ValueError(f"unknown schedule {schedule!r}")
    n = len(spec.durations)
    nprocs = spec.nprocs
    counters = spec.n_deps.astype(np.int64).copy()
    levels = spec.levels
    if schedule == "levelset":
        if levels is None:
            raise ValueError("levelset schedule requires levels")
        nlev = int(levels.max()) + 1 if n else 0
        level_remaining = np.bincount(levels, minlength=nlev).astype(np.int64)
        current_level = 0
        while current_level < nlev and level_remaining[current_level] == 0:
            current_level += 1  # skip structurally empty leading levels
        deferred: dict[int, list[int]] = {}

    # per-rank speed scaling: slow ranks hold tasks proportionally longer
    speeds = np.asarray(
        [platform.rank_speed(p) for p in range(nprocs)], dtype=np.float64
    )

    ready: list[list[tuple[float, int]]] = [[] for _ in range(nprocs)]
    busy = np.zeros(nprocs, dtype=bool)
    prev_end = np.zeros(nprocs)
    busy_seconds = np.zeros(nprocs)
    sync_seconds = np.zeros(nprocs)
    start_times = np.full(n, np.nan)
    end_times = np.full(n, np.nan)
    comm_bytes = 0.0
    messages = 0
    executed = 0

    events: list[tuple[float, int, int, int]] = []  # (time, seq, kind, task)
    seq = 0

    def push_event(t: float, kind: int, tid: int) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind, tid))
        seq += 1

    def make_ready(tid: int, now: float) -> None:
        p = int(spec.owner[tid])
        heapq.heappush(ready[p], (float(spec.priority[tid]), tid))
        try_start(p, now)

    def release(tid: int, now: float) -> None:
        if schedule == "levelset" and int(levels[tid]) > current_level:
            deferred.setdefault(int(levels[tid]), []).append(tid)
        else:
            make_ready(tid, now)

    def try_start(p: int, now: float) -> None:
        if busy[p] or not ready[p]:
            return
        _, tid = heapq.heappop(ready[p])
        busy[p] = True
        if now > prev_end[p]:
            sync_seconds[p] += now - prev_end[p]
        start_times[tid] = now
        dur = float(spec.durations[tid]) / speeds[p]
        push_event(now + dur, _DONE, tid)

    # roots
    for tid in range(n):
        if counters[tid] == 0:
            release(tid, 0.0)

    makespan = 0.0
    while events:
        t, _, kind, tid = heapq.heappop(events)
        if kind == _DONE:
            executed += 1
            p = int(spec.owner[tid])
            busy[p] = False
            busy_seconds[p] += float(spec.durations[tid]) / speeds[p]
            prev_end[p] = t
            end_times[tid] = t
            makespan = max(makespan, t)
            for s in spec.successors[tid]:
                dst = int(spec.owner[s])
                delay = platform.message_time(p, dst, float(spec.out_bytes[tid]))
                if delay > 0.0:
                    comm_bytes += float(spec.out_bytes[tid])
                    messages += 1
                push_event(t + delay, _DEC, s)
            if schedule == "levelset":
                lv = int(levels[tid])
                level_remaining[lv] -= 1
                while (
                    current_level < len(level_remaining)
                    and level_remaining[current_level] == 0
                ):
                    current_level += 1
                    for d in deferred.pop(current_level, []):
                        make_ready(d, t)
            try_start(p, t)
        else:  # _DEC
            counters[tid] -= 1
            if counters[tid] == 0:
                release(tid, t)

    if executed != n:
        raise RuntimeError(
            f"simulation deadlock: {executed}/{n} tasks completed"
        )
    return SimResult(
        makespan=makespan,
        busy_seconds=busy_seconds,
        sync_seconds=sync_seconds,
        comm_bytes=comm_bytes,
        messages=messages,
        start_times=start_times,
        end_times=end_times,
    )
