"""Shared-memory synchronisation-free executor.

The distributed behaviour of PanguLU is *modelled* by the event simulator;
this module complements it by *really executing* the synchronisation-free
counter protocol of Section 4.4 with worker threads: a shared dependency
counter per task, a shared priority queue of ready tasks, no barriers
anywhere.  NumPy kernels release the GIL for their array work, so workers
overlap; per-target-block locks serialise concurrent SSSSM updates into
the same block (in the distributed setting the block's owner process does
this serialisation implicitly).

The counter/heap/completion protocol itself lives in the shared
:class:`~repro.runtime.scheduler.SchedulerCore`; this engine only adds
the threading policy around it.  The global condition lock is held only
for queue pops and completion bookkeeping: feature extraction and kernel
selection run outside it, dependency counters are decremented in one
vectorised operation, heap entries are precomputed, per-worker statistics
merge once at exit, and waiters are woken one-per-new-task
(``notify(n)``) instead of ``notify_all`` — so workers actually overlap
during the vectorised kernels instead of convoying on the lock.

Used by the tests to prove the protocol is deadlock-free and produces the
same factors as sequential execution, and by the quickstart example as a
"run it for real" parallel mode.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.blocking import BlockMatrix
from ..core.dag import TaskDAG
from ..core.numeric import (
    _TTYPE_TO_KTYPE,
    NumericOptions,
    execute_task,
    resolve_compress,
    resolve_plan_cache,
    task_features,
)
from ..core.tsolve import (
    TSolveStats,
    _check_rhs,
    _KIND_NAMES,
    execute_tsolve_task,
    tsolve_core,
    tsolve_task_label,
    tsolve_write_slots,
)
from ..core.tsolve_dag import TSolveDAG
from ..kernels.base import Workspace
from ..kernels.plans import PlanCache
from .scheduler import EventRecorder, SchedulerCore, WorkerLocal

__all__ = ["ThreadedStats", "factorize_threaded", "tsolve_threaded"]

# shared state and its lock, registered for the `lock-discipline` lint
# rule: these operations only happen inside `with cond:`
__guarded_by__ = {
    "cond": ("core.pop", "core.complete", "errors", "local.merge_into"),
}


def _make_block_locks(n: int) -> list[threading.Lock]:
    """One lock per stored block, serialising concurrent updates to the
    same target.  A separate function so the race-detector tests can
    replace it with no-op locks and prove the checker catches the
    resulting double write."""
    return [threading.Lock() for _ in range(n)]


def _make_segment_locks(n: int) -> list[threading.Lock]:
    """One lock per RHS segment slot (``y`` then ``x``) for the threaded
    triangular solve — the phase-5 counterpart of the per-block locks,
    and the same monkeypatch seam for the race-detector tests."""
    return [threading.Lock() for _ in range(n)]


@dataclass
class ThreadedStats:
    """Accounting of one threaded factorisation."""

    tasks_executed: int = 0
    n_workers: int = 0
    kernel_choices: dict[int, str] = field(default_factory=dict)
    max_ready_depth: int = 0
    pivots_replaced: int = 0
    planned_tasks: int = 0
    plan_bytes: int = 0


def factorize_threaded(
    f: BlockMatrix,
    dag: TaskDAG,
    options: NumericOptions | None = None,
    *,
    n_workers: int = 4,
    recorder: EventRecorder | None = None,
    checker=None,
) -> ThreadedStats:
    """Factorise the blocked matrix in place with ``n_workers`` threads.

    Raises the first kernel exception encountered (after quiescing the
    pool).  The result is numerically equivalent to sequential execution
    up to floating-point reassociation of commuting Schur updates.  Pass
    an :class:`~repro.runtime.scheduler.EventRecorder` to capture
    per-worker task events and ready-depth samples for Chrome-trace
    export of the real run, and a
    :class:`~repro.devtools.racecheck.RaceChecker` (``checker``) to
    verify the single-writer / exactly-once invariants with per-worker
    provenance.
    """
    options = options or NumericOptions()
    if n_workers < 1:
        raise ValueError("need at least one worker")
    n = len(dag.tasks)
    stats = ThreadedStats(n_workers=n_workers)
    plans = resolve_plan_cache(f, options)
    compress = resolve_compress(options)

    lock = threading.Lock()
    cond = threading.Condition(lock)
    core = SchedulerCore.from_dag(dag, recorder=recorder)
    errors: list[BaseException] = []

    # one lock per stored block serialises concurrent updates to a target
    block_locks = _make_block_locks(len(f.blk_values))

    def worker(wid: int) -> None:
        ws = Workspace()
        ws.presize(f.max_block_order, dtype=getattr(f, "dtype", np.float64))
        local = WorkerLocal()
        try:
            while True:
                with cond:
                    tid = core.pop()
                    while tid is None and not core.done() and not errors:
                        cond.wait()
                        tid = core.pop()
                    if errors or tid is None:
                        return
                task = dag.tasks[tid]
                try:
                    if checker is not None:
                        checker.on_pop(tid, wid)
                    # feature extraction and version selection run
                    # outside the global lock — only the target block
                    # is serialised during the kernel itself
                    feats = task_features(f, task)
                    ktype = _TTYPE_TO_KTYPE[task.ttype]
                    version = options.selector.select(ktype, feats)
                    slot = f.block_slot(task.bi, task.bj)
                    t0 = time.perf_counter() if recorder else 0.0
                    with block_locks[slot]:
                        if checker is not None:
                            checker.begin_write(slot, tid, wid)
                        try:
                            # compression of a finished GESSM/TSTRF panel
                            # happens inside execute_task, i.e. inside
                            # this block lock — single writer preserved
                            replaced, planned = execute_task(
                                f, task, version, ws,
                                pivot_floor=options.pivot_floor, plans=plans,
                                compress=compress,
                            )
                        finally:
                            if checker is not None:
                                checker.end_write(slot, tid, wid)
                    if recorder:
                        recorder.task(
                            wid,
                            f"{task.ttype.name}(k={task.k},{task.bi},{task.bj})",
                            task.ttype.name, t0, time.perf_counter(), tid,
                        )
                    local.count(
                        tid, f"{ktype.value}/{version}", replaced, planned
                    )
                    if checker is not None:
                        checker.on_complete(tid, wid)
                    with cond:
                        newly_ready = core.complete(tid)
                        if core.done():
                            cond.notify_all()
                        elif newly_ready:
                            cond.notify(newly_ready)
                except BaseException as exc:  # propagate to the caller
                    with cond:
                        errors.append(exc)
                        cond.notify_all()
                    return
        finally:
            with cond:
                local.merge_into(stats)

    threads = [
        threading.Thread(target=worker, args=(wid,), daemon=True)
        for wid in range(n_workers)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    if checker is not None:
        checker.final_check(core)
    stats.max_ready_depth = core.max_ready_depth
    core.check("threaded")  # names the blocked frontier on deadlock
    if stats.tasks_executed != n:
        raise RuntimeError(
            f"threaded deadlock: executed {stats.tasks_executed} of {n} tasks"
        )
    if plans is not None:
        stats.plan_bytes = plans.nbytes
    return stats


def tsolve_threaded(
    f: BlockMatrix,
    tdag: TSolveDAG,
    b,
    *,
    n_workers: int = 4,
    plans: PlanCache | None = None,
    recorder: EventRecorder | None = None,
    checker=None,
) -> tuple:
    """Both triangular sweeps with ``n_workers`` threads over an
    *executable* solve DAG (:func:`repro.core.tsolve_dag.build_tsolve_dag`
    with ``executable=True``).

    Same threading policy as :func:`factorize_threaded` — shared
    :class:`SchedulerCore` under a condition lock, per-segment locks
    around the RHS writes, ``notify(n)`` wake-ups — and, because the DAG
    totally orders the writers of every segment, the solution is
    *bit-identical* to :func:`repro.core.tsolve.tsolve_sequential`.
    Returns ``(x, TSolveStats)``; ``b`` may be a vector or an ``(n, k)``
    multi-RHS panel.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if tdag.seq_y is None:
        raise ValueError("tsolve_threaded needs an executable solve DAG "
                         "(build_tsolve_dag(..., executable=True))")
    y = _check_rhs(f.n, b)
    x = np.empty_like(y)
    t_start = time.perf_counter()
    stats = TSolveStats(
        engine="threaded",
        n_workers=n_workers,
        nrhs=1 if y.ndim == 1 else y.shape[1],
    )

    lock = threading.Lock()
    cond = threading.Condition(lock)
    core = tsolve_core(tdag, f.nb, recorder=recorder)
    errors: list[BaseException] = []
    seg_locks = _make_segment_locks(2 * f.nb)

    def worker(wid: int) -> None:
        executed = 0
        try:
            while True:
                with cond:
                    tid = core.pop()
                    while tid is None and not core.done() and not errors:
                        cond.wait()
                        tid = core.pop()
                    if errors or tid is None:
                        return
                try:
                    if checker is not None:
                        checker.on_pop(tid, wid)
                    slots = tsolve_write_slots(tdag, tid, f.nb)
                    t0 = time.perf_counter() if recorder else 0.0
                    for s in slots:
                        seg_locks[s].acquire()
                    if checker is not None:
                        for s in slots:
                            checker.begin_write(s, tid, wid)
                    try:
                        execute_tsolve_task(f, tdag, tid, y, x, plans)
                    finally:
                        if checker is not None:
                            for s in slots:
                                checker.end_write(s, tid, wid)
                        for s in reversed(slots):
                            seg_locks[s].release()
                    if recorder:
                        recorder.task(
                            wid, tsolve_task_label(tdag, tid),
                            _KIND_NAMES[int(tdag.kinds[tid])],
                            t0, time.perf_counter(), tid,
                        )
                    executed += 1
                    if checker is not None:
                        checker.on_complete(tid, wid)
                    with cond:
                        newly_ready = core.complete(tid)
                        if core.done():
                            cond.notify_all()
                        elif newly_ready:
                            cond.notify(newly_ready)
                except BaseException as exc:  # propagate to the caller
                    with cond:
                        errors.append(exc)
                        cond.notify_all()
                    return
        finally:
            with cond:
                stats.tasks_executed += executed

    threads = [
        threading.Thread(target=worker, args=(wid,), daemon=True)
        for wid in range(n_workers)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    if checker is not None:
        checker.final_check(core)
    stats.max_ready_depth = core.max_ready_depth
    core.check("threaded tsolve")  # names the blocked frontier on deadlock
    if stats.tasks_executed != len(tdag):
        raise RuntimeError(
            f"threaded tsolve deadlock: executed {stats.tasks_executed} "
            f"of {len(tdag)} tasks"
        )
    stats.seconds = time.perf_counter() - t_start
    return x, stats
