"""Shared-memory synchronisation-free executor.

The distributed behaviour of PanguLU is *modelled* by the event simulator;
this module complements it by *really executing* the synchronisation-free
counter protocol of Section 4.4 with worker threads: a shared dependency
counter per task, a shared priority queue of ready tasks, no barriers
anywhere.  NumPy kernels release the GIL for their array work, so workers
overlap; per-target-block locks serialise concurrent SSSSM updates into
the same block (in the distributed setting the block's owner process does
this serialisation implicitly).

Used by the tests to prove the protocol is deadlock-free and produces the
same factors as sequential execution, and by the quickstart example as a
"run it for real" parallel mode.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field

from ..core.blocking import BlockMatrix
from ..core.dag import TaskDAG
from ..core.numeric import NumericOptions, run_task, task_features
from ..kernels.base import Workspace
from ..kernels.registry import KernelType
from ..core.dag import TaskType

__all__ = ["ThreadedStats", "factorize_threaded"]

_TTYPE_TO_KTYPE = {
    TaskType.GETRF: KernelType.GETRF,
    TaskType.GESSM: KernelType.GESSM,
    TaskType.TSTRF: KernelType.TSTRF,
    TaskType.SSSSM: KernelType.SSSSM,
}


@dataclass
class ThreadedStats:
    """Accounting of one threaded factorisation."""

    tasks_executed: int = 0
    n_workers: int = 0
    kernel_choices: dict[int, str] = field(default_factory=dict)
    max_ready_depth: int = 0


def factorize_threaded(
    f: BlockMatrix,
    dag: TaskDAG,
    options: NumericOptions | None = None,
    *,
    n_workers: int = 4,
) -> ThreadedStats:
    """Factorise the blocked matrix in place with ``n_workers`` threads.

    Raises the first kernel exception encountered (after quiescing the
    pool).  The result is numerically equivalent to sequential execution
    up to floating-point reassociation of commuting Schur updates.
    """
    options = options or NumericOptions()
    if n_workers < 1:
        raise ValueError("need at least one worker")
    n = len(dag.tasks)
    counters = dag.dep_counts()
    stats = ThreadedStats(n_workers=n_workers)

    lock = threading.Lock()
    cond = threading.Condition(lock)
    ready: list[tuple[int, int, int]] = []
    for tid in dag.roots():
        t = dag.tasks[tid]
        heapq.heappush(ready, (t.k, int(t.ttype), tid))
    remaining = n
    errors: list[BaseException] = []

    # one lock per stored block serialises concurrent updates to a target
    block_locks = [threading.Lock() for _ in f.blk_values]

    def worker() -> None:
        nonlocal remaining
        ws = Workspace()
        while True:
            with cond:
                while not ready and remaining > 0 and not errors:
                    cond.wait()
                if errors or remaining <= 0:
                    return
                if not ready:
                    continue
                stats.max_ready_depth = max(stats.max_ready_depth, len(ready))
                _, _, tid = heapq.heappop(ready)
            task = dag.tasks[tid]
            try:
                feats = task_features(f, task)
                ktype = _TTYPE_TO_KTYPE[task.ttype]
                version = options.selector.select(ktype, feats)
                slot = f.block_slot(task.bi, task.bj)
                with block_locks[slot]:
                    run_task(f, task, version, ws, pivot_floor=options.pivot_floor)
            except BaseException as exc:  # propagate to the caller
                with cond:
                    errors.append(exc)
                    cond.notify_all()
                return
            with cond:
                stats.kernel_choices[tid] = f"{ktype.value}/{version}"
                stats.tasks_executed += 1
                for s in task.successors:
                    counters[s] -= 1
                    if counters[s] == 0:
                        ts = dag.tasks[s]
                        heapq.heappush(ready, (ts.k, int(ts.ttype), s))
                remaining -= 1
                cond.notify_all()

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(n_workers)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    if stats.tasks_executed != n:
        raise RuntimeError(
            f"threaded deadlock: executed {stats.tasks_executed} of {n} tasks"
        )
    return stats
