"""Shared-memory synchronisation-free executor.

The distributed behaviour of PanguLU is *modelled* by the event simulator;
this module complements it by *really executing* the synchronisation-free
counter protocol of Section 4.4 with worker threads: a shared dependency
counter per task, a shared priority queue of ready tasks, no barriers
anywhere.  NumPy kernels release the GIL for their array work, so workers
overlap; per-target-block locks serialise concurrent SSSSM updates into
the same block (in the distributed setting the block's owner process does
this serialisation implicitly).

The global condition lock is held only for queue pops and completion
bookkeeping: feature extraction and kernel selection run outside it,
dependency counters are decremented in one vectorised operation, heap
entries are precomputed, per-worker statistics merge once at exit, and
waiters are woken one-per-new-task (``notify(n)``) instead of
``notify_all`` — so workers actually overlap during the vectorised
kernels instead of convoying on the lock.

Used by the tests to prove the protocol is deadlock-free and produces the
same factors as sequential execution, and by the quickstart example as a
"run it for real" parallel mode.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.blocking import BlockMatrix
from ..core.dag import TaskDAG
from ..core.numeric import (
    _TTYPE_TO_KTYPE,
    NumericOptions,
    execute_task,
    ready_entry,
    resolve_plan_cache,
    task_features,
)
from ..kernels.base import Workspace

__all__ = ["ThreadedStats", "factorize_threaded"]


@dataclass
class ThreadedStats:
    """Accounting of one threaded factorisation."""

    tasks_executed: int = 0
    n_workers: int = 0
    kernel_choices: dict[int, str] = field(default_factory=dict)
    max_ready_depth: int = 0
    pivots_replaced: int = 0
    planned_tasks: int = 0
    plan_bytes: int = 0


def factorize_threaded(
    f: BlockMatrix,
    dag: TaskDAG,
    options: NumericOptions | None = None,
    *,
    n_workers: int = 4,
) -> ThreadedStats:
    """Factorise the blocked matrix in place with ``n_workers`` threads.

    Raises the first kernel exception encountered (after quiescing the
    pool).  The result is numerically equivalent to sequential execution
    up to floating-point reassociation of commuting Schur updates.
    """
    options = options or NumericOptions()
    if n_workers < 1:
        raise ValueError("need at least one worker")
    n = len(dag.tasks)
    counters = dag.dep_counts()
    stats = ThreadedStats(n_workers=n_workers)
    plans = resolve_plan_cache(f, options)

    lock = threading.Lock()
    cond = threading.Condition(lock)
    # heap entries precomputed once so pushes inside the lock are O(log n)
    # with no attribute chasing
    entries = [ready_entry(t, t.tid) for t in dag.tasks]
    succs = [np.asarray(t.successors, dtype=np.int64) for t in dag.tasks]
    ready: list[tuple[int, int, int]] = [entries[tid] for tid in dag.roots()]
    heapq.heapify(ready)
    remaining = n
    errors: list[BaseException] = []

    # one lock per stored block serialises concurrent updates to a target
    block_locks = [threading.Lock() for _ in f.blk_values]

    def worker() -> None:
        nonlocal remaining
        ws = Workspace()
        ws.presize(f.bs)
        local_choices: dict[int, str] = {}
        local_executed = 0
        local_pivots = 0
        local_planned = 0
        local_depth = 0
        try:
            while True:
                with cond:
                    while not ready and remaining > 0 and not errors:
                        cond.wait()
                    if errors or remaining <= 0:
                        return
                    if len(ready) > local_depth:
                        local_depth = len(ready)
                    _, _, tid = heapq.heappop(ready)
                task = dag.tasks[tid]
                try:
                    # feature extraction and version selection run
                    # outside the global lock — only the target block
                    # is serialised during the kernel itself
                    feats = task_features(f, task)
                    ktype = _TTYPE_TO_KTYPE[task.ttype]
                    version = options.selector.select(ktype, feats)
                    slot = f.block_slot(task.bi, task.bj)
                    with block_locks[slot]:
                        replaced, planned = execute_task(
                            f, task, version, ws,
                            pivot_floor=options.pivot_floor, plans=plans,
                        )
                except BaseException as exc:  # propagate to the caller
                    with cond:
                        errors.append(exc)
                        cond.notify_all()
                    return
                local_choices[tid] = f"{ktype.value}/{version}"
                local_executed += 1
                local_pivots += replaced
                local_planned += planned
                succ = succs[tid]
                with cond:
                    newly_ready = 0
                    if succ.size:
                        counters[succ] -= 1
                        for s in succ[counters[succ] == 0]:
                            heapq.heappush(ready, entries[s])
                            newly_ready += 1
                    remaining -= 1
                    if remaining <= 0:
                        cond.notify_all()
                    elif newly_ready:
                        cond.notify(newly_ready)
        finally:
            with cond:
                stats.kernel_choices.update(local_choices)
                stats.tasks_executed += local_executed
                stats.pivots_replaced += local_pivots
                stats.planned_tasks += local_planned
                if local_depth > stats.max_ready_depth:
                    stats.max_ready_depth = local_depth

    threads = [threading.Thread(target=worker, daemon=True) for _ in range(n_workers)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    if stats.tasks_executed != n:
        raise RuntimeError(
            f"threaded deadlock: executed {stats.tasks_executed} of {n} tasks"
        )
    if plans is not None:
        stats.plan_bytes = plans.nbytes
    return stats
